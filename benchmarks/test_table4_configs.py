"""Bench: regenerate Table IV (the four WiNoC configurations).

Paper anchors (Sec. V-B): cfg1 = SiGe/CMOS/CMOS, cfg2 = CMOS/BiCMOS/SiGe,
cfg3 = SiGe/BiCMOS/CMOS, cfg4 = CMOS/CMOS/BiCMOS for long/medium/short
range; configurations 1 and 3 (SiGe long range) burn the most energy per
bit; configuration 4 the least.
"""

from repro.analysis import table4_configs


def test_table4(run_experiment):
    result = run_experiment(table4_configs)
    assert len(result.rows) == 8  # 4 configs x 2 scenarios

    mapping = {row[0]: (row[1], row[2], row[3]) for row in result.rows}
    assert mapping[1] == ("SiGe", "CMOS", "CMOS")
    assert mapping[2] == ("CMOS", "BiCMOS", "SiGe")
    assert mapping[3] == ("SiGe", "BiCMOS", "CMOS")
    assert mapping[4] == ("CMOS", "CMOS", "BiCMOS")

    for scenario in (1, 2):
        energy = {row[0]: row[5] for row in result.rows if row[4] == scenario}
        # SiGe-long configs are the most expensive; config 4 the cheapest.
        assert energy[3] >= energy[1] > energy[2] > energy[4]
