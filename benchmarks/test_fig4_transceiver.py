"""Bench: regenerate Fig. 4 (oscillator / PA / LNA behavioural curves).

Paper anchors: Colpitts oscillation at 90 GHz with ~-86 dBc/Hz phase noise
at 1 MHz offset (Fig. 4a); PA peak gain 3.5 dB at 90 GHz, ~20 GHz bandwidth
above 2 dB, output P1dB ~5 dBm, 14 mW DC at 1 V (Fig. 4b); LNA gain 10 dB
around 90 GHz (Fig. 4c).
"""

from repro.analysis import fig4_transceiver


def test_fig4(run_experiment):
    result = run_experiment(fig4_transceiver)
    notes = result.notes

    assert abs(notes["osc_freq_ghz"] - 90.0) < 0.5
    assert -88.0 <= notes["osc_pn_1mhz_dbc"] <= -84.0
    assert 4.5 <= notes["pa_p1db_dbm"] <= 5.7
    assert notes["pa_dc_mw"] == 14.0
    assert abs(notes["lna_peak_gain_db"] - 10.0) < 0.1

    # PA band shape: peak at 90, >= 2 dB within +-10 GHz, below 2 dB well
    # outside the band.
    by_freq = {row[0]: row for row in result.rows}
    assert abs(by_freq[90.0][1] - 3.5) < 0.05
    assert by_freq[80.0][1] >= 1.45 and by_freq[100.0][1] >= 1.45
    assert by_freq[70.0][1] < 2.0

    # LNA: peak 10 dB at 90 GHz, still within 3 dB at +-15 GHz (wideband).
    assert abs(by_freq[90.0][2] - 10.0) < 0.05
    assert by_freq[75.0][2] >= 6.9
    assert by_freq[105.0][2] >= 6.9
