"""Bench: regenerate Fig. 3 (OOK link budget at 32 Gbps / 90 GHz).

Paper anchors: ">= 4 dBm for a maximum distance of 50 mm" with isotropic
antennas; required power falls with antenna directivity and grows ~20 dB
per distance decade (free-space d^2 law).
"""

from repro.analysis import fig3_link_budget


def test_fig3(run_experiment):
    result = run_experiment(fig3_link_budget)

    # The 50 mm / 0 dBi anchor: >= 4 dBm, and not absurdly above it.
    anchor = result.notes["anchor_50mm_0dBi_dbm"]
    assert 4.0 <= anchor <= 5.0

    # Monotone in distance for every directivity column.
    for col in (1, 2, 3):
        series = [row[col] for row in result.rows]
        assert series == sorted(series)

    # Directivity helps: at every distance the 10 dBi column is 20 dB below
    # the isotropic one (gain applied at both ends).
    for row in result.rows:
        assert abs((row[1] - row[3]) - 20.0) < 1e-6

    # Friis slope: 5 mm -> 50 mm is one decade -> +20 dB.
    d5 = next(r for r in result.rows if r[0] == 5.0)
    d50 = next(r for r in result.rows if r[0] == 50.0)
    assert abs((d50[1] - d5[1]) - 20.0) < 0.1
