"""Bench: regenerate Table I (OWN-256 wireless connections).

Paper anchors: 12 channels; C2C pairs A0-B2/B2-A0/A3-B1/B1-A3 at ~60 mm,
E2E pairs A2-B3/B3-A2/A1-B0/B0-A1 at ~30 mm, SR pairs C0-C3/C3-C0/C1-C2/
C2-C1 at ~10 mm.
"""

from repro.analysis import table1_channels


def test_table1(run_experiment):
    result = run_experiment(table1_channels)
    assert len(result.rows) == 12
    classes = [row[2] for row in result.rows]
    assert classes.count("C2C") == 4
    assert classes.count("E2E") == 4
    assert classes.count("SR") == 4
    # Distance ordering: every C2C link longer than every E2E, etc.
    by_class = {cls: [r[3] for r in result.rows if r[2] == cls] for cls in set(classes)}
    assert min(by_class["C2C"]) > max(by_class["E2E"]) > max(by_class["SR"])
    # The Table I pairs are present verbatim.
    links = {row[1] for row in result.rows}
    for expected in ("A0->B2", "B2->A0", "A3->B1", "B1->A3",
                     "A1->B0", "B0->A1", "A2->B3", "B3->A2",
                     "C0->C3", "C3->C0", "C1->C2", "C2->C1"):
        assert expected in links
