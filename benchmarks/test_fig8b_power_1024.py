"""Bench: regenerate Fig. 8(b) (1024-core power and energy per packet).

Paper anchors: OWN consumes more than OptXB at 1024 cores (the paper
quotes ~30 % -- OptXB keeps its power edge, its objection is component
count); wCMESH's wireless link power dominates its budget because XY DOR
multiplies wireless hops; CMESH remains the most expensive electrical
baseline; OWN undercuts wCMESH (paper: by ~3 %, ours by more -- see
EXPERIMENTS.md).
"""

from repro.analysis import fig8b_power_1024


def test_fig8b(run_experiment):
    result = run_experiment(fig8b_power_1024, quick=True)
    rows = {row[0]: row for row in result.rows}
    totals = {name: row[5] for name, row in rows.items()}

    # OWN below the electrical/wireless hybrids, near the photonic nets.
    assert totals["OWN"] < totals["wCMESH"]
    assert totals["OWN"] < totals["CMESH"]

    # wCMESH: wireless is its single largest link component.
    wc = rows["wCMESH"]
    wireless, elec, phot = wc[4], wc[2], wc[3]
    assert wireless > elec and wireless > phot

    # OptXB pays visible router power at radix 259 but stays in OWN's
    # neighbourhood (paper: OWN = 1.3x OptXB).
    ratio = totals["OWN"] / totals["OptXB"]
    assert 0.6 <= ratio <= 1.6

    # Energy per packet is finite and positive everywhere.
    for row in result.rows:
        assert row[6] > 0
