"""Microbenchmarks of the simulator substrate itself.

These are classic pytest-benchmark measurements (multiple rounds) tracking
the cycle-loop cost per topology at a fixed load -- the regression canary
for the active-set scheduling optimisations described in DESIGN.md.
"""

import pytest

from repro.core import build_own256
from repro.noc import Simulator, reset_packet_ids
from repro.topologies import build_cmesh, build_optxb
from repro.traffic import SyntheticTraffic


def _run_cycles(builder, n_cores, rate, cycles):
    reset_packet_ids()
    built = builder()
    sim = Simulator(
        built.network,
        traffic=SyntheticTraffic(n_cores, "UN", rate, 4, seed=1),
    )
    sim.run(cycles)
    return sim


@pytest.mark.parametrize(
    "name,builder,n_cores",
    [
        ("cmesh256", lambda: build_cmesh(256), 256),
        ("optxb256", lambda: build_optxb(256), 256),
        ("own256", build_own256, 256),
    ],
)
def test_simulate_300_cycles(benchmark, name, builder, n_cores):
    sim = benchmark.pedantic(
        _run_cycles, args=(builder, n_cores, 0.02, 300), rounds=3, iterations=1
    )
    # The run must actually move traffic.
    assert sim.stats.packets_ejected > 0


def test_build_own256(benchmark):
    built = benchmark.pedantic(build_own256, rounds=3, iterations=1)
    assert built.network.n_routers == 64


def test_traffic_generation_rate(benchmark):
    """Vectorised Bernoulli generation: one tick over 1024 cores."""
    traffic = SyntheticTraffic(1024, "UN", 0.1, 4, seed=1)

    def tick_many():
        total = 0
        for t in range(200):
            total += len(traffic.tick(t))
        return total

    total = benchmark.pedantic(tick_many, rounds=3, iterations=1)
    assert total > 1000
