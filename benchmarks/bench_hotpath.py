#!/usr/bin/env python
"""Hot-path benchmark: active-set scheduler vs dense stepping on OWN-256.

Measures simulator speed (``profile["sim_cycles_per_sec"]`` from schema-v2
run records) at the paper's mid-load sweep point -- OWN-256, uniform
traffic, 0.05 flits/core/cycle -- in both scheduler modes, and compares
against the dense pre-optimisation loop recorded in ``BENCH_hotpath.json``.

Modes
-----
``record``
    Measure both modes (best of ``--reps``), verify the two produce
    bit-identical summaries, require the configured speedup over the
    recorded seed baseline, and (re)write ``BENCH_hotpath.json``.
``--check BENCH_hotpath.json``
    CI gate: re-measure the fast path and fail when it drops more than
    ``--tolerance`` (default 20%) below the recorded figure.

Wall-clock numbers are machine-dependent; the recorded file carries the
measurement spec and host provenance so a regression report can be read in
context. Results (latency/throughput) are bit-identical across modes --
that part is asserted here and property-tested in
``tests/runtime/test_fastforward_property.py``.
"""

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.noc import reset_packet_ids  # noqa: E402
from repro.runtime.executor import execute_inline  # noqa: E402
from repro.runtime.spec import RunSpec  # noqa: E402

#: The measurement point (mid-load on the paper's Fig. 7 x-axis).
SPEC = dict(
    topology="own256", pattern="UN", rate=0.05, cycles=2000, warmup=400, seed=3
)

#: Dense pre-optimisation loop at the same point, measured on the commit
#: preceding the active-set scheduler (seed 7683e45); kept for the speedup
#: denominator so the headline factor survives re-recording.
SEED_DENSE_CYCLES_PER_SEC = 1027.8


def measure(dense: bool, reps: int):
    """Best-of-``reps`` cycles/sec plus the (identical) result summary."""
    best = 0.0
    summary = None
    for _ in range(reps):
        reset_packet_ids()
        spec = RunSpec.create(dense=dense, **SPEC)
        _, _, result = execute_inline(spec)
        best = max(best, result.profile["sim_cycles_per_sec"])
        if summary is None:
            summary = result.summary
        elif summary != result.summary:
            raise SystemExit("non-deterministic summary within one mode")
    return best, summary


def record(path: Path, reps: int, min_speedup: float) -> int:
    fast, fast_summary = measure(dense=False, reps=reps)
    dense, dense_summary = measure(dense=True, reps=reps)
    if fast_summary != dense_summary:
        raise SystemExit("FAIL: dense and fast summaries differ (bit-identity broken)")
    speedup = fast / SEED_DENSE_CYCLES_PER_SEC
    payload = {
        "spec": SPEC,
        "reps": reps,
        "fast_cycles_per_sec": round(fast, 1),
        "dense_cycles_per_sec": round(dense, 1),
        "seed_dense_cycles_per_sec": SEED_DENSE_CYCLES_PER_SEC,
        "speedup_vs_seed_dense": round(speedup, 3),
        "bit_identical": True,
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
    }
    print(json.dumps(payload, indent=2))
    if speedup < min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x < required {min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"recorded -> {path}")
    return 0


def check(path: Path, reps: int, tolerance: float) -> int:
    recorded = json.loads(path.read_text())
    floor = recorded["fast_cycles_per_sec"] * (1.0 - tolerance)
    fast, _ = measure(dense=False, reps=reps)
    verdict = "ok" if fast >= floor else "FAIL"
    print(
        f"{verdict}: measured {fast:.1f} cycles/s vs recorded "
        f"{recorded['fast_cycles_per_sec']:.1f} (floor {floor:.1f}, "
        f"tolerance {tolerance:.0%})"
    )
    return 0 if fast >= floor else 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--check",
        type=Path,
        metavar="BENCH_JSON",
        help="compare a fresh fast-path measurement against this recording",
    )
    ap.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_hotpath.json",
        help="recording destination (record mode)",
    )
    ap.add_argument("--reps", type=int, default=5, help="best-of-N repetitions")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional slowdown in --check mode",
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required fast/seed-dense factor in record mode",
    )
    args = ap.parse_args(argv)
    if args.check:
        return check(args.check, args.reps, args.tolerance)
    return record(args.out, args.reps, args.min_speedup)


if __name__ == "__main__":
    raise SystemExit(main())
