#!/usr/bin/env python
"""Hot-path benchmark: SoA kernel sweep vs object paths on OWN-256.

Measures simulator speed (``profile["sim_cycles_per_sec"]`` from schema-v2
run records) at the paper's mid-load sweep point -- OWN-256, uniform
traffic, 0.05 flits/core/cycle -- across the three engine paths:

``soa``
    The default fast path: active-set scheduling + the struct-of-arrays
    switch-allocation sweep (``repro.noc.kernels``).
``object``
    Active-set scheduling with the per-router object SA scan
    (``REPRO_NOC_KERNELS=0`` escape hatch).
``dense``
    The reference engine: per-cycle stepping, object SA path.

Modes
-----
``record``
    Measure all three paths, verify they produce bit-identical summaries,
    then measure the *headline multiplier* against the pre-optimisation
    loop: the seed commit's dense engine is checked out into a throwaway
    git worktree and timed in subprocesses interleaved with the current
    SoA path (alternating, best of ``--reps`` each), so host-speed drift
    and process warm-up effects cancel out of the ratio. Requires the
    configured ``--min-speedup`` and (re)writes ``BENCH_hotpath.json``.
``--check BENCH_hotpath.json``
    CI gate: re-measure the SoA path and fail when it drops more than
    ``--tolerance`` (default 20%) below the recorded figure; also runs
    one dense rep and fails if the summaries are not bit-identical.

Wall-clock numbers are machine-dependent (and this class of container
host swings tens of percent between processes); the interleaved-ratio
method plus recorded provenance keeps the headline multiplier meaningful
across hosts. Bit-identity across paths is asserted here and
property-tested in ``tests/runtime/test_fastforward_property.py`` and
``tests/noc/test_kernels.py``.

Notes
-----
Flit construction micro-fix (``noc/packet.py``: flag tables replacing the
``FlitKind`` enum properties in ``Flit.__init__``, on top of the existing
``__slots__``): measured at this sweep point as 1980.9 -> 2097.7 c/s on
the fast path (+5.9%), dense 1758.7 c/s pre-fix, same host/phase,
best-of-5 in-process. Folded into the recorded SoA figure.
"""

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
#: Overridden by the seed-baseline probe so the same script body can run
#: against the historical package in a worktree.
_SRC = os.environ.get("REPRO_BENCH_SRC") or str(_REPO / "src")
sys.path.insert(0, _SRC)

#: The measurement point (mid-load on the paper's Fig. 7 x-axis).
SPEC = dict(
    topology="own256", pattern="UN", rate=0.05, cycles=2000, warmup=400, seed=3
)

#: Commit whose dense loop is the headline-speedup denominator (the last
#: commit before the active-set scheduler landed). Record mode times it
#: live in a worktree; this constant only names the baseline.
SEED_COMMIT = "7683e45"

#: That loop's speed as measured when the active-set scheduler was first
#: recorded. Informational fallback only -- the recorded multiplier comes
#: from the interleaved live measurement, never from this constant.
SEED_DENSE_CYCLES_PER_SEC = 1027.8

TARGETS = ("soa", "object", "dense")


def _measure_once(target: str):
    """One fresh run of ``target``; returns (cycles_per_sec, summary)."""
    from repro.noc import reset_packet_ids
    from repro.runtime.executor import execute_inline
    from repro.runtime.spec import RunSpec

    reset_packet_ids()
    kwargs = dict(SPEC)
    if target == "seed-dense":
        # The seed package predates the dense flag; its loop is dense.
        spec = RunSpec.create(**kwargs)
    elif target == "dense":
        spec = RunSpec.create(dense=True, **kwargs)
    else:
        spec = RunSpec.create(dense=False, **kwargs)
    old = os.environ.get("REPRO_NOC_KERNELS")
    if target == "object":
        os.environ["REPRO_NOC_KERNELS"] = "0"
    try:
        _, _, result = execute_inline(spec)
    finally:
        if target == "object":
            if old is None:
                os.environ.pop("REPRO_NOC_KERNELS", None)
            else:
                os.environ["REPRO_NOC_KERNELS"] = old
    return result.profile["sim_cycles_per_sec"], result.summary


def measure(target: str, reps: int):
    """Best-of-``reps`` cycles/sec plus the (identical) result summary."""
    best = 0.0
    summary = None
    for _ in range(reps):
        speed, s = _measure_once(target)
        best = max(best, speed)
        if summary is None:
            summary = s
        elif summary != s:
            raise SystemExit(f"non-deterministic summary within target {target!r}")
    return best, summary


# --------------------------------------------------------------------- #
# Interleaved seed-baseline measurement
# --------------------------------------------------------------------- #


def _probe_subprocess(target: str, src: str) -> float:
    """Run one measurement in a fresh process; returns cycles/sec."""
    env = dict(os.environ)
    env["REPRO_BENCH_SRC"] = src
    env.pop("PYTHONPATH", None)
    out = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--probe", target],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return float(json.loads(out.stdout.splitlines()[-1])["cycles_per_sec"])


def _seed_worktree():
    """Check the seed commit out into ``.bench-seed``; return its src dir."""
    wt = _REPO / ".bench-seed"
    if not (wt / "src").is_dir():
        subprocess.run(
            ["git", "worktree", "add", "--force", "--detach", str(wt), SEED_COMMIT],
            cwd=_REPO,
            check=True,
            capture_output=True,
        )
    return str(wt / "src")


def _drop_seed_worktree() -> None:
    subprocess.run(
        ["git", "worktree", "remove", "--force", str(_REPO / ".bench-seed")],
        cwd=_REPO,
        capture_output=True,
    )


def measure_multiplier(reps: int):
    """Headline SoA-over-seed-dense ratio from interleaved subprocesses.

    Alternates seed / SoA runs in fresh processes and takes best-of-N on
    each side, so slow host phases (CPU throttling, noisy neighbours)
    penalise both numerator and denominator alike. Returns
    ``(multiplier, best_soa, best_seed)``.
    """
    seed_src = _seed_worktree()
    cur_src = str(_REPO / "src")
    best_seed = 0.0
    best_soa = 0.0
    try:
        for i in range(reps):
            best_seed = max(best_seed, _probe_subprocess("seed-dense", seed_src))
            best_soa = max(best_soa, _probe_subprocess("soa", cur_src))
            print(
                f"  round {i + 1}/{reps}: seed-dense {best_seed:.1f} c/s, "
                f"soa {best_soa:.1f} c/s",
                file=sys.stderr,
            )
    finally:
        _drop_seed_worktree()
    return best_soa / best_seed, best_soa, best_seed


# --------------------------------------------------------------------- #
# Modes
# --------------------------------------------------------------------- #


def record(path: Path, reps: int, min_speedup: float) -> int:
    speeds = {}
    summaries = {}
    for target in TARGETS:
        speeds[target], summaries[target] = measure(target, reps)
    if not (summaries["soa"] == summaries["object"] == summaries["dense"]):
        raise SystemExit(
            "FAIL: soa/object/dense summaries differ (bit-identity broken)"
        )
    multiplier, best_soa, best_seed = measure_multiplier(reps)
    payload = {
        "spec": SPEC,
        "reps": reps,
        "soa_cycles_per_sec": round(speeds["soa"], 1),
        "object_cycles_per_sec": round(speeds["object"], 1),
        "dense_cycles_per_sec": round(speeds["dense"], 1),
        "seed_dense_cycles_per_sec": round(best_seed, 1),
        "speedup_vs_seed_dense": round(multiplier, 3),
        "bit_identical": True,
        "method": {
            "baseline": f"seed commit {SEED_COMMIT} dense loop, measured live "
            "in a git worktree",
            "ratio": "interleaved subprocesses, best-of-reps per side",
            "soa_interleaved_cycles_per_sec": round(best_soa, 1),
        },
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
    }
    print(json.dumps(payload, indent=2))
    if multiplier < min_speedup:
        print(
            f"FAIL: speedup {multiplier:.2f}x < required {min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"recorded -> {path}")
    return 0


def check(path: Path, reps: int, tolerance: float) -> int:
    recorded = json.loads(path.read_text())
    # Back-compat with pre-SoA recordings.
    key = "soa_cycles_per_sec" if "soa_cycles_per_sec" in recorded else "fast_cycles_per_sec"
    floor = recorded[key] * (1.0 - tolerance)
    soa, soa_summary = measure("soa", reps)
    _, dense_summary = measure("dense", 1)
    if soa_summary != dense_summary:
        print("FAIL: SoA and dense summaries differ (bit-identity broken)")
        return 1
    verdict = "ok" if soa >= floor else "FAIL"
    print(
        f"{verdict}: measured {soa:.1f} cycles/s vs recorded "
        f"{recorded[key]:.1f} (floor {floor:.1f}, "
        f"tolerance {tolerance:.0%}); SoA/dense bit-identical"
    )
    return 0 if soa >= floor else 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--check",
        type=Path,
        metavar="BENCH_JSON",
        help="compare a fresh SoA measurement against this recording",
    )
    ap.add_argument(
        "--probe",
        choices=TARGETS + ("seed-dense",),
        help="internal: one measurement in this process, JSON to stdout",
    )
    ap.add_argument(
        "--out",
        type=Path,
        default=_REPO / "BENCH_hotpath.json",
        help="recording destination (record mode)",
    )
    ap.add_argument("--reps", type=int, default=5, help="best-of-N repetitions")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional slowdown in --check mode",
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=3.15,
        help="required soa/seed-dense factor in record mode",
    )
    args = ap.parse_args(argv)
    if args.probe:
        speed, _ = _measure_once(args.probe)
        print(json.dumps({"cycles_per_sec": speed}))
        return 0
    if args.check:
        return check(args.check, args.reps, args.tolerance)
    return record(args.out, args.reps, args.min_speedup)


if __name__ == "__main__":
    raise SystemExit(main())
