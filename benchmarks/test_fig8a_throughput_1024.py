"""Bench: regenerate Fig. 8(a) (1024-core throughput, select traces).

Paper anchor: "The throughput variation is not significant across different
architectures" at 1024 cores.
"""

from repro.analysis import fig8a_throughput_1024


def test_fig8a(run_experiment):
    result = run_experiment(fig8a_throughput_1024, quick=True)
    assert [row[0] for row in result.rows] == ["UN", "BR", "PS"]
    for row in result.rows:
        vals = row[1:]
        assert min(vals) > 0
        # "Not significant" variation: within ~3x on the quick windows.
        assert max(vals) / min(vals) < 3.0
