"""Bench: regenerate Fig. 6 (256-core power breakdown, uniform traffic).

Paper anchors: OptXB consumes the least power; p-Clos slightly more than
OptXB; OWN configuration 4 is the cheapest OWN variant and sits between the
photonic networks and the electrical/wireless hybrids; wCMESH exceeds OWN;
CMESH consumes the most, with "the majority of the power dissipated in the
routers", and OWN's savings over CMESH are "in excess of 30%".
"""

from repro.analysis import fig6_power_256


def test_fig6(run_experiment):
    result = run_experiment(fig6_power_256, quick=True)
    totals = {row[0]: row[5] for row in result.rows}

    # Ordering: OptXB < p-Clos < OWN-cfg4 < wCMESH, CMESH.
    assert totals["OptXB"] < totals["p-Clos"] < totals["OWN-cfg4"]
    assert totals["OWN-cfg4"] < totals["wCMESH"]
    assert totals["OWN-cfg4"] < totals["CMESH"]

    # Headline: OWN saves in excess of 30 % vs CMESH.
    assert result.notes["cmesh_vs_own_pct"] > 30.0

    # OWN configurations track their wireless energy: cfg1/cfg3 > cfg2 > cfg4.
    assert totals["OWN-cfg1"] > totals["OWN-cfg2"] > totals["OWN-cfg4"]
    assert totals["OWN-cfg3"] >= totals["OWN-cfg1"] * 0.95

    # p-Clos only slightly above OptXB (paper: "slightly more than a
    # crossbar").
    assert result.notes["pclos_over_optxb"] < 1.6

    # CMESH router-dominance: router power is its largest component.
    cmesh_row = next(r for r in result.rows if r[0] == "CMESH")
    router, elec = cmesh_row[1], cmesh_row[2]
    assert router > elec
