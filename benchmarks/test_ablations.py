"""Benches for the design-choice ablations DESIGN.md calls out.

* token latency -- Sec. V-B's "token transfer consumes a few extra cycles",
* antenna placement -- Sec. III-A's corner-vs-centre load balance argument,
* SDM reuse -- Sec. V-B's frequency reuse on non-intersecting paths,
* radix vs hops -- Sec. V-C's closing tradeoff.
"""

from repro.analysis import (
    ablation_antenna_placement,
    ablation_radix_vs_hops,
    ablation_sdm_channels,
    ablation_token_latency,
)


def test_token_latency(run_experiment):
    result = run_experiment(ablation_token_latency, quick=True)
    by_token = {row[0]: row for row in result.rows}
    # Slower tokens can only hurt: latency monotone-ish, throughput falls
    # clearly between the extremes.
    assert by_token[20][1] > by_token[0][1]
    assert by_token[20][2] < by_token[0][2]


def test_antenna_placement(run_experiment):
    result = run_experiment(ablation_antenna_placement, quick=True)
    rows = {row[0]: row for row in result.rows}
    corners, center = rows["corners"], rows["center"]
    # Centre placement concentrates activity: its hottest 2x2-tile window
    # absorbs clearly more of the cluster's work (thermal imbalance), which
    # is exactly why Sec. III-A isolates the transceivers to the corners.
    assert center[3] > corners[3] * 1.15
    # Throughput doesn't improve in exchange.
    assert center[2] <= corners[2] * 1.05


def test_sdm_channels(run_experiment):
    result = run_experiment(ablation_sdm_channels)
    reused = {row[0]: row[2] for row in result.rows}
    # Configuration 4 (CMOS long+medium) needs 8 CMOS channels but the
    # ideal plan has 4 -> at least 4 SDM-reused carriers (Sec. V-B).
    assert reused[4] >= 4
    # Configuration 2 splits across three technologies; BiCMOS (2 rows,
    # ideal) forces some reuse but less than config 4.
    assert reused[2] < reused[4]
    # The floorplan admits enough non-intersecting path groups to realise
    # the reuse (at least 4 disjoint groups exist).
    assert result.notes["n_groups"] >= 3


def test_radix_vs_hops(run_experiment):
    result = run_experiment(ablation_radix_vs_hops, quick=True)
    rows = {row[0]: row for row in result.rows}
    own, wc = rows["OWN"], rows["wCMESH"]
    # OWN: higher radix, fewer hops; wCMESH: the reverse (Sec. V-C).
    assert own[1] > wc[1]
    assert own[2] < wc[2]
