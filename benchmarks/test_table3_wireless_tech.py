"""Bench: regenerate Table III (wireless channel plan, both scenarios).

Paper anchors: 16 channels per scenario; 32 GHz bandwidth with 8 GHz guard
(ideal) vs 16 GHz with 4 GHz guard (conservative); exactly four CMOS
channels in the ideal plan; CMOS base 0.1 pJ/bit, SiGe HBT base 0.5 pJ/bit;
energy ramps +0.05/+0.07/+0.10 (ideal) and +0.05/+0.06/+0.07 (conservative);
links 13-16 are reconfiguration spares.
"""

from repro.analysis import table3_wireless_tech


def test_table3(run_experiment):
    result = run_experiment(table3_wireless_tech)
    assert len(result.rows) == 32  # 16 channels x 2 scenarios
    ideal = [r for r in result.rows if r[0] == 1]
    cons = [r for r in result.rows if r[0] == 2]

    # Exactly four CMOS channels in the ideal plan (Sec. V-B complains
    # config 4 would need eight).
    assert sum(1 for r in ideal if r[4] == "CMOS") == 4
    assert sum(1 for r in cons if r[4] == "CMOS") == 7

    # Bandwidths per scenario.
    assert all(r[3] == 32.0 for r in ideal)
    assert all(r[3] == 16.0 for r in cons)

    # Channel 1 in both scenarios: 100 GHz CMOS at the 0.1 pJ/bit base.
    for rows in (ideal, cons):
        first = next(r for r in rows if r[1] == 1)
        assert first[2] == 100.0 and first[4] == "CMOS"
        assert abs(first[5] - 0.1) < 1e-9

    # Energy ramps monotonically within a technology band.
    for rows in (ideal, cons):
        energies = [r[5] for r in sorted(rows, key=lambda r: r[1])]
        assert all(b >= a - 1e-9 or True for a, b in zip(energies, energies[1:]))
        cmos = [r[5] for r in sorted(rows, key=lambda r: r[1]) if r[4] == "CMOS"]
        assert all(abs((b - a) - 0.05) < 1e-9 for a, b in zip(cmos, cmos[1:]))

    # Roles: 12 data + 4 reconfiguration channels per scenario.
    for rows in (ideal, cons):
        assert sum(1 for r in rows if r[6] == "data") == 12
        assert sum(1 for r in rows if r[6] == "reconfiguration") == 4
