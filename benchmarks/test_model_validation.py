"""Bench: closed-form model vs simulation for all five architectures.

Prints the predicted/measured zero-load latency per network and asserts the
15 % agreement band -- the cross-validation that ties the analytical layer
to the cycle simulator.
"""

from repro.analysis.model import PREDICTORS
from repro.analysis.sweep import run_point
from repro.core import build_own256
from repro.topologies import build_cmesh, build_optxb, build_pclos, build_wcmesh

BUILDERS = {
    "cmesh256": lambda: build_cmesh(256),
    "optxb256": lambda: build_optxb(256),
    "pclos256": lambda: build_pclos(256),
    "wcmesh256": lambda: build_wcmesh(256),
    "own256": build_own256,
}


def _validate():
    rows = []
    for name in sorted(PREDICTORS):
        pred = PREDICTORS[name]()
        point = run_point(BUILDERS[name], "UN", 0.01, cycles=700, warmup=250)
        rows.append((name, pred.zero_load_latency, point.latency,
                     pred.saturation_rate, pred.binding_resource))
    return rows


def test_model_validation(benchmark):
    rows = benchmark.pedantic(_validate, rounds=1, iterations=1)
    print()
    print(f"{'network':10s} {'T0 pred':>8s} {'T0 meas':>8s} {'sat pred':>9s}  binding")
    for name, t0p, t0m, sat, binding in rows:
        print(f"{name:10s} {t0p:8.1f} {t0m:8.1f} {sat:9.4f}  {binding}")
        assert abs(t0p / t0m - 1.0) < 0.15, (name, t0p, t0m)
    # The model reproduces the latency ranking: OWN fastest, OptXB/CMESH
    # slowest (token + serialization vs hop count).
    by_pred = sorted(rows, key=lambda r: r[1])
    assert by_pred[0][0] == "own256"
