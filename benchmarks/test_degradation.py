"""Bench for the runtime-fault degradation study (:mod:`repro.faults`).

Quantifies the graceful-degradation claim the fault-tolerance machinery
exists to support: transient interference costs latency and retransmission
energy but no throughput, and a permanent transceiver death is absorbed by
the health monitor's failover instead of deadlocking the run.
"""

from repro.analysis import study_degradation


def test_degradation(run_experiment):
    result = run_experiment(study_degradation, quick=True)
    rows = {row[0]: row for row in result.rows}

    # Zero-fault row: the protocol never fires (transparency guarantee).
    clean = rows["bursts@0.0"]
    assert clean[4] == 0 and clean[5] == 0 and clean[6] == 0 and clean[7] == 0

    # Fault intensity buys latency and retransmission energy, not loss:
    # accepted throughput stays at the offered load on every burst row.
    burst_rows = [rows[k] for k in rows if k.startswith("bursts@")]
    assert all(row[3] >= 0.019 for row in burst_rows)
    worst = rows["bursts@0.005"]
    assert worst[4] > clean[4]  # retransmissions happened
    assert worst[2] > clean[2]  # p99 latency degraded
    assert worst[8] > clean[8]  # ...and was paid for in retx energy

    # Permanent death: exactly one failover, recovered packets, no loss.
    death = rows["death+failover"]
    assert death[7] == 1
    assert death[6] > 0
    assert death[3] >= 0.019
    assert result.notes["failovers"], "health monitor never fired"
