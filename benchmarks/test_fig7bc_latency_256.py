"""Bench: regenerate Fig. 7(b, c) (latency vs load, UN and BR, 256 cores).

Paper anchors: OWN saturates at the highest network load; p-Clos ~10 %
earlier; CMESH, wCMESH and OptXB ~20 % earlier; OWN's zero-load latency is
the lowest (3-hop diameter) -- the abstract quotes a ~50 % latency
improvement over CMESH.
"""

import pytest

from repro.analysis import fig7bc_latency_256


@pytest.mark.parametrize("pattern", ["UN", "BR"])
def test_fig7bc(run_experiment, pattern):
    result = run_experiment(fig7bc_latency_256, pattern=pattern, quick=True)
    notes = result.notes

    own_zero = notes["OWN_zero_load"]
    # OWN has the lowest zero-load latency of all five networks.
    for name in ("CMESH", "wCMESH", "OptXB", "p-Clos"):
        assert own_zero <= notes[f"{name}_zero_load"] + 1.0

    # ~50 % zero-load improvement over CMESH (abstract); allow a wide band.
    improvement = 1.0 - own_zero / notes["CMESH_zero_load"]
    assert improvement > 0.25

    # OWN's saturation point is not below any competitor's (quick sweep
    # granularity: allow ties).
    own_sat = notes["OWN_saturation"]
    assert own_sat is not None
    for name in ("CMESH", "wCMESH", "OptXB", "p-Clos"):
        other = notes[f"{name}_saturation"]
        assert other is None or own_sat >= other
