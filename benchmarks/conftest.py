"""Shared helpers for the benchmark harness.

Each bench regenerates one table/figure via its experiment runner (quick
windows), times it with pytest-benchmark, prints the rendered rows (visible
with ``pytest -s`` or in the benchmark report), and asserts the paper-shape
invariants that the reproduction is expected to hold.

The harness routes every engine-aware runner through a shared
:class:`repro.runtime.Executor` configured from the environment, so CI can
exercise parallel workers, the result cache and JSONL run records without
touching the benches themselves:

``REPRO_JOBS``
    Worker processes for simulation points (default 1, serial).
``REPRO_CACHE_DIR``
    Content-addressed result cache directory (default: no cache).
``REPRO_RUNLOG``
    Append one JSONL run record per simulation point to this path.
"""

from __future__ import annotations

import inspect
import os

import pytest

from repro.runtime import Executor


@pytest.fixture(scope="session")
def engine_executor():
    """One engine executor per benchmark session, configured from env vars.

    Returns ``None`` when no engine knob is set, so default runs stay on
    each runner's internal serial path.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cache = os.environ.get("REPRO_CACHE_DIR") or None
    runlog = os.environ.get("REPRO_RUNLOG") or None
    if jobs == 1 and cache is None and runlog is None:
        return None
    return Executor(jobs=jobs, cache=cache, runlog=runlog)


@pytest.fixture
def run_experiment(benchmark, engine_executor):
    """Run an experiment runner once under the benchmark timer.

    Simulation experiments are seconds-long, so a single round is the right
    granularity; pytest-benchmark records wall time per experiment. Runners
    that accept an ``executor`` argument get the session's engine executor.
    """

    def _run(fn, *args, **kwargs):
        if (
            engine_executor is not None
            and "executor" not in kwargs
            and "executor" in inspect.signature(fn).parameters
        ):
            kwargs = dict(kwargs, executor=engine_executor)
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        print()
        print(result.rendered)
        if result.notes:
            for k, v in result.notes.items():
                print(f"note {k}: {v}")
        return result

    return _run
