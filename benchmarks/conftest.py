"""Shared helpers for the benchmark harness.

Each bench regenerates one table/figure via its experiment runner (quick
windows), times it with pytest-benchmark, prints the rendered rows (visible
with ``pytest -s`` or in the benchmark report), and asserts the paper-shape
invariants that the reproduction is expected to hold.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment runner once under the benchmark timer.

    Simulation experiments are seconds-long, so a single round is the right
    granularity; pytest-benchmark records wall time per experiment.
    """

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        print()
        print(result.rendered)
        if result.notes:
            for k, v in result.notes.items():
                print(f"note {k}: {v}")
        return result

    return _run
