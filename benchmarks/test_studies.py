"""Benches for the substrate-backed studies (area, thermal, components,
reconfiguration, fault tolerance, burstiness).

These go beyond the paper's figures but each quantifies one of its *claims*:
scalability arithmetic (Sec. I), thermal balance (Sec. III-A), the
reconfiguration bands (Sec. IV) and graceful behaviour the architecture
implies.
"""

import pytest

from repro.analysis import (
    study_adaptive,
    study_area_scaling,
    study_bursty_traffic,
    study_component_scaling,
    study_fault_tolerance,
    study_reconfiguration,
    study_thermal,
    study_workloads,
)


def test_area_scaling(run_experiment):
    result = run_experiment(study_area_scaling)
    by_key = {(row[0], row[1]): row[6] for row in result.rows}
    # OptXB area explodes 256 -> 1024; OWN grows roughly with core count.
    assert by_key[(1024, "OptXB")] > 10 * by_key[(256, "OptXB")]
    assert by_key[(1024, "OWN")] < 6 * by_key[(256, "OWN")]
    # CMESH is the area minimalist at both scales.
    for scale in (256, 1024):
        assert by_key[(scale, "CMESH")] == min(
            v for (s, _), v in by_key.items() if s == scale
        )


def test_thermal(run_experiment):
    result = run_experiment(study_thermal, quick=True)
    rows = {row[0]: row for row in result.rows}
    # Ring tuning burden: OptXB's 262k rings chase the gradient much harder
    # than OWN's 4k (Sec. I's thermal-variation argument).
    assert rows["OptXB"][3] > 3 * rows["OWN corners"][3]
    assert rows["CMESH"][3] == 0.0
    # All peaks above ambient, below boiling silicon absurdities.
    for row in result.rows:
        assert 45.0 < row[1] < 120.0


def test_component_scaling(run_experiment):
    result = run_experiment(study_component_scaling)
    rows = {row[0]: row for row in result.rows}
    # The exact Sec. I numbers.
    assert rows["SWMR 64x64"][1] == 448
    assert rows["SWMR 64x64"][2] == 28224
    assert rows["SWMR 1024x1024"][2] > 7.3e6
    # OWN's decomposition: 64x fewer rings than the monolithic crossbar.
    assert rows["OptXB 64r (MWSR)"][4] > 60 * rows["OWN-256 photonics"][4]
    # The loss wall: the 64-router snake's worst path is tens of dB worse
    # than a cluster snake -- the physical reason decomposition is needed.
    assert result.notes["optxb_snake_path_loss_db"] > (
        result.notes["own_cluster_path_loss_db"] + 30
    )


def test_reconfiguration(run_experiment):
    result = run_experiment(study_reconfiguration, quick=True)
    rows = {row[0]: row for row in result.rows}
    static, dyn = rows["static"], rows["reconfigurable"]
    # Spare channels carry real traffic and lift accepted throughput.
    assert dyn[3] > 0
    assert dyn[2] > static[2]


def test_fault_tolerance(run_experiment):
    result = run_experiment(study_fault_tolerance, quick=True)
    lats = [row[1] for row in result.rows]
    hops = [row[3] for row in result.rows]
    accepted = [row[2] for row in result.rows]
    # Graceful degradation: latency and wireless hops rise monotonically
    # with failures; accepted load never collapses.
    assert lats == sorted(lats)
    assert hops == sorted(hops)
    assert min(accepted) > 0.7 * max(accepted)


def test_bursty(run_experiment):
    result = run_experiment(study_bursty_traffic, quick=True)
    rows = {row[0]: row for row in result.rows}
    # Equal mean load: accepted throughput stays put, tail latency grows
    # with the burst factor.
    assert rows[4.0][3] == pytest.approx(rows[1.0][3], rel=0.2)
    assert rows[4.0][2] > rows[1.0][2]


def test_workloads(run_experiment):
    result = run_experiment(study_workloads, quick=True)
    cells = {(row[0], row[2], row[3]): row for row in result.rows}
    # Full own256 slice: 5 workloads x 2 fault campaigns x 2 scenarios.
    assert len(result.rows) == 20
    # Every cell carries an attribution verdict.
    assert all(row[-1] and row[-1] != "no-telemetry" for row in result.rows)
    # The wireless technology scenario scales power, never timing: within
    # any (workload, faults) pair the latency columns are identical and
    # conservative power >= ideal power.
    for (wl, faults, wireless), row in cells.items():
        if wireless != "ideal":
            continue
        twin = cells[(wl, faults, "conservative")]
        assert twin[4] == row[4] and twin[5] == row[5]
        assert twin[8] >= row[8]
    # The blends are the pathological mixes: worst p99 comes from one.
    assert result.notes["worst_p99_cell"].split("/")[0] in ("mixed", "adversarial")
    # Collectives saturate the broadcast channels; the sparse service DAG
    # waits on tokens instead.
    assert cells[("collective", "clean", "ideal")][-1] == "wireless-occupancy"
    assert cells[("microservice", "clean", "ideal")][-1] == "token-wait"


def test_adaptive_control(run_experiment):
    result = run_experiment(study_adaptive, quick=True)
    arms = {(row[0], row[1]): row for row in result.rows}
    # Closing the loop pays: adaptive beats static on p99 latency in
    # every hotspot/fault cell (throughput is rate-limited and equal).
    for cell, gains in result.notes["adaptive_gains"].items():
        assert gains["p99_gain"] > 0, cell
    # The transient burst is recovered, not permanently failed over.
    assert result.notes["recovered_transient"] >= 1
    assert arms[("hot+burst", "adaptive")][6] >= 1  # recovered column
    assert arms[("hot+burst", "static")][6] == 0
    # Every adaptive arm logged decisions under a pinned CRC.
    for (cell, arm), row in arms.items():
        if arm == "adaptive":
            assert row[7] > 0 and isinstance(row[8], int)
        else:
            assert row[8] == "-"
