"""Bench: regenerate Table II (OWN-1024 channel allocation).

Paper anchors: 16 channels total ("we need 16 wireless channels and not 12",
Sec. V-C): 12 inter-group SWMR multicast + 4 intra-group (D antennas);
group 0 transmits to group 1 on the A antennas (Table II's example row).
"""

from repro.analysis import table2_channels_1024


def test_table2(run_experiment):
    result = run_experiment(table2_channels_1024)
    assert len(result.rows) == 16
    modes = [row[3] for row in result.rows]
    assert modes.count("SWMR multicast") == 12
    assert modes.count("intra-group") == 4
    # Group 0 -> group 1 uses the A antennas (the paper's worked example).
    row_01 = next(r for r in result.rows if r[1] == "g0->g1")
    assert row_01[2] == "A"
    # Intra-group channels sit on the reconfiguration bands 13-16.
    intra = [r for r in result.rows if r[3] == "intra-group"]
    assert sorted(r[0] for r in intra) == [13, 14, 15, 16]
    assert all(r[2] == "D" for r in intra)
