"""Bench: regenerate Fig. 5 (average wireless link power per configuration).

Paper anchors: configurations 1 and 3 (SiGe for long range) consume
significantly more under both scenarios; under scenario 1 configuration 2
cuts configuration 1's power by ~60 % and configuration 4 by ~80 %; under
scenario 2 by ~47 % and ~57 % respectively. Our reconstruction lands within
a few points on scenario 1 and overshoots cfg4's scenario-2 reduction
(documented in EXPERIMENTS.md).
"""

from repro.analysis import fig5_wireless_power


def test_fig5(run_experiment):
    result = run_experiment(fig5_wireless_power, quick=True)
    power = {(row[0], row[1]): row[2] for row in result.rows}

    for scenario in (1, 2):
        # SiGe-long configs dominate; config 4 is the cheapest.
        assert power[(scenario, 1)] > power[(scenario, 2)] > power[(scenario, 4)]
        assert power[(scenario, 3)] >= power[(scenario, 1)] * 0.95

    # Scenario-1 reductions near the paper's 60 % / 80 %.
    assert 45.0 <= result.notes["s1_reduction_cfg2_pct"] <= 70.0
    assert 70.0 <= result.notes["s1_reduction_cfg4_pct"] <= 88.0
    # Scenario-2 reductions: cfg2 near the paper's 47 %.
    assert 35.0 <= result.notes["s2_reduction_cfg2_pct"] <= 58.0
