"""Bench: regenerate Fig. 7(a) (saturation throughput per pattern, 256 cores).

Paper anchors: with bisection bandwidth equalised, throughputs are close
across architectures; OWN edges CMESH / wCMESH by a few percent on the
uniform and permutation traces.
"""

from repro.analysis import fig7a_throughput_256


def test_fig7a(run_experiment):
    result = run_experiment(fig7a_throughput_256, quick=True)
    headers = result.headers
    own_col = headers.index("OWN")
    cmesh_col = headers.index("CMESH")

    patterns = [row[0] for row in result.rows]
    assert patterns == ["UN", "BR", "MT", "PS", "NBR"]

    for row in result.rows:
        # Everything positive and same order of magnitude (the "variation is
        # not significant" claim): max/min within 3x on each pattern.
        vals = [v for v in row[1:]]
        assert min(vals) > 0
        assert max(vals) / min(vals) < 3.0

    # OWN at least matches CMESH on uniform traffic.
    un = result.rows[0]
    assert un[own_col] >= 0.95 * un[cmesh_col]
