#!/usr/bin/env python
"""Extending the substrate: build a custom hybrid topology from scratch.

The simulator is architecture-agnostic: topologies are just routers, links,
shared media and a routing function. This example builds a *ring of
photonic clusters bridged by a single shared wireless broadcast channel* --
a design the paper never evaluates -- and measures it with the same
pipeline, demonstrating how a downstream user would prototype their own
hybrid NoC.

Run:  python examples/custom_topology.py
"""

from repro import Simulator, SyntheticTraffic
from repro.noc import Network, RoutingFunction, SharedMedium
from repro.topologies.base import BuiltTopology, attach_concentrated_cores


class HybridRingRouting(RoutingFunction):
    """Intra-cluster: photonic bus hop. Inter-cluster: shared wireless."""

    def __init__(self, net, n_clusters, routers_per_cluster, bus_port, wireless_port):
        self.net = net
        self.n_clusters = n_clusters
        self.rpc = routers_per_cluster
        self.bus_port = bus_port  # (writer, reader) -> out_port
        self.wireless_port = wireless_port  # gateway rid -> out_port

    def cluster_of(self, rid):
        return rid // self.rpc

    def compute(self, router, packet):
        dst_rid = self.net.core_router[packet.dst_core]
        rid = router.rid
        if dst_rid == rid:
            return self.net.core_eject_port[packet.dst_core]
        if self.cluster_of(dst_rid) == self.cluster_of(rid):
            return self.bus_port[(rid, dst_rid)]
        gateway = self.cluster_of(rid) * self.rpc  # router 0 of the cluster
        if rid == gateway:
            return self.wireless_port[rid]
        return self.bus_port[(rid, gateway)]

    def allowed_vcs(self, router, out_port, packet):
        # Ascending photonic {0,1} / wireless any / descending {2,3}:
        # same discipline as OWN (see repro.core.routing).
        link = router.out_links[out_port]
        if link.kind != "photonic":
            return range(router.num_vcs)
        dst_rid = self.net.core_router[packet.dst_core]
        if self.cluster_of(dst_rid) == self.cluster_of(router.rid):
            return (2, 3)
        return (0, 1)


def build_hybrid_ring(n_clusters: int = 4, routers_per_cluster: int = 4) -> BuiltTopology:
    """A small photonic-cluster + broadcast-wireless hybrid."""
    n_routers = n_clusters * routers_per_cluster
    n_cores = n_routers * 4
    net = Network("hybrid-ring", n_cores, num_vcs=4, vc_depth=8)
    for rid in range(n_routers):
        cluster = rid // routers_per_cluster
        net.add_router(position_mm=(10.0 * cluster, 2.0 * (rid % routers_per_cluster)),
                       attrs={"cluster": cluster})
    for rid in range(n_routers):
        attach_concentrated_cores(net, rid, rid * 4)

    # Photonic MWSR bus per router (home waveguide), within each cluster.
    bus_port = {}
    for cluster in range(n_clusters):
        members = list(range(cluster * routers_per_cluster, (cluster + 1) * routers_per_cluster))
        for reader in members:
            medium = SharedMedium(f"c{cluster}.wg{reader}", kind="photonic", arb_latency=1)
            ports = net.connect_bus([w for w in members if w != reader], reader,
                                    kind="photonic", medium=medium, length_mm=8.0)
            bus_port.update({(w, reader): p for w, p in ports.items()})

    # One SWMR wireless broadcast channel bridges all cluster gateways.
    gateways = [c * routers_per_cluster for c in range(n_clusters)]
    medium = SharedMedium("air", kind="wireless", arb_latency=2,
                          multicast_degree=n_clusters)

    def resolver(packet):
        return net.core_router[packet.dst_core] // routers_per_cluster

    ports = net.connect_multicast(
        gateways, gateways, resolver=resolver,
        reader_keys=list(range(n_clusters)), kind="wireless",
        medium=medium, length_mm=30.0,
    )
    routing = HybridRingRouting(net, n_clusters, routers_per_cluster, bus_port, ports)
    net.set_routing(routing)
    net.finalize()
    return BuiltTopology(network=net, kind="custom", params={"clusters": n_clusters})


def main() -> None:
    built = build_hybrid_ring()
    net = built.network
    print(f"{net.name}: {net.n_cores} cores, {net.n_routers} routers, "
          f"{len(net.mediums)} shared media")
    sim = Simulator(net, traffic=SyntheticTraffic(net.n_cores, "UN", 0.02, 4, seed=9),
                    warmup_cycles=300)
    sim.run(2000)
    s = sim.summary()
    print(f"latency {s['latency_mean']:.1f} cycles, accepted {s['throughput']:.4f}, "
          f"avg hops {s['avg_hops']:.2f}")
    print("\nThe single shared wireless channel is the bottleneck by design --")
    print("sweep the injection rate to watch it saturate, then compare with")
    print("OWN's 12 dedicated channels (examples/quickstart.py).")


if __name__ == "__main__":
    main()
