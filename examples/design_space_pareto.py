#!/usr/bin/env python
"""Automated design-space exploration with Pareto extraction.

The paper evaluates Table IV's four wireless-technology configurations
under two bandwidth scenarios by inspection; this example sweeps the same
grid (plus the buffering knob) automatically, scores every point on
latency / throughput / power from real simulations, and prints the Pareto
frontier — rediscovering the paper's "configuration 4 showed the best
power results" conclusion as an optimisation output rather than a reading.

Run:  python examples/design_space_pareto.py
"""

from repro.analysis import DesignPoint, explore, format_table
from repro.analysis.design_space import default_space


def main() -> None:
    # The paper's 4x2 grid plus a shallow-buffer variant of the winner.
    points = default_space() + [
        DesignPoint(config_id=4, scenario=1, vc_depth=4),
    ]
    result = explore(points, rate=0.03, cycles=1200, warmup=300)

    print(format_table(
        ["design", "latency", "accepted", "power_W", "nJ/packet", "pareto"],
        result.rows(),
        title="OWN-256 design space, uniform random @ 0.03 flits/core/cycle",
    ))

    print("Pareto frontier (non-dominated designs):")
    for e in result.frontier:
        print(f"  {e.point.label():24s} latency {e.latency:5.1f}  "
              f"power {e.power_w:.2f} W")

    best_power = result.best_by("power")
    best_latency = result.best_by("latency")
    print(f"\npower-optimal : {best_power.point.label()} "
          f"({best_power.power_w:.2f} W)")
    print(f"latency-optimal: {best_latency.point.label()} "
          f"({best_latency.latency:.1f} cycles)")
    print("\nPaper cross-check: Sec. V-B settles on configuration 4; every")
    print("frontier point above is a configuration-4 design, with the ideal")
    print("(32 GHz) scenario buying latency and the conservative (16 GHz)")
    print("scenario buying power.")


if __name__ == "__main__":
    main()
