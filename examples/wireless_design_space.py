#!/usr/bin/env python
"""Wireless design-space exploration: which technology serves which link?

Walks the Sec. IV methodology end to end:

1. link budget -- how much radiated power each OWN distance class needs,
2. Table III   -- the 16-channel frequency/technology/energy plan under the
   ideal (32 GHz) and conservative (16 GHz) scenarios,
3. Table IV    -- the four range->technology configurations, scored by the
   average energy/bit their channels would burn,
4. a simulated verdict: average wireless link power on OWN-256 under real
   uniform traffic for every (configuration, scenario) pair (Fig. 5).

Run:  python examples/wireless_design_space.py
"""

from repro.analysis import (
    fig3_link_budget,
    fig5_wireless_power,
    table3_wireless_tech,
    table4_configs,
)
from repro.core import NOMINAL_DISTANCE_MM
from repro.rf import LinkBudget, OOKTransceiver


def main() -> None:
    # -- 1. What does physics demand per distance class? ---------------- #
    budget = LinkBudget()
    xcvr = OOKTransceiver()
    print("link-budget view of the three OWN distance classes:")
    for cls, d in NOMINAL_DISTANCE_MM.items():
        p = budget.required_tx_power_dbm(d)
        e = xcvr.energy_per_bit_pj(d)
        print(f"  {cls}: {d:5.1f} mm -> TX {p:6.2f} dBm, "
              f"65nm-CMOS transceiver energy {e:.2f} pJ/bit")
    print()

    # -- 2/3. The projected channel plan and configurations ------------- #
    print(table3_wireless_tech().rendered)
    print(table4_configs().rendered)

    # -- 4. Simulated wireless power under uniform traffic (Fig. 5) ----- #
    result = fig5_wireless_power()
    print(result.rendered)
    print("reductions vs configuration 1:")
    for key, val in result.notes.items():
        print(f"  {key}: {val:.0f}%")
    print("\npaper anchors: S1 cfg2 -60%, cfg4 -80%; S2 cfg2 -47%, cfg4 -57%")

    # And the raw Fig. 3 curve for reference.
    fig3 = fig3_link_budget()
    print()
    print(fig3.rendered)


if __name__ == "__main__":
    main()
