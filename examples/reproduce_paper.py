#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Runs all experiment runners from ``repro.analysis.experiments`` and prints
their tables plus the paper-anchor notes. With ``--quick`` the simulation
experiments use short measurement windows (a couple of minutes total);
without it expect ~10-20 minutes for kilo-core sweeps.

Run:  python examples/reproduce_paper.py [--quick] [--only fig6,fig7a]
"""

import argparse
import inspect
import time

from repro.analysis import EXPERIMENTS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short measurement windows for a fast pass")
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated experiment ids (default: all)")
    args = parser.parse_args()

    wanted = [w for w in args.only.split(",") if w] or list(EXPERIMENTS)
    unknown = set(wanted) - set(EXPERIMENTS)
    if unknown:
        raise SystemExit(f"unknown experiments: {sorted(unknown)}; "
                         f"known: {sorted(EXPERIMENTS)}")

    for key in wanted:
        runner = EXPERIMENTS[key]
        kwargs = {}
        if args.quick and "quick" in inspect.signature(runner).parameters:
            kwargs["quick"] = True
        t0 = time.time()
        result = runner(**kwargs)
        elapsed = time.time() - t0
        print("=" * 72)
        print(f"[{key}] ({elapsed:.1f}s)")
        print(result.rendered)
        if result.notes:
            print("notes:")
            for k, v in result.notes.items():
                print(f"  {k}: {v}")
        print()


if __name__ == "__main__":
    main()
