#!/usr/bin/env python
"""Physical-design view: silicon area and steady-state thermals.

The paper's scalability case against monolithic photonic crossbars is
physical, not just architectural: component count drives silicon area,
insertion loss drives laser power, and thermal gradients drive ring-tuning
power. This example renders all three for the compared architectures,
ending with an ASCII heat map of OWN-256 under load.

Run:  python examples/thermal_and_area.py
"""

from repro import Simulator, SyntheticTraffic, build_own256
from repro.analysis import (
    study_area_scaling,
    study_component_scaling,
    study_thermal,
)
from repro.thermal import thermal_report


def main() -> None:
    print(study_component_scaling().rendered)
    comp = study_component_scaling().notes
    print(f"worst-path insertion loss: OWN cluster snake "
          f"{comp['own_cluster_path_loss_db']:.1f} dB vs monolithic 64-router "
          f"snake {comp['optxb_snake_path_loss_db']:.1f} dB")
    print("-> the loss wall is why the paper decomposes the crossbar.\n")

    print(study_area_scaling().rendered)
    print(study_thermal(quick=True).rendered)

    # Heat map of OWN-256 under uniform traffic.
    built = build_own256()
    sim = Simulator(built.network,
                    traffic=SyntheticTraffic(256, "UN", 0.03, 4, seed=2))
    sim.run(1000)
    rep = thermal_report(built, sim)
    print(f"OWN-256 thermal map (peak {rep.peak_c:.1f} C, "
          f"gradient {rep.gradient_c:.1f} C, ring tuning "
          f"{rep.tuning_power_w * 1e3:.1f} mW):\n")
    print(rep.heatmap)
    print("\nHot cells are the wireless gateway corners of each cluster --")
    print("the load the corner placement deliberately spreads (Sec. III-A).")


if __name__ == "__main__":
    main()
