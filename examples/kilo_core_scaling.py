#!/usr/bin/env python
"""Kilo-core scaling study: OWN-256 vs OWN-1024 vs the photonic crossbar.

The paper's core claim is architectural: a monolithic photonic crossbar is
power-efficient but does not *scale* (Sec. I counts 7.3 million
photodetectors at 1024 nodes), while OWN reuses the same wireless
transceivers from 256 to 1024 cores. This example quantifies both sides:

* photonic component inventories at 256 vs 1024 nodes,
* simulated latency / throughput / power for OWN at both scales,
* where the extra OWN-1024 latency comes from (SWMR token + multicast).

Run:  python examples/kilo_core_scaling.py
"""

from repro import Simulator, SyntheticTraffic, build_own256, build_own1024, measure_power
from repro.analysis import format_table
from repro.photonics import mwsr_crossbar, own_inventory, swmr_crossbar
from repro.topologies import build_optxb


def component_story() -> None:
    rows = []
    for n in (64, 256):  # router counts of the 256- and 1024-core crossbars
        c = mwsr_crossbar(n)
        rows.append([f"OptXB ({n} routers, MWSR)", c.modulators, c.photodetectors, c.rings])
    for n in (64, 1024):
        c = swmr_crossbar(n)
        rows.append([f"SWMR crossbar ({n}x{n})", c.modulators, c.photodetectors, c.rings])
    for clusters, label in ((4, "OWN-256"), (16, "OWN-1024")):
        c = own_inventory(clusters)
        rows.append([f"{label} (per-cluster MWSR)", c.modulators, c.photodetectors, c.rings])
    print(format_table(
        ["interconnect", "modulators", "photodetectors", "rings"],
        rows,
        title="photonic component inventories (the Sec. I scalability argument)",
    ))


def simulated_story() -> None:
    rows = []
    for label, builder, n, rate in (
        ("OWN-256", build_own256, 256, 0.02),
        ("OWN-1024", build_own1024, 1024, 0.008),
        ("OptXB-256", lambda: build_optxb(256), 256, 0.02),
        ("OptXB-1024", lambda: build_optxb(1024), 1024, 0.008),
    ):
        built = builder()
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(n, "UN", rate, 4, seed=7),
            warmup_cycles=300,
        )
        sim.run(1200)
        pb = measure_power(built, sim)
        rows.append([
            label,
            rate,
            round(sim.mean_latency(), 1),
            round(sim.throughput(), 4),
            round(sim.stats.avg_hops(), 2),
            round(pb.total_w, 2),
            round(pb.energy_per_packet_nj, 2),
        ])
    print(format_table(
        ["network", "offered", "latency", "accepted", "avg_hops", "power_W", "nJ/pkt"],
        rows,
        title="simulated scaling (uniform random)",
    ))
    print("note: OWN keeps a 3-hop diameter at both scales; OptXB keeps 1 hop")
    print("but its router radix grows 67 -> 259 and its ring count 20x.")


def main() -> None:
    component_story()
    simulated_story()


if __name__ == "__main__":
    main()
