#!/usr/bin/env python
"""Quickstart: build OWN-256, drive uniform traffic, report performance+power.

This is the 60-second tour of the library: one architecture, one workload,
one power breakdown -- the same pipeline every paper experiment uses.

Run:  python examples/quickstart.py
"""

from repro import Simulator, SyntheticTraffic, build_own256, measure_power


def main() -> None:
    # 1. Build the paper's OWN-256: 4 clusters x 16 tiles x 4 cores,
    #    photonic MWSR crossbars inside clusters, 12 wireless channels
    #    between them (Table I).
    built = build_own256()
    net = built.network
    print(f"built {net.name}: {net.n_cores} cores, {net.n_routers} routers, "
          f"{len(net.links)} links, {len(net.mediums)} token-arbitrated media")

    # 2. Drive uniform-random traffic at 0.03 flits/core/cycle (open loop,
    #    4-flit packets) for 2000 cycles with a 500-cycle stats warmup.
    traffic = SyntheticTraffic(net.n_cores, "UN", injection_rate=0.03,
                               packet_size_flits=4, seed=42)
    sim = Simulator(net, traffic=traffic, warmup_cycles=500)
    sim.run(2000)

    summary = sim.summary()
    print(f"\nperformance @ 0.03 flits/core/cycle:")
    print(f"  mean latency      : {summary['latency_mean']:.1f} cycles")
    print(f"  p99 latency       : {summary['latency_p99']:.1f} cycles")
    print(f"  accepted load     : {summary['throughput']:.4f} flits/core/cycle")
    print(f"  avg hops          : {summary['avg_hops']:.2f}")
    print(f"  avg wireless hops : {summary['avg_wireless_hops']:.2f}")

    # 3. Power accounting under Table IV configuration 4 (the paper's best:
    #    CMOS long+medium range, BiCMOS short) and the ideal 32 GHz scenario.
    breakdown = measure_power(built, sim, config_id=4, scenario=1)
    print(f"\npower breakdown (config 4, ideal scenario):")
    for key, value in breakdown.as_dict().items():
        print(f"  {key:22s}: {value:.3f}")


if __name__ == "__main__":
    main()
