"""Adaptive reconfiguration channels (Table III rows 13-16)."""

import pytest

from repro.core import build_own256, make_reconfig_controller, N_SPARE_CHANNELS
from repro.core.reconfig import validate_spare_topology
from repro.noc import Simulator, reset_packet_ids
from repro.traffic import SyntheticTraffic, TrafficPattern


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


def hotspot_traffic(rate=0.035, seed=2, stop=None):
    # Cluster 2 (cores 128-191) as the hot destination region.
    pat = TrafficPattern("HOT", 256, hotspot_fraction=0.6,
                         hotspots=list(range(128, 192)))
    return SyntheticTraffic(256, pat, rate, 4, seed=seed, stop_cycle=stop)


class TestBuilderSupport:
    def test_spare_links_created(self):
        built = build_own256(with_reconfiguration=True)
        spares = built.notes["spare_links"]
        assert len(spares) == 12
        validate_spare_topology(spares)
        # Spares are inert until assigned (no channel id).
        assert all(l.channel_id is None for l in spares.values())

    def test_plain_build_has_no_spares(self):
        built = build_own256()
        assert built.notes["spare_links"] == {}
        with pytest.raises(ValueError, match="with_reconfiguration"):
            make_reconfig_controller(built)

    def test_spares_live_on_d_antennas(self):
        built = build_own256(with_reconfiguration=True)
        for (cs, cd), link in built.notes["spare_links"].items():
            assert link.src_router.attrs["gateway"] == "D"
            assert link.kind == "wireless"


class TestController:
    def test_epoch_validation(self):
        built = build_own256(with_reconfiguration=True)
        with pytest.raises(ValueError):
            make_reconfig_controller(built, epoch_cycles=0)

    def test_assignment_respects_antenna_constraints(self):
        built = build_own256(with_reconfiguration=True)
        ctrl = make_reconfig_controller(built, epoch_cycles=200)
        sim = Simulator(built.network, traffic=hotspot_traffic())
        sim.add_hook(ctrl)
        sim.run(1000)
        assert ctrl.epochs >= 4
        pairs = list(ctrl.assignments)
        assert len(pairs) <= N_SPARE_CHANNELS
        srcs = [p[0] for p in pairs]
        dsts = [p[1] for p in pairs]
        assert len(set(srcs)) == len(srcs)  # one outgoing spare per D antenna
        assert len(set(dsts)) == len(dsts)  # one incoming spare per D antenna

    def test_assigned_channels_take_spare_band_indices(self):
        built = build_own256(with_reconfiguration=True)
        ctrl = make_reconfig_controller(built, epoch_cycles=200)
        sim = Simulator(built.network, traffic=hotspot_traffic())
        sim.add_hook(ctrl)
        sim.run(600)
        for a in ctrl.assignments.values():
            assert 13 <= a.channel_index <= 16

    def test_spares_actually_carry_traffic(self):
        built = build_own256(with_reconfiguration=True)
        ctrl = make_reconfig_controller(built, epoch_cycles=200)
        sim = Simulator(built.network, traffic=hotspot_traffic())
        sim.add_hook(ctrl)
        sim.run(1500)
        assert ctrl.summary()["spare_flits"] > 0

    def test_all_packets_still_delivered(self):
        built = build_own256(with_reconfiguration=True)
        ctrl = make_reconfig_controller(built, epoch_cycles=150)
        sim = Simulator(built.network, traffic=hotspot_traffic(rate=0.02, stop=600))
        sim.add_hook(ctrl)
        sim.run(600)
        assert sim.drain(40_000)
        assert sim.stats.packets_ejected == sim.stats.packets_created

    def test_boost_improves_hotspot_throughput(self):
        """The point of the feature: more accepted load on hot pairs."""
        def run(with_reconfig):
            reset_packet_ids()
            built = build_own256(with_reconfiguration=with_reconfig)
            sim = Simulator(
                built.network, traffic=hotspot_traffic(rate=0.035),
                warmup_cycles=300,
            )
            if with_reconfig:
                sim.add_hook(make_reconfig_controller(built, epoch_cycles=300))
            sim.run(2000)
            return sim.throughput()

        boosted = run(True)
        baseline = run(False)
        assert boosted > baseline * 1.01

    def test_deadlock_free_under_reconfig_overload(self):
        built = build_own256(with_reconfiguration=True)
        ctrl = make_reconfig_controller(built, epoch_cycles=100)
        sim = Simulator(
            built.network, traffic=hotspot_traffic(rate=0.2), watchdog=1500
        )
        sim.add_hook(ctrl)
        sim.run(1500)  # raises on deadlock
        assert sim.stats.packets_ejected > 0

    def test_utilisation_snapshot_resets_each_epoch(self):
        built = build_own256(with_reconfiguration=True)
        ctrl = make_reconfig_controller(built, epoch_cycles=100)
        sim = Simulator(built.network, traffic=hotspot_traffic(rate=0.02))
        sim.add_hook(ctrl)
        sim.run(250)
        usage = ctrl.utilisation_last_epoch()
        total_flits = sum(l.flits_carried for l in ctrl.primary_links.values())
        # Last-epoch usage is a window, not the cumulative counter.
        assert sum(usage.values()) <= total_flits
