"""Property-based routing checks: any (src, dst) pair is delivered with the
architectural hop bound, on OWN-256, OWN-1024 and the fault-tolerant
variant."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import OWN1024_DIMS, OWN256_DIMS, build_own256, build_own1024
from repro.core.faults import build_fault_tolerant_own256
from repro.noc import Simulator, reset_packet_ids
from repro.traffic import ScriptedTraffic

# Build once per module: the networks are immutable across packets (stats
# accumulate but never affect routing).
_OWN256 = build_own256()
_OWN1024 = build_own1024()
_FT = build_fault_tolerant_own256()
_FT.notes["routing"].fail_channel(0, 2)
_FT.notes["routing"].fail_channel(3, 1)

_prop_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _deliver(built, src, dst, max_network_hops):
    reset_packet_ids()
    sim = Simulator(built.network, traffic=ScriptedTraffic([(0, src, dst, 4)]))
    sim.run(600)
    assert sim.stats.packets_ejected == 1, (src, dst)
    pkt_hops = sim.stats.hop_sum - 1  # exclude the ejection hop
    assert pkt_hops <= max_network_hops, (src, dst, pkt_hops)
    return sim


class TestOwn256Property:
    @given(
        src=st.integers(min_value=0, max_value=255),
        dst=st.integers(min_value=0, max_value=255),
    )
    @_prop_settings
    def test_any_pair_delivered_within_three_hops(self, src, dst):
        if src == dst:
            return
        sim = _deliver(_OWN256, src, dst, max_network_hops=3)
        # Wireless used iff clusters differ.
        _, cs, _, _ = OWN256_DIMS.core_to_quad(src)
        _, cd, _, _ = OWN256_DIMS.core_to_quad(dst)
        expected_wireless = 0 if cs == cd else 1
        assert sim.stats.wireless_hop_sum == expected_wireless


class TestOwn1024Property:
    @given(
        src=st.integers(min_value=0, max_value=1023),
        dst=st.integers(min_value=0, max_value=1023),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_pair_delivered_within_three_hops(self, src, dst):
        if src == dst:
            return
        sim = _deliver(_OWN1024, src, dst, max_network_hops=3)
        gs, cs, _, _ = OWN1024_DIMS.core_to_quad(src)
        gd, cd, _, _ = OWN1024_DIMS.core_to_quad(dst)
        expected_wireless = 0 if (gs, cs) == (gd, cd) else 1
        assert sim.stats.wireless_hop_sum == expected_wireless


class TestFaultTolerantProperty:
    @given(
        src=st.integers(min_value=0, max_value=255),
        dst=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_pair_delivered_with_two_failures(self, src, dst):
        if src == dst:
            return
        # Relayed pairs may take up to 5 network hops.
        sim = _deliver(_FT, src, dst, max_network_hops=5)
        assert sim.stats.wireless_hop_sum <= 2
