"""OWN-256 / OWN-1024 builder structure and functional delivery tests."""

import pytest

from repro.core import build_own256, build_own1024, OWN256_DIMS, OWN1024_DIMS
from repro.core.routing import group_pair_vc
from repro.noc import Simulator, reset_packet_ids
from repro.traffic import ScriptedTraffic, SyntheticTraffic


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


@pytest.fixture(scope="module")
def own256():
    return build_own256()


@pytest.fixture(scope="module")
def own1024():
    return build_own1024()


class TestOwn256Structure:
    def test_counts(self, own256):
        net = own256.network
        assert net.n_cores == 256
        assert net.n_routers == 64
        # 64 home waveguides (16 per cluster).
        assert len(net.mediums) == 64
        # 12 wireless point-to-point channels.
        assert len(net.links_by_kind("wireless")) == 12

    def test_paper_radix_accounting(self, own256):
        radixes = [r.attrs["paper_radix"] for r in own256.network.routers]
        # 16 gateway tiles (4 antennas x 4 clusters) at radix 20; rest 19.
        assert radixes.count(20) == 16
        assert radixes.count(19) == 48

    def test_photonic_out_ports(self, own256):
        # Every router writes to the 15 other home waveguides of its cluster.
        for r in own256.network.routers:
            photonic_outs = [
                l for l in r.out_links if l is not None and l.kind == "photonic"
            ]
            assert len(photonic_outs) == 15

    def test_gateway_wireless_ports(self, own256):
        wireless_out = {
            r.rid: [l for l in r.out_links if l is not None and l.kind == "wireless"]
            for r in own256.network.routers
        }
        counts = [len(v) for v in wireless_out.values()]
        # 12 transmitters, one channel each; D antennas transmit nothing.
        assert counts.count(1) == 12
        assert counts.count(0) == 52

    def test_wireless_channel_ids_match_table1(self, own256):
        ids = sorted(
            l.channel_id for l in own256.network.links_by_kind("wireless")
        )
        assert ids == list(range(1, 13))


class TestOwn256Routing:
    def test_intra_tile_delivery(self):
        built = build_own256()
        # Cores 0 and 1 share tile 0.
        sim = Simulator(built.network, traffic=ScriptedTraffic([(0, 0, 1, 4)]))
        sim.run(50)
        assert sim.stats.packets_ejected == 1
        assert sim.stats.hop_sum == 1  # eject only

    def test_intra_cluster_single_photonic_hop(self):
        built = build_own256()
        # Core 0 (tile 0) to core 60 (tile 15), same cluster.
        sim = Simulator(built.network, traffic=ScriptedTraffic([(0, 0, 60, 4)]))
        sim.run(100)
        assert sim.stats.packets_ejected == 1
        assert sim.stats.photonic_hop_sum == 1
        assert sim.stats.wireless_hop_sum == 0

    def test_inter_cluster_three_hop_worst_case(self):
        built = build_own256()
        # Core 20 (cluster 0, tile 5) to core 84 (cluster 1, tile 5):
        # photonic to gateway, wireless, photonic to destination tile.
        src = OWN256_DIMS.quad_to_core(0, 0, 5, 0)
        dst = OWN256_DIMS.quad_to_core(0, 1, 5, 0)
        sim = Simulator(built.network, traffic=ScriptedTraffic([(0, src, dst, 4)]))
        sim.run(150)
        assert sim.stats.packets_ejected == 1
        assert sim.stats.wireless_hop_sum == 1
        assert sim.stats.photonic_hop_sum == 2
        assert sim.stats.hop_sum == 4  # 3 network hops + ejection

    def test_gateway_source_skips_first_photonic_hop(self):
        built = build_own256()
        # Cluster 0 -> cluster 1 transmits on B0 which sits at tile 12
        # (bottom-left corner): a source core on that tile goes straight to
        # wireless.
        src = OWN256_DIMS.quad_to_core(0, 0, 12, 0)
        dst = OWN256_DIMS.quad_to_core(0, 1, 5, 0)
        sim = Simulator(built.network, traffic=ScriptedTraffic([(0, src, dst, 4)]))
        sim.run(150)
        assert sim.stats.packets_ejected == 1
        assert sim.stats.photonic_hop_sum == 1  # only the destination side

    def test_all_cluster_pairs_deliver(self):
        built = build_own256()
        sched = []
        t = 0
        for cs in range(4):
            for cd in range(4):
                if cs == cd:
                    continue
                src = OWN256_DIMS.quad_to_core(0, cs, 7, 1)
                dst = OWN256_DIMS.quad_to_core(0, cd, 9, 2)
                sched.append((t, src, dst, 4))
                t += 2
        sim = Simulator(built.network, traffic=ScriptedTraffic(sched))
        sim.run(100)
        assert sim.drain()
        assert sim.stats.packets_ejected == 12


class TestOwn1024Structure:
    def test_counts(self, own1024):
        net = own1024.network
        assert net.n_cores == 1024
        assert net.n_routers == 256
        # 256 home waveguides + 16 wireless SWMR channels.
        assert len(net.mediums) == 256 + 16

    def test_paper_radix(self, own1024):
        radixes = [r.attrs["paper_radix"] for r in own1024.network.routers]
        assert set(radixes) == {19, 22}
        assert radixes.count(22) == 64  # 4 antennas x 4 clusters x 4 groups

    def test_wireless_media_multicast_degree(self, own1024):
        wireless = [m for m in own1024.network.mediums if m.kind == "wireless"]
        assert len(wireless) == 16
        assert all(m.multicast_degree == 4 for m in wireless)
        # Each inter-group channel has 4 writers.
        assert all(len(m.members) == 4 for m in wireless)


class TestOwn1024Routing:
    def test_intra_cluster(self):
        built = build_own1024()
        src = OWN1024_DIMS.quad_to_core(2, 1, 0, 0)
        dst = OWN1024_DIMS.quad_to_core(2, 1, 15, 3)
        sim = Simulator(built.network, traffic=ScriptedTraffic([(0, src, dst, 4)]))
        sim.run(100)
        assert sim.stats.packets_ejected == 1
        assert sim.stats.photonic_hop_sum == 1
        assert sim.stats.wireless_hop_sum == 0

    def test_intra_group_inter_cluster_uses_wireless(self):
        built = build_own1024()
        src = OWN1024_DIMS.quad_to_core(1, 0, 5, 0)
        dst = OWN1024_DIMS.quad_to_core(1, 2, 9, 0)
        sim = Simulator(built.network, traffic=ScriptedTraffic([(0, src, dst, 4)]))
        sim.run(200)
        assert sim.stats.packets_ejected == 1
        assert sim.stats.wireless_hop_sum == 1

    def test_inter_group_three_hops(self):
        built = build_own1024()
        src = OWN1024_DIMS.quad_to_core(0, 0, 5, 0)
        dst = OWN1024_DIMS.quad_to_core(2, 3, 9, 1)
        sim = Simulator(built.network, traffic=ScriptedTraffic([(0, src, dst, 4)]))
        sim.run(300)
        assert sim.stats.packets_ejected == 1
        assert sim.stats.wireless_hop_sum == 1
        assert sim.stats.photonic_hop_sum <= 2

    def test_all_group_pairs_deliver(self):
        built = build_own1024()
        sched = []
        t = 0
        for gs in range(4):
            for gd in range(4):
                src = OWN1024_DIMS.quad_to_core(gs, 0, 5, 0)
                dst = OWN1024_DIMS.quad_to_core(gd, 2, 9, 1)
                if src != dst:
                    sched.append((t, src, dst, 4))
                    t += 3
        sim = Simulator(built.network, traffic=ScriptedTraffic(sched))
        sim.run(200)
        assert sim.drain()
        assert sim.stats.packets_ejected == len(sched)

    def test_vc_class_mapping(self):
        # Vertical pairs (same column of the group grid).
        assert group_pair_vc(0, 3) == 1
        assert group_pair_vc(1, 2) == 1
        # Horizontal pairs.
        assert group_pair_vc(0, 1) == 2
        assert group_pair_vc(2, 3) == 2
        # Diagonal pairs.
        assert group_pair_vc(0, 2) == 3
        assert group_pair_vc(1, 3) == 3
        # Intra-group.
        assert group_pair_vc(2, 2) == 0


class TestTrafficCompletion:
    @pytest.mark.parametrize("pattern", ["UN", "BR", "MT", "PS", "NBR"])
    def test_own256_all_patterns_drain(self, pattern):
        built = build_own256()
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, pattern, 0.02, 4, seed=4, stop_cycle=200),
        )
        sim.run(200)
        assert sim.drain(30_000), f"{pattern} failed to drain"
        assert sim.stats.packets_ejected == sim.stats.packets_created

    def test_own1024_uniform_drains(self):
        built = build_own1024()
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(1024, "UN", 0.008, 4, seed=4, stop_cycle=150),
        )
        sim.run(150)
        assert sim.drain(60_000)
        assert sim.stats.packets_ejected == sim.stats.packets_created
