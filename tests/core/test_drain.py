"""Two-phase draining spare re-assignment (open-loop safety).

The un-managed utilisation-driven :class:`ReconfigurationController`
re-points spares every epoch. Before the drain protocol this stranded
in-flight packets under a sustained hotspot (the seed tree deadlocked
bit-for-bit at cycle 5329 in the regression config below). Re-assignment
is now two-phase -- DRAINING stops new steers, the channel re-points
once the leg empties or a bounded timeout expires, and stragglers take
the escape path (store-and-forward restarts over the primary plan).

Covers:

* the drain state machine (retire / resurrect / complete / timeout /
  deferred install / escape), unit-level;
* the seed-tree stranding regression, reproduced at the exact config
  that used to deadlock;
* ``unpin``/``reassign`` on a pair with in-flight packets routing
  through the drain path instead of instant revocation;
* exactly-once delivery under arbitrary open-loop re-pointing schedules
  (hypothesis), with dense, active-set, and SoA-kernel execution paths
  bit-identical to each other.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import build_fault_tolerant_own256
from repro.core.own256 import make_reconfig_controller
from repro.core.reconfig import PHASE_ACTIVE, PHASE_DRAINING
from repro.noc import reset_packet_ids
from repro.noc.simulator import Simulator
from repro.noc.stats import StatsCollector
from repro.traffic import SyntheticTraffic, TrafficPattern


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


def hotspot_traffic(rate=0.05, seed=2, stop=None):
    # Cluster 2 (cores 128-191) as the hot destination region.
    pat = TrafficPattern("HOT", 256, hotspot_fraction=0.6,
                        hotspots=list(range(128, 192)))
    return SyntheticTraffic(256, pat, rate, 4, seed=seed, stop_cycle=stop)


class _Clock:
    """Minimal stand-in for the simulator in unit-level hook calls."""

    def __init__(self, now):
        self.now = now


# --------------------------------------------------------------------- #
# Drain state machine, unit level
# --------------------------------------------------------------------- #


class TestDrainStateMachine:
    def _controller(self, **kwargs):
        built = build_fault_tolerant_own256(with_reconfiguration=True)
        return built, make_reconfig_controller(built, epoch_cycles=100, **kwargs)

    def test_retire_empty_leg_revokes_instantly(self):
        _, ctrl = self._controller()
        ctrl.set_desired([(0, 1)])
        assert ctrl.boosted(0, 1) is not None
        ctrl.set_desired([(2, 3)])
        # No committed packets: the old assignment is gone immediately
        # (pre-PR single-phase behaviour, which keeps reassignment-free
        # runs bit-identical).
        assert ctrl.assignment_for((0, 1)) is None
        assert ctrl.boosted(2, 3) is not None
        assert ctrl.drains_started == 0

    def test_retire_with_inflight_drains_first(self):
        _, ctrl = self._controller()
        ctrl.set_desired([(0, 1)])
        ctrl.track_steer(7, (0, 1))
        ctrl.set_desired([(2, 3)])
        a = ctrl.assignment_for((0, 1))
        assert a is not None and a.phase == PHASE_DRAINING
        assert ctrl.boosted(0, 1) is None  # no new steers
        assert ctrl.steerable(0, 1) is False
        assert ctrl.drains_started == 1

    def test_drain_completes_on_arrival(self):
        _, ctrl = self._controller()
        ctrl.set_desired([(0, 1)])
        ctrl.track_steer(7, (0, 1))
        ctrl.set_desired([(2, 3)])
        ctrl.note_arrival(7, 1)  # reached the destination cluster
        ctrl(_Clock(1))  # per-cycle drain advancement
        assert ctrl.assignment_for((0, 1)) is None
        assert ctrl.drains_completed == 1
        assert ctrl.escapes == 0

    def test_blocked_install_lands_when_drain_completes(self):
        _, ctrl = self._controller()
        ctrl.set_desired([(0, 1)])
        ctrl.track_steer(7, (0, 1))
        # (0, 2) needs the src-0 D antenna still held by the draining
        # (0, 1) assignment: the install is deferred, not dropped.
        ctrl.set_desired([(0, 2)])
        assert ctrl.boosted(0, 2) is None
        ctrl.note_arrival(7, 1)
        ctrl(_Clock(1))
        assert ctrl.boosted(0, 2) is not None

    def test_drain_timeout_revokes_and_strays_escape(self):
        _, ctrl = self._controller(drain_timeout=5)
        ctrl.set_desired([(0, 1)])
        ctrl.track_steer(7, (0, 1))
        ctrl.set_desired([(2, 3)])
        ctrl(_Clock(5))
        assert ctrl.drain_timeouts == 1
        assert ctrl.assignment_for((0, 1)) is None
        # The straggler stays tracked until the routing layer sees it at
        # the D gateway (or its destination) and resolves it.
        assert ctrl.committed_pair(7) == (0, 1)

        class _Pkt:
            escaped = False

        pkt = _Pkt()
        ctrl.note_escape(7, pkt)
        assert pkt.escaped is True
        assert ctrl.escapes == 1
        assert ctrl.committed_pair(7) is None
        assert ctrl.occupancy((0, 1)) == 0

    def test_rechosen_draining_pair_is_resurrected(self):
        _, ctrl = self._controller()
        ctrl.set_desired([(0, 1)])
        ctrl.track_steer(7, (0, 1))
        ctrl.set_desired([(2, 3)])
        assert ctrl.boosted(0, 1) is None
        ctrl.set_desired([(0, 1)])
        a = ctrl.assignment_for((0, 1))
        assert a is not None and a.phase == PHASE_ACTIVE
        assert ctrl.boosted(0, 1) is not None
        events = [t["event"] for t in ctrl.transitions]
        assert "drain_cancel" in events

    def test_transition_log_is_byte_stable(self):
        crcs = []
        for _ in range(2):
            _, ctrl = self._controller(drain_timeout=5)
            ctrl.set_desired([(0, 1)])
            ctrl.track_steer(7, (0, 1))
            ctrl.set_desired([(2, 3)])
            ctrl(_Clock(5))
            ctrl.note_escape(7)
            crcs.append(ctrl.transition_crc())
        assert crcs[0] == crcs[1]
        _, ctrl = self._controller()
        assert ctrl.transition_crc() != crcs[0]  # empty log differs

    def test_summary_exposes_drain_state(self):
        _, ctrl = self._controller()
        ctrl.set_desired([(0, 1)])
        ctrl.track_steer(7, (0, 1))
        ctrl.set_desired([(2, 3)])
        s = ctrl.summary()
        assert s["draining_pairs"] == [(0, 1)]
        assert s["drains_started"] == 1
        assert s["in_flight"] == 1
        by_pair = {tuple(d["pair"]): d for d in s["drain_state"]}
        assert by_pair[(0, 1)]["phase"] == PHASE_DRAINING
        assert by_pair[(0, 1)]["in_flight"] == 1
        m = ctrl.summary_metrics()
        assert m["spare_drains_started"] == 1.0
        assert m["drain_log_crc"] == float(ctrl.transition_crc())


# --------------------------------------------------------------------- #
# Seed-tree stranding regression
# --------------------------------------------------------------------- #


def _open_loop_sim(rate, epoch, seed, drain_timeout=None, dense=False):
    built = build_fault_tolerant_own256(with_reconfiguration=True)
    kwargs = {} if drain_timeout is None else {"drain_timeout": drain_timeout}
    ctrl = make_reconfig_controller(built, epoch_cycles=epoch, **kwargs)
    sim = Simulator(
        built.network,
        traffic=hotspot_traffic(rate=rate, seed=seed),
        warmup_cycles=400,
        dense=dense,
    )
    sim.add_hook(ctrl)
    return built, ctrl, sim


class TestSeedTreeStrandingRegression:
    def test_sustained_hotspot_open_loop_drains_fully(self):
        # The exact config that deadlocked on the seed tree (watchdog at
        # cycle 5329): open-loop re-pointer every 50 cycles under a
        # sustained hotspot at rate 0.05, seed 2. With two-phase draining
        # every injected packet is delivered exactly once.
        _, ctrl, sim = _open_loop_sim(rate=0.05, epoch=50, seed=2)
        sim.run(3000)
        assert sim.drain(60_000)
        assert sim.stats.packets_created == sim.stats.packets_ejected > 0
        assert sim.network.total_occupancy() == 0
        # The hazard is real in this config: spares were re-pointed with
        # packets in flight (otherwise this test proves nothing).
        assert ctrl.drains_started > 0

    def test_forced_timeouts_escape_instead_of_stranding(self):
        # drain_timeout=1 forces the escape path on every contested
        # re-assignment; deliveries must still be exactly-once.
        _, ctrl, sim = _open_loop_sim(rate=0.05, epoch=50, seed=2,
                                      drain_timeout=1)
        sim.run(3000)
        assert sim.drain(60_000)
        assert sim.stats.packets_created == sim.stats.packets_ejected > 0
        assert ctrl.drain_timeouts > 0
        assert ctrl.escapes > 0
        assert ctrl.summary()["in_flight"] == 0

    def test_unpin_with_inflight_packets_drains(self):
        built, ctrl, sim = _open_loop_sim(rate=0.05, epoch=10_000, seed=2)
        routing = built.notes["routing"]
        routing.fail_channel(0, 2)
        ctrl.pin((0, 2))
        sim.run(300)
        if ctrl.occupancy((0, 2)) == 0:  # pragma: no cover - load-dependent
            pytest.skip("no packets committed to the pinned spare")
        routing.unfail_channel(0, 2)
        ctrl.unpin((0, 2))
        a = ctrl.assignment_for((0, 2))
        assert a is not None and a.phase == PHASE_DRAINING
        assert ctrl.boosted(0, 2) is None
        sim.run(3000)
        assert sim.drain(60_000)
        assert sim.stats.packets_created == sim.stats.packets_ejected


# --------------------------------------------------------------------- #
# Exactly-once delivery under arbitrary re-pointing schedules
# --------------------------------------------------------------------- #


@contextmanager
def delivery_log():
    """Record every (cycle, packet id) ejection, in delivery order."""
    events = []
    orig = StatsCollector.on_packet_ejected

    def patched(self, packet, now):
        events.append((now, packet.pid))
        return orig(self, packet, now)

    StatsCollector.on_packet_ejected = patched
    try:
        yield events
    finally:
        StatsCollector.on_packet_ejected = orig


@contextmanager
def _kernels(enabled):
    prev = os.environ.get("REPRO_NOC_KERNELS")
    os.environ["REPRO_NOC_KERNELS"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if prev is None:
            del os.environ["REPRO_NOC_KERNELS"]
        else:
            os.environ["REPRO_NOC_KERNELS"] = prev


class ScheduleHook:
    """Deterministic open-loop churn: reassign / pin / unpin / fail /
    unfail at every schedule epoch, driven only by the cycle count.

    Fault actions mirror the production failover contract
    (:class:`~repro.faults.HealthMonitor` / :class:`ControlLoop`): a
    failed channel is immediately pinned onto a spare when feasible
    (else it rides relays, validated routable by ``fail_channel``), and
    recovery unfails *then* unpins so the pair is alive before its spare
    drains away. At most two pairs are failed concurrently -- beyond
    that the fixed relay plan itself runs out, which is an unroutable
    topology, not a reconfiguration hazard.
    """

    PAIRS = [(0, 2), (1, 3), (2, 0), (3, 1), (0, 1), (2, 3)]

    def __init__(self, built, ctrl, schedule_seed, epoch=60):
        import random

        self.routing = built.notes["routing"]
        self.ctrl = ctrl
        self.epoch = epoch
        self.rng = random.Random(schedule_seed)

    def next_wake(self, now):
        if now <= 0:
            return self.epoch
        if now % self.epoch == 0:
            return now
        return (now // self.epoch + 1) * self.epoch

    def __call__(self, sim):
        if sim.now <= 0 or sim.now % self.epoch != 0:
            return
        action = self.rng.choice(
            ["noop", "pin", "unpin", "fail", "unfail", "reassign"]
        )
        pair = self.rng.choice(self.PAIRS)
        try:
            if action == "pin":
                self.ctrl.pin(pair)
            elif action == "unpin":
                self.ctrl.unpin(pair)
            elif action == "fail":
                if (
                    pair not in self.routing.failed_pairs
                    and len(self.routing.failed_pairs) < 2
                ):
                    self.routing.fail_channel(*pair)
                    try:
                        self.ctrl.pin(pair)
                    except ValueError:
                        pass  # no feasible spare: relays carry the pair
            elif action == "unfail":
                if self.routing.unfail_channel(*pair):
                    self.ctrl.unpin(pair)
            elif action == "reassign":
                self.ctrl.reassign()
        except ValueError:
            pass  # infeasible pin / unroutable fail: legal no-ops


def _churn_run(rate, seed, schedule_seed, faulty, dense, kernels):
    reset_packet_ids()
    with _kernels(kernels):
        built, ctrl, sim = _open_loop_sim(rate=rate, epoch=50, seed=seed,
                                          drain_timeout=30, dense=dense)
        hook = ScheduleHook(built, ctrl, schedule_seed)
        if faulty:
            sim.add_hook(hook)
        with delivery_log() as events:
            sim.run(1200)
            drained = sim.drain(60_000)
    return {
        "events": events,
        "drained": drained,
        "created": sim.stats.packets_created,
        "ejected": sim.stats.packets_ejected,
        "occupancy": sim.network.total_occupancy(),
        "drain_crc": ctrl.transition_crc(),
        "summary": ctrl.summary_metrics(),
    }


@settings(max_examples=4, deadline=None)
@given(
    rate=st.sampled_from([0.04, 0.06]),
    seed=st.integers(min_value=0, max_value=2**16 - 1),
    schedule_seed=st.integers(min_value=0, max_value=2**16 - 1),
    faulty=st.booleans(),
)
def test_exactly_once_and_path_identity_under_churn(
    rate, seed, schedule_seed, faulty
):
    kernel = _churn_run(rate, seed, schedule_seed, faulty,
                        dense=False, kernels=True)
    # Exactly-once: every created packet ejected exactly once, nothing
    # stranded and nothing duplicated, network fully drained.
    assert kernel["drained"]
    assert kernel["occupancy"] == 0
    pids = [pid for _, pid in kernel["events"]]
    assert len(pids) == len(set(pids)) == kernel["created"] > 0
    assert kernel["ejected"] == kernel["created"]
    assert kernel["summary"]["spare_drains_started"] >= 0.0

    # Dense object loop and active-set object path deliver bit-identically
    # to the SoA-kernel path, drain transitions included.
    dense = _churn_run(rate, seed, schedule_seed, faulty,
                       dense=True, kernels=True)
    objects = _churn_run(rate, seed, schedule_seed, faulty,
                         dense=False, kernels=False)
    assert dense["events"] == kernel["events"]
    assert objects["events"] == kernel["events"]
    assert dense["drain_crc"] == objects["drain_crc"] == kernel["drain_crc"]
    assert dense["summary"] == objects["summary"] == kernel["summary"]
