"""(g, c, t, p) addressing: anchors + roundtrip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.core.coords import OWN1024_DIMS, OWN256_DIMS, OwnDims


class TestDims:
    def test_paper_instances(self):
        assert OWN256_DIMS.n_cores == 256
        assert OWN256_DIMS.n_routers == 64
        assert OWN1024_DIMS.n_cores == 1024
        assert OWN1024_DIMS.n_routers == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            OwnDims(groups=0)

    def test_core_zero(self):
        assert OWN256_DIMS.core_to_quad(0) == (0, 0, 0, 0)

    def test_core_last(self):
        assert OWN1024_DIMS.core_to_quad(1023) == (3, 3, 15, 3)

    def test_mixed_radix_order(self):
        # Core id increments fastest in p, then t, then c, then g.
        assert OWN256_DIMS.core_to_quad(1) == (0, 0, 0, 1)
        assert OWN256_DIMS.core_to_quad(4) == (0, 0, 1, 0)
        assert OWN256_DIMS.core_to_quad(64) == (0, 1, 0, 0)
        assert OWN1024_DIMS.core_to_quad(256) == (1, 0, 0, 0)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            OWN256_DIMS.core_to_quad(256)
        with pytest.raises(ValueError):
            OWN256_DIMS.core_to_quad(-1)
        with pytest.raises(ValueError):
            OWN256_DIMS.quad_to_core(1, 0, 0, 0)  # only 1 group at 256
        with pytest.raises(ValueError):
            OWN256_DIMS.router_to_gct(64)

    @given(st.integers(min_value=0, max_value=1023))
    def test_core_roundtrip_1024(self, core):
        g, c, t, p = OWN1024_DIMS.core_to_quad(core)
        assert OWN1024_DIMS.quad_to_core(g, c, t, p) == core

    @given(st.integers(min_value=0, max_value=255))
    def test_router_roundtrip_1024(self, rid):
        g, c, t = OWN1024_DIMS.router_to_gct(rid)
        assert OWN1024_DIMS.gct_to_router(g, c, t) == rid

    @given(st.integers(min_value=0, max_value=1023))
    def test_router_of_core_consistent(self, core):
        dims = OWN1024_DIMS
        g, c, t, _ = dims.core_to_quad(core)
        assert dims.router_of_core(core) == dims.gct_to_router(g, c, t)

    def test_quad_component_validation(self):
        with pytest.raises(ValueError):
            OWN256_DIMS.quad_to_core(0, 4, 0, 0)
        with pytest.raises(ValueError):
            OWN256_DIMS.quad_to_core(0, 0, 16, 0)
        with pytest.raises(ValueError):
            OWN256_DIMS.quad_to_core(0, 0, 0, 4)
