"""Floorplan geometry: antenna placement, distances, SDM intersection."""

import pytest

from repro.core.floorplan import (
    ANTENNA_LETTERS,
    CLUSTER_EDGE_MM,
    CORNER_TILE,
    LD_FACTOR,
    NOMINAL_DISTANCE_MM,
    all_antennas,
    antenna,
    classify_distance,
    corner_position_mm,
    distance_mm,
    segments_intersect,
    tile_position_mm,
)


class TestAntennas:
    def test_sixteen_antennas(self):
        ants = all_antennas()
        assert len(ants) == 16
        assert {a.name for a in ants} == {
            f"{l}{c}" for c in range(4) for l in ANTENNA_LETTERS
        }

    def test_each_cluster_has_four_distinct_corners(self):
        for cluster in range(4):
            corners = {antenna(cluster, l).corner for l in ANTENNA_LETTERS}
            assert corners == {"TL", "TR", "BL", "BR"}

    def test_antenna_tile_is_a_corner_tile(self):
        for a in all_antennas():
            assert a.tile in CORNER_TILE.values()

    def test_positions_inside_cluster(self):
        for a in all_antennas():
            x, y = a.position_mm
            assert 0 <= x <= 2 * CLUSTER_EDGE_MM
            assert 0 <= y <= 2 * CLUSTER_EDGE_MM

    def test_validation(self):
        with pytest.raises(ValueError):
            antenna(4, "A")
        with pytest.raises(ValueError):
            antenna(0, "E")


class TestDistanceClasses:
    def test_table1_pairs_fall_in_their_classes(self):
        # The Table I pairs must land in their published classes.
        expected = {
            ("A0", "B2"): "C2C",
            ("A3", "B1"): "C2C",
            ("A1", "B0"): "E2E",
            ("A2", "B3"): "E2E",
            ("C0", "C3"): "SR",
            ("C1", "C2"): "SR",
        }
        ants = {a.name: a for a in all_antennas()}
        for (x, y), cls in expected.items():
            d = distance_mm(ants[x], ants[y])
            assert classify_distance(d) == cls, (x, y, d)

    def test_c2c_near_60mm(self):
        ants = {a.name: a for a in all_antennas()}
        d = distance_mm(ants["A0"], ants["B2"])
        assert 55 <= d <= 70

    def test_ld_factors_match_paper(self):
        assert LD_FACTOR == {"C2C": 1.0, "E2E": 0.5, "SR": 0.15}

    def test_nominal_distances(self):
        assert NOMINAL_DISTANCE_MM == {"C2C": 60.0, "E2E": 30.0, "SR": 10.0}

    def test_classify_thresholds(self):
        assert classify_distance(60.0) == "C2C"
        assert classify_distance(30.0) == "E2E"
        assert classify_distance(5.0) == "SR"
        assert classify_distance(45.0) == "C2C"
        assert classify_distance(10.0) == "SR"


class TestTilePositions:
    def test_tile_grid_within_cluster(self):
        for cluster in range(4):
            for tile in range(16):
                x, y = tile_position_mm(cluster, tile)
                assert 0 <= x <= 2 * CLUSTER_EDGE_MM
                assert 0 <= y <= 2 * CLUSTER_EDGE_MM

    def test_tile_zero_top_left_of_cluster_zero(self):
        x, y = tile_position_mm(0, 0)
        assert x < CLUSTER_EDGE_MM / 2 and y < CLUSTER_EDGE_MM / 2

    def test_tile_out_of_range(self):
        with pytest.raises(ValueError):
            tile_position_mm(0, 16)

    def test_corner_positions_distinct(self):
        pts = {corner_position_mm(0, c) for c in ("TL", "TR", "BL", "BR")}
        assert len(pts) == 4


class TestSegmentIntersection:
    def test_crossing(self):
        assert segments_intersect((0, 0), (10, 10), (0, 10), (10, 0))

    def test_parallel_non_crossing(self):
        assert not segments_intersect((0, 0), (10, 0), (0, 5), (10, 5))

    def test_disjoint(self):
        assert not segments_intersect((0, 0), (1, 1), (5, 5), (6, 6))

    def test_t_shape_touch_not_counted(self):
        # Endpoint touching is not a strict crossing (good enough for SDM).
        assert not segments_intersect((0, 0), (10, 0), (5, 0), (5, 10))

    def test_sdm_example_from_paper(self):
        """Sec. V-B: B3->A2 and B0->A1 do not intersect."""
        ants = {a.name: a for a in all_antennas()}
        assert not segments_intersect(
            ants["B3"].position_mm, ants["A2"].position_mm,
            ants["B0"].position_mm, ants["A1"].position_mm,
        )

    def test_diagonals_do_intersect(self):
        """The two C2C diagonals cross at the chip centre."""
        ants = {a.name: a for a in all_antennas()}
        assert segments_intersect(
            ants["A0"].position_mm, ants["B2"].position_mm,
            ants["A3"].position_mm, ants["B1"].position_mm,
        )
