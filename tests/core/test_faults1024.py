"""Group-level fault tolerance for OWN-1024."""

import pytest

from repro.core import (
    OWN1024_DIMS,
    UnroutableError,
    build_fault_tolerant_own1024,
)
from repro.noc import Simulator, reset_packet_ids
from repro.traffic import ScriptedTraffic, SyntheticTraffic


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


def core(g, c, t, p=0):
    return OWN1024_DIMS.quad_to_core(g, c, t, p)


class TestHealthy:
    def test_behaves_like_normal_own1024(self):
        built = build_fault_tolerant_own1024()
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(1024, "UN", 0.008, 4, seed=1, stop_cycle=150),
        )
        sim.run(150)
        assert sim.drain(50_000)
        assert sim.stats.packets_ejected == sim.stats.packets_created
        assert sim.stats.avg_wireless_hops() <= 1.0

    def test_flag(self):
        assert build_fault_tolerant_own1024().params["fault_tolerant"] is True


class TestRelay:
    def test_failed_inter_group_channel_relays(self):
        built = build_fault_tolerant_own1024()
        routing = built.notes["routing"]
        routing.fail_channel(0, 2)
        sim = Simulator(
            built.network,
            traffic=ScriptedTraffic([(0, core(0, 0, 5), core(2, 3, 9), 4)]),
        )
        sim.run(600)
        assert sim.stats.packets_ejected == 1
        assert sim.stats.wireless_hop_sum == 2
        assert routing.relayed_packets >= 1

    def test_relay_group_avoids_failed_legs(self):
        built = build_fault_tolerant_own1024()
        routing = built.notes["routing"]
        routing.fail_channel(0, 2)
        gx = routing._relay_for(0, 2)
        assert routing.alive(0, gx) and routing.alive(gx, 2)
        # Kill that relay's first leg too: a different relay must be found.
        routing.fail_channel(0, gx)
        gx2 = routing._relay_for(0, 2)
        assert gx2 != gx

    def test_unaffected_groups_direct(self):
        built = build_fault_tolerant_own1024()
        built.notes["routing"].fail_channel(0, 2)
        sim = Simulator(
            built.network,
            traffic=ScriptedTraffic([(0, core(1, 0, 5), core(3, 2, 9), 4)]),
        )
        sim.run(400)
        assert sim.stats.packets_ejected == 1
        assert sim.stats.wireless_hop_sum == 1

    def test_restore(self):
        built = build_fault_tolerant_own1024()
        routing = built.notes["routing"]
        routing.fail_channel(0, 2)
        routing.restore_channel(0, 2)
        sim = Simulator(
            built.network,
            traffic=ScriptedTraffic([(0, core(0, 0, 5), core(2, 3, 9), 4)]),
        )
        sim.run(400)
        assert sim.stats.wireless_hop_sum == 1

    def test_all_traffic_delivered_under_fault(self):
        built = build_fault_tolerant_own1024()
        built.notes["routing"].fail_channel(3, 1)
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(1024, "UN", 0.006, 4, seed=3, stop_cycle=150),
        )
        sim.run(150)
        assert sim.drain(60_000)
        assert sim.stats.packets_ejected == sim.stats.packets_created


class TestDeadlockSafety:
    def test_overload_with_two_failures(self):
        built = build_fault_tolerant_own1024()
        routing = built.notes["routing"]
        routing.fail_channel(0, 2)
        routing.fail_channel(1, 3)
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(1024, "UN", 0.05, 4, seed=7),
            watchdog=1500,
        )
        sim.run(1200)  # raises on deadlock
        assert sim.stats.packets_ejected > 0


class TestUnroutability:
    def test_intra_group_channel_cannot_fail(self):
        built = build_fault_tolerant_own1024()
        with pytest.raises(UnroutableError, match="intra-group"):
            built.notes["routing"].fail_channel(2, 2)

    def test_isolated_group_detected(self):
        built = build_fault_tolerant_own1024()
        routing = built.notes["routing"]
        routing.fail_channel(0, 1)
        routing.fail_channel(0, 2)
        with pytest.raises(UnroutableError, match="no live relay"):
            routing.fail_channel(0, 3)
