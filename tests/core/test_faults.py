"""Fault-tolerant OWN-256 routing: relay paths, VC safety, unroutability."""

import pytest

from repro.core import OWN256_DIMS, UnroutableError, build_fault_tolerant_own256
from repro.noc import Simulator, reset_packet_ids
from repro.traffic import ScriptedTraffic, SyntheticTraffic


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


def core(c, t, p=0):
    return OWN256_DIMS.quad_to_core(0, c, t, p)


class TestHealthyOperation:
    def test_matches_normal_own_behaviour(self):
        built = build_fault_tolerant_own256()
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, "UN", 0.02, 4, seed=1, stop_cycle=300),
        )
        sim.run(300)
        assert sim.drain(30_000)
        assert sim.stats.packets_ejected == sim.stats.packets_created
        # Without faults nothing relays: max 1 wireless hop per packet.
        assert sim.stats.avg_wireless_hops() <= 1.0

    def test_params_flag(self):
        built = build_fault_tolerant_own256()
        assert built.params["fault_tolerant"] is True


class TestRelaying:
    def test_failed_channel_relays_two_wireless_hops(self):
        built = build_fault_tolerant_own256()
        routing = built.notes["routing"]
        routing.fail_channel(0, 2)
        sim = Simulator(
            built.network,
            traffic=ScriptedTraffic([(0, core(0, 5), core(2, 9), 4)]),
        )
        sim.run(400)
        assert sim.stats.packets_ejected == 1
        assert sim.stats.wireless_hop_sum == 2
        assert routing.relayed_packets >= 1

    def test_unaffected_pairs_unchanged(self):
        built = build_fault_tolerant_own256()
        built.notes["routing"].fail_channel(0, 2)
        sim = Simulator(
            built.network,
            traffic=ScriptedTraffic([(0, core(1, 5), core(3, 9), 4)]),
        )
        sim.run(200)
        assert sim.stats.packets_ejected == 1
        assert sim.stats.wireless_hop_sum == 1

    def test_restore_channel(self):
        built = build_fault_tolerant_own256()
        routing = built.notes["routing"]
        routing.fail_channel(0, 2)
        routing.restore_channel(0, 2)
        sim = Simulator(
            built.network,
            traffic=ScriptedTraffic([(0, core(0, 5), core(2, 9), 4)]),
        )
        sim.run(200)
        assert sim.stats.wireless_hop_sum == 1  # direct again

    def test_relay_selection_deterministic_and_live(self):
        built = build_fault_tolerant_own256()
        routing = built.notes["routing"]
        routing.fail_channel(0, 2)
        cx = routing._relay_for(0, 2)
        assert cx in (1, 3)
        assert routing.alive(0, cx) and routing.alive(cx, 2)

    def test_all_traffic_delivered_with_fault(self):
        built = build_fault_tolerant_own256()
        built.notes["routing"].fail_channel(0, 2)
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, "UN", 0.015, 4, seed=3, stop_cycle=300),
        )
        sim.run(300)
        assert sim.drain(40_000)
        assert sim.stats.packets_ejected == sim.stats.packets_created


class TestDeadlockSafetyUnderFaults:
    def test_overload_with_multiple_failures(self):
        built = build_fault_tolerant_own256()
        routing = built.notes["routing"]
        routing.fail_channel(0, 2)
        routing.fail_channel(1, 3)
        routing.fail_channel(2, 1)
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, "UN", 0.2, 4, seed=7),
            watchdog=1500,
        )
        sim.run(2000)  # raises SimulationDeadlock on a VC cycle
        assert sim.stats.packets_ejected > 0

    def test_vc_classes_disjoint_along_relay(self):
        """First-leg wireless uses VCs {0,1}, final leg {2,3}."""
        built = build_fault_tolerant_own256()
        routing = built.notes["routing"]
        routing.fail_channel(0, 2)
        net = built.network

        class P:  # minimal packet stub for allowed_vcs
            def __init__(self, src, dst):
                self.src_core, self.dst_core = src, dst
                self.size_flits = 4

        # At the cluster-0 gateway toward the relay, wireless is leg 1 of 2.
        cx = routing._relay_for(0, 2)
        ch = routing.channel_map[(0, cx)]
        gw = net.routers[routing.gateway_rid[ch.channel_index]]
        wport = routing.wireless_port[(gw.rid, ch.channel_index)]
        pkt = P(core(0, 5), core(2, 9))
        assert tuple(routing.allowed_vcs(gw, wport, pkt)) == (0, 1)
        # At the relay cluster's gateway toward cluster 2, it's the final leg.
        ch2 = routing.channel_map[(cx, 2)]
        gw2 = net.routers[routing.gateway_rid[ch2.channel_index]]
        wport2 = routing.wireless_port[(gw2.rid, ch2.channel_index)]
        assert tuple(routing.allowed_vcs(gw2, wport2, pkt)) == (2, 3)


class TestUnroutability:
    def test_isolating_a_cluster_detected(self):
        built = build_fault_tolerant_own256()
        routing = built.notes["routing"]
        routing.fail_channel(0, 1)
        routing.fail_channel(0, 2)
        with pytest.raises(UnroutableError):
            routing.fail_channel(0, 3)

    def test_error_message_lists_failures(self):
        built = build_fault_tolerant_own256()
        routing = built.notes["routing"]
        routing.fail_channel(0, 1)
        routing.fail_channel(0, 2)
        with pytest.raises(UnroutableError, match="failed="):
            routing.fail_channel(0, 3)
