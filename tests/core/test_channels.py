"""Wireless channel allocation: Table I / Table II reconstructions + SDM."""

import pytest

from repro.core.channels import (
    CLUSTER_PAIR_ANTENNAS,
    GROUP_OFFSET_ANTENNA,
    channel_segments,
    own1024_channel_map,
    own1024_channels,
    own256_channel_map,
    own256_channels,
    sdm_frequency_reuse_groups,
)


class TestOwn256Channels:
    def test_twelve_channels(self):
        assert len(own256_channels()) == 12

    def test_every_ordered_cluster_pair_served(self):
        cmap = own256_channel_map()
        pairs = {(s, d) for s in range(4) for d in range(4) if s != d}
        assert set(cmap.keys()) == pairs

    def test_paper_pairs(self):
        """The exact Table I antenna pairings."""
        cmap = own256_channel_map()
        assert (cmap[(0, 2)].tx, cmap[(0, 2)].rx) == ("A", "B")
        assert (cmap[(2, 0)].tx, cmap[(2, 0)].rx) == ("B", "A")
        assert (cmap[(3, 1)].tx, cmap[(3, 1)].rx) == ("A", "B")
        assert (cmap[(0, 1)].tx, cmap[(0, 1)].rx) == ("B", "A")
        assert (cmap[(0, 3)].tx, cmap[(0, 3)].rx) == ("C", "C")
        assert (cmap[(1, 2)].tx, cmap[(1, 2)].rx) == ("C", "C")

    def test_class_per_pair(self):
        cmap = own256_channel_map()
        assert cmap[(0, 2)].distance_class == "C2C"
        assert cmap[(3, 1)].distance_class == "C2C"
        assert cmap[(0, 1)].distance_class == "E2E"
        assert cmap[(2, 3)].distance_class == "E2E"
        assert cmap[(0, 3)].distance_class == "SR"
        assert cmap[(1, 2)].distance_class == "SR"

    def test_channel_indices_longest_first(self):
        chans = own256_channels()
        classes = [c.distance_class for c in sorted(chans, key=lambda c: c.channel_index)]
        assert classes == ["C2C"] * 4 + ["E2E"] * 4 + ["SR"] * 4

    def test_reverse_channels_exist(self):
        cmap = own256_channel_map()
        for (s, d) in cmap:
            assert (d, s) in cmap

    def test_d_antennas_not_used_inter_cluster(self):
        for ch in own256_channels():
            assert ch.tx != "D" and ch.rx != "D"


class TestOwn1024Channels:
    def test_sixteen_channels(self):
        assert len(own1024_channels()) == 16

    def test_twelve_inter_four_intra(self):
        chans = own1024_channels()
        inter = [c for c in chans if c.src_group != c.dst_group]
        intra = [c for c in chans if c.src_group == c.dst_group]
        assert len(inter) == 12 and len(intra) == 4

    def test_all_multicast(self):
        assert all(c.multicast for c in own1024_channels())

    def test_antenna_letter_by_offset(self):
        cmap = own1024_channel_map()
        for g in range(4):
            for offset, letter in GROUP_OFFSET_ANTENNA.items():
                ch = cmap[(g, (g + offset) % 4)]
                assert ch.tx == letter == ch.rx

    def test_intra_group_on_d_antennas_high_bands(self):
        cmap = own1024_channel_map()
        for g in range(4):
            ch = cmap[(g, g)]
            assert ch.tx == "D"
            assert 13 <= ch.channel_index <= 16

    def test_group0_to_group1_uses_A(self):
        """Table II's worked example."""
        ch = own1024_channel_map()[(0, 1)]
        assert ch.tx == "A"

    def test_group_distance_classes(self):
        cmap = own1024_channel_map()
        assert cmap[(0, 2)].distance_class == "C2C"  # diagonal
        assert cmap[(0, 1)].distance_class == "E2E"  # horizontal
        assert cmap[(0, 3)].distance_class == "SR"  # vertical (3D stacked)

    def test_unique_channel_indices(self):
        indices = [c.channel_index for c in own1024_channels()]
        assert sorted(indices) == list(range(1, 17))


class TestSDM:
    def test_segments_for_all_channels(self):
        assert len(channel_segments()) == 12

    def test_reuse_groups_partition_channels(self):
        groups = sdm_frequency_reuse_groups()
        flattened = [name for g in groups for name in g]
        assert sorted(flattened) == sorted(channel_segments().keys())

    def test_groups_internally_non_intersecting(self):
        """Every reuse group must be pairwise non-crossing (validity)."""
        from repro.core.floorplan import segments_intersect

        segs = channel_segments()
        for group in sdm_frequency_reuse_groups():
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    assert not segments_intersect(*segs[a], *segs[b]), (a, b)

    def test_paper_reuse_pairs_are_compatible(self):
        """Sec. V-B's examples: B3->A2 / B0->A1 and C0->C3 / C1->C2 do not
        intersect, so each pair may share one carrier."""
        from repro.core.floorplan import segments_intersect

        segs = channel_segments()
        assert not segments_intersect(*segs["B3->A2"], *segs["B0->A1"])
        assert not segments_intersect(*segs["C0->C3"], *segs["C1->C2"])

    def test_reverse_channels_never_share_a_group(self):
        """A channel and its reverse share the full path: same group is
        physically invalid."""
        for group in sdm_frequency_reuse_groups():
            for name in group:
                src, dst = name.split("->")
                assert f"{dst}->{src}" not in group

    def test_crossing_diagonals_in_different_groups(self):
        groups = sdm_frequency_reuse_groups()
        for g in groups:
            assert not ("A0->B2" in g and "A3->B1" in g)

    def test_reuse_reduces_channel_count(self):
        groups = sdm_frequency_reuse_groups()
        assert len(groups) < 12  # SDM buys at least a few frequencies back


class TestPairTable:
    def test_twelve_ordered_pairs(self):
        assert len(CLUSTER_PAIR_ANTENNAS) == 12
