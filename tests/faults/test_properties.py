"""Property-based end-to-end check of the retransmission protocol.

For any corruption probability and traffic seed, the link layer must be
*exactly-once*: every packet created is ejected exactly once (no loss from
CRC drops, no duplicates from retransmission races) and the network-wide
conservation invariants hold after the drain.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.faults import build_fault_tolerant_own256
from repro.faults import FaultLayer
from repro.noc import Simulator, reset_packet_ids
from repro.noc.invariants import audit_network
from repro.traffic import SyntheticTraffic
from repro.utils.rng import RngStreams


@given(
    error_prob=st.floats(min_value=0.0, max_value=0.25,
                         allow_nan=False, allow_infinity=False),
    traffic_seed=st.integers(min_value=0, max_value=2**16),
    rng_seed=st.integers(min_value=0, max_value=2**16),
)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_exactly_once_delivery(error_prob, traffic_seed, rng_seed):
    # A fresh network per example: link timestamps (``busy_until``,
    # arbitration state) are wall-clock values from the previous sim's
    # frame, and a reused network would stall until they expire.
    reset_packet_ids()
    built = build_fault_tolerant_own256()
    layer = FaultLayer(built.network, rng=RngStreams(rng_seed))
    for link, state in layer.protected.items():
        if link.kind == "wireless":
            state.forced_flit_error_prob = error_prob
    sim = Simulator(
        built.network,
        traffic=SyntheticTraffic(256, "UN", 0.015, 4, seed=traffic_seed,
                                 stop_cycle=250),
        faults=layer,
    )
    sim.run(250)
    assert sim.drain(40_000), "network failed to drain"
    assert sim.stats.packets_ejected == sim.stats.packets_created
    audit_network(sim)
    if error_prob == 0.0:
        assert sim.stats.retransmission_summary()["nacks"] == 0
