"""Unit tests for the fault campaign schedule and its generators."""

import pytest

from repro.faults import FaultCampaign, PermanentFault, TransientFault
from repro.faults.campaign import _PENALTY
from repro.utils.rng import RngStreams


class TestSchedule:
    def test_transient_expands_to_start_and_end(self):
        c = FaultCampaign([TransientFault(at=10, duration=5, snr_penalty_db=3.0)])
        start = c.actions_at(10)
        assert start == [(_PENALTY, None, 3.0)]
        end = c.actions_at(15)
        assert end == [(_PENALTY, None, -3.0)]
        assert c.is_empty

    def test_actions_fire_exactly_once(self):
        c = FaultCampaign([PermanentFault(at=7, target="wch1.A0->B2")])
        assert c.actions_at(7) is not None
        assert c.actions_at(7) is None

    def test_no_actions_on_other_cycles(self):
        c = FaultCampaign([PermanentFault(at=7, target=None)])
        assert c.actions_at(6) is None
        assert not c.is_empty

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            FaultCampaign([PermanentFault(at=-1, target=None)])

    def test_add_and_last_cycle(self):
        c = FaultCampaign()
        assert c.is_empty and c.last_cycle() == 0
        c.add(TransientFault(at=100, duration=50, snr_penalty_db=2.0))
        assert c.last_cycle() == 150


class TestBurstyGenerator:
    LINKS = ["wch1.A0->B2", "wch2.B1->A3"]

    def test_deterministic_per_seed(self):
        a = FaultCampaign.bursty(self.LINKS, 500, RngStreams(3), 0.01)
        b = FaultCampaign.bursty(self.LINKS, 500, RngStreams(3), 0.01)
        assert a.events == b.events

    def test_zero_rate_is_empty(self):
        c = FaultCampaign.bursty(self.LINKS, 500, RngStreams(3), 0.0)
        assert c.is_empty

    def test_bursts_target_named_links(self):
        c = FaultCampaign.bursty(self.LINKS, 2000, RngStreams(3), 0.01,
                                 burst_duration=20, snr_penalty_db=4.0)
        assert c.events, "expected some bursts at rate 0.01 over 2000 cycles"
        for ev in c.events:
            assert isinstance(ev, TransientFault)
            assert ev.target in self.LINKS
            assert ev.duration == 20
            assert ev.snr_penalty_db == 4.0
            assert 0 <= ev.at < 2000
