"""Health monitor + online failover: permanent faults end in rerouted
traffic, not deadlocks."""

import pytest

from repro.core.faults import build_fault_tolerant_own256
from repro.core.own256 import make_reconfig_controller
from repro.faults import FaultCampaign, FaultLayer, HealthMonitor, PermanentFault
from repro.noc import Simulator, reset_packet_ids
from repro.noc.invariants import audit_network
from repro.traffic import SyntheticTraffic
from repro.utils.rng import RngStreams

DEAD_LINK = "wch1.A0->B2"  # channel 1 carries the (0, 2) cluster pair


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


def _run_death(with_reconfig, cycles=800, at=200):
    built = build_fault_tolerant_own256(with_reconfiguration=with_reconfig)
    routing = built.notes["routing"]
    campaign = FaultCampaign([PermanentFault(at=at, target=DEAD_LINK)])
    layer = FaultLayer(built.network, campaign=campaign, rng=RngStreams(5))
    sim = Simulator(
        built.network,
        traffic=SyntheticTraffic(256, "UN", 0.02, 4, seed=7),
        warmup_cycles=100,
        faults=layer,
    )
    ctrl = None
    if with_reconfig:
        ctrl = make_reconfig_controller(built, epoch_cycles=200)
        sim.add_hook(ctrl)
    monitor = HealthMonitor(
        layer, routing=routing, reconfig=ctrl, epoch_cycles=100
    )
    sim.add_hook(monitor)
    sim.run(cycles)
    assert sim.drain(30_000)
    return built, sim, layer, monitor, ctrl


class TestFailover:
    def test_transceiver_death_fails_over_to_relay(self):
        built, sim, layer, monitor, _ = _run_death(with_reconfig=False)
        # Nothing lost, no deadlock, conservation intact.
        assert sim.stats.packets_ejected == sim.stats.packets_created
        audit_network(sim)
        # The monitor declared exactly the dead channel.
        assert len(monitor.failovers) == 1
        _, name, pair = monitor.failovers[0]
        assert name == DEAD_LINK and pair == (0, 2)
        assert built.notes["routing"].failed_pairs == {(0, 2)}
        assert sim.stats.channels_failed_over == 1
        # In-flight traffic on the dead channel was recovered + re-injected.
        assert sim.stats.packets_recovered > 0
        # Post-failover (0,2) traffic relays: extra wireless hops appear.
        assert built.notes["routing"].relayed_packets > 0

    def test_failover_quiesces_the_dead_link(self):
        built, sim, layer, _, _ = _run_death(with_reconfig=False)
        dead = next(l for l in built.network.links if l.name == DEAD_LINK)
        assert dead.fault.dead and dead.fault.failed_over
        # Quiesced: no replay entries or retransmit jobs left behind.
        assert not layer._replay.get(dead)
        assert not layer._retx.get(dead)

    def test_failover_pins_a_spare_when_available(self):
        built, sim, _, monitor, ctrl = _run_death(with_reconfig=True)
        assert sim.stats.packets_ejected == sim.stats.packets_created
        audit_network(sim)
        assert monitor.failovers
        assert (0, 2) in ctrl.pinned
        # The pinned spare actually carried the failed pair's traffic.
        spare = ctrl.assignments[(0, 2)].link
        assert spare.flits_carried > 0

    def test_throughput_recovers_after_failover(self):
        """Post-failover steady state keeps accepting the offered load:
        the failure lands early, yet every packet injected over the whole
        window (including long after it) is delivered."""
        _, sim, _, monitor, _ = _run_death(with_reconfig=False, cycles=1200)
        fail_cycle = monitor.failovers[0][0]
        assert fail_cycle < 600
        assert sim.stats.packets_created > 0
        assert sim.stats.packets_ejected == sim.stats.packets_created


class TestMonitorValidation:
    def test_epoch_cycles_positive(self):
        built = build_fault_tolerant_own256()
        layer = FaultLayer(built.network)
        with pytest.raises(ValueError):
            HealthMonitor(layer, epoch_cycles=0)

    def test_corruption_threshold_bounded(self):
        built = build_fault_tolerant_own256()
        layer = FaultLayer(built.network)
        with pytest.raises(ValueError):
            HealthMonitor(layer, corruption_threshold=1.5)

    def test_summary_shape(self):
        built = build_fault_tolerant_own256()
        layer = FaultLayer(built.network)
        monitor = HealthMonitor(layer)
        s = monitor.summary()
        assert "failovers" in s
