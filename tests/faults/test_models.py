"""Unit tests for the fault models: BER-derived error probabilities and
the per-link health state."""

import math

import pytest

from repro.faults import (
    LinkFaultState,
    PermanentFault,
    TokenLossFault,
    TransientFault,
    attempt_error_probability,
    flit_error_probability,
)
from repro.rf.ook import ook_ber


class TestErrorProbabilities:
    def test_flit_probability_is_complement_power(self):
        ber = 1e-3
        p = flit_error_probability(ber, 128)
        assert p == pytest.approx(1.0 - (1.0 - ber) ** 128)

    def test_attempt_probability_compounds_over_flits(self):
        ber = 1e-3
        p_flit = flit_error_probability(ber, 128)
        p = attempt_error_probability(ber, 128, 4)
        assert p == pytest.approx(1.0 - (1.0 - p_flit) ** 4)
        assert p > p_flit

    def test_zero_ber_is_exactly_zero(self):
        assert flit_error_probability(0.0, 128) == 0.0
        assert attempt_error_probability(0.0, 128, 4) == 0.0

    def test_probabilities_bounded(self):
        assert flit_error_probability(0.4, 10_000) <= 1.0
        assert attempt_error_probability(0.4, 10_000, 64) <= 1.0


class TestLinkFaultState:
    def test_healthy_state_is_transparent(self):
        state = LinkFaultState()
        # Nominal SNR carries the budget margin: BER <= target, treated as
        # an ideal channel so fault-free runs stay bit-exact.
        assert state.bit_error_rate() == 0.0
        assert state.flit_error_prob(128) == 0.0
        assert state.attempt_error_prob(128, 4) == 0.0
        assert not state.dead and not state.failed_over

    def test_penalty_opens_the_error_floor(self):
        state = LinkFaultState()
        state.snr_penalty_db = 5.0
        expected = ook_ber(state.nominal_snr_db - 5.0)
        assert state.bit_error_rate() == pytest.approx(expected)
        assert state.attempt_error_prob(128, 4) > 0.0

    def test_deeper_penalty_is_worse(self):
        a, b = LinkFaultState(), LinkFaultState()
        a.snr_penalty_db = 4.0
        b.snr_penalty_db = 8.0
        assert b.bit_error_rate() > a.bit_error_rate()

    def test_forced_probability_hook(self):
        state = LinkFaultState()
        state.forced_flit_error_prob = 0.25
        assert state.flit_error_prob(128) == 0.25
        assert state.attempt_error_prob(128, 2) == pytest.approx(
            1.0 - 0.75**2
        )


class TestEventValidation:
    def test_transient_needs_positive_duration(self):
        with pytest.raises(ValueError):
            TransientFault(at=0, duration=0, snr_penalty_db=5.0)

    def test_transient_needs_positive_penalty(self):
        with pytest.raises(ValueError):
            TransientFault(at=0, duration=10, snr_penalty_db=-1.0)

    def test_permanent_kind_checked(self):
        with pytest.raises(ValueError):
            PermanentFault(at=0, target=None, kind="gremlins")

    def test_trim_drift_needs_magnitude(self):
        with pytest.raises(ValueError):
            PermanentFault(at=0, target=None, kind="trim_drift")
        PermanentFault(at=0, target=None, kind="trim_drift", drift_db=3.0)

    def test_token_loss_recovery_window(self):
        with pytest.raises(ValueError):
            TokenLossFault(at=0, medium_name="c0.wg0", recovery_cycles=0)
