"""Integration tests for the CRC + ACK/NACK link layer on OWN-256."""

import pytest

from repro.core.faults import build_fault_tolerant_own256
from repro.faults import (
    FaultCampaign,
    FaultLayer,
    LinkLayerConfig,
    TokenLossFault,
    TransientFault,
)
from repro.noc import Simulator, reset_packet_ids
from repro.noc.invariants import audit_network
from repro.traffic import SyntheticTraffic
from repro.utils.rng import RngStreams


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


def _run(campaign=None, cycles=400, config=None, seed=7, rate=0.02):
    built = build_fault_tolerant_own256()
    layer = FaultLayer(
        built.network, campaign=campaign, config=config, rng=RngStreams(5)
    )
    sim = Simulator(
        built.network,
        traffic=SyntheticTraffic(256, "UN", rate, 4, seed=seed),
        warmup_cycles=100,
        faults=layer,
    )
    sim.run(cycles)
    assert sim.drain(30_000)
    return built, sim, layer


class TestTransparency:
    def test_zero_fault_run_is_bit_exact(self):
        """The flagship guarantee: an installed-but-idle fault layer must
        not perturb a single latency sample."""
        reset_packet_ids()
        built = build_fault_tolerant_own256()
        baseline = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, "UN", 0.02, 4, seed=7),
            warmup_cycles=100,
        )
        baseline.run(400)
        assert baseline.drain(30_000)
        base_lat = tuple(baseline.stats.latencies)
        base_summary = baseline.summary()

        reset_packet_ids()
        _, sim, _ = _run(campaign=FaultCampaign())
        assert tuple(sim.stats.latencies) == base_lat
        assert sim.summary() == base_summary
        retx = sim.stats.retransmission_summary()
        # ACKs flow (the protocol is on) but nothing else fires.
        assert retx["acks"] > 0
        for key, value in retx.items():
            if key != "acks":
                assert value == 0, (key, value)

    def test_healthy_links_never_sample_rng(self):
        _, sim, layer = _run(campaign=None)
        for state in layer.protected.values():
            assert state.corrupt_attempts == 0
            assert state.lost_attempts == 0


class TestRetransmission:
    def test_transient_burst_recovers_all_traffic(self):
        campaign = FaultCampaign(
            [TransientFault(at=100, duration=200, snr_penalty_db=5.0,
                            target="wireless")]
        )
        _, sim, _ = _run(campaign=campaign, cycles=500)
        assert sim.stats.packets_ejected == sim.stats.packets_created
        retx = sim.stats.retransmission_summary()
        assert retx["nacks"] > 0
        assert retx["packets_retransmitted"] > 0
        assert retx["flits_dropped"] > 0
        audit_network(sim)

    def test_forced_corruption_no_loss(self):
        """Every wireless flit fails CRC with p=0.2; all packets still
        arrive (retried until clean) and conservation holds."""
        built = build_fault_tolerant_own256()
        layer = FaultLayer(built.network, rng=RngStreams(5))
        for link, state in layer.protected.items():
            if link.kind == "wireless":
                state.forced_flit_error_prob = 0.2
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, "UN", 0.015, 4, seed=3),
            faults=layer,
        )
        sim.run(400)
        assert sim.drain(30_000)
        assert sim.stats.packets_ejected == sim.stats.packets_created
        assert sim.stats.retransmission_summary()["nacks"] > 0
        audit_network(sim)

    def test_retransmission_energy_is_accounted(self):
        from repro.power import measure_power

        campaign = FaultCampaign(
            [TransientFault(at=50, duration=300, snr_penalty_db=5.5,
                            target="wireless")]
        )
        built, sim, _ = _run(campaign=campaign, cycles=500)
        clean_bits = sum(
            l.bits_retransmitted for l in built.network.links
        )
        assert clean_bits > 0
        power = measure_power(built, sim)
        assert power.retx_overhead_w > 0.0
        assert power.total_w > power.retx_overhead_w


class TestTokenLoss:
    def test_token_loss_freezes_then_recovers(self):
        campaign = FaultCampaign(
            [TokenLossFault(at=150, medium_name="c0.wg0", recovery_cycles=8)]
        )
        built, sim, _ = _run(campaign=campaign)
        medium = next(m for m in built.network.mediums if m.name == "c0.wg0")
        assert medium.token_losses == 1
        assert sim.stats.packets_ejected == sim.stats.packets_created
        audit_network(sim)

    def test_unknown_medium_rejected(self):
        campaign = FaultCampaign(
            [TokenLossFault(at=10, medium_name="no.such.medium")]
        )
        built = build_fault_tolerant_own256()
        layer = FaultLayer(built.network, campaign=campaign)
        sim = Simulator(built.network, faults=layer)
        with pytest.raises(ValueError):
            sim.run(20)


class TestConfigValidation:
    def test_backoff_ordering_validated(self):
        with pytest.raises(ValueError):
            LinkLayerConfig(backoff_base=8, backoff_cap=4)

    def test_replay_capacity_positive(self):
        with pytest.raises(ValueError):
            LinkLayerConfig(replay_capacity=0)

    def test_install_rejects_slow_links(self):
        """A link whose round trip exceeds the timeout cannot distinguish
        a lost attempt from a slow ACK; install refuses it."""
        built = build_fault_tolerant_own256()
        layer = FaultLayer(
            built.network, config=LinkLayerConfig(timeout=2, ack_latency=1)
        )
        with pytest.raises(ValueError):
            Simulator(built.network, faults=layer)
