"""Executor determinism: serial == parallel == cached, run isolation."""

import pytest

from repro.runtime import Executor, RunSpec, execute_inline, run_spec


def spec(rate: float = 0.02, **over) -> RunSpec:
    kwargs = dict(
        pattern="UN", rate=rate, cycles=300, warmup=100, seed=5,
        topology_kwargs={"n_cores": 64},
    )
    kwargs.update(over)
    return RunSpec.create("cmesh", **kwargs)


SPECS = [spec(0.01), spec(0.02), spec(0.03)]


class TestDeterminism:
    def test_serial_rerun_bit_identical(self):
        assert run_spec(SPECS[1]).summary == run_spec(SPECS[1]).summary

    def test_parallel_matches_serial(self):
        serial = Executor(jobs=1).run(SPECS)
        parallel = Executor(jobs=4).run(SPECS)
        assert [r.summary for r in parallel] == [r.summary for r in serial]
        assert [r.digest for r in parallel] == [r.digest for r in serial]

    def test_cached_matches_fresh(self, tmp_path):
        fresh = Executor(jobs=1).run(SPECS)
        warm = Executor(jobs=1, cache=str(tmp_path / "c"))
        first = warm.run(SPECS)
        second = warm.run(SPECS)
        assert [r.summary for r in first] == [r.summary for r in fresh]
        assert [r.summary for r in second] == [r.summary for r in fresh]
        assert not any(r.cache_hit for r in first)
        assert all(r.cache_hit for r in second)
        assert warm.runs_executed == 3 and warm.runs_from_cache == 3

    def test_interleaving_does_not_perturb_results(self):
        # A run's result is a pure function of its spec: simulating other
        # specs in between must not shift packet ids or RNG state.
        alone = run_spec(SPECS[2]).summary
        ex = Executor(jobs=1)
        ex.run([SPECS[0], SPECS[2], SPECS[1], SPECS[2]])
        assert ex.run_one(SPECS[2]).summary == alone


class TestExecutorMechanics:
    def test_order_preserved(self):
        runs = Executor(jobs=1).run(SPECS)
        assert [r.spec.traffic.rate for r in runs] == [0.01, 0.02, 0.03]

    def test_duplicate_specs_simulated_once(self):
        ex = Executor(jobs=1)
        a, b = ex.run([SPECS[0], SPECS[0]])
        assert a.summary == b.summary
        # Both results count, but the second is served from the first.
        assert b.wall_s == 0.0

    def test_jobs_validated(self):
        with pytest.raises(ValueError):
            Executor(jobs=0)

    def test_progress_and_runlog(self, tmp_path):
        from repro.runtime import read_runlog

        seen = []
        ex = Executor(
            jobs=1,
            runlog=str(tmp_path / "runs.jsonl"),
            progress=lambda done, total, r: seen.append((done, total)),
        )
        ex.run(SPECS)
        assert seen == [(1, 3), (2, 3), (3, 3)]
        records = read_runlog(tmp_path / "runs.jsonl")
        assert [r["rate"] for r in records] == [0.01, 0.02, 0.03]
        assert all(not r["cache_hit"] for r in records)

    def test_power_pairs_measured(self):
        run = Executor(jobs=1).run_one(
            RunSpec.create(
                "own256", rate=0.02, cycles=300, warmup=100, seed=5,
                power=((4, 1), (1, 2)),
            )
        )
        for key in ("cfg4_s1", "cfg1_s2"):
            assert run.power[key]["total_w"] > 0
            assert "avg_wireless_link_mw" in run.power[key]
        assert run.power_for(4, 1) is run.power["cfg4_s1"]

    def test_unknown_topology_key(self):
        with pytest.raises(KeyError):
            run_spec(RunSpec.create("eschernet", cycles=10))


class TestTelemetry:
    def test_spec_telemetry_fills_metrics(self):
        result = run_spec(spec(telemetry=True))
        assert result.metrics
        assert any(k.startswith("pkt_total[") for k in result.metrics)

    def test_no_telemetry_no_metrics(self):
        assert run_spec(spec()).metrics == {}

    def test_telemetry_does_not_perturb_summary(self):
        plain = run_spec(spec())
        traced = run_spec(spec(telemetry=True))
        assert traced.summary == plain.summary

    def test_executor_flag_rewrites_specs(self):
        result = Executor(jobs=1, telemetry=True).run_one(spec())
        assert result.spec.telemetry is True
        assert result.metrics

    def test_metrics_survive_cache_round_trip(self, tmp_path):
        ex = Executor(jobs=1, telemetry=True, cache=str(tmp_path / "c"))
        first = ex.run_one(spec())
        second = ex.run_one(spec())
        assert second.cache_hit
        assert second.metrics == first.metrics != {}

    def test_metrics_cross_process_boundary(self):
        results = Executor(jobs=2, telemetry=True).run([spec(0.01), spec(0.02)])
        assert all(r.metrics for r in results)

    def test_trace_dir_writes_chrome_traces(self, tmp_path):
        import json

        ex = Executor(trace_dir=str(tmp_path / "traces"))
        result = ex.run_one(spec())
        path = result.meta["trace_path"]
        assert path.endswith(f"{result.digest[:8]}.json")
        doc = json.loads(open(path).read())
        assert doc["traceEvents"]
        assert result.metrics  # trace_dir implies telemetry

    def test_inline_with_caller_tracer(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        _, sim, result = execute_inline(spec(), tracer=tracer)
        assert tracer.events
        assert result.metrics  # finalized caller tracer feeds the result


class TestRunIsolation:
    def test_simulators_get_private_packet_ids(self):
        # Two live simulators interleaved in one process must each count
        # packet ids from zero (no shared global allocator).
        built_a, sim_a, _ = execute_inline(spec(0.02))
        built_b, sim_b, _ = execute_inline(spec(0.02, seed=9))
        assert sim_a.packet_ids is not sim_b.packet_ids
        # Each allocator handed out its own 0..n-1 range: the *next* id it
        # would issue equals the number of packets that run generated.
        assert sim_a.packet_ids.next_id() == sim_a.traffic.packets_generated
        assert sim_b.packet_ids.next_id() == sim_b.traffic.packets_generated

    def test_inline_matches_engine(self):
        _, _, inline_result = execute_inline(SPECS[1])
        assert inline_result.summary == run_spec(SPECS[1]).summary
