"""Content-addressed result cache behaviour."""

from repro.runtime import ResultCache

DIGEST = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert cache.get(DIGEST) is None
        cache.put(DIGEST, {"summary": {"latency_mean": 12.5}})
        assert cache.get(DIGEST) == {"summary": {"latency_mean": 12.5}}
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_two_level_fanout(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(DIGEST, {})
        cache.put(OTHER, {})
        assert (tmp_path / "c" / "ab" / f"{DIGEST}.json").exists()
        assert (tmp_path / "c" / "cd" / f"{OTHER}.json").exists()
        assert len(cache) == 2

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(DIGEST, {"ok": True})
        path = tmp_path / "c" / "ab" / f"{DIGEST}.json"
        path.write_text('{"truncat')
        assert cache.get(DIGEST) is None

    def test_no_tmp_litter_after_put(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(DIGEST, {"ok": True})
        assert not list((tmp_path / "c").glob("**/*.tmp"))

    def test_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.get(DIGEST)
        assert cache.stats() == {"hits": 0, "misses": 1, "hit_rate": 0.0}
