"""RunSpec value semantics: freezing, serialisation, content addressing."""

import pytest

from repro.runtime import (
    SCHEMA_VERSION,
    FaultSpec,
    RunSpec,
    TrafficSpec,
    code_fingerprint,
    freeze_kwargs,
)


class TestFreezeKwargs:
    def test_empty(self):
        assert freeze_kwargs(None) == ()
        assert freeze_kwargs({}) == ()

    def test_sorted_and_hashable(self):
        a = freeze_kwargs({"b": 2, "a": 1})
        b = freeze_kwargs({"a": 1, "b": 2})
        assert a == b == (("a", 1), ("b", 2))
        hash(a)

    def test_recursive_lists_become_tuples(self):
        frozen = freeze_kwargs({"failed": [[0, 1], [2, 3]]})
        assert frozen == (("failed", ((0, 1), (2, 3))),)
        hash(frozen)

    def test_nested_dicts(self):
        frozen = freeze_kwargs({"cfg": {"y": [1], "x": 2}})
        assert frozen == (("cfg", (("x", 2), ("y", (1,)))),)


class TestSpecValidation:
    def test_traffic_kind_checked(self):
        with pytest.raises(ValueError):
            TrafficSpec(kind="telepathic")

    def test_fault_kind_checked(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="gremlins")

    def test_workload_kind_needs_name(self):
        with pytest.raises(ValueError):
            TrafficSpec(kind="workload")

    def test_workload_name_needs_kind(self):
        with pytest.raises(ValueError):
            TrafficSpec(kind="synthetic", workload="coherence")

    def test_workload_params_frozen_and_order_free(self):
        a = TrafficSpec(kind="workload", workload="coherence",
                        workload_params=(("b", 2), ("a", 1)))
        b = TrafficSpec(kind="workload", workload="coherence",
                        workload_params=(("a", 1), ("b", 2)))
        assert a == b
        hash(a)


class TestDigest:
    def make(self, **over):
        kwargs = dict(
            pattern="UN", rate=0.02, cycles=300, warmup=100, seed=5,
            topology_kwargs={"n_cores": 64},
        )
        kwargs.update(over)
        return RunSpec.create("cmesh", **kwargs)

    def test_equal_specs_equal_digests(self):
        assert self.make() == self.make()
        assert self.make().digest() == self.make().digest()

    def test_kwargs_order_irrelevant(self):
        a = RunSpec.create("own256", topology_kwargs={"vc_depth": 4, "wireless_cycles_per_flit": 2})
        b = RunSpec.create("own256", topology_kwargs={"wireless_cycles_per_flit": 2, "vc_depth": 4})
        assert a == b and a.digest() == b.digest()

    def test_any_field_changes_digest(self):
        base = self.make().digest()
        assert self.make(rate=0.03).digest() != base
        assert self.make(seed=6).digest() != base
        assert self.make(cycles=301).digest() != base
        assert self.make(topology_kwargs={"n_cores": 256}).digest() != base
        assert self.make(faults=FaultSpec()).digest() != base
        assert self.make(power=((4, 1),)).digest() != base
        assert self.make(telemetry=True).digest() != base

    def test_workload_fields_change_digest_and_round_trip(self):
        base = self.make(traffic_kind="workload", workload="coherence")
        assert base.digest() != self.make().digest()
        tweaked = self.make(
            traffic_kind="workload", workload="coherence",
            workload_params={"miss_rate": 0.02},
        )
        assert tweaked.digest() != base.digest()
        back = RunSpec.from_dict(tweaked.to_dict())
        assert back == tweaked and back.digest() == tweaked.digest()
        assert back.traffic.workload == "coherence"

    def test_telemetry_round_trips(self):
        spec = self.make(telemetry=True)
        back = RunSpec.from_dict(spec.to_dict())
        assert back.telemetry is True
        assert back == spec and back.digest() == spec.digest()

    def test_telemetry_defaults_off_for_old_payloads(self):
        d = self.make().to_dict()
        del d["telemetry"]
        assert RunSpec.from_dict(d).telemetry is False

    def test_code_version_folds_into_digest(self, monkeypatch):
        base = self.make().digest()
        monkeypatch.setenv("REPRO_CODE_VERSION", "someotherversion")
        assert code_fingerprint() == "someotherversion"
        assert self.make().digest() != base

    def test_schema_version_is_two(self):
        # Bumping SCHEMA_VERSION invalidates every cache: make it deliberate.
        # v2 (deliberate): result payloads grew the ``profile`` dict and run
        # records surface power/engine counters (docs/observability.md).
        assert SCHEMA_VERSION == 2

    def test_fingerprint_covers_hot_path_modules(self):
        # The fingerprint must invalidate cached results when the physics
        # *or* the engine changes; editing the vectorized kernels while
        # serving stale cached runs would hide a determinism bug.
        from repro.runtime.spec import fingerprint_files

        files = fingerprint_files()
        for mod in (
            "noc/kernels.py",
            "noc/router.py",
            "noc/simulator.py",
            "noc/arbiters.py",
            "runtime/spec.py",
            # Workload traces are generated *inside* the run from the spec,
            # so editing a generator must invalidate cached workload runs.
            "traffic/trace.py",
            "traffic/bursty.py",
            "workloads/base.py",
            "workloads/microservice.py",
            "workloads/collectives.py",
            "workloads/coherence.py",
            "workloads/blends.py",
            "workloads/registry.py",
            "workloads/scenarios.py",
        ):
            assert mod in files, f"{mod} not covered by code_fingerprint()"
        assert all(f.endswith(".py") for f in files)


class TestRoundTrip:
    def test_to_from_dict(self):
        spec = RunSpec.create(
            "own256_ft",
            pattern="HS",
            rate=0.02,
            cycles=500,
            warmup=200,
            seed=2,
            topology_kwargs={"failed_channels": ((0, 1), (2, 3))},
            drain=1000,
            faults=FaultSpec(kind="death", at=125, failover=True),
            power=((4, 1), (1, 2)),
        )
        back = RunSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.digest() == spec.digest()

    def test_json_roundtrip_via_canonical(self):
        import json

        spec = RunSpec.create("cmesh", topology_kwargs={"n_cores": 64})
        back = RunSpec.from_dict(json.loads(spec.canonical_json()))
        assert back == spec and back.digest() == spec.digest()

    def test_with_refreezes_kwargs(self):
        spec = RunSpec.create("own256")
        varied = spec.with_(topology_kwargs={"vc_depth": 4})
        assert varied.topology_kwargs == (("vc_depth", 4),)
        assert varied.digest() != spec.digest()

    def test_label(self):
        spec = RunSpec.create("own256", pattern="BC", rate=0.035, cycles=1200)
        assert spec.label() == "own256/BC@0.035x1200"
