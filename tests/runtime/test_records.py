"""JSONL run records: schema, append semantics, tolerant reading."""

import json
import math

from repro.noc.stats import LatencyStats
from repro.runtime import RunLog, RunResult, RunSpec, make_record, read_runlog
from repro.runtime.records import json_safe


def _result() -> RunResult:
    spec = RunSpec.create("cmesh", rate=0.02, cycles=300, warmup=100,
                          topology_kwargs={"n_cores": 64})
    return RunResult(
        spec=spec,
        digest=spec.digest(),
        summary={"latency_mean": 21.0, "throughput": 0.019},
        meta={"network_name": "cmesh64"},
        wall_s=1.5,
    )


class TestMakeRecord:
    def test_fields(self):
        rec = make_record(_result())
        assert rec["topology"] == "cmesh"
        assert rec["pattern"] == "UN" and rec["rate"] == 0.02
        assert rec["cycles"] == 300 and rec["warmup"] == 100
        assert rec["cache_hit"] is False
        assert rec["wall_s"] == 1.5
        assert rec["cycles_per_sec"] == 200.0
        assert rec["summary"]["latency_mean"] == 21.0
        assert rec["label"] == "cmesh/UN@0.02x300"
        assert rec["digest"] == _result().digest

    def test_zero_wall_time_has_no_speed(self):
        result = _result()
        result.wall_s = 0.0
        assert make_record(result)["cycles_per_sec"] is None


class TestRunLog:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        log = RunLog(path)
        log.write(make_record(_result()))
        log.write(make_record(_result()))
        assert log.records_written == 2
        records = read_runlog(path)
        assert len(records) == 2
        assert records[0]["topology"] == "cmesh"

    def test_makes_parent_dirs(self, tmp_path):
        log = RunLog(tmp_path / "deep" / "er" / "runs.jsonl")
        log.write({"ok": 1})
        assert read_runlog(log.path) == [{"ok": 1}]

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        RunLog(path).write({"ok": 1})
        with open(path, "a") as fh:
            fh.write("not json\n\n")
        assert read_runlog(path) == [{"ok": 1}]


class TestStrictJson:
    """Empty-sample NaN stats must serialise as ``null``, never ``NaN``."""

    def test_json_safe_scrubs_nonfinite(self):
        dirty = {
            "nan": float("nan"),
            "inf": float("inf"),
            "nested": {"x": [1.0, float("-inf")]},
            "fine": 2.5,
            "n": 3,
        }
        clean = json_safe(dirty)
        assert clean["nan"] is None and clean["inf"] is None
        assert clean["nested"]["x"] == [1.0, None]
        assert clean["fine"] == 2.5 and clean["n"] == 3

    def test_empty_latency_stats_record_is_strict_json(self, tmp_path):
        # A zero-packet run: every LatencyStats field is NaN in process.
        stats = LatencyStats.from_samples([])
        assert math.isnan(stats.mean)
        result = _result()
        result.summary = {"latency_mean": stats.mean, "latency_p99": stats.p99}
        record = make_record(result)
        assert record["summary"]["latency_mean"] is None
        path = tmp_path / "runs.jsonl"
        RunLog(path).write(record)
        # Strict parse: bare NaN tokens would raise here.
        line = path.read_text().strip()
        parsed = json.loads(line, parse_constant=lambda tok: 1 / 0)
        assert parsed["summary"]["latency_mean"] is None
        assert "NaN" not in line

    def test_latency_stats_as_dict_emits_null(self):
        d = LatencyStats.from_samples([]).as_dict()
        assert d == {
            "count": 0, "mean": None, "median": None,
            "p95": None, "p99": None, "max": None,
        }
        json.dumps(d, allow_nan=False)
        full = LatencyStats.from_samples([10, 20]).as_dict()
        assert full["mean"] == 15.0 and full["count"] == 2

    def test_metrics_folded_into_record(self):
        result = _result()
        result.metrics = {"wireless_occupancy[C2C]": 0.25}
        record = make_record(result)
        assert record["metrics"] == {"wireless_occupancy[C2C]": 0.25}
        # No telemetry -> no metrics key (keeps old records byte-compatible).
        assert "metrics" not in make_record(_result())


class TestSchemaV2Fields:
    def test_schema_version_stamped(self):
        from repro.runtime import SCHEMA_VERSION

        assert make_record(_result())["schema"] == SCHEMA_VERSION

    def test_optional_sections_absent_when_empty(self):
        rec = make_record(_result())
        for key in ("power", "profile", "engine", "metrics"):
            assert key not in rec

    def test_power_profile_engine_folded_in(self):
        result = _result()
        result.power = {"cfg4_s1": {"total_w": 9.5}}
        result.profile = {"build_s": 0.2, "sim_s": 1.1,
                          "sim_cycles": 300, "sim_cycles_per_sec": 272.7}
        engine = {"runs_executed": 3, "runs_from_cache": 1,
                  "cache_hits": 1, "cache_misses": 3}
        rec = make_record(result, engine=engine)
        assert rec["power"]["cfg4_s1"]["total_w"] == 9.5
        assert rec["profile"]["sim_cycles"] == 300
        assert rec["engine"] == engine

    def test_executor_records_carry_profile_and_engine(self, tmp_path):
        from repro.runtime import Executor

        spec = RunSpec.create("cmesh", rate=0.02, cycles=120,
                              topology_kwargs={"n_cores": 64})
        log = tmp_path / "runs.jsonl"
        ex = Executor(runlog=str(log), cache=str(tmp_path / "cache"))
        ex.run_one(spec)
        ex.run_one(spec)  # cache hit
        (first, second) = read_runlog(log)
        assert first["profile"]["sim_cycles"] == 120
        assert first["profile"]["sim_cycles_per_sec"] > 0
        assert first["engine"]["cache_misses"] == 1
        assert second["cache_hit"] is True
        assert second["engine"]["cache_hits"] == 1
        # Cache hits replay the stored profile of the original run.
        assert second["profile"]["sim_cycles"] == 120
