"""JSONL run records: schema, append semantics, tolerant reading."""

from repro.runtime import RunLog, RunResult, RunSpec, make_record, read_runlog


def _result() -> RunResult:
    spec = RunSpec.create("cmesh", rate=0.02, cycles=300, warmup=100,
                          topology_kwargs={"n_cores": 64})
    return RunResult(
        spec=spec,
        digest=spec.digest(),
        summary={"latency_mean": 21.0, "throughput": 0.019},
        meta={"network_name": "cmesh64"},
        wall_s=1.5,
    )


class TestMakeRecord:
    def test_fields(self):
        rec = make_record(_result())
        assert rec["topology"] == "cmesh"
        assert rec["pattern"] == "UN" and rec["rate"] == 0.02
        assert rec["cycles"] == 300 and rec["warmup"] == 100
        assert rec["cache_hit"] is False
        assert rec["wall_s"] == 1.5
        assert rec["cycles_per_sec"] == 200.0
        assert rec["summary"]["latency_mean"] == 21.0
        assert rec["label"] == "cmesh/UN@0.02x300"
        assert rec["digest"] == _result().digest

    def test_zero_wall_time_has_no_speed(self):
        result = _result()
        result.wall_s = 0.0
        assert make_record(result)["cycles_per_sec"] is None


class TestRunLog:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        log = RunLog(path)
        log.write(make_record(_result()))
        log.write(make_record(_result()))
        assert log.records_written == 2
        records = read_runlog(path)
        assert len(records) == 2
        assert records[0]["topology"] == "cmesh"

    def test_makes_parent_dirs(self, tmp_path):
        log = RunLog(tmp_path / "deep" / "er" / "runs.jsonl")
        log.write({"ok": 1})
        assert read_runlog(log.path) == [{"ok": 1}]

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        RunLog(path).write({"ok": 1})
        with open(path, "a") as fh:
            fh.write("not json\n\n")
        assert read_runlog(path) == [{"ok": 1}]
