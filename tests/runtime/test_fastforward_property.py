"""Property test: dense stepping and fast-forward scheduling are bit-identical.

The active-set scheduler (``Simulator.dense=False``, the default) may only
change wall-clock behaviour: every packet must be delivered at exactly the
same cycle as under dense per-cycle polling. This is the load-bearing
guarantee behind the committed golden baselines, so it is checked as a
hypothesis property across random seeds, injection rates, topologies and
fault campaigns rather than at a handful of hand-picked points.
"""

from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import reset_packet_ids
from repro.noc.stats import StatsCollector
from repro.runtime.executor import execute_inline
from repro.runtime.spec import FaultSpec, RunSpec


@contextmanager
def delivery_log():
    """Record every (cycle, packet id) ejection, in delivery order."""
    events = []
    orig = StatsCollector.on_packet_ejected

    def patched(self, packet, now):
        events.append((now, packet.pid))
        return orig(self, packet, now)

    StatsCollector.on_packet_ejected = patched
    try:
        yield events
    finally:
        StatsCollector.on_packet_ejected = orig


def _run(topology, rate, seed, faults, dense):
    reset_packet_ids()
    key, kwargs = topology
    spec = RunSpec.create(
        topology=key,
        topology_kwargs=kwargs,
        pattern="UN",
        rate=rate,
        cycles=300,
        warmup=100,
        seed=seed,
        faults=faults,
        dense=dense,
    )
    with delivery_log() as events:
        _, _, result = execute_inline(spec)
    return events, result.summary


FAULTS = st.sampled_from(
    [
        None,
        FaultSpec(kind="bursty", burst_rate=0.02, burst_duration=20),
        FaultSpec(kind="death", at=120),
    ]
)


@settings(max_examples=12, deadline=None)
@given(
    topology=st.sampled_from([("own256", None), ("cmesh", {"n_cores": 256})]),
    rate=st.sampled_from([0.02, 0.05, 0.08]),
    seed=st.integers(min_value=0, max_value=2**16 - 1),
    faults=FAULTS,
)
def test_dense_and_fast_deliver_identically(topology, rate, seed, faults):
    if topology[0] != "own256":
        faults = None  # fault campaigns target wireless channels
    fast_events, fast_summary = _run(topology, rate, seed, faults, dense=False)
    dense_events, dense_summary = _run(topology, rate, seed, faults, dense=True)

    assert fast_events, "scenario delivered no packets; raise rate/cycles"
    assert fast_events == dense_events
    assert fast_summary == dense_summary
