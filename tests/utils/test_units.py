"""Unit conversions: exact anchors, inverses, error paths."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.units import (
    BOLTZMANN_J_K,
    SPEED_OF_LIGHT_M_S,
    db_to_linear,
    dbm_to_watts,
    ghz,
    linear_to_db,
    mhz,
    mm,
    thermal_noise_dbm,
    watts_to_dbm,
    wavelength_m,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == 1.0

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_three_db_is_two(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_linear_to_db_anchor(self):
        assert linear_to_db(100.0) == pytest.approx(20.0)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_roundtrip(self, x):
        assert linear_to_db(db_to_linear(x)) == pytest.approx(x, abs=1e-9)

    @pytest.mark.parametrize("bad", [0.0, -1.0, -1e-12])
    def test_linear_to_db_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            linear_to_db(bad)


class TestDbm:
    def test_zero_dbm_is_one_mw(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    @given(st.floats(min_value=-120.0, max_value=60.0))
    def test_roundtrip(self, x):
        assert watts_to_dbm(dbm_to_watts(x)) == pytest.approx(x, abs=1e-9)

    def test_watts_to_dbm_rejects_zero(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)


class TestScales:
    def test_ghz(self):
        assert ghz(90.0) == 90e9

    def test_mhz(self):
        assert mhz(1.0) == 1e6

    def test_mm(self):
        assert mm(25.0) == 0.025


class TestPhysics:
    def test_wavelength_90ghz(self):
        # 90 GHz -> ~3.33 mm.
        assert wavelength_m(90e9) == pytest.approx(3.33e-3, rel=1e-2)

    def test_wavelength_rejects_non_positive(self):
        with pytest.raises(ValueError):
            wavelength_m(0.0)

    def test_thermal_noise_1hz(self):
        # kT at 290 K in dBm/Hz is the canonical -174.
        assert thermal_noise_dbm(1.0) == pytest.approx(-174.0, abs=0.1)

    def test_thermal_noise_scales_10db_per_decade(self):
        assert thermal_noise_dbm(1e9) - thermal_noise_dbm(1e8) == pytest.approx(10.0)

    @pytest.mark.parametrize("bw,temp", [(0.0, 290.0), (1e9, 0.0), (-1.0, 290.0)])
    def test_thermal_noise_validation(self, bw, temp):
        with pytest.raises(ValueError):
            thermal_noise_dbm(bw, temp)

    def test_constants_sane(self):
        assert SPEED_OF_LIGHT_M_S == pytest.approx(2.998e8, rel=1e-3)
        assert BOLTZMANN_J_K == pytest.approx(1.38e-23, rel=1e-2)
