"""RNG stream management: determinism, independence, namespacing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "traffic", 7) == derive_seed(42, "traffic", 7)

    def test_key_sensitivity(self):
        assert derive_seed(42, "traffic", 7) != derive_seed(42, "traffic", 8)

    def test_master_sensitivity(self):
        assert derive_seed(42, "x") != derive_seed(43, "x")

    def test_positive_63_bit(self):
        for seed in (0, 1, 2**31, 123456789):
            child = derive_seed(seed, "k")
            assert 0 <= child < 2**63

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=20))
    def test_always_in_range(self, master, key):
        assert 0 <= derive_seed(master, key) < 2**63


class TestRngStreams:
    def test_same_key_same_generator_object(self):
        streams = RngStreams(1)
        assert streams.get("a", 0) is streams.get("a", 0)

    def test_streams_reproducible_across_instances(self):
        a = RngStreams(99).get("traffic", "UN").random(5)
        b = RngStreams(99).get("traffic", "UN").random(5)
        assert np.allclose(a, b)

    def test_streams_independent(self):
        s = RngStreams(1)
        a = s.get("a").random(100)
        b = s.get("b").random(100)
        assert not np.allclose(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        s1 = RngStreams(7)
        first = s1.get("x").random(3)
        s2 = RngStreams(7)
        s2.get("unrelated")  # extra consumer created first
        second = s2.get("x").random(3)
        assert np.allclose(first, second)

    def test_spawn_namespacing(self):
        parent = RngStreams(5)
        child1 = parent.spawn("sub")
        child2 = parent.spawn("sub")
        assert child1.master_seed == child2.master_seed
        assert child1.master_seed != parent.master_seed

    def test_spawn_distinct_keys(self):
        parent = RngStreams(5)
        assert parent.spawn("a").master_seed != parent.spawn("b").master_seed
