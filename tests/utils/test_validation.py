"""Argument-validation helpers."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.1])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("y", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="y"):
            check_non_negative("y", -1e-9)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("z", 0, 0, 10) == 0
        assert check_in_range("z", 10, 0, 10) == 10

    @pytest.mark.parametrize("bad", [-0.001, 10.001])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError, match="z"):
            check_in_range("z", bad, 0, 10)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.5)


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("good", [1, 2, 4, 256, 1024, 2**20])
    def test_accepts(self, good):
        assert check_power_of_two("n", good) == good

    @pytest.mark.parametrize("bad", [0, -2, 3, 6, 255, 1000])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="n"):
            check_power_of_two("n", bad)
