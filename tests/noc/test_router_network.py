"""Router pipeline and Network construction unit tests."""

import pytest

from repro.noc import (
    Network,
    Packet,
    RoutingFunction,
    SharedMedium,
    Simulator,
    VCState,
    reset_packet_ids,
)
from repro.traffic import ScriptedTraffic


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


class DirectRouting(RoutingFunction):
    """Eject locally, else forward on the single inter-router port."""

    def __init__(self, net, fwd):
        self.net = net
        self.fwd = fwd

    def compute(self, router, packet):
        dst = self.net.core_router[packet.dst_core]
        if dst == router.rid:
            return self.net.core_eject_port[packet.dst_core]
        return self.fwd[router.rid]


def two_router_net(num_vcs=2, vc_depth=4):
    net = Network("t", n_cores=2, num_vcs=num_vcs, vc_depth=vc_depth)
    net.add_router()
    net.add_router()
    net.attach_core(0, 0)
    net.attach_core(1, 1)
    p01, _ = net.connect(0, 1)
    p10, _ = net.connect(1, 0)
    net.set_routing(DirectRouting(net, {0: p01, 1: p10}))
    net.finalize()
    return net


class TestNetworkConstruction:
    def test_core_attachment_maps(self):
        net = two_router_net()
        assert net.core_router == [0, 1]
        assert all(p is not None for p in net.core_eject_port)
        assert all(ni is not None for ni in net.interfaces)

    def test_double_attach_rejected(self):
        net = Network("t", n_cores=2)
        net.add_router()
        net.attach_core(0, 0)
        with pytest.raises(ValueError, match="already attached"):
            net.attach_core(0, 0)

    def test_finalize_requires_all_cores(self):
        net = Network("t", n_cores=2)
        net.add_router()
        net.attach_core(0, 0)
        with pytest.raises(ValueError, match="core 1"):
            net.finalize()

    def test_finalize_requires_routing(self):
        net = Network("t", n_cores=2)
        net.add_router()
        net.attach_core(0, 0)
        net.attach_core(1, 0)
        with pytest.raises(ValueError, match="routing"):
            net.finalize()

    def test_tiny_network_rejected(self):
        with pytest.raises(ValueError):
            Network("t", n_cores=1)

    def test_radix_histogram(self):
        net = two_router_net()
        hist = net.radix_histogram()
        assert sum(hist.values()) == 2

    def test_links_by_kind(self):
        net = two_router_net()
        # 2 eject links + 2 inter-router links, all electrical.
        assert len(net.links_by_kind("electrical")) == 4
        assert net.links_by_kind("wireless") == []

    def test_connect_bus_multicast_degree_check(self):
        net = Network("t", n_cores=2)
        net.add_router()
        net.add_router()
        medium = SharedMedium("m", kind="wireless", multicast_degree=3)
        with pytest.raises(ValueError, match="multicast_degree"):
            net.connect_multicast(
                [0], [1], resolver=lambda p: 0, reader_keys=[0],
                kind="wireless", medium=medium,
            )

    def test_connect_bus_requires_writers(self):
        net = Network("t", n_cores=2)
        net.add_router()
        medium = SharedMedium("m", kind="photonic")
        with pytest.raises(ValueError, match="writer"):
            net.connect_bus([], 0, "photonic", medium)

    def test_euclid_link_length(self):
        net = Network("t", n_cores=2)
        net.add_router(position_mm=(0.0, 0.0))
        net.add_router(position_mm=(3.0, 4.0))
        net.attach_core(0, 0)
        net.attach_core(1, 1)
        net.connect(0, 1)
        link = [l for l in net.links if not l.name.startswith("eject")][0]
        assert link.length_mm == pytest.approx(5.0)


class TestRouterPipeline:
    def test_rc_then_vca_then_active(self):
        net = two_router_net()
        sim = Simulator(net, traffic=ScriptedTraffic([(0, 0, 1, 2)]))
        # After injection (cycle 0) the head sits in an IDLE VC; RC runs the
        # same cycle; VCA the next; ACTIVE after that.
        sim.step()  # cycle 0: inject (after RC phase -> still raw)
        sim.step()  # cycle 1: RC marks WAITING_VC -> VCA may run next
        router = net.routers[0]
        states = {vc.state for port in router.input_ports for vc in port.vcs if vc.queue}
        assert states <= {VCState.WAITING_VC, VCState.ACTIVE}
        sim.run(30)
        assert sim.stats.packets_ejected == 1

    def test_paper_radix_attr_used(self):
        net = Network("t", n_cores=2)
        r = net.add_router(attrs={"paper_radix": 42})
        assert r.attrs["paper_radix"] == 42

    def test_event_counters_progress(self):
        net = two_router_net()
        sim = Simulator(net, traffic=ScriptedTraffic([(0, 0, 1, 4)]))
        sim.run(40)
        r0 = net.routers[0]
        assert r0.buffer_writes == 4  # 4 flits injected
        assert r0.buffer_reads == 4
        assert r0.xbar_traversals == 4
        assert r0.sa_grants == 4
        assert r0.vca_grants == 1  # one packet, one allocation

    def test_missing_output_link_rejected_at_finalize(self):
        net = Network("t", n_cores=2)
        r = net.add_router()
        net.attach_core(0, 0)
        net.attach_core(1, 0)
        r.add_output_port()  # dangling port

        class Dummy(RoutingFunction):
            def compute(self, router, packet):
                return 0

        net.set_routing(Dummy())
        with pytest.raises(ValueError, match="no link"):
            net.finalize()


class TestNetworkInterface:
    def test_backlog_drains(self):
        net = two_router_net()
        sim = Simulator(net, traffic=ScriptedTraffic([(0, 0, 1, 4), (0, 0, 1, 4)]))
        sim.step()
        ni = net.interfaces[0]
        assert ni.backlog > 0
        sim.run(60)
        assert ni.backlog == 0
        assert ni.flits_injected == 8

    def test_one_flit_per_cycle(self):
        net = two_router_net()
        sim = Simulator(net, traffic=ScriptedTraffic([(0, 0, 1, 4)]))
        sim.step()
        assert net.interfaces[0].flits_injected == 1
        sim.step()
        assert net.interfaces[0].flits_injected == 2

    def test_vct_admission_at_injection(self):
        # vc_depth 4 with 4-flit packets: the NI may only start a packet
        # into a VC with all 4 credits free.
        net = two_router_net(num_vcs=1, vc_depth=4)
        sched = [(0, 0, 1, 4), (0, 0, 1, 4)]
        sim = Simulator(net, traffic=ScriptedTraffic(sched))
        sim.run(100)
        assert sim.stats.packets_ejected == 2
