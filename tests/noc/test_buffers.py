"""Virtual-channel buffer and input-port behaviour."""

import pytest

from repro.noc.buffers import InputPort, VCState, VirtualChannel
from repro.noc.packet import Packet, reset_packet_ids


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


def flits(n=4):
    return Packet(0, 1, n, 0).make_flits()


class TestVirtualChannel:
    def test_initial_state(self):
        vc = VirtualChannel(2, 4)
        assert vc.state is VCState.IDLE
        assert not vc.occupied
        assert vc.free_slots == 4

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            VirtualChannel(0, 0)

    def test_fifo_order(self):
        vc = VirtualChannel(0, 4)
        fs = flits(4)
        for f in fs:
            vc.push(f)
        assert vc.front() is fs[0]
        assert [vc.pop() for _ in range(4)] == fs

    def test_overflow_is_a_hard_error(self):
        vc = VirtualChannel(0, 2)
        fs = flits(3)
        vc.push(fs[0])
        vc.push(fs[1])
        with pytest.raises(RuntimeError, match="overflow"):
            vc.push(fs[2])

    def test_release_resets_route_state(self):
        vc = VirtualChannel(0, 4)
        vc.state = VCState.ACTIVE
        vc.out_port = 3
        vc.out_vc = 1
        vc.release()
        assert vc.state is VCState.IDLE
        assert vc.out_port is None and vc.out_vc is None and vc.endpoint is None

    def test_free_slots_tracks_occupancy(self):
        vc = VirtualChannel(0, 4)
        fs = flits(2)
        vc.push(fs[0])
        assert vc.free_slots == 3
        vc.push(fs[1])
        assert vc.free_slots == 2
        vc.pop()
        assert vc.free_slots == 3


class TestInputPort:
    def test_geometry(self):
        port = InputPort(1, num_vcs=4, vc_depth=8, kind="photonic")
        assert port.num_vcs == 4
        assert all(vc.depth == 8 for vc in port.vcs)
        assert port.kind == "photonic"

    def test_rejects_zero_vcs(self):
        with pytest.raises(ValueError):
            InputPort(0, num_vcs=0, vc_depth=4)

    def test_occupied_vcs(self):
        port = InputPort(0, num_vcs=3, vc_depth=4)
        assert port.occupied_vcs() == []
        port.vcs[1].push(flits(1)[0])
        occ = port.occupied_vcs()
        assert len(occ) == 1 and occ[0].index == 1

    def test_total_occupancy(self):
        port = InputPort(0, num_vcs=2, vc_depth=4)
        fs = flits(3)
        port.vcs[0].push(fs[0])
        port.vcs[0].push(fs[1])
        port.vcs[1].push(fs[2])
        assert port.total_occupancy() == 3
