"""Simulator-level behaviour: determinism, drain, stats windows, multicast."""

import pytest

from repro.noc import (
    Network,
    RoutingFunction,
    SharedMedium,
    Simulator,
    reset_packet_ids,
)
from repro.noc.simulator import SimulationDeadlock
from repro.noc.stats import LatencyStats, StatsCollector
from repro.noc.packet import Packet
from repro.telemetry import (
    DEADLOCK,
    DRAIN_END,
    DRAIN_START,
    FLIT_RECV,
    TRAFFIC_RESUMED,
    Tracer,
)
from repro.traffic import ScriptedTraffic, SyntheticTraffic
from repro.topologies import build_cmesh


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


class TestDeterminism:
    def test_same_seed_same_results(self):
        def run():
            reset_packet_ids()
            built = build_cmesh(64)
            sim = Simulator(
                built.network,
                traffic=SyntheticTraffic(64, "UN", 0.05, 4, seed=17, stop_cycle=300),
            )
            sim.run(300)
            sim.drain()
            return (
                sim.stats.packets_ejected,
                sim.stats.flits_ejected,
                tuple(sim.stats.latencies),
            )

        assert run() == run()

    def test_different_seed_different_results(self):
        def run(seed):
            reset_packet_ids()
            built = build_cmesh(64)
            sim = Simulator(
                built.network,
                traffic=SyntheticTraffic(64, "UN", 0.05, 4, seed=seed, stop_cycle=300),
            )
            sim.run(300)
            sim.drain()
            return tuple(sim.stats.latencies)

        assert run(1) != run(2)


class TestDrain:
    def test_drain_empties_network(self):
        built = build_cmesh(64)
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(64, "UN", 0.05, 4, seed=1, stop_cycle=200),
        )
        sim.run(200)
        assert sim.drain()
        assert built.network.total_occupancy() == 0
        assert not sim._pending_work()

    def test_drain_budget_respected(self):
        built = build_cmesh(64)
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(64, "UN", 0.2, 4, seed=1, stop_cycle=50),
        )
        sim.run(50)
        # Tiny budget: may or may not finish, but must return a bool quickly.
        result = sim.drain(max_cycles=1)
        assert isinstance(result, bool)

    def test_credit_latency_validated(self):
        built = build_cmesh(64)
        with pytest.raises(ValueError):
            Simulator(built.network, credit_latency=0)

    def test_resume_traffic_restores_injection(self):
        built = build_cmesh(64)
        traffic = SyntheticTraffic(64, "UN", 0.05, 4, seed=1)
        sim = Simulator(built.network, traffic=traffic)
        sim.run(100)
        assert sim.drain()
        assert sim.traffic is None
        created = sim.stats.packets_created
        assert sim.resume_traffic() is traffic
        sim.run(100)
        assert sim.stats.packets_created > created

    def test_resume_traffic_prefers_manual_override(self):
        built = build_cmesh(64)
        sim = Simulator(
            built.network, traffic=SyntheticTraffic(64, "UN", 0.05, 4, seed=1)
        )
        sim.run(50)
        sim.drain()
        override = SyntheticTraffic(64, "UN", 0.01, 4, seed=2)
        sim.traffic = override
        assert sim.resume_traffic() is override
        assert sim._paused_traffic is None

    def test_resume_traffic_without_drain_is_noop(self):
        built = build_cmesh(64)
        sim = Simulator(built.network)
        assert sim.resume_traffic() is None


class TestStatsWindows:
    def test_warmup_excludes_early_packets(self):
        built = build_cmesh(64)
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(64, "UN", 0.05, 4, seed=1, stop_cycle=400),
            warmup_cycles=200,
        )
        sim.run(400)
        sim.drain()
        assert sim.stats.measured_packets < sim.stats.packets_ejected
        assert sim.stats.measured_packets > 0

    def test_warmup_epoch_split_latency_vs_throughput(self):
        # Latency samples admit only packets *created* inside the window;
        # throughput counts every flit *delivered* inside it. A warmup-era
        # packet ejected post-warmup loads the delivery rate but must not
        # skew the latency distribution.
        c = StatsCollector(4, warmup_cycles=100)
        pre = Packet(0, 1, 1, 10)     # created and ejected pre-warmup
        early = Packet(0, 1, 4, 50)   # created pre-warmup, ejected in window
        late = Packet(0, 1, 4, 120)   # created in window
        for p in (pre, early, late):
            c.on_packet_created(p)
        c.on_flit_ejected(90, pre)
        c.on_packet_ejected(pre, 90)
        for _ in range(4):
            c.on_flit_ejected(110, early)
        c.on_packet_ejected(early, 110)
        for _ in range(4):
            c.on_flit_ejected(140, late)
        c.on_packet_ejected(late, 140)

        assert c.flits_ejected_total == 9  # power accounting sees all
        assert c.flits_ejected == 8        # both in-window ejections count
        assert c.measured_packets == 1     # only the post-warmup creation
        assert c.latencies == [140 - 120]
        s = c.summary(end_cycle=200)
        assert s["latency_samples"] == 1.0
        assert s["throughput"] == 8 / (4 * 100)

    def test_untagged_packet_falls_back_to_creation_epoch(self):
        # Manually injected packets bypass on_packet_created, so their
        # measured tag is still None: ejection must fall back to the
        # t_create >= warmup test instead of treating None as False.
        c = StatsCollector(4, warmup_cycles=100)
        p = Packet(0, 1, 4, 120)
        assert p.measured is None
        c.on_packet_ejected(p, 150)
        assert c.measured_packets == 1
        assert c.latencies == [30]

    def test_throughput_nan_before_window(self):
        collector = StatsCollector(4, warmup_cycles=100)
        assert collector.throughput_flits_per_core_cycle(50) != collector.throughput_flits_per_core_cycle(50)  # NaN

    def test_latency_stats_empty(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert stats.mean != stats.mean  # NaN

    def test_latency_stats_values(self):
        stats = LatencyStats.from_samples([10, 20, 30, 40])
        assert stats.count == 4
        assert stats.mean == 25.0
        assert stats.median == 25.0
        assert stats.max == 40.0

    def test_hops_tracked(self):
        collector = StatsCollector(4)
        p = Packet(0, 1, 4, 0)
        p.hops = 3
        p.wireless_hops = 1
        p.photonic_hops = 2
        collector.on_packet_ejected(p, 50)
        assert collector.avg_hops() == 3.0
        assert collector.avg_wireless_hops() == 1.0


class TestRunPhaseTraceMarkers:
    """Regression locks on drain / resume / deadlock via trace events."""

    def _traced(self, rate=0.05, cycles=200):
        built = build_cmesh(64)
        tracer = Tracer()
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(64, "UN", rate, 4, seed=1, stop_cycle=cycles),
            tracer=tracer,
        )
        sim.run(cycles)
        return sim, tracer

    def test_drain_markers_bracket_the_drain(self):
        sim, tracer = self._traced()
        assert sim.drain()
        starts = [ev for ev in tracer.events if ev.etype == DRAIN_START]
        ends = [ev for ev in tracer.events if ev.etype == DRAIN_END]
        assert len(starts) == len(ends) == 1
        start, end = starts[0], ends[0]
        assert start.cycle <= end.cycle
        assert end.args["drained"] is True
        assert start.args["occupancy"] >= 0
        assert start.args["backlog"] >= 0

    def test_drained_flit_count_matches_sink_deliveries(self):
        sim, tracer = self._traced()
        ejected_before = sim.stats.flits_ejected
        packets_before = sim.stats.packets_ejected
        assert sim.drain()
        start = next(ev for ev in tracer.events if ev.etype == DRAIN_START)
        end = next(ev for ev in tracer.events if ev.etype == DRAIN_END)
        # Every flit ejected during the drain window shows up as exactly
        # one FLIT_RECV at a core sink.
        sink_recvs = [
            ev
            for ev in tracer.events
            if ev.etype == FLIT_RECV
            and ev.component.endswith(".sink")
            and start.cycle <= ev.cycle <= end.cycle
        ]
        assert len(sink_recvs) == sim.stats.flits_ejected - ejected_before > 0
        assert end.args["ejected"] == sim.stats.packets_ejected - packets_before
        assert end.args["moved"] >= len(sink_recvs)

    def test_incomplete_drain_marked_not_drained(self):
        sim, tracer = self._traced(rate=0.2, cycles=60)
        if sim.drain(max_cycles=1):
            pytest.skip("network emptied in one cycle")
        end = next(ev for ev in tracer.events if ev.etype == DRAIN_END)
        assert end.args["drained"] is False

    def test_resume_traffic_marker(self):
        sim, tracer = self._traced()
        sim.drain()
        sim.resume_traffic()
        resumed = [ev for ev in tracer.events if ev.etype == TRAFFIC_RESUMED]
        assert len(resumed) == 1
        assert resumed[0].args["restored"] is True

    def test_resume_without_traffic_marks_unrestored(self):
        built = build_cmesh(64)
        tracer = Tracer()
        sim = Simulator(built.network, tracer=tracer)
        sim.resume_traffic()
        resumed = [ev for ev in tracer.events if ev.etype == TRAFFIC_RESUMED]
        assert len(resumed) == 1
        assert resumed[0].args["restored"] is False


class LineRouting(RoutingFunction):
    """0 -> 1 forwarding for the two-router deadlock fixture."""

    def __init__(self, net, fwd_port):
        self.net = net
        self.fwd_port = fwd_port

    def compute(self, router, packet):
        dst = self.net.core_router[packet.dst_core]
        if dst == router.rid:
            return self.net.core_eject_port[packet.dst_core]
        return self.fwd_port


class TestDeadlockReport:
    def _stuck_sim(self, tracer=None):
        net = Network("line", n_cores=2, num_vcs=2, vc_depth=4)
        net.add_router()
        net.add_router()
        net.attach_core(0, 0)
        net.attach_core(1, 1)
        fwd_port, _ = net.connect(0, 1)
        net.set_routing(LineRouting(net, fwd_port))
        net.finalize()
        sim = Simulator(net, watchdog=10, tracer=tracer)
        # Artificially exhaust the downstream VCs: VCA can never succeed,
        # so the injected packet is provably stuck.
        endpoint = net.routers[0].out_links[fwd_port].resolve_endpoint(
            Packet(0, 1, 4, 0)
        )
        endpoint.vc_busy = [True] * len(endpoint.vc_busy)
        net.inject_packet(Packet(0, 1, 4, 0, allocator=sim.packet_ids))
        return sim

    def test_watchdog_raises_with_diagnostics(self):
        sim = self._stuck_sim()
        with pytest.raises(SimulationDeadlock) as excinfo:
            sim.run(100)
        msg = str(excinfo.value)
        assert "no progress" in msg
        assert "audit" in msg
        assert "stuck flits by router" in msg
        assert "r0" in msg

    def test_slow_link_with_pending_events_is_not_deadlock(self):
        # Regression: a link whose latency exceeds the watchdog budget
        # leaves the second packet buffered upstream (sole downstream VC
        # held by the first) with zero movement for longer than the
        # no-progress window -- but the first packet's in-flight flits and
        # the returning VC release/credits are scheduled events, i.e.
        # guaranteed future progress. The watchdog must consult the
        # pending event queue before declaring deadlock.
        net = Network("line", n_cores=2, num_vcs=1, vc_depth=4)
        net.add_router()
        net.add_router()
        net.attach_core(0, 0)
        net.attach_core(1, 1)
        fwd_port, _ = net.connect(0, 1, latency=40)
        net.set_routing(LineRouting(net, fwd_port))
        net.finalize()
        sim = Simulator(net, watchdog=10)
        net.inject_packet(Packet(0, 1, 4, 0, allocator=sim.packet_ids))
        net.inject_packet(Packet(0, 1, 4, 0, allocator=sim.packet_ids))
        sim.run(600)  # several credit round trips at latency 40
        sim.drain()
        assert sim.stats.packets_ejected == 2

    def test_deadlock_trace_event_carries_occupancy(self):
        tracer = Tracer()
        sim = self._stuck_sim(tracer=tracer)
        with pytest.raises(SimulationDeadlock):
            sim.run(100)
        deadlocks = [ev for ev in tracer.events if ev.etype == DEADLOCK]
        assert len(deadlocks) == 1
        assert deadlocks[0].args["occupancy"] == sim.network.total_occupancy() > 0


class SWMRRouting(RoutingFunction):
    def __init__(self, net, ports):
        self.net = net
        self.ports = ports

    def compute(self, router, packet):
        dst = self.net.core_router[packet.dst_core]
        if dst == router.rid:
            return self.net.core_eject_port[packet.dst_core]
        return self.ports[router.rid]


class TestSWMRMulticast:
    def build(self):
        # Routers 0,1 are writers; routers 2,3 are readers of one SWMR
        # channel; resolver picks the reader by destination core.
        net = Network("swmr", n_cores=4, num_vcs=2, vc_depth=4)
        for _ in range(4):
            net.add_router()
        for core, rid in enumerate([0, 1, 2, 3]):
            net.attach_core(core, rid)
        medium = SharedMedium("air", kind="wireless", arb_latency=1, multicast_degree=2)
        ports = net.connect_multicast(
            [0, 1], [2, 3],
            resolver=lambda p: net.core_router[p.dst_core],
            reader_keys=[2, 3],
            kind="wireless",
            medium=medium,
        )
        net.set_routing(SWMRRouting(net, ports))
        net.finalize()
        return net, medium

    def test_delivery_to_intended_receiver_only(self):
        net, medium = self.build()
        sim = Simulator(net, traffic=ScriptedTraffic([(0, 0, 2, 4), (0, 1, 3, 4)]))
        sim.run(200)
        assert sim.stats.packets_ejected == 2
        assert medium.flits_carried == 8
        assert medium.multicast_degree == 2  # power model charges 2 receivers

    def test_token_serialises_writers(self):
        net, medium = self.build()
        sim = Simulator(net, traffic=ScriptedTraffic([(0, 0, 2, 4), (0, 1, 2, 4)]))
        sim.run(300)
        assert sim.stats.packets_ejected == 2
        assert medium.grants == 2

    def test_writers_to_same_reader_distinct_vcs(self):
        """Two writers to one reader must not interleave into one VC."""
        net, medium = self.build()
        sched = [(0, 0, 2, 4), (0, 1, 2, 4), (1, 0, 2, 4), (1, 1, 2, 4)]
        sim = Simulator(net, traffic=ScriptedTraffic(sched))
        sim.run(400)
        assert sim.stats.packets_ejected == 4
