"""Endpoint, Link and SharedMedium unit behaviour."""

import pytest

from repro.noc.links import Endpoint, Link, SharedMedium
from repro.noc.packet import Packet, reset_packet_ids


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


class TestEndpoint:
    def test_credit_lifecycle(self):
        ep = Endpoint(None, 0, num_vcs=2, vc_depth=3)
        assert ep.credits == [3, 3]
        assert ep.has_credit(0)
        ep.take_credit(0)
        ep.take_credit(0)
        ep.take_credit(0)
        assert not ep.has_credit(0)
        assert ep.has_credit(1)
        ep.return_credit(0)
        assert ep.has_credit(0)

    def test_credit_underflow_detected(self):
        ep = Endpoint(None, 0, num_vcs=1, vc_depth=1)
        ep.take_credit(0)
        with pytest.raises(RuntimeError, match="underflow"):
            ep.take_credit(0)

    def test_vc_busy_lifecycle(self):
        ep = Endpoint(None, 0, num_vcs=2, vc_depth=4)
        ep.acquire_vc(1)
        assert ep.vc_busy[1]
        with pytest.raises(RuntimeError, match="double"):
            ep.acquire_vc(1)
        ep.release_vc(1)
        ep.acquire_vc(1)

    def test_sink_is_unconstrained(self):
        sink = Endpoint(None, 0, num_vcs=1, vc_depth=1, is_sink=True)
        for _ in range(100):
            assert sink.has_credit(0)
            sink.take_credit(0)
        sink.acquire_vc(0)
        sink.acquire_vc(0)  # no double-allocation error for sinks
        assert sink.can_accept_packet(0, 10_000)

    def test_vct_admission(self):
        ep = Endpoint(None, 0, num_vcs=1, vc_depth=4)
        assert ep.can_accept_packet(0, 4)
        ep.take_credit(0)
        assert not ep.can_accept_packet(0, 4)
        assert ep.can_accept_packet(0, 3)

    def test_vct_oversized_packet_is_an_error(self):
        ep = Endpoint(None, 0, num_vcs=1, vc_depth=4)
        with pytest.raises(ValueError, match="never fit"):
            ep.can_accept_packet(0, 5)


def make_link(**kw):
    ep = kw.pop("endpoint", Endpoint(None, 0, num_vcs=2, vc_depth=4))
    defaults = dict(name="l", src_router=None, out_port=0, endpoint=ep)
    defaults.update(kw)
    return Link(**defaults), ep


class TestLink:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            make_link(kind="copper")
        with pytest.raises(ValueError, match="latency"):
            make_link(latency=0)
        with pytest.raises(ValueError, match="cycles_per_flit"):
            make_link(cycles_per_flit=0)
        with pytest.raises(ValueError, match="endpoint"):
            Link("l", None, 0, None)

    def test_serialization_busy_window(self):
        link, _ = make_link(cycles_per_flit=3)
        pkt = Packet(0, 1, 2, 0)
        flits = pkt.make_flits()
        assert link.ready(0)
        link.on_flit_sent(0, flits[0], 128)
        assert not link.ready(1) and not link.ready(2)
        assert link.ready(3)

    def test_bit_accounting(self):
        link, _ = make_link()
        flits = Packet(0, 1, 3, 0).make_flits()
        for t, f in enumerate(flits):
            link.on_flit_sent(t, f, 128)
        assert link.flits_carried == 3
        assert link.bits_carried == 3 * 128

    def test_resolver_endpoints(self):
        eps = {
            0: Endpoint(None, 0, 2, 4, name="a"),
            1: Endpoint(None, 1, 2, 4, name="b"),
        }
        link = Link(
            "mc", None, 0, None, endpoints=eps,
            resolver=lambda pkt: pkt.dst_core % 2,
        )
        assert link.resolve_endpoint(Packet(0, 2, 1, 0)) is eps[0]
        assert link.resolve_endpoint(Packet(0, 3, 1, 0)) is eps[1]
        assert set(link.all_endpoints()) == set(eps.values())

    def test_resolver_unknown_key(self):
        eps = {0: Endpoint(None, 0, 2, 4)}
        link = Link("mc", None, 0, None, endpoints=eps, resolver=lambda pkt: 9)
        with pytest.raises(RuntimeError, match="unknown endpoint key"):
            link.resolve_endpoint(Packet(0, 1, 1, 0))

    def test_multi_endpoint_requires_resolver(self):
        eps = {0: Endpoint(None, 0, 2, 4)}
        with pytest.raises(ValueError, match="resolver"):
            Link("mc", None, 0, None, endpoints=eps)


class TestSharedMedium:
    def test_validation(self):
        with pytest.raises(ValueError):
            SharedMedium("m", kind="copper")
        with pytest.raises(ValueError):
            SharedMedium("m", kind="wireless", arb_latency=-1)
        with pytest.raises(ValueError):
            SharedMedium("m", kind="wireless", multicast_degree=0)

    def test_grant_round_robin_over_requesters(self):
        medium = SharedMedium("m", kind="photonic", arb_latency=0)
        links = []
        for i in range(3):
            link, _ = make_link(medium=medium, name=f"w{i}", out_port=i)
            links.append(link)
        medium.note_request(links[0])
        medium.note_request(links[2])
        medium.try_grant(0)
        assert medium.holder is links[0]
        medium.holder = None
        medium.try_grant(1)
        assert medium.holder is links[2]  # rotation passed link 1 (no request)

    def test_arb_latency_delays_transmission(self):
        medium = SharedMedium("m", kind="photonic", arb_latency=3)
        link, _ = make_link(medium=medium)
        medium.note_request(link)
        medium.try_grant(10)
        assert medium.holder is link
        assert not medium.can_transmit(link, 11)
        assert medium.can_transmit(link, 13)

    def test_holder_released_on_tail(self):
        medium = SharedMedium("m", kind="photonic", arb_latency=0)
        link, _ = make_link(medium=medium)
        medium.note_request(link)
        medium.try_grant(0)
        flits = Packet(0, 1, 2, 0).make_flits()
        medium.on_flit_sent(0, 1, flits[0].is_tail)
        assert medium.holder is link
        medium.on_flit_sent(1, 1, flits[1].is_tail)
        assert medium.holder is None

    def test_serialization_shared_across_writers(self):
        medium = SharedMedium("m", kind="photonic", arb_latency=0)
        l1, _ = make_link(medium=medium, name="w1")
        l2, _ = make_link(medium=medium, name="w2", out_port=1)
        medium.note_request(l1)
        medium.try_grant(0)
        medium.on_flit_sent(0, 4, True)  # busy until cycle 4
        medium.note_request(l2)
        medium.try_grant(1)
        assert medium.holder is l2
        assert not medium.can_transmit(l2, 2)
        assert medium.can_transmit(l2, 4)

    def test_drop_request(self):
        medium = SharedMedium("m", kind="wireless", arb_latency=0, multicast_degree=2)
        link, _ = make_link(medium=medium)
        medium.note_request(link)
        medium.drop_request(link)
        medium.try_grant(0)
        assert medium.holder is None
