"""Conservation-law audits over live simulations of every architecture."""

import pytest

from repro.core import build_own256, build_own1024
from repro.noc import Simulator, reset_packet_ids
from repro.noc.invariants import (
    InvariantViolation,
    audit_network,
    check_credit_consistency,
    check_flit_conservation,
    check_medium_coherence,
    check_vc_state_coherence,
)
from repro.topologies import build_cmesh, build_optxb, build_pclos, build_wcmesh
from repro.traffic import SyntheticTraffic


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


BUILDERS = {
    "cmesh": lambda: build_cmesh(64),
    "wcmesh": lambda: build_wcmesh(64),
    "optxb": lambda: build_optxb(64),
    "pclos": lambda: build_pclos(64),
    "own256": build_own256,
}


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_invariants_hold_throughout_a_run(name):
    built = BUILDERS[name]()
    n = built.n_cores
    sim = Simulator(
        built.network, traffic=SyntheticTraffic(n, "UN", 0.04, 4, seed=9)
    )
    for _ in range(8):
        sim.run(50)
        summary = audit_network(sim)
        assert summary["cycle"] == sim.now


def test_invariants_hold_at_saturation():
    built = build_own256()
    sim = Simulator(
        built.network, traffic=SyntheticTraffic(256, "UN", 0.15, 4, seed=9)
    )
    sim.run(400)
    summary = audit_network(sim)
    assert summary["buffered_flits"] > 0  # genuinely stressed


def test_invariants_hold_after_drain():
    built = build_own256()
    sim = Simulator(
        built.network,
        traffic=SyntheticTraffic(256, "UN", 0.03, 4, seed=9, stop_cycle=200),
    )
    sim.run(200)
    assert sim.drain(30_000)
    summary = audit_network(sim)
    assert summary["buffered_flits"] == 0
    assert summary["in_flight"] == 0
    assert summary["media_held"] == 0


def test_invariants_own1024_short():
    built = build_own1024()
    sim = Simulator(
        built.network, traffic=SyntheticTraffic(1024, "UN", 0.01, 4, seed=9)
    )
    sim.run(150)
    audit_network(sim)


class TestViolationDetection:
    """The checks must actually catch corrupted state."""

    def _running_sim(self):
        built = build_cmesh(64)
        sim = Simulator(
            built.network, traffic=SyntheticTraffic(64, "UN", 0.05, 4, seed=9)
        )
        sim.run(100)
        return built.network, sim

    def test_detects_leaked_credit(self):
        net, sim = self._running_sim()
        # Steal a credit from a busy endpoint.
        for router in net.routers:
            for ep in router.input_endpoints:
                if ep.credits[0] > 0:
                    ep.credits[0] -= 1
                    with pytest.raises(InvariantViolation, match="credit consistency"):
                        check_credit_consistency(sim)
                    return
        pytest.fail("no endpoint with credits found")

    def test_detects_stale_route_state(self):
        net, sim = self._running_sim()
        vc = net.routers[0].input_ports[0].vcs[0]
        if vc.state.name != "IDLE":
            vc.release()
        vc.out_port = 3  # stale
        with pytest.raises(InvariantViolation, match="retains route state"):
            check_vc_state_coherence(net)

    def test_detects_duplicated_flit(self):
        net, sim = self._running_sim()
        # Conjure a flit out of thin air into some buffer.
        from repro.noc.packet import Packet

        ghost = Packet(0, 1, 1, 0).make_flits()[0]
        net.routers[0].input_ports[0].vcs[0].queue.append(ghost)
        created = sim.stats.flits_created
        buffered = net.total_occupancy()
        if buffered <= created:
            # Inflate until the conservation check must trip.
            for _ in range(created - buffered + 1):
                net.routers[0].input_ports[0].vcs[0].queue.append(ghost)
        with pytest.raises(InvariantViolation, match="flit conservation"):
            check_flit_conservation(sim)

    def test_detects_foreign_medium_holder(self):
        built = build_optxb(64)
        sim = Simulator(
            built.network, traffic=SyntheticTraffic(64, "UN", 0.05, 4, seed=9)
        )
        sim.run(60)
        net = built.network
        # Make medium 0 hold a link that belongs to medium 1.
        net.mediums[0].holder = net.mediums[1].members[0]
        with pytest.raises(InvariantViolation, match="not a member"):
            check_medium_coherence(net)
