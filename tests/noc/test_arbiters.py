"""Arbiter correctness and fairness, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.arbiters import MatrixArbiter, RoundRobinArbiter, make_arbiter


class TestRoundRobin:
    def test_no_request_no_grant(self):
        assert RoundRobinArbiter(4).grant([False] * 4) is None

    def test_single_requester_wins(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([False, False, True, False]) == 2

    def test_rotation_after_grant(self):
        arb = RoundRobinArbiter(3)
        all_req = [True, True, True]
        assert arb.grant(all_req) == 0
        assert arb.grant(all_req) == 1
        assert arb.grant(all_req) == 2
        assert arb.grant(all_req) == 0

    def test_strong_fairness(self):
        """Every continuously-requesting input is served within n grants."""
        n = 5
        arb = RoundRobinArbiter(n)
        served = set()
        for _ in range(n):
            served.add(arb.grant([True] * n))
        assert served == set(range(n))

    def test_peek_does_not_advance(self):
        arb = RoundRobinArbiter(3)
        req = [True, True, True]
        assert arb.peek(req) == 0
        assert arb.peek(req) == 0
        assert arb.grant(req) == 0

    def test_reset(self):
        arb = RoundRobinArbiter(3)
        arb.grant([True] * 3)
        arb.reset()
        assert arb.grant([True] * 3) == 0

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(4).grant([True] * 3)

    def test_zero_requesters_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    @given(st.lists(st.booleans(), min_size=1, max_size=12))
    def test_grant_is_always_a_requester(self, requests):
        arb = RoundRobinArbiter(len(requests))
        winner = arb.grant(requests)
        if any(requests):
            assert winner is not None and requests[winner]
        else:
            assert winner is None


class TestMatrixArbiter:
    def test_single_requester_wins(self):
        assert MatrixArbiter(4).grant([False, True, False, False]) == 1

    def test_least_recently_served(self):
        arb = MatrixArbiter(3)
        assert arb.grant([True, True, True]) == 0
        # 0 just served -> lowest priority; 1 wins next.
        assert arb.grant([True, True, True]) == 1
        assert arb.grant([True, True, True]) == 2
        assert arb.grant([True, True, True]) == 0

    def test_winner_loses_priority_even_if_others_idle(self):
        arb = MatrixArbiter(2)
        assert arb.grant([True, False]) == 0
        # Now 1 has precedence when both request.
        assert arb.grant([True, True]) == 1

    def test_reset(self):
        arb = MatrixArbiter(3)
        arb.grant([True, True, True])
        arb.reset()
        assert arb.grant([True, True, True]) == 0

    @given(st.lists(st.booleans(), min_size=1, max_size=10))
    def test_grant_is_always_a_requester(self, requests):
        arb = MatrixArbiter(len(requests))
        winner = arb.grant(requests)
        if any(requests):
            assert winner is not None and requests[winner]
        else:
            assert winner is None

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=200))
    def test_fairness_under_full_load(self, n, rounds):
        """Under continuous full request, grants are evenly distributed."""
        arb = MatrixArbiter(n)
        counts = [0] * n
        total = n * 4 + rounds % n
        for _ in range(total):
            counts[arb.grant([True] * n)] += 1
        assert max(counts) - min(counts) <= 1


class TestFactory:
    def test_round_robin(self):
        assert isinstance(make_arbiter("round_robin", 3), RoundRobinArbiter)

    def test_matrix(self):
        assert isinstance(make_arbiter("matrix", 3), MatrixArbiter)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_arbiter("nope", 3)
