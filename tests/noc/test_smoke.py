"""End-to-end smoke tests of the NoC substrate on tiny hand-built networks.

These tests pin the simulator's basic contracts before any topology builder
exists: packets traverse point-to-point links, MWSR buses and multicast
channels; latency accounting and credits behave.
"""

from __future__ import annotations

import pytest

from repro.noc import (
    Network,
    Packet,
    RoutingFunction,
    SharedMedium,
    Simulator,
    reset_packet_ids,
)
from repro.traffic import ScriptedTraffic


class TwoRouterRouting(RoutingFunction):
    """Cores 0..1 on router 0, cores 2..3 on router 1; one link each way."""

    def __init__(self, net: Network, fwd_port: dict):
        self.net = net
        self.fwd_port = fwd_port  # rid -> out_port towards the other router

    def compute(self, router, packet):
        dst_rid = self.net.core_router[packet.dst_core]
        if dst_rid == router.rid:
            return self.net.core_eject_port[packet.dst_core]
        return self.fwd_port[router.rid]


def build_two_router_net() -> Simulator:
    reset_packet_ids()
    net = Network("pair", n_cores=4, num_vcs=2, vc_depth=4)
    r0 = net.add_router(position_mm=(0, 0))
    r1 = net.add_router(position_mm=(10, 0))
    net.attach_core(0, r0.rid)
    net.attach_core(1, r0.rid)
    net.attach_core(2, r1.rid)
    net.attach_core(3, r1.rid)
    p01, _ = net.connect(r0.rid, r1.rid, latency=1)
    p10, _ = net.connect(r1.rid, r0.rid, latency=1)
    net.set_routing(TwoRouterRouting(net, {0: p01, 1: p10}))
    net.finalize()
    return net


def test_single_packet_delivery():
    net = build_two_router_net()
    sim = Simulator(net, traffic=ScriptedTraffic([(0, 0, 2, 4)]))
    sim.run(60)
    assert sim.stats.packets_ejected == 1
    assert sim.stats.flits_ejected == 4
    lat = sim.stats.latencies[0]
    # inject(1) + router pipeline (3) + link + pipeline at r1 + serialization:
    assert 5 <= lat <= 25


def test_local_delivery_same_router():
    net = build_two_router_net()
    sim = Simulator(net, traffic=ScriptedTraffic([(0, 0, 1, 4)]))
    sim.run(40)
    assert sim.stats.packets_ejected == 1
    # One hop (eject only), no inter-router traversal.
    pkt_hops = sim.stats.hop_sum
    assert pkt_hops == 1


def test_bidirectional_streams_complete():
    sched = [(t, 0, 2, 4) for t in range(0, 40, 4)] + [(t, 3, 1, 4) for t in range(0, 40, 4)]
    net = build_two_router_net()
    sim = Simulator(net, traffic=ScriptedTraffic(sched))
    sim.run(50)
    assert sim.drain()
    assert sim.stats.packets_ejected == 20
    assert sim.stats.flits_ejected == 80


def test_latency_monotone_in_link_latency():
    lats = []
    for link_latency in (1, 5, 10):
        reset_packet_ids()
        net = Network("pair", n_cores=4, num_vcs=2, vc_depth=4)
        r0 = net.add_router()
        r1 = net.add_router()
        for c, r in ((0, 0), (1, 0), (2, 1), (3, 1)):
            net.attach_core(c, r)
        p01, _ = net.connect(0, 1, latency=link_latency)
        p10, _ = net.connect(1, 0, latency=link_latency)
        net.set_routing(TwoRouterRouting(net, {0: p01, 1: p10}))
        net.finalize()
        sim = Simulator(net, traffic=ScriptedTraffic([(0, 0, 2, 4)]))
        sim.run(80)
        assert sim.stats.packets_ejected == 1
        lats.append(sim.stats.latencies[0])
    assert lats[0] < lats[1] < lats[2]
    assert lats[1] - lats[0] == 4  # +4 cycles of link latency
    assert lats[2] - lats[1] == 5


class StarRouting(RoutingFunction):
    """N leaf routers all writing to a hub over one MWSR bus."""

    def __init__(self, net, bus_ports):
        self.net = net
        self.bus_ports = bus_ports  # writer rid -> out_port

    def compute(self, router, packet):
        dst_rid = self.net.core_router[packet.dst_core]
        if dst_rid == router.rid:
            return self.net.core_eject_port[packet.dst_core]
        return self.bus_ports[router.rid]


def build_mwsr_star(n_writers: int = 3, arb_latency: int = 1):
    reset_packet_ids()
    n_cores = n_writers + 1
    net = Network("star", n_cores=n_cores, num_vcs=2, vc_depth=4)
    hub = net.add_router()
    writers = [net.add_router() for _ in range(n_writers)]
    net.attach_core(0, hub.rid)
    for i, w in enumerate(writers):
        net.attach_core(i + 1, w.rid)
    medium = SharedMedium("bus0", kind="photonic", arb_latency=arb_latency)
    ports = net.connect_bus([w.rid for w in writers], hub.rid, "photonic", medium)
    net.set_routing(StarRouting(net, ports))
    net.finalize()
    return net, medium


def test_mwsr_bus_serialises_writers():
    net, medium = build_mwsr_star(n_writers=3)
    # All three writers send to core 0 simultaneously.
    sim = Simulator(net, traffic=ScriptedTraffic([(0, 1, 0, 4), (0, 2, 0, 4), (0, 3, 0, 4)]))
    sim.run(200)
    assert sim.stats.packets_ejected == 3
    assert medium.flits_carried == 12
    assert medium.grants == 3  # token handed to each writer exactly once


def test_mwsr_token_hold_until_tail():
    """A packet's flits must not interleave with another writer's flits."""
    net, medium = build_mwsr_star(n_writers=2)
    sim = Simulator(net, traffic=ScriptedTraffic([(0, 1, 0, 4), (0, 2, 0, 4)]))
    # Track medium holder changes: grants should be exactly 2 (one per packet).
    sim.run(200)
    assert sim.stats.packets_ejected == 2
    assert medium.grants == 2


def test_deadlock_watchdog_fires():
    """A routing function that forwards forever must trip the watchdog."""

    class BlackHoleRouting(RoutingFunction):
        def __init__(self, net, ports):
            self.net = net
            self.ports = ports

        def compute(self, router, packet):
            return self.ports[router.rid]  # never ejects

    reset_packet_ids()
    net = Network("loop", n_cores=2, num_vcs=1, vc_depth=2)
    r0 = net.add_router()
    r1 = net.add_router()
    net.attach_core(0, 0)
    net.attach_core(1, 1)
    p01, _ = net.connect(0, 1)
    p10, _ = net.connect(1, 0)
    net.set_routing(BlackHoleRouting(net, {0: p01, 1: p10}))
    net.finalize()
    # Two opposing packets on a 2-router ring with a single VC: each ends up
    # holding the VC the other one needs -> classic protocol deadlock the
    # watchdog must surface. Inject several per side so the ring stays full.
    sched = [(t, 0, 1, 2) for t in (0, 1, 2)] + [(t, 1, 0, 2) for t in (0, 1, 2)]
    sim = Simulator(net, traffic=ScriptedTraffic(sched), watchdog=50)
    from repro.noc import SimulationDeadlock

    with pytest.raises(SimulationDeadlock):
        sim.run(5000)
