"""Packet / flit segmentation invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.packet import Flit, FlitKind, Packet, reset_packet_ids


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


class TestFlitKind:
    def test_head_flags(self):
        assert FlitKind.HEAD.is_head and not FlitKind.HEAD.is_tail
        assert FlitKind.TAIL.is_tail and not FlitKind.TAIL.is_head
        assert FlitKind.HEAD_TAIL.is_head and FlitKind.HEAD_TAIL.is_tail
        assert not FlitKind.BODY.is_head and not FlitKind.BODY.is_tail


class TestPacket:
    def test_ids_monotone(self):
        p1 = Packet(0, 1, 4, 0)
        p2 = Packet(0, 1, 4, 0)
        assert p2.pid == p1.pid + 1

    def test_reset_packet_ids(self):
        Packet(0, 1, 1, 0)
        reset_packet_ids()
        assert Packet(0, 1, 1, 0).pid == 0

    def test_rejects_self_addressed(self):
        with pytest.raises(ValueError):
            Packet(3, 3, 4, 0)

    def test_rejects_empty_packet(self):
        with pytest.raises(ValueError):
            Packet(0, 1, 0, 0)

    def test_latency_requires_ejection(self):
        p = Packet(0, 1, 4, 10)
        with pytest.raises(RuntimeError):
            _ = p.latency
        p.t_eject = 35
        assert p.latency == 25

    def test_single_flit_packet(self):
        flits = Packet(0, 1, 1, 0).make_flits()
        assert len(flits) == 1
        assert flits[0].kind is FlitKind.HEAD_TAIL

    def test_two_flit_packet(self):
        flits = Packet(0, 1, 2, 0).make_flits()
        assert [f.kind for f in flits] == [FlitKind.HEAD, FlitKind.TAIL]

    @given(st.integers(min_value=1, max_value=64))
    def test_segmentation_invariants(self, size):
        p = Packet(0, 1, size, 0)
        flits = p.make_flits()
        assert len(flits) == size
        assert flits[0].is_head
        assert flits[-1].is_tail
        # Exactly one head and one tail among all flits.
        assert sum(1 for f in flits if f.is_head) == 1
        assert sum(1 for f in flits if f.is_tail) == 1
        # Sequence numbers dense and ordered; all share the parent.
        assert [f.seq for f in flits] == list(range(size))
        assert all(f.packet is p for f in flits)

    def test_iter_flits_matches_make_flits(self):
        p = Packet(0, 1, 5, 0)
        assert [f.kind for f in p.iter_flits()] == [f.kind for f in p.make_flits()]

    def test_hop_counters_start_zero(self):
        p = Packet(0, 1, 4, 0)
        assert (p.hops, p.wireless_hops, p.photonic_hops, p.electrical_hops) == (0, 0, 0, 0)
