"""Struct-of-arrays kernel state: binding, coherence, and bit-identity.

The dense/fast property suite (``tests/runtime/test_fastforward_property.py``
and ``tests/control/test_control_property.py``) already proves the kernel
SA sweep end-to-end -- fast untraced runs drive it by default. The tests
here pin the pieces those properties cannot localise: the slot layout and
endpoint mirror binding, the write-through mirrors staying coherent mid-run,
the scalar-vs-bulk winner selection, and the fallback/escape hatches.
"""

import pytest

from repro.noc import Simulator, reset_packet_ids
from repro.noc.invariants import audit_network
from repro.noc.kernels import KernelState
from repro.noc.stats import StatsCollector
from repro.runtime.registry import build_topology
from repro.topologies import build_cmesh
from repro.traffic import SyntheticTraffic


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


def _delivery_log(sim):
    """Patch the collector to record (cycle, pid) ejections in order."""
    events = []
    orig = sim.stats.on_packet_ejected

    def patched(packet, now):
        events.append((now, packet.pid))
        return orig(packet, now)

    sim.stats.on_packet_ejected = patched
    return events


def _own256_sim(**kw):
    built = build_topology("own256")
    traffic = SyntheticTraffic(built.n_cores, "UN", 0.05, 4, seed=7, stop_cycle=300)
    return Simulator(built.network, traffic=traffic, **kw)


class TestBinding:
    def test_layout_and_views(self):
        built = build_cmesh(64)
        net = built.network
        k = KernelState.build(net)
        assert k.supported
        V = k.num_vcs
        for router in net.routers:
            base = int(k.vslot_base[router.rid])
            for ip, port in enumerate(router.input_ports):
                for iv, vc in enumerate(port.vcs):
                    s = base + ip * V + iv
                    assert vc.gslot == s
                    assert k.slot_router[s] is router
                    assert k.slot_ip[s] == ip
                    assert k.slot_vc[s] is vc
            for ip, endpoint in enumerate(router.input_endpoints):
                # Authoritative lists stay on the endpoint; the kernel
                # holds write-through mirrors updated by every mutator.
                pbase = base + ip * V
                assert endpoint.kslot == pbase
                assert endpoint._k is k
                assert list(endpoint.credits) == k.credits[pbase : pbase + V].tolist()
                assert (
                    list(endpoint.vc_busy) == k.vc_busy[pbase : pbase + V].tolist()
                )
                endpoint.take_credit(0)
                try:
                    assert int(k.credits[pbase]) == endpoint.credits[0]
                finally:
                    endpoint.return_credit(0)
                endpoint.acquire_vc(1)
                try:
                    assert bool(k.vc_busy[pbase + 1])
                finally:
                    endpoint.release_vc(1)
                assert not bool(k.vc_busy[pbase + 1])

    def test_links_and_mediums_indexed(self):
        built = build_topology("own256")
        net = built.network
        k = KernelState.build(net)
        assert k.supported
        for li, link in enumerate(net.links):
            assert link.index == li
            assert link._k is k
            assert int(k.link_busy[li]) == link.busy_until
        assert len(net.mediums) > 0
        for mi, medium in enumerate(net.mediums):
            assert medium._k is k
            assert int(k.med_holder[mi]) == -1

    def test_mixed_vc_network_unsupported(self):
        built = build_cmesh(64)
        net = built.network
        net.routers[0].num_vcs = net.num_vcs + 1
        k = KernelState.build(net)
        assert not k.supported
        sim = Simulator(
            net, traffic=SyntheticTraffic(64, "UN", 0.02, 4, seed=1, stop_cycle=50)
        )
        assert not sim._sa_kernel  # falls back to the object path


class TestCoherence:
    def test_mirrors_stay_coherent_mid_run(self):
        sim = _own256_sim()
        assert sim._sa_kernel
        for chunk in range(6):
            sim.run(50)
            audit_network(sim)  # includes check_kernel_coherence
        assert sim.stats.packets_ejected > 0

    def test_coherent_under_faults_and_drain(self):
        from repro.runtime.executor import execute_inline
        from repro.runtime.spec import FaultSpec, RunSpec

        spec = RunSpec.create(
            topology="own256",
            pattern="UN",
            rate=0.05,
            cycles=250,
            warmup=50,
            seed=7,
            drain=2000,
            faults=FaultSpec(kind="bursty", burst_rate=0.02, burst_duration=20),
        )
        _, sim, _ = execute_inline(spec)
        assert sim._sa_kernel
        audit_network(sim)

    def test_router_occupancy_matches_object_loop(self):
        sim = _own256_sim()
        sim.run(150)
        totals = sim.kernels.router_occupancy()
        assert totals is not None
        expect = [r.occupancy() for r in sim.network.routers]
        assert totals.tolist() == expect


class TestBitIdentity:
    def _run(self, **kw):
        reset_packet_ids()
        sim = _own256_sim(**kw)
        events = _delivery_log(sim)
        sim.run(300)
        sim.drain()
        return events, sim

    def test_kernel_object_and_dense_paths_identical(self, monkeypatch):
        kernel_events, ksim = self._run()
        assert ksim._sa_kernel
        dense_events, dsim = self._run(dense=True)
        assert not dsim._sa_kernel
        monkeypatch.setenv("REPRO_NOC_KERNELS", "0")
        object_events, osim = self._run()
        assert not osim._sa_kernel  # escape hatch: fast loop, object SA
        assert kernel_events, "scenario delivered no packets"
        assert kernel_events == dense_events == object_events

    def test_bulk_winner_selection_matches_scalar(self):
        scalar_events, ssim = self._run()
        reset_packet_ids()
        sim = _own256_sim()
        sim.kernels.bulk_threshold = 0  # force the lexsort path every sweep
        bulk_events = _delivery_log(sim)
        sim.run(300)
        sim.drain()
        assert scalar_events
        assert bulk_events == scalar_events
        assert tuple(sim.stats.latencies) == tuple(ssim.stats.latencies)
