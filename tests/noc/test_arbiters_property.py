"""Property tests pinning down the round-robin grant semantics.

The vectorized SA sweep (:mod:`repro.noc.kernels`) does not call
:class:`repro.noc.arbiters.RoundRobinArbiter` -- it re-implements the grant
as ``argmin((idx - ptr) % n)`` over the candidate set, with the pointer
advancing to ``winner + 1``. These properties are the contract both
implementations must satisfy; the equivalence test at the bottom drives
random request traces through the object arbiter and the closed-form
kernel rule side by side, so any semantic drift between the two paths
fails here before it can surface as a golden-log diff.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.arbiters import RoundRobinArbiter


def _kernel_grant(ptr: int, requests, n: int):
    """The closed-form grant used by the vectorized sweep.

    Winner is the requester at minimal cyclic distance from the priority
    pointer; the pointer moves to the slot after the winner.
    """
    cands = [i for i in range(n) if requests[i]]
    if not cands:
        return None, ptr
    win = min(cands, key=lambda i: (i - ptr) % n)
    return win, (win + 1) % n


REQUEST_TRACES = st.lists(
    st.lists(st.booleans(), min_size=1, max_size=8),
    min_size=1,
    max_size=40,
).filter(lambda trace: len({len(req) for req in trace}) == 1)


@settings(max_examples=200, deadline=None)
@given(trace=REQUEST_TRACES)
def test_grant_is_requesting_and_unique(trace):
    """Every grant goes to a requester; no-request rounds grant None and
    leave the priority pointer untouched."""
    n = len(trace[0])
    arb = RoundRobinArbiter(n)
    for requests in trace:
        before = arb._next
        winner = arb.grant(requests)
        if not any(requests):
            assert winner is None
            assert arb._next == before
        else:
            assert winner is not None and requests[winner]
            assert arb._next == (winner + 1) % n


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    start=st.integers(min_value=0, max_value=7),
    rounds=st.integers(min_value=1, max_value=24),
)
def test_rotation_fairness_under_full_load(n, start, rounds):
    """With all inputs requesting, grants walk 0,1,...,n-1 cyclically from
    the pointer -- any window of n grants serves every input exactly once."""
    arb = RoundRobinArbiter(n)
    arb._next = start % n
    grants = [arb.grant([True] * n) for _ in range(rounds)]
    expected = [(start + i) % n for i in range(rounds)]
    assert grants == expected


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    ptr=st.integers(min_value=0, max_value=7),
    req=st.integers(min_value=0, max_value=7),
)
def test_single_requester_always_wins_regardless_of_pointer(n, ptr, req):
    req %= n
    arb = RoundRobinArbiter(n)
    arb._next = ptr % n
    requests = [False] * n
    requests[req] = True
    assert arb.grant(requests) == req
    assert arb._next == (req + 1) % n


@settings(max_examples=100, deadline=None)
@given(n=st.integers(min_value=2, max_value=8))
def test_wraparound_past_end_of_vector(n):
    """A pointer past every requester wraps to the lowest index."""
    arb = RoundRobinArbiter(n)
    arb._next = n - 1
    requests = [True] + [False] * (n - 1)
    assert arb.grant(requests) == 0
    assert arb._next == 1


@settings(max_examples=300, deadline=None)
@given(trace=REQUEST_TRACES)
def test_kernel_grant_formula_matches_object_arbiter(trace):
    """The sweep's (idx - ptr) % n argmin is the round-robin scan."""
    n = len(trace[0])
    arb = RoundRobinArbiter(n)
    ptr = 0
    for requests in trace:
        expect = arb.grant(requests)
        got, ptr = _kernel_grant(ptr, requests, n)
        assert got == expect
        assert ptr == arb._next


@settings(max_examples=100, deadline=None)
@given(trace=REQUEST_TRACES)
def test_lexsort_winner_matches_scan(trace):
    """The bulk path's lexsort-by-(segment, distance) picks the same winner
    as the scalar distance scan within each segment."""
    n = len(trace[0])
    arb = RoundRobinArbiter(n)
    ptr = 0
    for requests in trace:
        expect = arb.grant(requests)
        cands = np.flatnonzero(np.asarray(requests, dtype=bool))
        if cands.size == 0:
            assert expect is None
            continue
        dist = (cands - ptr) % n
        order = np.lexsort((dist,))
        got = int(cands[order[0]])
        assert got == expect
        ptr = (got + 1) % n
