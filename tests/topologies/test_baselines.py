"""Functional tests for the four baseline architectures.

Each test drives uniform traffic through a freshly built network and checks
full delivery, then pattern-specific invariants (hop counts, radix
inventories, deadlock freedom under permutation traffic).
"""

from __future__ import annotations

import pytest

from repro.noc import Simulator, reset_packet_ids
from repro.topologies import (
    CONCENTRATION,
    build_cmesh,
    build_optxb,
    build_pclos,
    build_wcmesh,
)
from repro.traffic import SyntheticTraffic, ScriptedTraffic

BUILDERS = {
    "cmesh": build_cmesh,
    "wcmesh": build_wcmesh,
    "optxb": build_optxb,
    "pclos": build_pclos,
}


def run_uniform(built, rate=0.05, cycles=400, seed=7):
    sim = Simulator(built.network, traffic=SyntheticTraffic(
        built.n_cores, "UN", rate, packet_size_flits=4, seed=seed, stop_cycle=cycles
    ))
    sim.run(cycles)
    drained = sim.drain(max_cycles=20_000)
    return sim, drained


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_uniform_traffic_fully_delivered_64core(kind):
    reset_packet_ids()
    built = BUILDERS[kind](n_cores=64)
    sim, drained = run_uniform(built)
    assert drained, f"{kind}: network failed to drain"
    assert sim.stats.packets_ejected == sim.traffic is None or True
    created = sim.stats.packets_created
    assert created > 50  # sanity: traffic actually flowed
    assert sim.stats.packets_ejected == created


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_permutation_traffic_delivered(kind):
    reset_packet_ids()
    built = BUILDERS[kind](n_cores=64)
    sim = Simulator(built.network, traffic=SyntheticTraffic(
        64, "BR", 0.1, packet_size_flits=4, seed=3, stop_cycle=300
    ))
    sim.run(300)
    assert sim.drain(20_000), f"{kind}: BR traffic deadlocked or stalled"
    assert sim.stats.packets_ejected == sim.stats.packets_created


def test_cmesh_structure():
    built = build_cmesh(n_cores=256)
    net = built.network
    assert net.n_routers == 64
    # Max radix 8: 4 mesh + 4 cores (paper Sec. V-A).
    assert max(r.radix for r in net.routers) == 8
    assert built.notes["diameter_hops"] == 14  # 2*(8-1)


def test_cmesh_minimal_hop_count():
    reset_packet_ids()
    built = build_cmesh(n_cores=64)
    # Core 0 (router 0) to core 63 (router 15): 3+3 grid hops + eject.
    sim = Simulator(built.network, traffic=ScriptedTraffic([(0, 0, 63, 4)]))
    sim.run(200)
    assert sim.stats.packets_ejected == 1
    assert sim.stats.hop_sum == 7  # 6 mesh traversals + ejection

def test_optxb_structure():
    built = build_optxb(n_cores=256)
    net = built.network
    assert net.n_routers == 64
    # Radix 67: 63 crossbar write ports + 4 cores (paper Sec. V-A).
    assert built.notes["max_radix"] == 67
    out_ports = max(len(r.out_links) for r in net.routers)
    assert out_ports == 67
    assert len(net.mediums) == 64


def test_optxb_single_network_hop():
    reset_packet_ids()
    built = build_optxb(n_cores=64)
    sim = Simulator(built.network, traffic=ScriptedTraffic([(0, 0, 60, 4)]))
    sim.run(200)
    assert sim.stats.packets_ejected == 1
    # 1 photonic hop + ejection
    assert sim.stats.hop_sum == 2
    assert sim.stats.photonic_hop_sum == 1


def test_wcmesh_structure():
    built = build_wcmesh(n_cores=256)
    net = built.network
    assert net.n_routers == 64
    assert built.notes["wireless_routers"] == 16
    # Radix 11 = 3 electrical + 4 wireless + 4 cores at wireless routers.
    assert max(r.radix for r in net.routers) == 11
    assert len(net.links_by_kind("wireless")) == 2 * 2 * 4 * 3  # 48 directed grid links


def test_wcmesh_wireless_hops_for_cross_chip():
    reset_packet_ids()
    built = build_wcmesh(n_cores=256)
    # Core 0 (cluster 0, top-left) to core 255 (router 63, cluster 15).
    sim = Simulator(built.network, traffic=ScriptedTraffic([(0, 0, 255, 4)]))
    sim.run(400)
    assert sim.stats.packets_ejected == 1
    # XY over 4x4 cluster grid: 3 + 3 wireless hops.
    assert sim.stats.wireless_hop_sum == 6


def test_pclos_two_hops():
    reset_packet_ids()
    built = build_pclos(n_cores=64)
    sim = Simulator(built.network, traffic=ScriptedTraffic([(0, 0, 40, 4)]))
    sim.run(300)
    assert sim.stats.packets_ejected == 1
    assert sim.stats.photonic_hop_sum == 2  # up + down
    assert built.notes["diameter_hops"] == 2


def test_pclos_structure():
    built = build_pclos(n_cores=256, n_middles=8)
    net = built.network
    assert net.n_routers == 64 + 8
    assert len(net.mediums) == 8 + 64  # up-waveguides + down-waveguides
