"""Table III / Table IV reconstruction and the Fig. 5 energy arithmetic."""

import pytest

from repro.core.floorplan import LD_FACTOR
from repro.power.wireless import (
    CONFIGURATIONS,
    N_CHANNELS,
    N_DATA_CHANNELS,
    SCENARIO_CONSERVATIVE,
    SCENARIO_IDEAL,
    SCENARIOS,
    WirelessPowerParams,
    channel_energy_pj,
    channels_for_config,
    config_average_energy_pj_per_bit,
    config_energy_pj_per_bit,
    link_energy_for_class,
    wireless_channel_table,
)


class TestScenarios:
    def test_paper_bandwidths_and_guards(self):
        assert SCENARIO_IDEAL.bandwidth_ghz == 32.0
        assert SCENARIO_IDEAL.guard_ghz == 8.0
        assert SCENARIO_CONSERVATIVE.bandwidth_ghz == 16.0
        assert SCENARIO_CONSERVATIVE.guard_ghz == 4.0

    def test_spacing_is_bw_plus_guard(self):
        for s in SCENARIOS.values():
            assert s.spacing_ghz == s.bandwidth_ghz + s.guard_ghz

    def test_frequency_plan(self):
        assert SCENARIO_IDEAL.frequency(1) == 100.0
        assert SCENARIO_IDEAL.frequency(16) == 700.0
        assert SCENARIO_CONSERVATIVE.frequency(16) == 400.0

    def test_frequency_index_validation(self):
        with pytest.raises(ValueError):
            SCENARIO_IDEAL.frequency(0)
        with pytest.raises(ValueError):
            SCENARIO_IDEAL.frequency(17)


class TestChannelTable:
    @pytest.mark.parametrize("scenario", list(SCENARIOS.values()))
    def test_sixteen_rows(self, scenario):
        table = wireless_channel_table(scenario)
        assert len(table) == N_CHANNELS
        assert [r.index for r in table] == list(range(1, 17))

    def test_ideal_tech_split(self):
        """Exactly four CMOS channels in the ideal plan (Sec. V-B)."""
        techs = [r.technology for r in wireless_channel_table(SCENARIO_IDEAL)]
        assert techs.count("CMOS") == 4
        assert techs.count("BiCMOS") == 2
        assert techs.count("SiGe") == 10

    def test_conservative_tech_split(self):
        techs = [r.technology for r in wireless_channel_table(SCENARIO_CONSERVATIVE)]
        assert techs.count("CMOS") == 7
        assert techs.count("BiCMOS") == 5
        assert techs.count("SiGe") == 4

    def test_energy_ramp_formula(self):
        assert channel_energy_pj("CMOS", 1, SCENARIO_IDEAL) == pytest.approx(0.1)
        assert channel_energy_pj("CMOS", 4, SCENARIO_IDEAL) == pytest.approx(0.25)
        assert channel_energy_pj("SiGe", 16, SCENARIO_IDEAL) == pytest.approx(2.0)
        assert channel_energy_pj("SiGe", 16, SCENARIO_CONSERVATIVE) == pytest.approx(1.55)

    def test_roles(self):
        table = wireless_channel_table(SCENARIO_IDEAL)
        assert all(r.role == "data" for r in table[:N_DATA_CHANNELS])
        assert all(r.role == "reconfiguration" for r in table[N_DATA_CHANNELS:])


class TestConfigurations:
    def test_paper_table4(self):
        assert CONFIGURATIONS[1] == {"C2C": "SiGe", "E2E": "CMOS", "SR": "CMOS"}
        assert CONFIGURATIONS[2] == {"C2C": "CMOS", "E2E": "BiCMOS", "SR": "SiGe"}
        assert CONFIGURATIONS[3] == {"C2C": "SiGe", "E2E": "BiCMOS", "SR": "CMOS"}
        assert CONFIGURATIONS[4] == {"C2C": "CMOS", "E2E": "CMOS", "SR": "BiCMOS"}

    @pytest.mark.parametrize("cfg", [1, 2, 3, 4])
    @pytest.mark.parametrize("scenario", list(SCENARIOS.values()))
    def test_twelve_links_assigned(self, cfg, scenario):
        chans = channels_for_config(cfg, scenario)
        assert len(chans) == 12
        classes = [c.distance_class for c in chans]
        assert classes == ["C2C"] * 4 + ["E2E"] * 4 + ["SR"] * 4

    def test_technology_respected(self):
        for cfg, mapping in CONFIGURATIONS.items():
            for scenario in SCENARIOS.values():
                for chan in channels_for_config(cfg, scenario):
                    assert chan.spec.technology == mapping[chan.distance_class]

    def test_sdm_reuse_when_pool_short(self):
        """Config 4 needs 8 CMOS channels; the ideal plan has 4 (Sec. V-B)."""
        chans = channels_for_config(4, SCENARIO_IDEAL)
        cmos = [c for c in chans if c.spec.technology == "CMOS"]
        assert len(cmos) == 8
        assert sum(1 for c in cmos if c.sdm_reused) == 4

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            channels_for_config(5, SCENARIO_IDEAL)


class TestFig5Arithmetic:
    def test_scenario1_reductions_match_paper(self):
        """Paper: cfg2 -60 %, cfg4 -80 % vs cfg1 (we land at ~57/79)."""
        base = config_average_energy_pj_per_bit(1, SCENARIO_IDEAL)
        red2 = 1 - config_average_energy_pj_per_bit(2, SCENARIO_IDEAL) / base
        red4 = 1 - config_average_energy_pj_per_bit(4, SCENARIO_IDEAL) / base
        assert red2 == pytest.approx(0.60, abs=0.06)
        assert red4 == pytest.approx(0.80, abs=0.04)

    def test_scenario2_cfg2_reduction(self):
        """Paper: cfg2 -47 % under the conservative scenario."""
        base = config_average_energy_pj_per_bit(1, SCENARIO_CONSERVATIVE)
        red2 = 1 - config_average_energy_pj_per_bit(2, SCENARIO_CONSERVATIVE) / base
        assert red2 == pytest.approx(0.47, abs=0.05)

    def test_sige_long_range_configs_most_expensive(self):
        for scenario in SCENARIOS.values():
            e = {c: config_average_energy_pj_per_bit(c, scenario) for c in range(1, 5)}
            assert e[3] >= e[1] > e[2] > e[4]

    def test_class_energy_uses_ld_factor(self):
        for cls in ("C2C", "E2E", "SR"):
            chans = [c for c in channels_for_config(1, SCENARIO_IDEAL)
                     if c.distance_class == cls]
            raw = sum(c.spec.energy_pj_per_bit for c in chans) / len(chans)
            assert config_energy_pj_per_bit(1, SCENARIO_IDEAL, cls) == pytest.approx(
                raw * LD_FACTOR[cls]
            )

    def test_class_validation(self):
        with pytest.raises(ValueError):
            config_energy_pj_per_bit(1, SCENARIO_IDEAL, "XXL")


class TestMulticastAdjustment:
    def test_unicast_unchanged(self):
        p = WirelessPowerParams(tx_energy_fraction=0.6)
        assert p.effective_energy_pj(1.0, 1) == pytest.approx(1.0)

    def test_four_way_multicast(self):
        p = WirelessPowerParams(tx_energy_fraction=0.6)
        # tx 0.6 + 4 x rx 0.4 = 2.2.
        assert p.effective_energy_pj(1.0, 4) == pytest.approx(2.2)

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            WirelessPowerParams().effective_energy_pj(1.0, 0)

    def test_link_energy_for_class_composes(self):
        e1 = link_energy_for_class("SR", 4, SCENARIO_IDEAL, multicast_degree=1)
        e4 = link_energy_for_class("SR", 4, SCENARIO_IDEAL, multicast_degree=4)
        assert e4 > e1
