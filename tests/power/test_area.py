"""Silicon area model: scaling laws and the architecture comparison."""

import pytest

from repro.core import build_own256, build_own1024
from repro.power.area import AreaModel, AreaParams, area_comparison
from repro.topologies import build_cmesh, build_optxb, build_wcmesh


@pytest.fixture(scope="module")
def model():
    return AreaModel()


class TestRouterArea:
    def test_scales_with_radix(self, model):
        small = model.router_area_um2(8, 4, 8)
        big = model.router_area_um2(67, 4, 8)
        assert big > 8 * small / 2  # super-linear (xbar is quadratic)

    def test_scales_with_buffering(self, model):
        shallow = model.router_area_um2(8, 4, 4)
        deep = model.router_area_um2(8, 4, 8)
        assert deep > shallow

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.router_area_um2(0, 4, 8)


class TestArchitectureComparison:
    def test_cmesh_smallest(self, model):
        areas = area_comparison(
            [build_cmesh(256), build_own256(), build_optxb(256)]
        )
        assert areas["cmesh256"].total_mm2 < areas["own256"].total_mm2
        assert areas["own256"].total_mm2 < areas["optxb256"].total_mm2

    def test_optxb_photonic_area_explodes_at_1024(self, model):
        """The Sec. I scalability argument in mm^2."""
        a256 = model.measure(build_optxb(256)).photonic_mm2
        a1024 = model.measure(build_optxb(1024)).photonic_mm2
        assert a1024 > 10 * a256
        # A 1024-core OptXB's photonics alone exceed the whole 100x100 mm
        # four-chip assembly's area budget for interconnect.
        assert a1024 > 1000.0

    def test_own_scales_gently(self, model):
        a256 = model.measure(build_own256()).total_mm2
        a1024 = model.measure(build_own1024()).total_mm2
        # 4x the cores costs ~4x the interconnect area, not 16x.
        assert a1024 / a256 < 6.0

    def test_wcmesh_antenna_heavy(self, model):
        """wCMESH needs 96 transceiver ends vs OWN's 24."""
        wc = model.measure(build_wcmesh(256))
        own = model.measure(build_own256())
        assert wc.wireless_mm2 > 3 * own.wireless_mm2

    def test_breakdown_sums(self, model):
        a = model.measure(build_own256())
        assert a.total_mm2 == pytest.approx(
            a.router_mm2 + a.wire_mm2 + a.photonic_mm2 + a.wireless_mm2
        )
        d = a.as_dict()
        assert set(d) == {
            "router_mm2", "wire_mm2", "photonic_mm2", "wireless_mm2", "total_mm2"
        }

    def test_pure_electrical_has_no_exotic_area(self, model):
        a = model.measure(build_cmesh(256))
        assert a.photonic_mm2 == 0.0
        assert a.wireless_mm2 == 0.0
        assert a.wire_mm2 > 0

    def test_own256_wireless_area(self, model):
        """12 channels x 2 ends x (transceiver + antenna)."""
        a = model.measure(build_own256())
        p = AreaParams()
        assert a.wireless_mm2 == pytest.approx(
            24 * (p.transceiver_mm2 + p.antenna_mm2)
        )
