"""DSENT-style electrical model, photonic model, and power accounting."""

import pytest

from repro.core import build_own256
from repro.noc import Router, Simulator, reset_packet_ids
from repro.power import DsentParams, PhotonicParams, PowerModel, measure_power
from repro.topologies import build_cmesh, build_optxb
from repro.traffic import SyntheticTraffic


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


class TestDsent:
    def test_dynamic_energy_scales_with_events(self):
        params = DsentParams()
        r = Router(0)
        r.attrs["paper_radix"] = 8
        assert params.router_dynamic_energy_pj(r) == 0.0
        r.buffer_writes = 10
        e1 = params.router_dynamic_energy_pj(r)
        r.buffer_writes = 20
        assert params.router_dynamic_energy_pj(r) == pytest.approx(2 * e1)

    def test_xbar_scales_with_radix(self):
        params = DsentParams()
        lo, hi = Router(0), Router(1)
        lo.attrs["paper_radix"] = 8
        hi.attrs["paper_radix"] = 64
        lo.xbar_traversals = hi.xbar_traversals = 100
        assert params.router_dynamic_energy_pj(hi) == pytest.approx(
            8 * params.router_dynamic_energy_pj(lo)
        )

    def test_static_scales_with_radix(self):
        params = DsentParams()
        lo, hi = Router(0), Router(1)
        lo.attrs["paper_radix"] = 8
        hi.attrs["paper_radix"] = 67
        assert params.router_static_power_mw(hi) > params.router_static_power_mw(lo)

    def test_falls_back_to_structural_radix(self):
        params = DsentParams()
        r = Router(0)
        r.add_input_port()
        r.add_output_port()
        r.xbar_traversals = 10
        assert params.router_dynamic_energy_pj(r) > 0

    def test_wire_energy_linear_in_bits_and_length(self):
        params = DsentParams()
        assert params.wire_energy_pj(1000, 2.0) == pytest.approx(
            2 * params.wire_energy_pj(1000, 1.0)
        )
        assert params.wire_energy_pj(2000, 1.0) == pytest.approx(
            2 * params.wire_energy_pj(1000, 1.0)
        )

    def test_wire_negative_length_rejected(self):
        with pytest.raises(ValueError):
            DsentParams().wire_energy_pj(10, -1.0)

    def test_cycles_to_seconds(self):
        params = DsentParams(clock_ghz=2.5)
        assert params.cycles_to_seconds(2_500_000_000) == pytest.approx(1.0)


class TestPhotonicParams:
    def test_dynamic_energy(self):
        p = PhotonicParams()
        assert p.link_dynamic_energy_pj(1000) == pytest.approx(
            1000 * p.e_dynamic_pj_per_bit
        )

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            PhotonicParams().link_dynamic_energy_pj(-1)

    def test_tuning_power(self):
        p = PhotonicParams(p_tuning_uw_per_ring=1.0)
        assert p.tuning_power_mw(1_000_000) == pytest.approx(1000.0)

    def test_tuning_validation(self):
        with pytest.raises(ValueError):
            PhotonicParams().tuning_power_mw(-1)

    def test_laser_power_grows_with_loss(self):
        p = PhotonicParams()
        short = p.waveguide_laser_power_mw(10.0, 10, 4)
        long = p.waveguide_laser_power_mw(100.0, 100, 4)
        assert long > short


class TestAccounting:
    def run_sim(self, builder, n, rate=0.03, cycles=500):
        built = builder()
        sim = Simulator(
            built.network, traffic=SyntheticTraffic(n, "UN", rate, 4, seed=2)
        )
        sim.run(cycles)
        return built, sim

    def test_breakdown_components_positive(self):
        built, sim = self.run_sim(build_own256, 256)
        pb = measure_power(built, sim)
        assert pb.router_w > 0
        assert pb.photonic_w > 0
        assert pb.wireless_w > 0
        assert pb.total_w == pytest.approx(
            pb.router_w + pb.electrical_link_w + pb.photonic_w + pb.wireless_w
        )

    def test_cmesh_has_no_photonic_or_wireless(self):
        built, sim = self.run_sim(lambda: build_cmesh(64), 64)
        pb = measure_power(built, sim)
        assert pb.photonic_w == 0.0
        assert pb.wireless_w == 0.0
        assert pb.electrical_link_w > 0

    def test_energy_per_packet(self):
        built, sim = self.run_sim(lambda: build_cmesh(64), 64)
        pb = measure_power(built, sim)
        assert pb.packets > 0
        expected = pb.total_w * pb.duration_s / pb.packets * 1e9
        assert pb.energy_per_packet_nj == pytest.approx(expected)

    def test_scenario_number_and_object_equivalent(self):
        from repro.power import SCENARIOS

        built, sim = self.run_sim(build_own256, 256)
        a = measure_power(built, sim, config_id=4, scenario=1).total_w
        b = measure_power(built, sim, config_id=4, scenario=SCENARIOS[1]).total_w
        assert a == pytest.approx(b)

    def test_config_changes_wireless_power_only(self):
        built, sim = self.run_sim(build_own256, 256)
        p1 = measure_power(built, sim, config_id=1)
        p4 = measure_power(built, sim, config_id=4)
        assert p1.wireless_w > p4.wireless_w
        assert p1.router_w == pytest.approx(p4.router_w)
        assert p1.photonic_w == pytest.approx(p4.photonic_w)

    def test_conservative_scenario_not_cheaper_for_cfg4(self):
        built, sim = self.run_sim(build_own256, 256)
        ideal = measure_power(built, sim, config_id=4, scenario=1)
        cons = measure_power(built, sim, config_id=4, scenario=2)
        assert cons.wireless_w >= ideal.wireless_w * 0.8  # same order

    def test_measure_requires_a_run(self):
        built = build_own256()
        sim = Simulator(built.network)
        with pytest.raises(ValueError):
            measure_power(built, sim)

    def test_ring_inventory_by_kind(self):
        model = PowerModel()
        own = build_own256()
        optxb = build_optxb(64)
        cmesh = build_cmesh(64)
        assert model.photonic_ring_count(cmesh) == 0
        assert model.photonic_ring_count(own) > 0
        assert model.photonic_ring_count(optxb) > model.photonic_ring_count(own)

    def test_as_dict_keys(self):
        built, sim = self.run_sim(lambda: build_cmesh(64), 64)
        d = measure_power(built, sim).as_dict()
        assert set(d) == {
            "router_w", "electrical_link_w", "photonic_w", "wireless_w",
            "retx_overhead_w", "total_w", "energy_per_packet_nj",
        }
