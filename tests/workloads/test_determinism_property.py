"""Property tests: the workload-generator determinism contract.

Every generator must be a pure function of (params, n_cores, seed): the
same inputs produce byte-identical arrays (and an identical ``.npz`` on
one numpy version), different seeds produce different schedules, and the
compiled trace replays bit-identically through every execution path the
engine offers (dense vs fast-forward stepping, serial vs parallel
executor). These are the guarantees the golden-trace CI gate leans on.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import workload_names, workload_trace

NAMES = st.sampled_from(sorted(workload_names()))
SEEDS = st.integers(min_value=0, max_value=2**16 - 1)


def _npz_bytes(trace) -> bytes:
    buf = io.BytesIO()
    trace.save(buf)
    return buf.getvalue()


@settings(max_examples=25, deadline=None)
@given(name=NAMES, seed=SEEDS, n_cores=st.sampled_from([16, 64, 100]))
def test_same_inputs_byte_identical(name, seed, n_cores):
    a = workload_trace(name, n_cores, duration=300, seed=seed)
    b = workload_trace(name, n_cores, duration=300, seed=seed)
    assert a.content_crc() == b.content_crc()
    assert a.schema() == b.schema()
    assert _npz_bytes(a) == _npz_bytes(b)


@settings(max_examples=15, deadline=None)
@given(name=NAMES, seed=st.integers(min_value=0, max_value=2**15 - 1))
def test_different_seeds_differ(name, seed):
    a = workload_trace(name, 64, duration=300, seed=seed)
    b = workload_trace(name, 64, duration=300, seed=seed + 1)
    # A 32-bit CRC collision across an entire schedule is astronomically
    # unlikely; a *match* here means a generator ignored its seed.
    assert a.content_crc() != b.content_crc()


@settings(max_examples=10, deadline=None)
@given(name=NAMES, seed=SEEDS)
def test_generation_does_not_depend_on_call_order(name, seed):
    # Interleaving other generators between two identical calls must not
    # perturb the result: RNG streams are namespaced per workload.
    a = workload_trace(name, 64, duration=250, seed=seed)
    for other in sorted(workload_names()):
        workload_trace(other, 64, duration=250, seed=seed + 7)
    b = workload_trace(name, 64, duration=250, seed=seed)
    assert a.content_crc() == b.content_crc()
