"""Workload replay is bit-identical across every engine execution path.

A ``kind="workload"`` run compiles its trace inside the worker, so the
engine's equivalence guarantees must be re-checked on this path: the
active-set scheduler's fast-forward peeks at the static schedule (no RNG
draws), and parallel workers regenerate the identical trace from the
frozen spec.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import reset_packet_ids
from repro.runtime.executor import Executor, execute_inline
from repro.runtime.spec import RunSpec
from repro.workloads import workload_names


def _spec(name: str, seed: int, dense: bool = False) -> RunSpec:
    return RunSpec.create(
        "cmesh",
        topology_kwargs={"n_cores": 64},
        pattern=f"wl-{name}",
        rate=0.0,
        cycles=300,
        warmup=100,
        seed=seed,
        traffic_kind="workload",
        workload=name,
        dense=dense,
    )


def _summary(spec: RunSpec):
    reset_packet_ids()
    _, _, result = execute_inline(spec)
    return result.summary


@settings(max_examples=10, deadline=None)
@given(
    name=st.sampled_from(sorted(workload_names())),
    seed=st.integers(min_value=0, max_value=2**16 - 1),
)
def test_dense_and_fast_forward_identical(name, seed):
    fast = _summary(_spec(name, seed, dense=False))
    dense = _summary(_spec(name, seed, dense=True))
    assert fast["packets_measured"] > 0
    assert fast == dense


def test_serial_and_parallel_identical():
    specs = [_spec(name, seed=3) for name in sorted(workload_names())]
    serial = Executor(jobs=1).run(specs)
    parallel = Executor(jobs=4).run(specs)
    assert [r.summary for r in serial] == [r.summary for r in parallel]
    assert [r.digest for r in serial] == [r.digest for r in parallel]
    assert all(r.summary["packets_measured"] > 0 for r in serial)
