"""Structural unit tests for each application-model generator."""

import numpy as np
import pytest

from repro.workloads import (
    COLLECTIVE_KINDS,
    BlendWorkload,
    CoherenceWorkload,
    CollectiveWorkload,
    MicroserviceWorkload,
    make_workload,
    merge_traces,
    workload_names,
    workload_trace,
)

N_CORES = 64


class TestMicroservice:
    def make(self, **over):
        kwargs = dict(duration=600, seed=3, request_rate=0.05)
        kwargs.update(over)
        return MicroserviceWorkload(**kwargs)

    def test_trace_validates_and_is_nonempty(self):
        trace = self.make().trace(N_CORES)
        assert len(trace) > 0
        trace.validate(N_CORES)

    def test_graph_is_acyclic_and_rooted_at_gateway(self):
        wl = self.make()
        graph = wl.service_graph()
        layer = [0] + [1 + (s - 1) % (wl.depth - 1) for s in range(1, wl.n_services)]
        assert graph[0], "gateway must call at least one downstream service"
        for s, callees in graph.items():
            for c in callees:
                assert layer[c] > layer[s], "edges must point to deeper layers"

    def test_requests_precede_their_responses(self):
        # Every (small) request packet src->dst must be matched by a later
        # (large) response packet dst->src: scatter-gather RPC semantics.
        wl = self.make(duration=2000)
        trace = wl.trace(N_CORES)
        req = trace.sizes == wl.request_size
        resp = trace.sizes == wl.response_size
        assert req.sum() > 0 and resp.sum() > 0
        # Responses mirror requests pairwise (same unordered core pairs).
        req_pairs = sorted(zip(trace.srcs[req].tolist(), trace.dsts[req].tolist()))
        resp_pairs = sorted(zip(trace.dsts[resp].tolist(), trace.srcs[resp].tolist()))
        # Horizon clipping can cut trailing responses, never add them.
        assert len(resp_pairs) <= len(req_pairs)

    def test_replica_placement_shape(self):
        wl = self.make(n_services=6, replicas=3)
        cores = wl.placement(N_CORES)
        assert cores.shape == (6, 3)
        assert ((cores >= 0) & (cores < N_CORES)).all()

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            self.make(fanout=0.5)
        with pytest.raises(ValueError):
            self.make(n_services=2, depth=5)
        with pytest.raises(ValueError):
            self.make(request_rate=1.5)


class TestCollective:
    @pytest.mark.parametrize("kind", COLLECTIVE_KINDS)
    def test_each_kind_emits_valid_trace(self, kind):
        trace = CollectiveWorkload(
            duration=800, seed=2, kind=kind, iterations=3
        ).trace(N_CORES)
        assert len(trace) > 0
        trace.validate(N_CORES)

    def test_ring_step_count(self):
        # 2*(P-1) steps of P transfers each, no skew, one iteration.
        p = 8
        wl = CollectiveWorkload(
            duration=10_000, seed=1, kind="allreduce_ring", participants=p,
            iterations=1, skew_max=0,
        )
        trace = wl.trace(N_CORES)
        assert len(trace) == 2 * (p - 1) * p

    def test_tree_reduces_to_root_then_broadcasts(self):
        p = 8
        wl = CollectiveWorkload(
            duration=10_000, seed=1, kind="allreduce_tree", participants=p,
            iterations=1, skew_max=0,
        )
        trace = wl.trace(N_CORES)
        # Reduce + broadcast are mirror images: every (src, dst) transfer
        # appears with its reverse.
        pairs = sorted(zip(trace.srcs.tolist(), trace.dsts.tolist()))
        mirrored = sorted(zip(trace.dsts.tolist(), trace.srcs.tolist()))
        assert pairs == mirrored
        assert len(trace) == 2 * (p - 1)  # p-1 reduce edges + p-1 bcast edges

    def test_stencil_neighbour_degree(self):
        p = 27  # 3x3x3 grid: every rank has exactly 6 distinct neighbours
        wl = CollectiveWorkload(
            duration=10_000, seed=1, kind="stencil3d", participants=p,
            iterations=1, skew_max=0,
        )
        trace = wl.trace(N_CORES)
        srcs = trace.srcs
        counts = {int(s): 0 for s in set(srcs.tolist())}
        for s in srcs.tolist():
            counts[int(s)] += 1
        assert set(counts.values()) == {6}

    def test_bad_kind_and_participants(self):
        with pytest.raises(ValueError):
            CollectiveWorkload(kind="allgather")
        with pytest.raises(ValueError):
            CollectiveWorkload(participants=1).trace(N_CORES)
        with pytest.raises(ValueError):
            CollectiveWorkload(participants=N_CORES + 1).trace(N_CORES)


class TestCoherence:
    def test_requests_get_line_replies(self):
        wl = CoherenceWorkload(duration=800, seed=4, miss_rate=0.02, n_homes=8)
        trace = wl.trace(N_CORES)
        n_req = int((trace.sizes == wl.req_size).sum())
        n_reply = int((trace.sizes == wl.line_size).sum())
        assert n_req > 0
        # Every miss produces exactly one request and one data reply
        # (inv/ack packets share inv_size=req_size=1 by default, so compare
        # with distinct sizes).
        wl2 = CoherenceWorkload(
            duration=800, seed=4, miss_rate=0.02, n_homes=8,
            req_size=2, inv_size=3, line_size=5,
        )
        t2 = wl2.trace(N_CORES)
        reqs = int((t2.sizes == 2).sum())
        replies = int((t2.sizes == 5).sum())
        assert reqs == replies or replies == reqs - _clipped_tail(t2, wl2)
        assert n_reply <= n_req

    def test_requests_target_home_nodes_only(self):
        wl = CoherenceWorkload(
            duration=500, seed=9, miss_rate=0.02, n_homes=8,
            req_size=2, inv_size=3, line_size=5,
        )
        trace = wl.trace(N_CORES)
        req_dsts = set(trace.dsts[trace.sizes == 2].tolist())
        reply_srcs = set(trace.srcs[trace.sizes == 5].tolist())
        assert len(req_dsts) <= 8
        assert reply_srcs <= req_dsts

    def test_working_set_bounds(self):
        with pytest.raises(ValueError):
            CoherenceWorkload(working_set=20, n_homes=16)
        with pytest.raises(ValueError):
            CoherenceWorkload(n_homes=128).trace(64)


def _clipped_tail(trace, wl) -> int:
    """Replies scheduled past the horizon are dropped; count such misses."""
    cutoff = wl.duration - wl.hop_cycles - wl.directory_latency
    return int((trace.cycles[trace.sizes == wl.req_size] >= cutoff).sum())


class TestBlends:
    def test_merge_preserves_packets_and_sorts(self):
        a = CoherenceWorkload(duration=300, seed=1).trace(N_CORES)
        b = CollectiveWorkload(duration=300, seed=2, iterations=2).trace(N_CORES)
        merged = merge_traces([a, b])
        assert len(merged) == len(a) + len(b)
        assert (np.diff(merged.cycles) >= 0).all()

    def test_blend_clips_to_horizon(self):
        blend = BlendWorkload(
            [CollectiveWorkload(duration=2000, seed=2, iterations=10)],
            duration=400, seed=1,
        )
        trace = blend.trace(N_CORES)
        assert len(trace) > 0
        assert int(trace.cycles.max()) < 400

    def test_adversarial_background_targets_hot_cores(self):
        fg = CoherenceWorkload(duration=600, seed=3, miss_rate=0.02, n_homes=4)
        blend = BlendWorkload(
            [fg], duration=600, seed=5, background_rate=0.02,
            adversarial=True, n_hotspots=4,
        )
        hot = blend.hot_destinations(fg.trace(N_CORES), 4)
        assert 1 <= len(hot) <= 4
        trace = blend.trace(N_CORES)
        # The background skews flits toward the hot set beyond the
        # foreground's own share.
        flits_at_hot = int(trace.sizes[np.isin(trace.dsts, hot)].sum())
        assert flits_at_hot > 0

    def test_empty_blend_rejected(self):
        with pytest.raises(ValueError):
            BlendWorkload([])
        with pytest.raises(ValueError):
            merge_traces([])


class TestRegistry:
    def test_names_sorted_and_complete(self):
        assert workload_names() == (
            "adversarial", "coherence", "collective", "microservice", "mixed",
        )

    @pytest.mark.parametrize("name", sorted(workload_names()))
    def test_every_entry_builds_and_traces(self, name):
        trace = workload_trace(name, N_CORES, duration=400, seed=2)
        assert len(trace) > 0
        trace.validate(N_CORES)

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="coherence"):
            make_workload("sorting-network")

    def test_rate_maps_to_intensity(self):
        lo = workload_trace("coherence", N_CORES, duration=400, seed=2, rate=0.005)
        hi = workload_trace("coherence", N_CORES, duration=400, seed=2, rate=0.05)
        assert len(hi) > len(lo)
