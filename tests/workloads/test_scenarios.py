"""Scenario-matrix registry: every cell resolves to a valid frozen spec."""

import pytest

from repro.runtime import RunSpec
from repro.workloads import (
    GENERATOR_FAMILIES,
    SCENARIO_FAULTS,
    SCENARIO_TOPOLOGIES,
    SCENARIO_WIRELESS,
    SCENARIO_WORKLOADS,
    cell_spec,
    filter_cells,
    scenario_matrix,
)


class TestMatrix:
    def test_full_matrix_size_meets_acceptance_floor(self):
        cells = scenario_matrix()
        # The acceptance bar: at least {3 workloads} x {2 topologies} x
        # {2 fault campaigns} x {2 wireless scenarios}.
        assert len(SCENARIO_WORKLOADS) >= 3
        assert len(SCENARIO_TOPOLOGIES) >= 2
        assert len(SCENARIO_FAULTS) >= 2
        assert len(SCENARIO_WIRELESS) >= 2
        assert len(cells) == (
            len(SCENARIO_WORKLOADS) * len(SCENARIO_TOPOLOGIES)
            * len(SCENARIO_FAULTS) * len(SCENARIO_WIRELESS)
        )
        assert set(GENERATOR_FAMILIES) <= set(SCENARIO_WORKLOADS)

    def test_every_cell_resolves_to_frozen_digestible_spec(self):
        digests = set()
        keys = set()
        for cell in scenario_matrix(cycles=200, warmup=50):
            spec = cell.spec
            assert isinstance(spec, RunSpec)
            assert spec.traffic.kind == "workload"
            assert spec.traffic.workload == cell.workload
            assert spec.telemetry is True
            assert spec.tag == cell.key
            hash(spec)  # frozen
            # Round-trips through the cache/worker serialisation path.
            assert RunSpec.from_dict(spec.to_dict()) == spec
            digests.add(spec.digest())
            keys.add(cell.key)
        n = len(scenario_matrix(cycles=200, warmup=50))
        assert len(digests) == n, "every cell must have a distinct digest"
        assert len(keys) == n

    def test_axes_fold_into_digest(self):
        base = cell_spec("coherence", "own256", "clean", "ideal").digest()
        assert cell_spec("coherence", "own256", "bursts", "ideal").digest() != base
        assert cell_spec("coherence", "own256", "clean", "conservative").digest() != base
        assert cell_spec("coherence", "own1024", "clean", "ideal").digest() != base
        assert cell_spec("collective", "own256", "clean", "ideal").digest() != base

    def test_wireless_axis_is_power_scenario(self):
        ideal = cell_spec("coherence", "own256", "clean", "ideal")
        conservative = cell_spec("coherence", "own256", "clean", "conservative")
        assert ideal.power == ((4, 1),)
        assert conservative.power == ((4, 2),)

    def test_unknown_coordinates_rejected(self):
        with pytest.raises(KeyError):
            cell_spec("sorting-network", "own256", "clean", "ideal")
        with pytest.raises(KeyError):
            cell_spec("coherence", "torus", "clean", "ideal")
        with pytest.raises(KeyError):
            cell_spec("coherence", "own256", "meteor-strike", "ideal")


class TestFilter:
    def test_conjunctive_terms(self):
        cells = scenario_matrix(cycles=200, warmup=50)
        only = filter_cells(cells, "coherence,own256,ideal")
        assert len(only) == len(SCENARIO_FAULTS)
        assert all(
            c.workload == "coherence" and c.topology == "own256"
            and c.wireless == "ideal"
            for c in only
        )

    def test_empty_expr_keeps_all(self):
        cells = scenario_matrix(cycles=200, warmup=50)
        assert filter_cells(cells, "") == cells
