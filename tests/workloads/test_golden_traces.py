"""Golden-trace gate: generator output is pinned exactly.

``results/golden/workloads/`` holds one small committed ``.npz`` per
generator family plus a manifest of schemas and content CRCs. Any edit
that changes what a generator emits -- even reordering two packets in
one cycle -- fails here and forces a deliberate fixture regeneration
(see the manifest's parameters; regenerate with the same ones).

The comparison is array-content CRC plus element-wise equality, not a
byte-compare of the archives, so a numpy upgrade that changes zip
framing cannot break CI while a changed packet always does.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.traffic.trace import TRACE_FIELDS, TrafficTrace
from repro.workloads import GENERATOR_FAMILIES, workload_trace

GOLDEN_DIR = Path(__file__).resolve().parents[2] / "results" / "golden" / "workloads"


@pytest.fixture(scope="module")
def manifest():
    with open(GOLDEN_DIR / "manifest.json") as fh:
        return json.load(fh)


def test_manifest_covers_every_family(manifest):
    assert sorted(manifest["traces"]) == sorted(GENERATOR_FAMILIES)


@pytest.mark.parametrize("name", GENERATOR_FAMILIES)
def test_fixture_matches_manifest(name, manifest):
    entry = manifest["traces"][name]
    trace = TrafficTrace.load(GOLDEN_DIR / entry["file"])
    assert trace.schema() == entry["schema"]
    assert trace.content_crc() == entry["content_crc"]


@pytest.mark.parametrize("name", GENERATOR_FAMILIES)
def test_regenerated_trace_is_bit_identical_to_golden(name, manifest):
    entry = manifest["traces"][name]
    golden = TrafficTrace.load(GOLDEN_DIR / entry["file"])
    fresh = workload_trace(
        name, manifest["n_cores"], duration=manifest["duration"],
        seed=manifest["seed"],
    )
    assert fresh.schema() == golden.schema()
    assert fresh.content_crc() == golden.content_crc()
    for field in TRACE_FIELDS:
        np.testing.assert_array_equal(
            getattr(fresh, field), getattr(golden, field),
            err_msg=f"{name}.{field} drifted from the committed golden trace",
        )


def test_schema_fields_are_the_committed_set():
    # Renaming/adding a trace field invalidates every committed fixture:
    # make it a visible, deliberate change here and in the manifest.
    assert TRACE_FIELDS == ("cycles", "srcs", "dsts", "sizes")
