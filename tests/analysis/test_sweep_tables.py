"""Sweep harness, saturation detection and table formatting."""

import pytest

from repro.analysis.sweep import SweepPoint, SweepResult, load_sweep, run_point
from repro.analysis.tables import format_csv, format_table, ratio_note
from repro.topologies import build_cmesh


class TestSweepPoint:
    def test_accepted_fraction(self):
        p = SweepPoint(offered=0.1, latency=20.0, throughput=0.09, packets=100)
        assert p.accepted_fraction == pytest.approx(0.9)

    def test_zero_offered(self):
        p = SweepPoint(offered=0.0, latency=0.0, throughput=0.0, packets=0)
        assert p.accepted_fraction != p.accepted_fraction  # NaN


class TestSweepResult:
    def make(self, latencies, accepted):
        r = SweepResult("net", "UN")
        for i, (lat, acc) in enumerate(zip(latencies, accepted)):
            offered = 0.01 * (i + 1)
            r.points.append(
                SweepPoint(offered, lat, acc * offered, packets=100)
            )
        return r

    def test_saturation_by_latency_blowup(self):
        r = self.make([10, 12, 15, 40], [1.0, 1.0, 1.0, 1.0])
        assert r.saturation_offered(latency_factor=3.0) == pytest.approx(0.03)

    def test_saturation_by_acceptance_drop(self):
        r = self.make([10, 11, 12, 13], [1.0, 1.0, 0.7, 0.6])
        assert r.saturation_offered() == pytest.approx(0.02)

    def test_no_points(self):
        r = SweepResult("net", "UN")
        assert r.saturation_offered() is None

    def test_saturation_throughput_is_peak(self):
        r = self.make([10, 11, 12, 100], [1.0, 1.0, 0.9, 0.5])
        assert r.saturation_throughput() == pytest.approx(max(p.throughput for p in r.points))

    def test_zero_load_latency(self):
        r = self.make([10, 20], [1.0, 1.0])
        assert r.zero_load_latency() == 10


class TestRunners:
    def test_run_point_executes(self):
        p = run_point(lambda: build_cmesh(64), "UN", 0.03, cycles=300, warmup=100)
        assert p.offered == 0.03
        assert p.latency > 0
        assert 0 < p.throughput <= 0.05

    def test_load_sweep_stops_at_saturation(self):
        sweep = load_sweep(
            lambda: build_cmesh(64), "UN", [0.02, 0.3],
            cycles=300, warmup=100,
        )
        # 0.3 is deep saturation for CMESH-64 -> the sweep stops there.
        assert len(sweep.points) == 2
        assert sweep.points[-1].accepted_fraction < 0.8


class TestTables:
    def test_format_table_basic(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3.25]])
        lines = out.strip().split("\n")
        assert lines[0].startswith("a")
        assert "2.500" in out and "3.250" in out

    def test_format_table_title(self):
        out = format_table(["c"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_csv(self):
        out = format_csv(["a", "b"], [[1, 2], [3, 4]])
        assert out == "a,b\n1,2\n3,4\n"

    def test_ratio_note(self):
        assert ratio_note(2.0, 1.0, "base") == "x2.00 of base"
        assert "zero" in ratio_note(2.0, 0.0, "base")
