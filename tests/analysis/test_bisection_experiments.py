"""Bisection accounting and the lightweight experiment runners."""

import pytest

from repro.analysis import (
    EXPERIMENTS,
    bisection_report,
    measure_bisection,
    table1_channels,
    table2_channels_1024,
    table3_wireless_tech,
    table4_configs,
    fig3_link_budget,
    fig4_transceiver,
    ablation_sdm_channels,
)
from repro.core import build_own256
from repro.topologies import build_cmesh, build_optxb, build_wcmesh


class TestBisection:
    def test_own256_eight_wireless_channels_cross(self):
        entry = measure_bisection(build_own256())
        # The vertical mid-cut crosses the 4 C2C + 4 E2E directed channels.
        assert entry.crossing_channels == 8

    def test_cmesh_sixteen_links_cross(self):
        entry = measure_bisection(build_cmesh(256))
        assert entry.crossing_channels == 16
        assert entry.cycles_per_flit == 3

    def test_wcmesh_eight_wireless_cross(self):
        entry = measure_bisection(build_wcmesh(256))
        # 4 clusters per side boundary x 2 directions.
        assert entry.crossing_channels == 8

    def test_optxb_crossing_waveguides(self):
        entry = measure_bisection(build_optxb(64))
        # Every home waveguide has writers on both sides -> all 16 count.
        assert entry.crossing_channels == 16
        assert entry.cycles_per_flit == 4

    def test_equalized_cut_capacity_similar(self):
        """The headline fairness property: after the configured delays, cut
        capacities sit within ~2x of the OWN reference."""
        entries = bisection_report(
            [build_own256(), build_cmesh(256), build_wcmesh(256)]
        )
        caps = {e.name: e.equalized_flits_per_cycle for e in entries}
        ref = caps["own256"]
        for cap in caps.values():
            assert 0.5 * ref <= cap <= 2.0 * ref

    def test_raw_bandwidth_reported(self):
        entry = measure_bisection(build_cmesh(256))
        assert entry.raw_gbps == pytest.approx(16 * 320.0)


class TestExperimentRegistry:
    def test_all_paper_artifacts_covered(self):
        for key in ("table1", "table2", "table3", "table4",
                    "fig3", "fig4", "fig5", "fig6", "fig7a", "fig7bc",
                    "fig8a", "fig8b"):
            assert key in EXPERIMENTS

    def test_ablations_registered(self):
        for key in ("ablation_token", "ablation_antenna", "ablation_sdm",
                    "ablation_radix"):
            assert key in EXPERIMENTS


class TestLightRunners:
    """Static runners (no simulation) execute fully in tests."""

    @pytest.mark.parametrize("runner,n_rows", [
        (table1_channels, 12),
        (table2_channels_1024, 16),
        (table3_wireless_tech, 32),
        (table4_configs, 8),
        (fig3_link_budget, 7),
    ])
    def test_row_counts(self, runner, n_rows):
        result = runner()
        assert len(result.rows) == n_rows

    def test_rendered_contains_title(self):
        result = table1_channels()
        assert result.rendered.startswith("Table I")

    def test_fig4_notes(self):
        notes = fig4_transceiver().notes
        assert abs(notes["osc_freq_ghz"] - 90.0) < 0.5
        assert abs(notes["lna_peak_gain_db"] - 10.0) < 0.1

    def test_sdm_ablation(self):
        result = ablation_sdm_channels()
        assert len(result.rows) == 4
        assert result.notes["n_groups"] >= 3
