"""Run-record diffing: matching, noise bands, regression gating."""

import json

import pytest

from repro.analysis.diffing import (
    LogDiff,
    diff_groups,
    diff_runlogs,
    format_diff,
    record_key,
)


def record(topology="own256", pattern="UN", rate=0.03, cycles=800, warmup=200,
           latency=30.0, p99=60.0, throughput=0.03, digest="d0", power=None):
    rec = {
        "digest": digest,
        "label": f"{topology}/{pattern}@{rate:g}x{cycles}",
        "topology": topology, "pattern": pattern, "rate": rate,
        "cycles": cycles, "warmup": warmup,
        "summary": {
            "latency_mean": latency,
            "latency_p99": p99,
            "throughput": throughput,
        },
    }
    if power is not None:
        rec["power"] = power
    return rec


def write_log(tmp_path, name, records):
    path = tmp_path / name
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


class TestMatching:
    def test_identical_logs_zero_deltas_and_clean(self, tmp_path):
        recs = [record(rate=0.01), record(rate=0.03)]
        a = write_log(tmp_path, "a.jsonl", recs)
        b = write_log(tmp_path, "b.jsonl", recs)
        diff = diff_runlogs(a, b)
        assert diff.clean
        assert len(diff.matched) == 2
        for kd in diff.matched:
            assert kd.digests_match
            for md in kd.metrics:
                assert md.delta == 0.0 and md.rel_delta == 0.0

    def test_unmatched_points_reported(self, tmp_path):
        a = write_log(tmp_path, "a.jsonl", [record(rate=0.01), record(rate=0.02)])
        b = write_log(tmp_path, "b.jsonl", [record(rate=0.02), record(rate=0.05)])
        diff = diff_runlogs(a, b)
        assert len(diff.matched) == 1
        assert diff.only_a == ["own256/UN@0.01x800"]
        assert diff.only_b == ["own256/UN@0.05x800"]

    def test_digest_mismatch_reported_not_gating(self, tmp_path):
        a = write_log(tmp_path, "a.jsonl", [record(digest="aaa")])
        b = write_log(tmp_path, "b.jsonl", [record(digest="bbb")])
        diff = diff_runlogs(a, b)
        assert not diff.matched[0].digests_match
        assert diff.clean  # same numbers, different code fingerprint

    def test_malformed_lines_skipped(self, tmp_path):
        a = tmp_path / "a.jsonl"
        a.write_text(json.dumps(record()) + "\nnot json\n{\"half\": 1}\n")
        b = write_log(tmp_path, "b.jsonl", [record()])
        assert len(diff_runlogs(a, b).matched) == 1

    def test_key_covers_spec_fields(self):
        assert record_key(record()) == ("own256", "UN", 0.03, 800, 200, None)

    def test_variant_tag_distinguishes_cells(self):
        # Same spec shape, different experiment arm: must not cross-match.
        a, b = record(), record()
        a["variant"] = "hotspot/static"
        b["variant"] = "hotspot/adaptive"
        assert record_key(a) != record_key(b)


class TestGating:
    def test_latency_regression_breaches(self, tmp_path):
        a = write_log(tmp_path, "a.jsonl", [record(latency=30.0)])
        b = write_log(tmp_path, "b.jsonl", [record(latency=36.0)])
        diff = diff_runlogs(a, b)
        assert not diff.clean
        breached = {md.metric for _, md in diff.breaches()}
        assert breached == {"latency_mean"}

    def test_latency_improvement_never_breaches(self, tmp_path):
        a = write_log(tmp_path, "a.jsonl", [record(latency=30.0)])
        b = write_log(tmp_path, "b.jsonl", [record(latency=20.0)])
        assert diff_runlogs(a, b).clean

    def test_throughput_drop_breaches(self, tmp_path):
        a = write_log(tmp_path, "a.jsonl", [record(throughput=0.030)])
        b = write_log(tmp_path, "b.jsonl", [record(throughput=0.020)])
        breached = {md.metric for _, md in diff_runlogs(a, b).breaches()}
        assert breached == {"throughput"}

    def test_empty_sentinel_vs_populated_always_gates(self, tmp_path):
        # Explicit JSON nulls (the collector's n=0 sentinel: a run that
        # delivered no measurable packets) on one side, data on the other.
        # That qualitative change must gate even with an absurd threshold.
        empty = record()
        empty["summary"]["latency_mean"] = None
        empty["summary"]["latency_p99"] = None
        a = write_log(tmp_path, "a.jsonl", [record()])
        b = write_log(tmp_path, "b.jsonl", [empty])
        diff = diff_runlogs(a, b, rel_threshold=10.0)
        assert not diff.clean
        breached = {md.metric for _, md in diff.breaches()}
        assert {"latency_mean", "latency_p99"} <= breached
        md = [m for m in diff.matched[0].metrics if m.metric == "latency_mean"][0]
        assert md.empty_mismatch
        assert md.n_a == 1 and md.n_b == 0
        assert "EMPTY on side B" in format_diff(diff)

    def test_empty_sentinel_on_both_sides_not_compared(self, tmp_path):
        # n=0 on both sides: nothing to compare, nothing to gate.
        def empty_record():
            r = record()
            r["summary"]["latency_mean"] = None
            return r

        a = write_log(tmp_path, "a.jsonl", [empty_record()])
        b = write_log(tmp_path, "b.jsonl", [empty_record()])
        diff = diff_runlogs(a, b)
        names = {m.metric for m in diff.matched[0].metrics}
        assert "latency_mean" not in names
        assert diff.clean

    def test_absent_metric_skipped_unlike_null(self, tmp_path):
        # A path missing entirely (pre-sentinel schema) is skipped, NOT
        # treated as the explicit-null sentinel: old logs stay diffable.
        old = record()
        del old["summary"]["latency_p99"]
        a = write_log(tmp_path, "a.jsonl", [old])
        b = write_log(tmp_path, "b.jsonl", [record()])
        diff = diff_runlogs(a, b)
        names = {m.metric for m in diff.matched[0].metrics}
        assert "latency_p99" not in names
        assert diff.clean

    def test_noise_band_suppresses_gating(self, tmp_path):
        # Repeated-seed spread in the baseline covers the delta: the move
        # is within measurement noise and must not gate.
        a = write_log(tmp_path, "a.jsonl",
                      [record(latency=28.0), record(latency=36.0)])
        b = write_log(tmp_path, "b.jsonl", [record(latency=38.0)])
        diff = diff_runlogs(a, b)
        md = [m for m in diff.matched[0].metrics if m.metric == "latency_mean"][0]
        assert md.noise == pytest.approx(8.0)
        assert md.n_a == 2 and md.n_b == 1
        assert diff.clean

    def test_threshold_knob(self, tmp_path):
        a = write_log(tmp_path, "a.jsonl", [record(latency=30.0)])
        b = write_log(tmp_path, "b.jsonl", [record(latency=33.0)])  # +10%
        assert not diff_runlogs(a, b, rel_threshold=0.05).clean
        assert diff_runlogs(a, b, rel_threshold=0.15).clean

    def test_power_totals_compared_when_present(self, tmp_path):
        pw = {"cfg4_s1": {"total_w": 10.0, "router_w": 4.0}}
        pw_hot = {"cfg4_s1": {"total_w": 13.0, "router_w": 4.0}}
        a = write_log(tmp_path, "a.jsonl", [record(power=pw)])
        b = write_log(tmp_path, "b.jsonl", [record(power=pw_hot)])
        diff = diff_runlogs(a, b)
        names = {m.metric for m in diff.matched[0].metrics}
        assert "power_cfg4_s1_total_w" in names
        assert {md.metric for _, md in diff.breaches()} == {
            "power_cfg4_s1_total_w"
        }

    def test_v1_records_without_power_skip_that_row(self, tmp_path):
        a = write_log(tmp_path, "a.jsonl", [record()])
        b = write_log(tmp_path, "b.jsonl",
                      [record(power={"cfg4_s1": {"total_w": 10.0}})])
        names = {m.metric for m in diff_runlogs(a, b).matched[0].metrics}
        assert "power_cfg4_s1_total_w" not in names  # only one side has it


class TestOutput:
    def test_format_mentions_regression_and_noise(self):
        groups_a = {("t", "UN", 0.01, 100, 0): [record(latency=30.0)]}
        groups_b = {("t", "UN", 0.01, 100, 0): [record(latency=40.0)]}
        diff = diff_groups(groups_a, groups_b)
        text = format_diff(diff)
        assert "REGRESSION" in text and "latency_mean" in text

    def test_empty_logs_format(self):
        diff = diff_groups({}, {})
        assert isinstance(diff, LogDiff)
        assert "no matching run points" in format_diff(diff)

    def test_json_dict_structure(self):
        groups = {("t", "UN", 0.01, 100, 0): [record()]}
        d = diff_groups(groups, groups).to_json_dict()
        assert d["clean"] is True
        assert d["matched"][0]["digests_match"] is True
        assert d["breaches"] == []
