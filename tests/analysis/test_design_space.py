"""Design-space exploration: caching, dominance, and the paper's verdict."""

import pytest

from repro.analysis.design_space import (
    DesignPoint,
    EvaluatedPoint,
    default_space,
    evaluate_point,
    explore,
    pareto_frontier,
)


def ev(label_cfg=4, lat=10.0, tput=0.03, power=5.0):
    return EvaluatedPoint(
        point=DesignPoint(config_id=label_cfg, scenario=1),
        latency=lat,
        throughput=tput,
        power_w=power,
        energy_per_packet_nj=1.0,
    )


class TestDominance:
    def test_strict_dominance(self):
        better = ev(lat=10, power=4.0)
        worse = ev(lat=12, power=5.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_incomparable_points(self):
        fast = ev(lat=10, power=6.0)
        frugal = ev(lat=20, power=4.0)
        assert not fast.dominates(frugal)
        assert not frugal.dominates(fast)

    def test_equal_points_do_not_dominate(self):
        a, b = ev(), ev()
        assert not a.dominates(b)

    def test_frontier_extraction(self):
        points = [ev(lat=10, power=6.0), ev(lat=20, power=4.0), ev(lat=21, power=6.5)]
        frontier = pareto_frontier(points)
        assert len(frontier) == 2
        assert points[2] not in frontier

    def test_frontier_sorted_by_power(self):
        points = [ev(lat=10, power=6.0), ev(lat=20, power=4.0)]
        frontier = pareto_frontier(points)
        assert frontier[0].power_w <= frontier[1].power_w


class TestDefaultSpace:
    def test_paper_grid(self):
        space = default_space()
        assert len(space) == 8
        assert {p.config_id for p in space} == {1, 2, 3, 4}
        assert {p.scenario for p in space} == {1, 2}

    def test_conservative_scenario_halves_bandwidth(self):
        for p in default_space():
            expected = 1 if p.scenario == 1 else 2
            assert p.wireless_cycles_per_flit == expected


class TestExploration:
    @pytest.fixture(scope="class")
    def result(self):
        return explore(cycles=500, warmup=150)

    def test_all_points_evaluated(self, result):
        assert len(result.evaluated) == 8

    def test_paper_verdict_config4(self, result):
        """The sweep rediscovers Sec. V-B's conclusion: configuration 4 is
        the power winner, and the whole frontier is config-4 designs."""
        assert result.best_by("power").point.config_id == 4
        assert all(e.point.config_id == 4 for e in result.frontier)

    def test_frontier_has_the_latency_and_power_extremes(self, result):
        labels = {e.point.scenario for e in result.frontier}
        # Ideal (fast) and conservative (frugal) both survive.
        assert labels == {1, 2}

    def test_rows_mark_frontier(self, result):
        rows = result.rows()
        stars = [r for r in rows if r[5] == "*"]
        assert len(stars) == len(result.frontier)

    def test_best_by_validation(self, result):
        with pytest.raises(ValueError):
            result.best_by("beauty")

    def test_evaluate_point_standalone(self):
        e = evaluate_point(DesignPoint(config_id=4, scenario=1), cycles=300, warmup=100)
        assert e.latency > 0 and e.power_w > 0

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            evaluate_point(DesignPoint(config_id=4, scenario=9), cycles=100)
