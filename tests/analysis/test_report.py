"""Markdown report generation."""

import pytest

from repro.analysis import ARTIFACT_CONTEXT, EXPERIMENTS, generate_report


class TestReport:
    def test_static_subset(self):
        text = generate_report(only=["table1", "table4"], quick=True)
        assert "# OWN reproduction" in text
        assert "Table I" in text and "Table IV" in text
        # Markdown tables present.
        assert "| channel | link | class |" in text

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="bogus"):
            generate_report(only=["bogus"])

    def test_every_experiment_has_context(self):
        for key in EXPERIMENTS:
            assert key in ARTIFACT_CONTEXT, f"missing report context for {key}"

    def test_notes_rendered(self):
        text = generate_report(only=["fig3"], quick=True)
        assert "`anchor_50mm_0dBi_dbm`" in text

    def test_float_formatting(self):
        text = generate_report(only=["fig3"], quick=True)
        # Floats rendered with 3 decimals, not repr noise.
        assert "4.088" in text


class TestLatencyBreakdown:
    def test_queueing_vs_network_split(self):
        from repro.noc import Simulator, reset_packet_ids
        from repro.topologies import build_cmesh
        from repro.traffic import SyntheticTraffic

        reset_packet_ids()
        built = build_cmesh(64)
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(64, "UN", 0.08, 4, seed=1),
            warmup_cycles=200,
        )
        sim.run(800)
        s = sim.summary()
        assert s["network_latency_mean"] > 0
        assert s["queueing_latency_mean"] >= 0
        assert s["latency_mean"] == pytest.approx(
            s["network_latency_mean"] + s["queueing_latency_mean"], rel=0.01
        )

    def test_queueing_grows_with_load(self):
        from repro.noc import Simulator, reset_packet_ids
        from repro.topologies import build_cmesh
        from repro.traffic import SyntheticTraffic

        queueing = {}
        for rate in (0.02, 0.1):
            reset_packet_ids()
            built = build_cmesh(64)
            sim = Simulator(
                built.network,
                traffic=SyntheticTraffic(64, "UN", rate, 4, seed=1),
                warmup_cycles=200,
            )
            sim.run(800)
            queueing[rate] = sim.stats.queueing_latency_mean()
        assert queueing[0.1] > queueing[0.02]
