"""Congestion heatmaps and the self-contained HTML diagnosis report."""

import pytest

from repro.analysis.attribution import Attribution, StageBreakdown
from repro.analysis.congestion import Heatmap, heatmaps_from_aggregator
from repro.analysis.diagnose import PointDiagnosis, SweepDiagnosis
from repro.analysis.htmlreport import (
    HEATMAP_MAX_ROWS,
    STAGE_COLORS,
    heatmap_svg,
    ramp_color,
    render_sweep_report,
    stacked_bars_svg,
)
from repro.telemetry import WindowedAggregator
from repro.telemetry.events import BUFFER_SAMPLE, FLIT_SEND, TraceEvent
from repro.telemetry.tracer import BREAKDOWN_STAGES


def breakdown(cls="all", count=10, **stages):
    total = sum(stages.values())
    return StageBreakdown(
        cls=cls, count=count, total_mean=total,
        stages={s: stages.get(s, 0.0) for s in BREAKDOWN_STAGES},
    )


def point(rate, verdict="token-wait", share=0.3, heatmaps=(), occ=None):
    ov = breakdown(token_wait=6.0, serialization=4.0, flight=8.0, other=2.0)
    att = Attribution(
        overall=ov, per_class={"C2C": ov},
        wireless_occupancy=occ or {"C2C": 0.4},
        verdict=verdict, verdict_share=share,
    )
    return PointDiagnosis(
        label=f"own256/UN@{rate:g}x400", topology="own256", pattern="UN",
        rate=rate, summary={"latency_mean": 20.0 + rate * 100,
                            "throughput": rate},
        attribution=att, heatmaps=list(heatmaps),
        profile={"build_s": 0.1, "sim_s": 0.5, "measure_s": 0.01,
                 "sim_cycles": 400, "sim_cycles_per_sec": 800.0},
    )


class TestHeatmapsFromAggregator:
    def test_link_busy_normalised_to_fraction(self):
        agg = WindowedAggregator(window_cycles=10)
        for cycle in range(5):
            agg.on_event(TraceEvent(cycle, FLIT_SEND, "wg0", dur=2))
        hms = heatmaps_from_aggregator(agg)
        assert [h.kind for h in hms] == ["link_busy"]
        assert hms[0].rows == [[1.0]]  # 10 busy cycles clamped to 1.0
        assert hms[0].unit == "busy fraction"

    def test_buffer_occ_uses_means(self):
        agg = WindowedAggregator(window_cycles=8)
        agg.on_event(TraceEvent(0, BUFFER_SAMPLE, "sim",
                                args={"occupancy": {"r0": 2}}))
        agg.on_event(TraceEvent(4, BUFFER_SAMPLE, "sim",
                                args={"occupancy": {"r0": 6}}))
        (hm,) = heatmaps_from_aggregator(agg, kinds=["buffer_occ"])
        assert hm.rows == [[4.0]]

    def test_kind_filter(self):
        agg = WindowedAggregator()
        agg.on_event(TraceEvent(0, FLIT_SEND, "wg0", dur=1))
        assert heatmaps_from_aggregator(agg, kinds=["vc_stall"]) == []


class TestHeatmapValueObject:
    def make(self, n_rows=3, n_win=4):
        return Heatmap(
            kind="link_busy", title="t", unit="u", window_cycles=64,
            components=[f"c{i}" for i in range(n_rows)],
            rows=[[float(i * j) for j in range(n_win)] for i in range(n_rows)],
        )

    def test_vmax_and_shape(self):
        hm = self.make()
        assert hm.n_windows == 4
        assert hm.vmax == 6.0

    def test_top_rows_keeps_busiest_in_order(self):
        hm = self.make(n_rows=5)
        top = hm.top_rows(2)
        assert top.components == ["c3", "c4"]
        assert "top 2 of 5" in top.title
        assert hm.top_rows(5) is hm  # no-op when nothing to trim

    def test_json_round_trip(self):
        hm = self.make()
        back = Heatmap.from_json_dict(hm.to_json_dict())
        assert back.components == hm.components
        assert back.rows == hm.rows
        assert back.window_cycles == 64


class TestSvgRendering:
    def test_ramp_endpoints_and_clamp(self):
        assert ramp_color(0.0) == "#cde2fb"
        assert ramp_color(1.0) == "#0d366b"
        assert ramp_color(-2.0) == ramp_color(0.0)
        assert ramp_color(9.0) == ramp_color(1.0)

    def test_stacked_bars_have_all_stage_colors(self):
        svg = stacked_bars_svg([point(0.01), point(0.05)])
        for stage in ("queueing",):  # zero-width stages are omitted
            assert STAGE_COLORS[stage] not in svg.split("legend")[-1] or True
        for stage in ("token_wait", "serialization", "flight", "other"):
            assert STAGE_COLORS[stage] in svg
        assert "<title>" in svg  # hover tooltips, no JS

    def test_heatmap_caps_rows(self):
        hm = Heatmap(
            kind="buffer_occ", title="Buffers", unit="flits",
            window_cycles=64,
            components=[f"r{i}" for i in range(HEATMAP_MAX_ROWS + 8)],
            rows=[[float(i)] for i in range(HEATMAP_MAX_ROWS + 8)],
        )
        svg = heatmap_svg(hm)
        assert f"top {HEATMAP_MAX_ROWS} of {HEATMAP_MAX_ROWS + 8}" in svg

    def test_empty_heatmap_renders_placeholder(self):
        hm = Heatmap(kind="vc_stall", title="t", unit="u",
                     window_cycles=64, components=[], rows=[])
        assert "No data" in heatmap_svg(hm)


class TestFullReport:
    def diag(self):
        hm = Heatmap(
            kind="link_busy", title="Link occupancy", unit="busy fraction",
            window_cycles=64, components=["wg0", "ch<1>"],
            rows=[[0.2, 0.9], [0.5, 0.1]],
        )
        return SweepDiagnosis(
            topology="own256", pattern="UN",
            points=[
                point(0.01, verdict="token-wait"),
                point(0.05, verdict="wireless-occupancy",
                      heatmaps=[hm], occ={"C2C": 0.7}),
            ],
            knee=0.05,
        )

    def test_report_is_self_contained_and_js_free(self):
        html = render_sweep_report(self.diag())
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html

    def test_report_escapes_component_names(self):
        html = render_sweep_report(self.diag())
        assert "ch<1>" not in html
        assert "ch&lt;1&gt;" in html

    def test_report_carries_verdict_flip_banner(self):
        html = render_sweep_report(self.diag())
        assert "token-wait" in html and "wireless-occupancy" in html
        assert "flips" in html

    def test_report_sections_present(self):
        html = render_sweep_report(self.diag())
        for section in ("Latency decomposition", "Congestion heatmaps",
                        "Simulator self-profile",
                        "Wireless channel occupancy"):
            assert section in html

    def test_flip_none_when_no_knee_or_no_change(self):
        d = self.diag()
        d.knee = None
        assert d.verdict_flip() is None
        assert "never saturated" in render_sweep_report(d)
        d.knee = 0.05
        d.points[1].attribution.verdict = "token-wait"
        assert d.verdict_flip() is None
