"""Analytical model vs simulation cross-validation + utilisation reports.

The model/simulator agreement is the strongest whole-system check in the
repo: an error in either one (hop counting, token accounting, serialization,
channel capacities) breaks the tolerance bands below.
"""

import pytest

from repro.analysis.model import PREDICTORS
from repro.analysis.sweep import run_point
from repro.analysis.utilization import utilisation_report, wireless_channel_table_rows
from repro.core import build_own256, build_own1024
from repro.noc import Simulator, reset_packet_ids
from repro.topologies import build_cmesh, build_optxb, build_pclos, build_wcmesh
from repro.traffic import SyntheticTraffic

BUILDERS = {
    "cmesh256": lambda: build_cmesh(256),
    "optxb256": lambda: build_optxb(256),
    "pclos256": lambda: build_pclos(256),
    "wcmesh256": lambda: build_wcmesh(256),
    "own256": build_own256,
}


class TestModelVsSimulation:
    @pytest.mark.parametrize("name", sorted(PREDICTORS))
    def test_zero_load_latency_within_15pct(self, name):
        predicted = PREDICTORS[name]().zero_load_latency
        point = run_point(BUILDERS[name], "UN", 0.01, cycles=800, warmup=300)
        assert predicted == pytest.approx(point.latency, rel=0.15), (
            name, predicted, point.latency,
        )

    @pytest.mark.parametrize("name", sorted(PREDICTORS))
    def test_saturation_within_25pct(self, name):
        """Run at the predicted saturation rate: the network must be near
        its knee — accepting most of the load below, rejecting load 30 %
        above."""
        predicted = PREDICTORS[name]().saturation_rate
        below = run_point(BUILDERS[name], "UN", predicted * 0.75, cycles=1000, warmup=300)
        above = run_point(BUILDERS[name], "UN", predicted * 1.3, cycles=1000, warmup=300)
        assert below.accepted_fraction > 0.9, (name, below)
        assert above.accepted_fraction < 0.97, (name, above)

    def test_binding_resources_named(self):
        for name, fn in PREDICTORS.items():
            assert fn().binding_resource

    def test_own_predicts_lowest_latency(self):
        t0s = {name: fn().zero_load_latency for name, fn in PREDICTORS.items()}
        assert min(t0s, key=t0s.get) == "own256"


class TestUtilisationReport:
    def run_own(self, rate=0.03, cycles=600):
        reset_packet_ids()
        built = build_own256()
        sim = Simulator(
            built.network, traffic=SyntheticTraffic(256, "UN", rate, 4, seed=4)
        )
        sim.run(cycles)
        return built, sim

    def test_wireless_traffic_share(self):
        built, sim = self.run_own()
        report = utilisation_report(built, sim)
        # UN: ~75 % of packets cross clusters, but photonic carries ~2 hops
        # per inter-cluster packet -> wireless share ~25-30 % of traversals.
        assert 0.15 < report.wireless_traffic_share < 0.45

    def test_channel_rows(self):
        built, sim = self.run_own()
        rows = wireless_channel_table_rows(built, sim)
        assert len(rows) == 12
        assert [r[0] for r in rows] == list(range(1, 13))
        assert all(r[2] > 0 for r in rows)  # every channel carried traffic

    def test_gateway_loads_present(self):
        built, sim = self.run_own()
        report = utilisation_report(built, sim)
        assert len(report.gateway_loads) == 16  # 4 antennas x 4 clusters

    def test_hottest_sorted(self):
        built, sim = self.run_own()
        report = utilisation_report(built, sim)
        top = report.hottest(5)
        assert all(
            top[i].utilisation >= top[i + 1].utilisation for i in range(len(top) - 1)
        )

    def test_load_balance_cv(self):
        built, sim = self.run_own()
        report = utilisation_report(built, sim)
        cv = report.load_balance_cv("wireless")
        # Uniform traffic over symmetric channels: modest imbalance only.
        assert 0.0 <= cv < 0.6

    def test_requires_a_run(self):
        built = build_own256()
        sim = Simulator(built.network)
        with pytest.raises(ValueError):
            utilisation_report(built, sim)

    def test_own1024_media_counted_once(self):
        reset_packet_ids()
        built = build_own1024()
        sim = Simulator(
            built.network, traffic=SyntheticTraffic(1024, "UN", 0.008, 4, seed=4)
        )
        sim.run(200)
        report = utilisation_report(built, sim)
        wireless = [c for c in report.channels if c.kind == "wireless"]
        assert len(wireless) == 16  # one row per SWMR channel, not per writer
