"""End-to-end diagnosis runs: exact sums, observation-only tracing, and
the paper-level acceptance check -- on an OWN-256 uniform-random load
sweep the dominant-bottleneck verdict flips from token-wait to
wireless-occupancy across the saturation knee."""

import pytest

from repro.analysis.diagnose import (
    diagnose_point,
    diagnose_sweep,
    diagnosis_spec,
)
from repro.noc import reset_packet_ids
from repro.runtime.executor import execute_inline
from repro.telemetry.tracer import BREAKDOWN_STAGES


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


@pytest.fixture(scope="module")
def own_sweep():
    reset_packet_ids()
    return diagnose_sweep(
        "own256", rates=(0.01, 0.03, 0.05, 0.07), cycles=400, warmup=100
    )


class TestDiagnosePoint:
    def test_cmesh_point_full_surface(self):
        spec = diagnosis_spec("cmesh", rate=0.03, cycles=200, warmup=50,
                              topology_kwargs={"n_cores": 64})
        diag = diagnose_point(spec, window_cycles=32, sample_every=8)
        assert diag.attribution is not None
        ov = diag.attribution.overall
        assert ov.exact, "stage totals must sum exactly to end-to-end"
        assert ov.total_mean == pytest.approx(
            sum(ov.stages[s] for s in BREAKDOWN_STAGES)
        )
        kinds = {h.kind for h in diag.heatmaps}
        assert "link_busy" in kinds and "buffer_occ" in kinds
        assert diag.profile["sim_cycles"] == 200
        assert diag.profile["sim_cycles_per_sec"] > 0
        assert set(diag.profile) >= {"build_s", "sim_s", "measure_s"}

    def test_heatmaps_off(self):
        spec = diagnosis_spec("cmesh", rate=0.02, cycles=120, warmup=0,
                              topology_kwargs={"n_cores": 64})
        diag = diagnose_point(spec, heatmaps=False)
        assert diag.heatmaps == []
        assert diag.attribution is not None

    def test_instrumentation_is_observation_only(self):
        # The acceptance bar: an analysis-enabled run must be
        # bit-identical in simulation results to an untraced run.
        spec = diagnosis_spec("cmesh", rate=0.04, cycles=200, warmup=50,
                              topology_kwargs={"n_cores": 64})
        reset_packet_ids()
        plain = execute_inline(spec.with_(telemetry=False))[2]
        reset_packet_ids()
        diagnosed = diagnose_point(spec, window_cycles=32, sample_every=4)
        assert diagnosed.summary == plain.summary


class TestOwn256VerdictFlip:
    def test_exact_sum_at_every_load(self, own_sweep):
        for p in own_sweep.points:
            assert p.attribution is not None
            assert p.attribution.overall.exact

    def test_knee_detected(self, own_sweep):
        assert own_sweep.knee == 0.05

    def test_verdict_flips_across_the_knee(self, own_sweep):
        flip = own_sweep.verdict_flip()
        assert flip is not None
        assert flip["before"] == "token-wait"
        assert flip["after"] == "wireless-occupancy"
        # And the per-point story is monotone: token-wait at every
        # pre-knee load, wireless-occupancy at every post-knee load.
        for p in own_sweep.points:
            expected = (
                "token-wait" if p.rate < own_sweep.knee
                else "wireless-occupancy"
            )
            assert p.verdict == expected, f"rate {p.rate}"

    def test_wireless_occupancy_rises_through_knee(self, own_sweep):
        maxima = [
            max(p.attribution.wireless_occupancy.values())
            for p in own_sweep.points
        ]
        assert maxima[0] < 0.3
        assert maxima[-1] > 0.6

    def test_heatmaps_only_on_congested_points(self, own_sweep):
        with_heat = [p.rate for p in own_sweep.points if p.heatmaps]
        assert with_heat == [0.05, 0.07]

    def test_json_export_shape(self, own_sweep):
        d = own_sweep.to_json_dict()
        assert d["knee"] == 0.05
        assert d["verdict_flip"]["before"] == "token-wait"
        assert len(d["points"]) == 4
        assert d["points"][0]["attribution"]["overall"]["exact"] is True
