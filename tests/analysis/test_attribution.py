"""Bottleneck attribution: decomposition arithmetic and verdict rules."""

import pytest

from repro.analysis.attribution import (
    ATTRIBUTABLE_MIN,
    OCCUPANCY_SATURATED,
    attribute_metrics,
    detect_knee,
    packet_classes,
    wireless_occupancies,
)
from repro.telemetry.tracer import BREAKDOWN_STAGES


def metrics_for(cls, count, stage_totals, occupancy=None):
    """Flat metrics dict for one class with exact stage totals."""
    total = sum(stage_totals.values())
    flat = {
        f"pkt_total[{cls}].count": count,
        f"pkt_total[{cls}].total": total,
        f"pkt_total[{cls}].mean": total / count,
    }
    for stage in BREAKDOWN_STAGES:
        st = stage_totals.get(stage, 0)
        flat[f"pkt_{stage}[{cls}].count"] = count
        flat[f"pkt_{stage}[{cls}].total"] = st
        flat[f"pkt_{stage}[{cls}].mean"] = st / count
    for k, v in (occupancy or {}).items():
        flat[f"wireless_occupancy[{k}]"] = v
    return flat


class TestParsing:
    def test_no_packets_returns_none(self):
        assert attribute_metrics({}) is None
        assert attribute_metrics({"pkt_total[C2C].count": 0}) is None

    def test_packet_classes_and_occupancies(self):
        flat = metrics_for("C2C", 4, {"flight": 8}, {"C2C": 0.4, "SR": 0.1})
        assert packet_classes(flat) == ["C2C"]
        assert wireless_occupancies(flat) == {"C2C": 0.4, "SR": 0.1}

    def test_exact_sum_flag(self):
        flat = metrics_for("C2C", 2, {"token_wait": 10, "flight": 6})
        att = attribute_metrics(flat)
        assert att.overall.exact is True
        assert att.overall.total_mean == 8.0
        assert att.overall.stages["token_wait"] == 5.0
        # Break the identity: flag must drop.
        flat["pkt_flight[C2C].total"] = 5
        assert attribute_metrics(flat).overall.exact is False

    def test_overall_is_count_weighted_across_classes(self):
        flat = {}
        flat.update(metrics_for("C2C", 1, {"flight": 30}))
        flat.update(metrics_for("SR", 3, {"flight": 30}))
        att = attribute_metrics(flat)
        assert att.overall.count == 4
        # (1 pkt @ 30) + (3 pkts @ 10) -> 60 cycles over 4 packets.
        assert att.overall.total_mean == pytest.approx(15.0)
        assert att.per_class["C2C"].total_mean == pytest.approx(30.0)
        assert att.per_class["SR"].total_mean == pytest.approx(10.0)
        assert set(att.per_class) == {"C2C", "SR"}

    def test_v1_records_without_totals_still_attribute(self):
        flat = metrics_for("C2C", 4, {"token_wait": 20, "flight": 20})
        for key in list(flat):
            if key.endswith(".total"):
                del flat[key]
        att = attribute_metrics(flat)
        assert att is not None
        assert att.overall.total_mean == pytest.approx(10.0)


class TestVerdicts:
    def test_token_wait_dominates_pre_knee(self):
        flat = metrics_for(
            "C2C", 10,
            {"token_wait": 60, "serialization": 40, "flight": 60, "other": 80},
            occupancy={"C2C": 0.45},
        )
        att = attribute_metrics(flat)
        assert att.verdict == "token-wait"
        assert att.verdict_share == pytest.approx(0.25)

    def test_wireless_occupancy_past_knee(self):
        flat = metrics_for(
            "C2C", 10,
            {"token_wait": 40, "queueing": 20, "other": 200, "flight": 40},
            occupancy={"C2C": OCCUPANCY_SATURATED + 0.05},
        )
        att = attribute_metrics(flat)
        assert att.verdict == "wireless-occupancy"
        assert att.verdict_share == pytest.approx(OCCUPANCY_SATURATED + 0.05)

    def test_saturated_occupancy_but_token_dominant_stays_token(self):
        # High occupancy alone is not enough: token wait must be beaten
        # by congestion (blocking + queueing) for the flip.
        flat = metrics_for(
            "C2C", 10,
            {"token_wait": 200, "other": 40, "flight": 40},
            occupancy={"C2C": 0.9},
        )
        assert attribute_metrics(flat).verdict == "token-wait"

    def test_queueing_and_retx_verdicts(self):
        q = metrics_for("C2C", 5, {"queueing": 50, "flight": 30})
        assert attribute_metrics(q).verdict == "injection-queueing"
        r = metrics_for("C2C", 5, {"retx": 50, "flight": 30})
        assert attribute_metrics(r).verdict == "retransmission"

    def test_switch_contention_without_wireless(self):
        # Electrical topology: no occupancy gauges, "other" dominates.
        flat = metrics_for("electrical", 10, {"other": 80, "flight": 20})
        assert attribute_metrics(flat).verdict == "switch-contention"

    def test_structural_when_contention_negligible(self):
        flat = metrics_for(
            "C2C", 10,
            {"token_wait": 1, "serialization": 40, "flight": 59},
        )
        att = attribute_metrics(flat)
        assert att.verdict == "structural"
        assert att.overall.share("token_wait") < ATTRIBUTABLE_MIN

    def test_json_dict_round_trip_fields(self):
        flat = metrics_for("C2C", 2, {"token_wait": 10, "flight": 6},
                           occupancy={"C2C": 0.2})
        d = attribute_metrics(flat).to_json_dict()
        assert d["verdict"] == "token-wait"
        assert d["overall"]["shares"]["token_wait"] == pytest.approx(10 / 16)
        assert d["per_class"]["C2C"]["count"] == 2


class TestKnee:
    def test_latency_factor_knee(self):
        loads = [0.01, 0.02, 0.04, 0.08]
        lats = [20.0, 22.0, 30.0, 90.0]
        assert detect_knee(loads, lats) == 0.08

    def test_acceptance_knee_fires_first(self):
        loads = [0.01, 0.02, 0.04]
        lats = [20.0, 22.0, 30.0]
        accepted = [0.01, 0.02, 0.02]  # 50% accepted at 0.04
        assert detect_knee(loads, lats, accepted) == 0.04

    def test_no_knee(self):
        assert detect_knee([0.01, 0.02], [20.0, 21.0]) is None
        assert detect_knee([], []) is None
