"""Tracer behaviour: event ordering, zero-overhead-off, latency breakdown."""

import pytest

from repro.noc import Simulator, reset_packet_ids
from repro.telemetry import (
    BREAKDOWN_STAGES,
    EVENT_TYPES,
    FLIT_RECV,
    FLIT_SEND,
    PACKET_DONE,
    Tracer,
)
from repro.topologies import build_cmesh
from repro.traffic import SyntheticTraffic


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


def run_cmesh(tracer, cycles=300, rate=0.05, seed=11):
    reset_packet_ids()
    built = build_cmesh(64)
    sim = Simulator(
        built.network,
        traffic=SyntheticTraffic(64, "UN", rate, 4, seed=seed, stop_cycle=cycles),
        tracer=tracer,
    )
    sim.run(cycles)
    sim.drain()
    return sim


class TestEventStream:
    def test_cycles_monotonic(self):
        tracer = Tracer()
        run_cmesh(tracer)
        cycles = [ev.cycle for ev in tracer.events]
        assert cycles, "traced run produced no events"
        assert all(a <= b for a, b in zip(cycles, cycles[1:]))

    def test_event_types_are_known(self):
        tracer = Tracer()
        run_cmesh(tracer)
        assert {ev.etype for ev in tracer.events} <= set(EVENT_TYPES)

    def test_send_and_recv_balanced(self):
        tracer = Tracer()
        sim = run_cmesh(tracer)
        sends = sum(1 for ev in tracer.events if ev.etype == FLIT_SEND)
        recvs = sum(1 for ev in tracer.events if ev.etype == FLIT_RECV)
        # Fully drained, fault-free: every sent flit is delivered.
        assert sim.network.total_occupancy() == 0
        assert sends == recvs > 0

    def test_max_events_cap(self):
        tracer = Tracer(max_events=100)
        run_cmesh(tracer)
        assert len(tracer.events) == 100
        assert tracer.events_dropped > 0

    def test_metrics_only_mode_buffers_nothing(self):
        tracer = Tracer(record_events=False)
        run_cmesh(tracer)
        assert tracer.events == []
        assert tracer.emits > 0
        assert tracer.metrics.as_flat_dict()


class TestDisabledTracer:
    def test_disabled_tracer_never_invoked(self):
        """The zero-overhead guard: a disabled tracer sees zero calls.

        Guarded by the ``emits`` invocation counter, not wall-clock
        timing, so the assertion is exact and CI-stable.
        """
        tracer = Tracer(enabled=False)
        run_cmesh(tracer)
        assert tracer.emits == 0
        assert tracer.events == []
        assert tracer.metrics.as_flat_dict() == {}

    def test_disabled_tracer_results_bit_identical(self):
        sim_off = run_cmesh(None)
        sim_dis = run_cmesh(Tracer(enabled=False))
        sim_on = run_cmesh(Tracer())
        base = (
            sim_off.stats.packets_ejected,
            tuple(sim_off.stats.latencies),
        )
        assert (sim_dis.stats.packets_ejected, tuple(sim_dis.stats.latencies)) == base
        # Tracing must observe, never perturb, the simulation.
        assert (sim_on.stats.packets_ejected, tuple(sim_on.stats.latencies)) == base

    def test_disabled_tracer_not_bound_to_routers(self):
        sim = run_cmesh(Tracer(enabled=False))
        assert sim._tracer is None
        assert all(r.tracer is None for r in sim.network.routers)


class TestLatencyBreakdown:
    def test_breakdown_sums_to_total(self):
        tracer = Tracer()
        run_cmesh(tracer)
        done = [ev for ev in tracer.events if ev.etype == PACKET_DONE]
        assert done, "no packets completed"
        for ev in done:
            parts = sum(ev.args[stage] for stage in BREAKDOWN_STAGES)
            assert parts == ev.args["total"], ev.args

    def test_breakdown_histograms_cover_all_packets(self):
        tracer = Tracer()
        sim = run_cmesh(tracer)
        flat = tracer.metrics.as_flat_dict()
        counts = [
            v for k, v in flat.items() if k.startswith("pkt_total[") and k.endswith(".count")
        ]
        assert sum(counts) == sim.stats.packets_ejected

    def test_stages_nonnegative(self):
        tracer = Tracer()
        run_cmesh(tracer)
        for ev in tracer.events:
            if ev.etype == PACKET_DONE:
                assert all(ev.args[s] >= 0 for s in BREAKDOWN_STAGES)
