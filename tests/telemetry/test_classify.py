"""Channel-class attribution edge cases.

Locks the corners the run-record metrics depend on: reconfiguration /
out-of-plan channel indices (13-16 exist only in the OWN-1024 plan),
SWMR multicast receivers on OWN-1024, and the fallback labels for
non-OWN links.
"""

from types import SimpleNamespace

from repro.noc import Simulator, reset_packet_ids
from repro.runtime import build_topology
from repro.telemetry import Tracer
from repro.telemetry.classify import (
    WIRELESS_CLASSES,
    infer_channel_classes,
    link_class,
    own_channel_classes,
)
from repro.topologies import build_cmesh
from repro.traffic import SyntheticTraffic


def fake_link(kind="wireless", channel_id=None):
    return SimpleNamespace(kind=kind, channel_id=channel_id)


class TestChannelPlans:
    def test_own256_plan_covers_1_to_12_only(self):
        classes = own_channel_classes(256)
        assert sorted(classes) == list(range(1, 13))
        assert set(classes.values()) == set(WIRELESS_CLASSES)

    def test_own1024_plan_covers_all_16(self):
        classes = own_channel_classes(1024)
        assert sorted(classes) == list(range(1, 17))
        # Table II: the intra-group channels 13-16 are short-range.
        assert all(classes[i] == "SR" for i in (13, 14, 15, 16))

    def test_reconfig_channels_fall_back_on_own256(self):
        # Channels 13-16 are not in the OWN-256 plan (Table I stops at
        # 12); a spare/reconfiguration link carrying such an id must not
        # crash or mis-attribute -- it reads as plain "wireless".
        classes = own_channel_classes(256)
        for idx in (13, 14, 15, 16):
            assert idx not in classes
            assert link_class(fake_link(channel_id=idx), classes) == "wireless"

    def test_same_index_classifies_differently_by_plan(self):
        # Channel 13 is SR on OWN-1024 but out-of-plan on OWN-256.
        link = fake_link(channel_id=13)
        assert link_class(link, own_channel_classes(1024)) == "SR"
        assert link_class(link, own_channel_classes(256)) == "wireless"


class TestLinkClassFallbacks:
    def test_wired_kinds_classify_as_kind(self):
        assert link_class(fake_link(kind="photonic")) == "photonic"
        assert link_class(fake_link(kind="electrical")) == "electrical"

    def test_wireless_without_map_or_id(self):
        assert link_class(fake_link()) == "wireless"
        assert link_class(fake_link(channel_id=3), None) == "wireless"
        assert link_class(fake_link(channel_id=None), {3: "C2C"}) == "wireless"

    def test_infer_returns_empty_for_non_own(self):
        built = build_cmesh(64)
        assert infer_channel_classes(built.network) == {}


class TestOwn1024Multicast:
    def test_all_wireless_links_are_swmr_multicast_and_classified(self):
        built = build_topology("own1024")
        classes = infer_channel_classes(built.network)
        wireless = built.network.links_by_kind("wireless")
        assert wireless, "own1024 has no wireless links?"
        for link in wireless:
            # SWMR: one sender, the four receivers of the target group.
            assert link.multicast_degree == 4
            assert link_class(link, classes) in WIRELESS_CLASSES

    def test_traced_own1024_metrics_use_distance_classes(self):
        reset_packet_ids()
        built = build_topology("own1024")
        tracer = Tracer(record_events=False)
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(
                built.n_cores, "UN", 0.02, 4, seed=5, stop_cycle=120
            ),
            tracer=tracer,
        )
        sim.run(120)
        sim.drain()
        tracer.finalize(sim)
        flat = tracer.metrics_dict()
        classes = {
            key[len("pkt_total["):-len("].count")]
            for key in flat
            if key.startswith("pkt_total[") and key.endswith("].count")
        }
        # Every measured class is either a plan distance class or a wired
        # kind (packets that never crossed a wireless channel); SR traffic
        # (which includes the intra-group channels 13-16) shows up under
        # uniform-random on 1024 cores.
        assert classes <= set(WIRELESS_CLASSES) | {
            "photonic", "electrical", "wireless", "local"
        }
        assert {"C2C", "E2E", "SR"} <= classes
