"""Chrome trace_event export: structure, strict JSON, file round-trip."""

import json

import pytest

from repro.noc import Simulator, reset_packet_ids
from repro.telemetry import (
    FLIT_SEND,
    SPAN_EVENTS,
    Tracer,
    chrome_trace,
    write_chrome_trace,
)
from repro.topologies import build_cmesh
from repro.traffic import SyntheticTraffic


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


@pytest.fixture(scope="module")
def traced():
    reset_packet_ids()
    built = build_cmesh(64)
    tracer = Tracer()
    sim = Simulator(
        built.network,
        traffic=SyntheticTraffic(64, "UN", 0.05, 4, seed=3, stop_cycle=200),
        tracer=tracer,
    )
    sim.run(200)
    sim.drain()
    return tracer


class TestChromeTrace:
    def test_top_level_shape(self, traced):
        doc = chrome_trace(traced)
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metadata"]["events_dropped"] == 0

    def test_metadata_names_processes_and_threads(self, traced):
        doc = chrome_trace(traced)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert "process_name" in names
        assert "thread_name" in names
        # Thread ids are unique per component track.
        tids = [e["tid"] for e in meta if e["name"] == "thread_name"]
        assert len(tids) == len(set(tids))

    def test_span_vs_instant_phases(self, traced):
        doc = chrome_trace(traced)
        for e in doc["traceEvents"]:
            if e["ph"] == "M":
                continue
            if e["name"] in SPAN_EVENTS:
                assert e["ph"] == "X"
                assert e["dur"] >= 1
            else:
                assert e["ph"] == "i"
                assert e["s"] == "t"

    def test_flit_send_exported_as_duration(self, traced):
        doc = chrome_trace(traced)
        spans = [e for e in doc["traceEvents"] if e["name"] == FLIT_SEND]
        n_sends = sum(1 for ev in traced.events if ev.etype == FLIT_SEND)
        assert len(spans) == n_sends > 0
        assert all("pid" in e["args"] for e in spans)

    def test_timestamps_numeric_and_sorted_per_event_order(self, traced):
        doc = chrome_trace(traced)
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert all(isinstance(t, int) for t in ts)
        assert ts == sorted(ts)

    def test_write_round_trip_strict_json(self, traced, tmp_path):
        path = write_chrome_trace(traced, tmp_path / "sub" / "trace.json")
        assert path.exists()
        data = json.loads(path.read_text(), parse_constant=lambda _: 1 / 0)
        assert len(data["traceEvents"]) == len(chrome_trace(traced)["traceEvents"])

    def test_empty_tracer_exports_valid_doc(self):
        doc = chrome_trace(Tracer())
        assert [e["name"] for e in doc["traceEvents"]] == ["process_name"]
        json.dumps(doc, allow_nan=False)
