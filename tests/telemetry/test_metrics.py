"""Unit tests for counters, histograms and the metric registry."""

import json
import random

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricRegistry


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.add()
        c.add(41)
        assert c.value == 42

    def test_gauge_overwrites(self):
        g = Gauge()
        g.set(0.25)
        g.set(0.5)
        assert g.value == 0.5


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean is None
        assert h.min is None and h.max is None
        assert h.percentile(0.5) is None

    def test_exact_count_sum_min_max(self):
        h = Histogram()
        for v in [3, 0, 17, 17, 5]:
            h.observe(v)
        assert h.count == 5
        assert h.total == 42
        assert h.min == 0
        assert h.max == 17
        assert h.mean == 42 / 5

    def test_buckets_by_bit_length(self):
        h = Histogram()
        h.observe(0)  # bucket 0
        h.observe(1)  # bucket 1
        h.observe(2)  # bucket 2
        h.observe(3)  # bucket 2
        h.observe(4)  # bucket 3
        assert h.buckets == {0: 1, 1: 1, 2: 2, 3: 1}

    def test_percentile_bucket_quantised(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(v)
        p50 = h.percentile(0.5)
        # True median is 50; the bucket upper bound is at most 2x.
        assert 50 <= p50 <= 100
        assert h.percentile(1.0) == 100
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_negative_samples_clamped(self):
        h = Histogram()
        h.observe(-3)
        assert h.min == 0 and h.total == 0

    def test_merge_matches_sequential_observation(self):
        rng = random.Random(5)
        samples = [rng.randrange(0, 500) for _ in range(300)]
        whole = Histogram()
        a, b = Histogram(), Histogram()
        for i, v in enumerate(samples):
            whole.observe(v)
            (a if i % 2 else b).observe(v)
        assert a.merge(b) == whole

    def test_merge_associative_and_commutative(self):
        rng = random.Random(9)
        parts = []
        for _ in range(3):
            h = Histogram()
            for _ in range(50):
                h.observe(rng.randrange(0, 1 << 12))
            parts.append(h)
        a, b, c = parts
        assert a.merge(b).merge(c) == a.merge(b.merge(c))
        assert a.merge(b) == b.merge(a)

    def test_merge_identity(self):
        h = Histogram()
        for v in (1, 2, 3):
            h.observe(v)
        assert h.merge(Histogram()) == h
        assert Histogram().merge(h) == h

    def test_merge_is_pure(self):
        a, b = Histogram(), Histogram()
        a.observe(1)
        b.observe(2)
        merged = a.merge(b)
        assert a.count == 1 and b.count == 1 and merged.count == 2

    def test_as_dict_json_safe(self):
        h = Histogram()
        h.observe(10)
        d = h.as_dict()
        assert d["count"] == 1 and d["mean"] == 10.0
        json.dumps(d, allow_nan=False)  # must not raise
        json.dumps(Histogram().as_dict(), allow_nan=False)


class TestMetricRegistry:
    def test_get_or_create(self):
        reg = MetricRegistry()
        assert reg.counter("x", "a") is reg.counter("x", "a")
        assert reg.counter("x", "a") is not reg.counter("x", "b")
        assert reg.histogram("h") is reg.histogram("h")

    def test_counters_by_name(self):
        reg = MetricRegistry()
        reg.counter("token_wait_cycles", "wg0").add(5)
        reg.counter("token_wait_cycles", "wg1").add(7)
        reg.counter("other", "wg0").add(1)
        assert reg.counters("token_wait_cycles") == {"wg0": 5, "wg1": 7}

    def test_flat_dict_layout(self):
        reg = MetricRegistry()
        reg.counter("grants", "wg0").add(3)
        reg.gauge("occupancy", "C2C").set(0.5)
        reg.histogram("wait", "photonic").observe(4)
        flat = reg.as_flat_dict()
        assert flat["grants[wg0]"] == 3
        assert flat["occupancy[C2C]"] == 0.5
        assert flat["wait[photonic].count"] == 1
        assert flat["wait[photonic].mean"] == 4.0
        json.dumps(flat, allow_nan=False)

    def test_empty_registry_flattens_empty(self):
        assert MetricRegistry().as_flat_dict() == {}

    def test_merge_counters_and_histograms(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("n", "x").add(2)
        b.counter("n", "x").add(3)
        b.counter("n", "y").add(1)
        a.histogram("h").observe(1)
        b.histogram("h").observe(3)
        merged = a.merge(b)
        assert merged.counter("n", "x").value == 5
        assert merged.counter("n", "y").value == 1
        assert merged.histogram("h").count == 2
        # Purity: sources untouched.
        assert a.counter("n", "x").value == 2
        assert b.histogram("h").count == 1

    def test_merge_gauges_other_wins(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        assert a.merge(b).gauge("g").value == 2.0


class TestPercentileInterpolation:
    """The estimator interpolates within buckets instead of snapping to
    the bucket upper bound (which over-reported by up to 2x)."""

    def test_single_value_all_quantiles_exact(self):
        h = Histogram()
        for _ in range(10):
            h.observe(40)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert h.percentile(q) == 40.0

    def test_extremes_are_exact(self):
        h = Histogram()
        for v in (3, 9, 17, 250):
            h.observe(v)
        assert h.percentile(0.0) == 3.0
        assert h.percentile(1.0) == 250.0

    def test_uniform_median_within_quarter_bucket(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(v)
        # True median 50 sits in bucket 6 = [32, 63]; rank interpolation
        # lands near it instead of snapping to 63 (old behaviour) or 64+.
        assert abs(h.percentile(0.5) - 50) <= 8

    def test_monotone_in_q(self):
        rng = random.Random(17)
        h = Histogram()
        for _ in range(500):
            h.observe(rng.randrange(0, 1000))
        qs = [i / 20 for i in range(21)]
        ps = [h.percentile(q) for q in qs]
        assert all(a <= b for a, b in zip(ps, ps[1:]))

    def test_never_exceeds_observed_range(self):
        rng = random.Random(3)
        h = Histogram()
        for _ in range(200):
            h.observe(rng.randrange(5, 300))
        for q in (0.1, 0.5, 0.9, 0.99):
            assert h.min <= h.percentile(q) <= h.max

    def test_zeros_bucket(self):
        h = Histogram()
        for _ in range(4):
            h.observe(0)
        h.observe(2)
        assert h.percentile(0.5) == 0.0
        assert h.percentile(1.0) == 2.0

    def test_as_dict_exposes_total(self):
        h = Histogram()
        h.observe(7)
        h.observe(9)
        d = h.as_dict()
        assert d["total"] == 16 and d["count"] == 2
