"""Integration: per-channel-class telemetry on a traced OWN-256 run.

These tests lock the paper-facing claims the telemetry subsystem exists to
measure: under uniform-random load every one of the 16-per-cluster MWSR
home waveguides sees token contention, and the wireless channel plan's
three distance classes (C2C/E2E/SR) all carry traffic.
"""

import pytest

from repro.core.own256 import build_own256
from repro.noc import Simulator, reset_packet_ids
from repro.telemetry import TOKEN_GRANT, WIRELESS_CLASSES, Tracer
from repro.traffic import SyntheticTraffic


@pytest.fixture(scope="module")
def traced_own():
    reset_packet_ids()
    built = build_own256()
    tracer = Tracer()
    sim = Simulator(
        built.network,
        traffic=SyntheticTraffic(
            built.n_cores, "UN", 0.05, 4, seed=7, stop_cycle=400
        ),
        warmup_cycles=100,
        tracer=tracer,
    )
    sim.run(400)
    assert sim.drain()
    tracer.finalize(sim)
    return built, sim, tracer


class TestHomeWaveguideTokenWait:
    def test_all_home_waveguides_see_token_wait(self, traced_own):
        built, _, tracer = traced_own
        media = [m for m in built.network.mediums if m.kind == "photonic"]
        assert len(media) == 64  # 4 clusters x 16 home waveguides
        waits = tracer.metrics.counters("token_wait_cycles")
        grants = tracer.metrics.counters("token_grants")
        for medium in media:
            assert grants.get(medium.name, 0) > 0, medium.name
            assert waits.get(medium.name, 0) > 0, medium.name

    def test_token_grant_events_name_waveguides(self, traced_own):
        built, _, tracer = traced_own
        granted = {
            ev.component for ev in tracer.events if ev.etype == TOKEN_GRANT
        }
        photonic = {m.name for m in built.network.mediums if m.kind == "photonic"}
        assert photonic <= granted

    def test_token_wait_histogram_reflects_arb_latency(self, traced_own):
        _, _, tracer = traced_own
        hist = tracer.metrics.histogram("token_wait", "photonic")
        assert hist.count > 0
        # Every grant costs at least the token flight (arb_latency >= 1).
        assert hist.min >= 1


class TestWirelessChannelClasses:
    def test_occupancy_splits_across_all_classes(self, traced_own):
        _, _, tracer = traced_own
        flat = tracer.metrics.as_flat_dict()
        for cls in WIRELESS_CLASSES:
            occ = flat.get(f"wireless_occupancy[{cls}]")
            assert occ is not None, f"no occupancy for {cls}"
            assert 0.0 < occ <= 1.0, (cls, occ)

    def test_busy_cycles_and_flits_per_class(self, traced_own):
        _, sim, tracer = traced_own
        busy = tracer.metrics.counters("wireless_busy_cycles")
        flits = tracer.metrics.counters("wireless_flits")
        assert set(busy) == set(WIRELESS_CLASSES)
        for cls in WIRELESS_CLASSES:
            assert 0 < busy[cls] <= sim.now * 4  # 4 channels per class
            assert flits[cls] > 0

    def test_per_channel_busy_consistent_with_class_totals(self, traced_own):
        built, _, tracer = traced_own
        per_channel = tracer.metrics.counters("channel_busy_cycles")
        per_class = tracer.metrics.counters("wireless_busy_cycles")
        assert sum(per_channel.values()) == sum(per_class.values())
        # Each distance class has 4 channels in the OWN-256 plan (Table I).
        from repro.telemetry import link_class, own_channel_classes

        classes = own_channel_classes(built.n_cores)
        by_class = {}
        for link in built.network.links:
            if link.name in per_channel:
                by_class.setdefault(link_class(link, classes), []).append(link.name)
        for cls in WIRELESS_CLASSES:
            assert per_class[cls] == sum(per_channel[n] for n in by_class[cls])

    def test_packet_breakdown_histograms_present_per_class(self, traced_own):
        _, _, tracer = traced_own
        for cls in WIRELESS_CLASSES:
            hist = tracer.metrics.histogram("pkt_total", cls)
            assert hist.count > 0, cls
            token = tracer.metrics.histogram("pkt_token_wait", cls)
            assert token.count == hist.count
            # MWSR token arbitration must show up in wireless-class packets
            # (first hop is always a photonic home waveguide).
            assert token.total > 0, cls


class TestRunRecordsCarryMetrics:
    def test_executor_record_has_class_metrics(self, tmp_path):
        import json

        from repro.runtime import Executor, RunSpec

        log = tmp_path / "run.jsonl"
        ex = Executor(runlog=str(log), telemetry=True)
        result = ex.run_one(
            RunSpec.create("own256", rate=0.05, cycles=300, warmup=100, seed=7)
        )
        record = json.loads(log.read_text().splitlines()[-1])
        assert record["metrics"] == result.metrics
        for cls in WIRELESS_CLASSES:
            assert record["metrics"][f"wireless_occupancy[{cls}]"] > 0
            assert record["metrics"][f"pkt_token_wait[{cls}].count"] > 0
        waits = {
            k: v
            for k, v in record["metrics"].items()
            if k.startswith("token_wait_cycles[")
        }
        assert len(waits) == 64
        assert all(v > 0 for v in waits.values())
