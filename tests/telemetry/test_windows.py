"""Streaming sinks, buffer sampling, and windowed aggregation."""

import pytest

from repro.noc import Simulator, reset_packet_ids
from repro.telemetry import (
    BUFFER_SAMPLE,
    EVENT_TYPES,
    FLIT_SEND,
    TOKEN_GRANT,
    VC_STALL,
    WINDOW_KINDS,
    Tracer,
    WindowedAggregator,
)
from repro.telemetry.events import TraceEvent
from repro.topologies import build_cmesh
from repro.traffic import SyntheticTraffic


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


def run_cmesh(tracer, cycles=300, rate=0.05, seed=11):
    reset_packet_ids()
    built = build_cmesh(64)
    sim = Simulator(
        built.network,
        traffic=SyntheticTraffic(64, "UN", rate, 4, seed=seed, stop_cycle=cycles),
        tracer=tracer,
    )
    sim.run(cycles)
    sim.drain()
    return sim


class _Recorder:
    """Minimal sink: keeps every event it is handed."""

    def __init__(self):
        self.events = []
        self.finalized = 0

    def on_event(self, ev):
        self.events.append(ev)

    def on_finalize(self, tracer, sim):
        self.finalized += 1


class TestSinks:
    def test_sink_sees_stream_without_buffering(self):
        sink = _Recorder()
        tracer = Tracer(record_events=False, sinks=[sink])
        run_cmesh(tracer)
        assert tracer.events == []  # metrics-only mode still buffers nothing
        assert len(sink.events) > 0
        assert {ev.etype for ev in sink.events} <= set(EVENT_TYPES)

    def test_sink_not_capped_by_max_events(self):
        sink = _Recorder()
        tracer = Tracer(max_events=10, sinks=[sink])
        run_cmesh(tracer)
        assert len(tracer.events) == 10
        assert tracer.events_dropped > 0
        # The sink saw the buffered events AND every dropped one.
        assert len(sink.events) == 10 + tracer.events_dropped

    def test_sink_matches_buffered_events(self):
        sink = _Recorder()
        tracer = Tracer(sinks=[sink])
        run_cmesh(tracer)
        assert sink.events == tracer.events

    def test_on_finalize_called_once(self):
        sink = _Recorder()
        tracer = Tracer(record_events=False, sinks=[sink])
        sim = run_cmesh(tracer)
        tracer.finalize(sim)
        tracer.finalize(sim)  # idempotent
        assert sink.finalized == 1

    def test_sinkless_metrics_only_emits_no_events(self):
        tracer = Tracer(record_events=False)
        run_cmesh(tracer)
        assert tracer.events == [] and tracer.events_dropped == 0


class TestBufferSampling:
    def test_sampling_emits_buffer_samples(self):
        tracer = Tracer(sample_every=16)
        run_cmesh(tracer)
        samples = [ev for ev in tracer.events if ev.etype == BUFFER_SAMPLE]
        assert samples, "sample_every produced no buffer_sample events"
        for ev in samples:
            assert ev.cycle % 16 == 0
            occ = ev.args["occupancy"]
            # Only non-empty routers are recorded, all with positive counts.
            assert all(v > 0 for v in occ.values())

    def test_sampling_off_by_default(self):
        tracer = Tracer()
        run_cmesh(tracer)
        assert not any(ev.etype == BUFFER_SAMPLE for ev in tracer.events)

    def test_sampling_does_not_change_results(self):
        plain = run_cmesh(None)
        sampled = run_cmesh(Tracer(sample_every=8))
        assert plain.stats.summary(300) == sampled.stats.summary(300)


class TestWindowedAggregatorUnit:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedAggregator(window_cycles=0)

    def test_link_busy_and_token_wait_cells(self):
        agg = WindowedAggregator(window_cycles=10)
        agg.on_event(TraceEvent(3, FLIT_SEND, "wg0", dur=4))
        agg.on_event(TraceEvent(7, FLIT_SEND, "wg0", dur=0))  # min busy 1
        agg.on_event(TraceEvent(12, FLIT_SEND, "wg0", dur=2))
        agg.on_event(TraceEvent(5, TOKEN_GRANT, "wg0", args={"wait": 9}))
        assert agg.series("link_busy", "wg0") == [5.0, 2.0]
        assert agg.series("token_wait", "wg0") == [9.0, 0.0]

    def test_vc_stall_counts(self):
        agg = WindowedAggregator(window_cycles=4)
        for cycle in (0, 1, 2, 9):
            agg.on_event(TraceEvent(cycle, VC_STALL, "r3"))
        assert agg.series("vc_stall", "r3") == [3.0, 0.0, 1.0]

    def test_buffer_occ_mean_per_window(self):
        agg = WindowedAggregator(window_cycles=8)
        agg.on_event(TraceEvent(0, BUFFER_SAMPLE, "sim",
                                args={"occupancy": {"r0": 2, "r1": 6}}))
        agg.on_event(TraceEvent(4, BUFFER_SAMPLE, "sim",
                                args={"occupancy": {"r0": 4}}))
        assert agg.series("buffer_occ", "r0", mean=True) == [3.0]
        assert agg.series("buffer_occ", "r1", mean=True) == [6.0]

    def test_unknown_event_types_ignored(self):
        agg = WindowedAggregator()
        agg.on_event(TraceEvent(1, "packet_done", "sim"))
        assert agg.kinds() == []
        assert agg.events_seen == 1

    def test_matrix_dense_and_ordered(self):
        agg = WindowedAggregator(window_cycles=10)
        agg.on_event(TraceEvent(25, FLIT_SEND, "b", dur=1))
        agg.on_event(TraceEvent(3, FLIT_SEND, "a", dur=2))
        names, rows = agg.matrix("link_busy")
        assert names == ["a", "b"]
        assert rows == [[2.0, 0.0, 0.0], [0.0, 0.0, 1.0]]
        assert agg.n_windows() == 3


class TestSnapshot:
    def test_empty_aggregator_snapshot(self):
        snap = WindowedAggregator(window_cycles=32).snapshot()
        assert snap == {
            "window_cycles": 32,
            "n_windows": 0,
            "events": 0,
            "kinds": {},
        }

    def test_only_unknown_events_keeps_kinds_empty(self):
        agg = WindowedAggregator()
        agg.on_event(TraceEvent(10, "packet_done", "sim"))
        snap = agg.snapshot()
        assert snap["events"] == 1
        assert snap["kinds"] == {} and snap["n_windows"] == 0

    def test_partial_final_window_counted(self):
        agg = WindowedAggregator(window_cycles=10)
        agg.on_event(TraceEvent(0, FLIT_SEND, "a", dur=2))
        agg.on_event(TraceEvent(23, FLIT_SEND, "a", dur=3))  # window 2, 4/10 full
        snap = agg.snapshot()
        assert snap["n_windows"] == 3  # the partial third window counts
        busy = snap["kinds"]["link_busy"]
        assert busy == {
            "components": 1,
            "total": 5.0,
            "samples": 2,
            "peak_component": "a",
            "peak_total": 5.0,
        }

    def test_peak_component_and_tie_break(self):
        agg = WindowedAggregator(window_cycles=10)
        agg.on_event(TraceEvent(1, FLIT_SEND, "b", dur=4))
        agg.on_event(TraceEvent(2, FLIT_SEND, "a", dur=4))  # tie -> "a" wins
        assert agg.snapshot()["kinds"]["link_busy"]["peak_component"] == "a"
        agg.on_event(TraceEvent(3, FLIT_SEND, "b", dur=1))
        assert agg.snapshot()["kinds"]["link_busy"]["peak_component"] == "b"

    def test_midrun_snapshot_matches_posthoc_aggregation(self):
        """Streaming invariant: a snapshot over the first N events equals
        a fresh aggregator fed those same N events after the fact."""
        events = [
            TraceEvent(c, FLIT_SEND, f"l{c % 3}", dur=1 + c % 4)
            for c in range(0, 200, 7)
        ] + [
            TraceEvent(c, VC_STALL, "r1") for c in range(0, 100, 13)
        ]
        live = WindowedAggregator(window_cycles=16)
        for i, ev in enumerate(events):
            live.on_event(ev)
            if i == len(events) // 2:
                posthoc = WindowedAggregator(window_cycles=16)
                for past in events[: i + 1]:
                    posthoc.on_event(past)
                assert live.snapshot() == posthoc.snapshot()
        posthoc = WindowedAggregator(window_cycles=16)
        for ev in events:
            posthoc.on_event(ev)
        assert live.snapshot() == posthoc.snapshot()

    def test_snapshot_is_strict_json(self):
        import json

        agg = WindowedAggregator(window_cycles=8)
        agg.on_event(TraceEvent(0, BUFFER_SAMPLE, "sim",
                                args={"occupancy": {"r0": 2}}))
        json.dumps(agg.snapshot(), allow_nan=False)


class TestWindowedAggregatorIntegration:
    def test_streams_a_real_run(self):
        agg = WindowedAggregator(window_cycles=32)
        tracer = Tracer(record_events=False, sample_every=16, sinks=[agg])
        sim = run_cmesh(tracer)
        kinds = agg.kinds()
        assert set(kinds) <= set(WINDOW_KINDS)
        assert "link_busy" in kinds and "buffer_occ" in kinds
        # Busy cycles are non-negative; pipelined multi-cycle flits may
        # overlap, so sums can exceed the window width (the heatmap layer
        # clamps the occupancy fraction).
        for comp in agg.components("link_busy"):
            assert all(v >= 0 for v in agg.series("link_busy", comp))
        assert agg.last_cycle <= sim.now
