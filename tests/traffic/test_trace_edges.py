"""Trace replay edge cases: empty, single-packet, clipped, invalid."""

import numpy as np
import pytest

from repro.traffic.trace import TraceTraffic, TrafficTrace


def make_trace(rows):
    cols = list(zip(*rows)) if rows else [[], [], [], []]
    return TrafficTrace(*(np.asarray(c, dtype=np.int64) for c in cols))


class TestEmptyTrace:
    def test_replays_to_nothing(self):
        t = TraceTraffic(make_trace([]), n_cores=16)
        assert t.tick(0) == [] and t.tick(100) == []
        assert t.exhausted
        assert t.packets_generated == 0

    def test_validate_accepts_empty(self):
        make_trace([]).validate(1)

    def test_no_next_injection(self):
        t = TraceTraffic(make_trace([]))
        assert t.next_injection_cycle(0, 1000) is None


class TestSinglePacket:
    def test_delivered_exactly_once(self):
        t = TraceTraffic(make_trace([(5, 0, 1, 4)]), n_cores=16)
        assert t.next_injection_cycle(0, 100) == 5
        assert t.tick(4) == []
        [p] = t.tick(5)
        assert (p.src_core, p.dst_core, p.size_flits) == (0, 1, 4)
        assert t.tick(5) == [] and t.tick(6) == []
        assert t.exhausted

    def test_skipped_if_simulation_starts_past_it(self):
        t = TraceTraffic(make_trace([(5, 0, 1, 4)]), n_cores=16)
        assert t.tick(6) == []
        assert t.exhausted


class TestStopCycle:
    def test_trace_ending_mid_warmup_is_cut(self):
        # A trace shorter than the warmup window plus a stop_cycle inside
        # it: injections at/after the stop are suppressed, like the drain
        # phase of a latency measurement.
        rows = [(t, 0, 1, 1) for t in range(10)]
        t = TraceTraffic(make_trace(rows), n_cores=4, stop_cycle=6)
        emitted = [p for now in range(12) for p in t.tick(now)]
        assert len(emitted) == 6  # cycles 0..5 only
        assert t.next_injection_cycle(0, 100) is None  # clamped by stop

    def test_next_injection_respects_window(self):
        t = TraceTraffic(make_trace([(3, 0, 1, 1), (9, 1, 0, 1)]), n_cores=4)
        assert t.next_injection_cycle(0, 3) is None  # [0, 3) excludes 3
        assert t.next_injection_cycle(0, 4) == 3
        assert t.next_injection_cycle(4, 100) == 9
        assert t.next_injection_cycle(10, 100) is None


class TestValidation:
    def test_out_of_range_destination_clear_error(self):
        trace = make_trace([(0, 0, 99, 1)])
        with pytest.raises(ValueError, match=r"dst 99 .* 16 cores"):
            trace.validate(16)
        with pytest.raises(ValueError, match="dst 99"):
            TraceTraffic(trace, n_cores=16)

    def test_out_of_range_source(self):
        with pytest.raises(ValueError, match="src -1"):
            make_trace([(0, -1, 1, 1)]).validate(16)

    def test_negative_cycle_and_bad_size(self):
        with pytest.raises(ValueError, match="negative cycle"):
            make_trace([(-2, 0, 1, 1)]).validate(16)
        with pytest.raises(ValueError, match="non-positive size"):
            make_trace([(0, 0, 1, 0)]).validate(16)

    def test_mismatched_arrays(self):
        with pytest.raises(ValueError, match="equal length"):
            TrafficTrace(
                np.zeros(2, dtype=np.int64), np.zeros(1, dtype=np.int64),
                np.zeros(2, dtype=np.int64), np.zeros(2, dtype=np.int64),
            )

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "notatrace.npz"
        np.savez(path, cycles=np.zeros(1, dtype=np.int64))
        with pytest.raises(ValueError, match="missing"):
            TrafficTrace.load(path)


class TestOrdering:
    def test_stable_sort_preserves_intra_cycle_order(self):
        rows = [(7, 3, 4, 1), (2, 0, 1, 1), (7, 1, 2, 1), (2, 5, 6, 1)]
        trace = make_trace(rows)
        assert trace.cycles.tolist() == [2, 2, 7, 7]
        assert trace.srcs.tolist() == [0, 5, 3, 1]  # emission order kept

    def test_roundtrip_npz(self, tmp_path):
        trace = make_trace([(2, 0, 1, 3), (5, 1, 0, 2)])
        path = tmp_path / "t.npz"
        trace.save(path)
        back = TrafficTrace.load(path)
        assert back.content_crc() == trace.content_crc()
        assert back.schema() == trace.schema()
