"""Traffic pattern correctness: anchors + bijectivity properties."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.traffic.patterns import (
    EXTENDED_PATTERN_NAMES,
    PATTERN_NAMES,
    TrafficPattern,
    bit_complement,
    bit_reversal,
    matrix_transpose,
    neighbor,
    perfect_shuffle,
    tornado,
)

POW2_SQUARE = st.sampled_from([16, 64, 256, 1024])


class TestAnchors:
    def test_bit_reversal_known_values(self):
        assert bit_reversal(0b0001, 16) == 0b1000
        assert bit_reversal(0b1010, 16) == 0b0101
        assert bit_reversal(0, 256) == 0

    def test_matrix_transpose_swaps_halves(self):
        # 16 nodes = 4x4 grid: node (row=0, col=1) -> (row=1, col=0).
        assert matrix_transpose(0b0001, 16) == 0b0100

    def test_matrix_transpose_equals_grid_transpose(self):
        n, side = 64, 8
        for src in range(n):
            r, c = src // side, src % side
            assert matrix_transpose(src, n) == c * side + r

    def test_perfect_shuffle_rotates_left(self):
        assert perfect_shuffle(0b1000, 16) == 0b0001
        assert perfect_shuffle(0b0011, 16) == 0b0110

    def test_bit_complement(self):
        assert bit_complement(0, 256) == 255
        assert bit_complement(0b10101010, 256) == 0b01010101

    def test_neighbor_wraps(self):
        # 16 cores = 4x4: core 3 (end of row 0) wraps to core 0.
        assert neighbor(3, 16) == 0
        assert neighbor(0, 16) == 1

    def test_tornado_half_way(self):
        # 16 cores = 4x4 grid: half-way is 1 hop (side//2 - 1 = 1).
        assert tornado(0, 16) == 1

    def test_odd_bits_transpose_rejected(self):
        with pytest.raises(ValueError):
            matrix_transpose(0, 32)  # 5 address bits

    def test_non_square_neighbor_rejected(self):
        with pytest.raises(ValueError):
            neighbor(0, 32)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            bit_reversal(0, 100)


class TestBijectivity:
    @pytest.mark.parametrize("fn", [bit_reversal, matrix_transpose, perfect_shuffle, bit_complement])
    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_bit_permutations_are_bijections(self, fn, n):
        image = {fn(s, n) for s in range(n)}
        assert image == set(range(n))

    @pytest.mark.parametrize("fn", [neighbor, tornado])
    @pytest.mark.parametrize("n", [16, 64, 256, 1024])
    def test_grid_permutations_are_bijections(self, fn, n):
        image = {fn(s, n) for s in range(n)}
        assert image == set(range(n))

    @given(POW2_SQUARE, st.integers(min_value=0, max_value=1023))
    def test_bit_reversal_is_involution(self, n, raw_src):
        src = raw_src % n
        assert bit_reversal(bit_reversal(src, n), n) == src

    @given(POW2_SQUARE, st.integers(min_value=0, max_value=1023))
    def test_transpose_is_involution(self, n, raw_src):
        src = raw_src % n
        assert matrix_transpose(matrix_transpose(src, n), n) == src

    @given(POW2_SQUARE, st.integers(min_value=0, max_value=1023))
    def test_complement_is_involution(self, n, raw_src):
        src = raw_src % n
        assert bit_complement(bit_complement(src, n), n) == src


class TestTrafficPattern:
    def test_names(self):
        assert PATTERN_NAMES == ("UN", "BR", "MT", "PS", "NBR")
        for name in EXTENDED_PATTERN_NAMES:
            TrafficPattern(name, 64)  # constructs without error

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            TrafficPattern("XYZ", 64)

    def test_case_insensitive(self):
        assert TrafficPattern("un", 64).name == "UN"

    def test_permutation_table(self):
        p = TrafficPattern("BR", 64)
        assert p.is_permutation
        assert p.fixed_destination(1) == bit_reversal(1, 64)

    def test_uniform_has_no_table(self):
        p = TrafficPattern("UN", 64)
        assert not p.is_permutation
        assert p.fixed_destination(1) is None

    def test_destinations_vectorised_permutation(self):
        p = TrafficPattern("PS", 64)
        rng = np.random.default_rng(0)
        srcs = np.arange(64)
        dsts = p.destinations(srcs, rng)
        assert all(dsts[s] == perfect_shuffle(s, 64) for s in range(64))

    def test_uniform_destinations_in_range(self):
        p = TrafficPattern("UN", 64)
        rng = np.random.default_rng(0)
        dsts = p.destinations(np.zeros(1000, dtype=np.int64), rng)
        assert dsts.min() >= 0 and dsts.max() < 64

    def test_hotspot_bias(self):
        p = TrafficPattern("HOT", 64, hotspot_fraction=0.5, hotspots=[7])
        rng = np.random.default_rng(0)
        dsts = p.destinations(np.zeros(4000, dtype=np.int64), rng)
        share = float(np.mean(dsts == 7))
        assert 0.4 < share < 0.6

    def test_pattern_size_mismatch_detected_by_generator(self):
        from repro.traffic import SyntheticTraffic

        with pytest.raises(ValueError, match="sized for"):
            SyntheticTraffic(128, TrafficPattern("UN", 64), 0.1)
