"""Open-loop generator statistics and trace record/replay round-trips."""

import numpy as np
import pytest

from repro.noc.packet import reset_packet_ids
from repro.traffic import ScriptedTraffic, SyntheticTraffic, TraceTraffic, TrafficTrace


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


class TestSyntheticTraffic:
    def test_offered_load_statistics(self):
        """Mean generated flit rate matches the configured injection rate."""
        rate, size, cores, cycles = 0.2, 4, 64, 4000
        traffic = SyntheticTraffic(cores, "UN", rate, size, seed=3)
        flits = sum(
            sum(p.size_flits for p in traffic.tick(t)) for t in range(cycles)
        )
        measured = flits / (cores * cycles)
        # Self-draws are filtered, so allow a small downward bias.
        assert measured == pytest.approx(rate, rel=0.08)

    def test_zero_rate_generates_nothing(self):
        traffic = SyntheticTraffic(64, "UN", 0.0, 4, seed=1)
        assert all(traffic.tick(t) == [] for t in range(100))

    def test_stop_cycle(self):
        traffic = SyntheticTraffic(64, "UN", 0.5, 4, seed=1, stop_cycle=10)
        for t in range(10):
            traffic.tick(t)
        assert traffic.tick(10) == []
        assert traffic.tick(500) == []

    def test_determinism(self):
        def draws(seed):
            reset_packet_ids()
            tr = SyntheticTraffic(64, "UN", 0.3, 4, seed=seed)
            return [(p.src_core, p.dst_core) for t in range(50) for p in tr.tick(t)]

        assert draws(9) == draws(9)
        assert draws(9) != draws(10)

    def test_permutation_respects_pattern(self):
        from repro.traffic.patterns import bit_reversal

        traffic = SyntheticTraffic(64, "BR", 0.5, 4, seed=2)
        for t in range(50):
            for p in traffic.tick(t):
                assert p.dst_core == bit_reversal(p.src_core, 64)

    def test_no_self_addressed_packets(self):
        traffic = SyntheticTraffic(64, "UN", 0.5, 4, seed=2)
        for t in range(100):
            for p in traffic.tick(t):
                assert p.src_core != p.dst_core

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraffic(64, "UN", 1.5, 4)
        with pytest.raises(ValueError):
            SyntheticTraffic(64, "UN", 0.1, 0)


class TestScriptedTraffic:
    def test_exact_schedule(self):
        tr = ScriptedTraffic([(5, 0, 1, 4), (5, 2, 3, 2), (9, 1, 0, 1)])
        assert tr.tick(0) == []
        five = tr.tick(5)
        assert [(p.src_core, p.dst_core, p.size_flits) for p in five] == [
            (0, 1, 4), (2, 3, 2)
        ]
        assert len(tr.tick(9)) == 1
        assert tr.exhausted


class TestTrace:
    def test_record_replay_identical(self):
        source = SyntheticTraffic(64, "UN", 0.2, 4, seed=5)
        trace = TrafficTrace.record(source, cycles=200)
        assert len(trace) > 0

        reset_packet_ids()
        replay = trace.replayer()
        packets = [(t, p.src_core, p.dst_core, p.size_flits)
                   for t in range(200) for p in replay.tick(t)]
        assert len(packets) == len(trace)
        assert replay.exhausted
        # Replay matches the recorded arrays exactly.
        assert [p[0] for p in packets] == trace.cycles.tolist()
        assert [p[1] for p in packets] == trace.srcs.tolist()

    def test_save_load_roundtrip(self, tmp_path):
        source = SyntheticTraffic(64, "BR", 0.2, 4, seed=5)
        trace = TrafficTrace.record(source, cycles=100)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = TrafficTrace.load(path)
        assert np.array_equal(loaded.cycles, trace.cycles)
        assert np.array_equal(loaded.srcs, trace.srcs)
        assert np.array_equal(loaded.dsts, trace.dsts)
        assert np.array_equal(loaded.sizes, trace.sizes)

    def test_trace_sorted_by_cycle(self):
        trace = TrafficTrace(
            np.array([5, 1, 3]), np.array([0, 1, 2]),
            np.array([1, 2, 3]), np.array([4, 4, 4]),
        )
        assert trace.cycles.tolist() == [1, 3, 5]
        assert trace.srcs.tolist() == [1, 2, 0]

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            TrafficTrace(np.array([1]), np.array([0, 1]), np.array([1]), np.array([4]))

    def test_trace_drives_simulator(self):
        from repro.noc import Simulator
        from repro.topologies import build_cmesh

        source = SyntheticTraffic(64, "UN", 0.05, 4, seed=5, stop_cycle=150)
        trace = TrafficTrace.record(source, cycles=150)

        reset_packet_ids()
        built = build_cmesh(64)
        sim = Simulator(built.network, traffic=trace.replayer())
        sim.run(150)
        assert sim.drain()
        assert sim.stats.packets_ejected == len(trace)
