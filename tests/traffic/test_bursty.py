"""Bursty (MMBP) and application-like traffic generators."""

import numpy as np
import pytest

from repro.noc import Simulator, reset_packet_ids
from repro.traffic import ApplicationTraffic, BurstyTraffic
from repro.topologies import build_cmesh


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


def offered_load(traffic, cores, cycles):
    flits = sum(sum(p.size_flits for p in traffic.tick(t)) for t in range(cycles))
    return flits / (cores * cycles)


class TestBurstyTraffic:
    def test_long_run_rate_matches(self):
        tr = BurstyTraffic(64, "UN", 0.1, 4, seed=3, burst_factor=4.0)
        measured = offered_load(tr, 64, 12_000)
        assert measured == pytest.approx(0.1, rel=0.12)

    def test_burst_factor_one_is_plain_bernoulli(self):
        tr = BurstyTraffic(64, "UN", 0.1, 4, seed=3, burst_factor=1.0)
        measured = offered_load(tr, 64, 6_000)
        assert measured == pytest.approx(0.1, rel=0.1)
        assert tr.fraction_on == pytest.approx(1.0)

    def test_burstiness_raises_dispersion(self):
        """Index of dispersion of per-core window counts grows with the
        burst factor (aggregate per-cycle counts average out over 64
        independent sources; the per-core windows are where burstiness
        lives)."""

        def dispersion(burst_factor, window=100, cycles=6000):
            reset_packet_ids()
            tr = BurstyTraffic(64, "UN", 0.1, 4, seed=3,
                               burst_factor=burst_factor,
                               mean_burst_cycles=25.0)
            counts = np.zeros((cycles // window, 64))
            for t in range(cycles):
                for p in tr.tick(t):
                    counts[t // window, p.src_core] += 1
            flat = counts.ravel()
            return flat.var() / flat.mean()

        smooth = dispersion(1.0)
        bursty = dispersion(8.0)
        assert smooth < 1.5  # near-Poisson
        assert bursty > 2.0 * smooth

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyTraffic(64, "UN", 0.1, burst_factor=0.5)
        with pytest.raises(ValueError):
            BurstyTraffic(64, "UN", 0.1, mean_burst_cycles=0.0)

    def test_stop_cycle(self):
        tr = BurstyTraffic(64, "UN", 0.5, 4, seed=1, stop_cycle=5)
        for t in range(5):
            tr.tick(t)
        assert tr.tick(5) == []

    def test_pattern_respected(self):
        from repro.traffic.patterns import bit_reversal

        tr = BurstyTraffic(64, "BR", 0.3, 4, seed=1, burst_factor=3.0)
        for t in range(200):
            for p in tr.tick(t):
                assert p.dst_core == bit_reversal(p.src_core, 64)

    def test_drives_simulator(self):
        built = build_cmesh(64)
        tr = BurstyTraffic(64, "UN", 0.03, 4, seed=5, burst_factor=4.0,
                           stop_cycle=400)
        sim = Simulator(built.network, traffic=tr)
        sim.run(400)
        assert sim.drain(30_000)
        assert sim.stats.packets_ejected == sim.stats.packets_created


class TestApplicationTraffic:
    def test_rate_matches(self):
        tr = ApplicationTraffic(64, 0.1, 4, seed=3)
        measured = offered_load(tr, 64, 8_000)
        assert measured == pytest.approx(0.1, rel=0.1)

    def test_locality_skew(self):
        tr = ApplicationTraffic(64, 0.4, 4, seed=3, working_set=4, locality=0.8)
        counts = {}
        for t in range(3000):
            for p in tr.tick(t):
                counts.setdefault(p.src_core, {}).setdefault(p.dst_core, 0)
                counts[p.src_core][p.dst_core] += 1
        # For a busy source, its working set should dominate destinations.
        src = max(counts, key=lambda s: sum(counts[s].values()))
        homes = set(tr.homes_of(src))
        total = sum(counts[src].values())
        to_homes = sum(v for d, v in counts[src].items() if d in homes)
        assert to_homes / total > 0.6

    def test_homes_exclude_self(self):
        tr = ApplicationTraffic(64, 0.1, seed=1, working_set=6)
        for c in range(64):
            assert c not in tr.homes_of(c)
            assert len(tr.homes_of(c)) == 6

    def test_working_set_validation(self):
        with pytest.raises(ValueError):
            ApplicationTraffic(64, 0.1, working_set=64)

    def test_deterministic(self):
        def packets(seed):
            reset_packet_ids()
            tr = ApplicationTraffic(64, 0.2, seed=seed)
            return [(p.src_core, p.dst_core) for t in range(100) for p in tr.tick(t)]

        assert packets(4) == packets(4)
        assert packets(4) != packets(5)
