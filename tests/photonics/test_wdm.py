"""WDM allocation plans and the physical-rate arithmetic."""

import pytest

from repro.photonics.wdm import WdmParams, WdmPlan, optxb_plan, own_cluster_plan


class TestWdmParams:
    def test_fsr_bound(self):
        p = WdmParams(channel_spacing_ghz=80.0, ring_fsr_ghz=6400.0)
        assert p.max_wavelengths_per_waveguide == 80


class TestWdmPlan:
    def test_assign_and_bandwidth(self):
        plan = WdmPlan(WdmParams())
        plan.assign("wg0", [0, 1, 2, 3])
        assert plan.bandwidth_gbps("wg0") == 40.0

    def test_duplicate_lambda_rejected(self):
        plan = WdmPlan(WdmParams())
        with pytest.raises(ValueError, match="duplicate"):
            plan.assign("wg0", [0, 0, 1])

    def test_out_of_comb_rejected(self):
        plan = WdmPlan(WdmParams(laser_wavelengths=8))
        with pytest.raises(ValueError, match="outside the laser comb"):
            plan.assign("wg0", [7, 8])

    def test_reassignment_rejected(self):
        plan = WdmPlan(WdmParams())
        plan.assign("wg0", [0])
        with pytest.raises(ValueError, match="already assigned"):
            plan.assign("wg0", [1])

    def test_fsr_bound_enforced(self):
        params = WdmParams(laser_wavelengths=128, channel_spacing_ghz=3200.0)
        plan = WdmPlan(params)
        with pytest.raises(ValueError, match="FSR"):
            plan.assign("wg0", range(3))

    def test_cycles_per_flit_arithmetic(self):
        """128-bit flits at 2.5 GHz demand 320 Gbps; a 4-lambda waveguide
        moves 40 Gbps -> 8 cycles/flit; a 64-lambda one moves 640 -> 1."""
        plan = WdmPlan(WdmParams())
        plan.assign("narrow", range(4))
        plan.assign("wide", range(64))
        assert plan.cycles_per_flit("narrow") == 8
        assert plan.cycles_per_flit("wide") == 1


class TestCanonicalPlans:
    def test_own_cluster_split(self):
        """64 lambdas over 16 tiles, 4 each, disjoint (Sec. III-A)."""
        plan = own_cluster_plan()
        assert len(plan.assignment) == 16
        all_lams = [w for comb in plan.assignment.values() for w in comb]
        assert sorted(all_lams) == list(range(64))  # full comb, no overlap
        assert all(len(c) == 4 for c in plan.assignment.values())

    def test_own_split_divisibility(self):
        with pytest.raises(ValueError):
            own_cluster_plan(tiles=10)

    def test_optxb_full_comb_everywhere(self):
        plan = optxb_plan(n_routers=64)
        assert len(plan.assignment) == 64
        assert all(len(c) == 64 for c in plan.assignment.values())

    def test_physical_rates_explain_equalisation(self):
        """The bisection delays used by the builders follow from physics:
        OWN's 4-lambda home waveguides are ~8x slower than a full-comb
        OptXB waveguide -- which is why the equalised comparison slows the
        fat links rather than speeding the thin ones."""
        own = own_cluster_plan()
        flat = optxb_plan()
        assert own.bandwidth_gbps("wg0") * 16 == flat.bandwidth_gbps("wg0")
        assert own.cycles_per_flit("wg0") == 8 * flat.cycles_per_flit("wg0")
