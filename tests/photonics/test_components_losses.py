"""Photonic component counts (the Sec. I numbers) and loss budgets."""

import pytest

from repro.photonics.components import (
    mwsr_crossbar,
    own_cluster_crossbar,
    own_inventory,
    pclos_inventory,
    swmr_crossbar,
)
from repro.photonics.losses import (
    PhotonicLossParams,
    required_laser_power_mw,
    splitter_loss_db,
    waveguide_path_loss_db,
)


class TestPaperNumbers:
    def test_64x64_swmr_matches_sec1(self):
        """'a 64x64 crossbar using photonics will require 448 modulators,
        7 waveguides and 28224 photodetectors using SWMR'."""
        c = swmr_crossbar(64)
        assert c.modulators == 448
        assert c.waveguides == 7
        assert c.photodetectors == 28224

    def test_1024x1024_swmr_matches_sec1(self):
        """'approximately 7168 modulators, 112 waveguides, and 7.3 million
        photodetectors'."""
        c = swmr_crossbar(1024)
        assert c.modulators == 7168
        assert c.waveguides == 112
        assert 7.2e6 < c.photodetectors < 7.4e6

    def test_corona_million_rings(self):
        """'more than a million ring resonators' for the 64-router,
        64-wavelength snake crossbar (Sec. V-B)."""
        c = mwsr_crossbar(64, wavelengths_per_waveguide=64, rings_per_modulator=4)
        assert c.rings > 1_000_000


class TestInventories:
    def test_own_cluster(self):
        c = own_cluster_crossbar(tiles=16, total_wavelengths=64)
        # 4 wavelengths per home waveguide, 15 writers each.
        assert c.modulators == 16 * 15 * 4
        assert c.photodetectors == 16 * 4
        assert c.waveguides == 16

    def test_own_inventory_scales_with_clusters(self):
        one = own_cluster_crossbar()
        four = own_inventory(4)
        sixteen = own_inventory(16)
        assert four.rings == 4 * one.rings
        assert sixteen.rings == 16 * one.rings

    def test_own_orders_of_magnitude_cheaper_than_monolithic(self):
        """The paper's architectural point: OWN's decomposed crossbars need
        far fewer photonic components than a flat 64x64 crossbar."""
        own = own_inventory(4)
        flat = mwsr_crossbar(64, rings_per_modulator=1)
        assert own.rings * 20 < flat.rings

    def test_pclos_inventory(self):
        c = pclos_inventory(64, 16)
        assert c.waveguides == 80
        assert c.modulators == 2 * 64 * 16 * 64

    def test_wavelength_divisibility_enforced(self):
        with pytest.raises(ValueError):
            own_cluster_crossbar(tiles=16, total_wavelengths=60)

    @pytest.mark.parametrize("fn", [swmr_crossbar, mwsr_crossbar])
    def test_small_counts_rejected(self, fn):
        with pytest.raises(ValueError):
            fn(1)


class TestLosses:
    def test_splitter_log2_stages(self):
        p = PhotonicLossParams(splitter_excess_db=0.5)
        assert splitter_loss_db(1, p) == 0.0
        assert splitter_loss_db(2, p) == pytest.approx(3.5)
        assert splitter_loss_db(16, p) == pytest.approx(4 * 3.5)

    def test_splitter_validation(self):
        with pytest.raises(ValueError):
            splitter_loss_db(0)

    def test_waveguide_loss_composition(self):
        p = PhotonicLossParams()
        base = waveguide_path_loss_db(0.0, 0, p)
        assert base == pytest.approx(
            p.modulator_insertion_db + p.ring_drop_db + p.photodetector_db
        )
        long = waveguide_path_loss_db(100.0, 0, p)
        assert long - base == pytest.approx(10.0)  # 10 cm at 1 dB/cm

    def test_ring_passby_cost(self):
        p = PhotonicLossParams(ring_through_db=0.01)
        a = waveguide_path_loss_db(10.0, 0, p)
        b = waveguide_path_loss_db(10.0, 1000, p)
        assert b - a == pytest.approx(10.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            waveguide_path_loss_db(-1.0, 0)
        with pytest.raises(ValueError):
            waveguide_path_loss_db(1.0, -1)

    def test_laser_power_scaling(self):
        base = required_laser_power_mw(10.0, 4)
        assert required_laser_power_mw(20.0, 4) == pytest.approx(10 * base)
        assert required_laser_power_mw(10.0, 8) == pytest.approx(2 * base)

    def test_laser_wall_plug_division(self):
        eff10 = required_laser_power_mw(10.0, 4, wall_plug_efficiency=0.1)
        eff20 = required_laser_power_mw(10.0, 4, wall_plug_efficiency=0.2)
        assert eff10 == pytest.approx(2 * eff20)

    def test_laser_validation(self):
        with pytest.raises(ValueError):
            required_laser_power_mw(10.0, 0)
        with pytest.raises(ValueError):
            required_laser_power_mw(10.0, 4, wall_plug_efficiency=0.0)

    def test_big_crossbar_needs_more_laser_than_own_cluster(self):
        """Sec. I's insertion-loss argument, quantified."""
        p = PhotonicLossParams()
        own = waveguide_path_loss_db(100.0, 15 * 4, p)  # one OWN cluster snake
        flat = waveguide_path_loss_db(400.0, 63 * 64, p)  # 64-router snake
        assert flat > own
        assert required_laser_power_mw(flat, 64) > required_laser_power_mw(own, 4)
