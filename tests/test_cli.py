"""CLI (`python -m repro`) behaviour via the in-process entry point."""

import pytest

from repro.__main__ import TOPOLOGIES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_topology_choices(self):
        assert "own256" in TOPOLOGIES and "own1024" in TOPOLOGIES
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "nonsense"])


class TestInfo:
    @pytest.mark.parametrize("topo", ["own256", "cmesh256", "optxb256"])
    def test_info_runs(self, capsys, topo):
        assert main(["info", topo]) == 0
        out = capsys.readouterr().out
        assert "routers" in out
        assert "bisection" in out

    def test_own256_structure_in_output(self, capsys):
        main(["info", "own256"])
        out = capsys.readouterr().out
        assert "wireless 12" in out
        assert "photonic rings" in out


class TestChannels:
    def test_prints_all_four_tables(self, capsys):
        assert main(["channels"]) == 0
        out = capsys.readouterr().out
        for title in ("Table I", "Table II", "Table III", "Table IV"):
            assert title in out


class TestExperiments:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiments", "--only", "bogus"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_static_experiment_runs(self, capsys):
        assert main(["experiments", "--only", "table1"]) == 0
        assert "OWN-256 wireless connections" in capsys.readouterr().out


class TestReportCommand:
    def test_writes_markdown(self, tmp_path, capsys):
        out_file = tmp_path / "r.md"
        rc = main(["report", "-o", str(out_file), "--only", "table1,table4"])
        assert rc == 0
        text = out_file.read_text()
        assert "Table I" in text and "Table IV" in text

    def test_unknown_id(self, tmp_path, capsys):
        rc = main(["report", "-o", str(tmp_path / "r.md"), "--only", "nope"])
        assert rc == 2


class TestSweep:
    def test_small_sweep(self, capsys):
        rc = main([
            "sweep", "cmesh256", "--rates", "0.01", "--cycles", "200",
            "--warmup", "50",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "saturation offered load" in out


class TestEngineFlags:
    ARGS = [
        "sweep", "cmesh256", "--rates", "0.01,0.02", "--cycles", "200",
        "--warmup", "50",
    ]

    def test_parallel_matches_serial(self, capsys):
        assert main(self.ARGS) == 0
        serial = capsys.readouterr().out
        assert main(self.ARGS + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_cache_round_trip(self, tmp_path, capsys):
        args = self.ARGS + ["--cache", str(tmp_path / "cache")]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "engine: 2 simulated, 0 from cache" in first.err

        assert main(args) == 0
        second = capsys.readouterr()
        assert "engine: 0 simulated, 2 from cache (hit rate 100%)" in second.err
        assert second.out == first.out

    def test_runlog_written(self, tmp_path, capsys):
        from repro.runtime import read_runlog

        log = tmp_path / "runs.jsonl"
        assert main(self.ARGS + ["--runlog", str(log)]) == 0
        capsys.readouterr()
        records = read_runlog(log)
        assert [r["rate"] for r in records] == [0.01, 0.02]
        assert all(r["topology"] == "cmesh" for r in records)

    def test_experiments_accept_engine_flags(self, tmp_path, capsys):
        rc = main([
            "experiments", "--only", "fig5", "--quick",
            "--cache", str(tmp_path / "cache"),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "[fig5]" in captured.out
        assert "engine: 1 simulated, 0 from cache" in captured.err


class TestTelemetryFlags:
    OWN_ARGS = [
        "sweep", "own256", "--rates", "0.03", "--cycles", "200",
        "--warmup", "50",
    ]

    def test_metrics_flag_records_channel_classes(self, tmp_path, capsys):
        log = tmp_path / "runs.jsonl"
        rc = main(self.OWN_ARGS + ["--metrics", "--runlog", str(log)])
        assert rc == 0
        capsys.readouterr()
        from repro.runtime import read_runlog

        (record,) = read_runlog(log)
        metrics = record["metrics"]
        for cls in ("C2C", "E2E", "SR"):
            assert metrics[f"wireless_occupancy[{cls}]"] > 0

    def test_trace_flag_writes_chrome_trace(self, tmp_path, capsys):
        import json

        trace_dir = tmp_path / "traces"
        rc = main(self.OWN_ARGS + ["--trace", "--trace-out", str(trace_dir)])
        assert rc == 0
        capsys.readouterr()
        files = list(trace_dir.glob("*.json"))
        assert len(files) == 1
        doc = json.loads(files[0].read_text())
        assert doc["traceEvents"]

    def test_metrics_do_not_change_sweep_output(self, capsys):
        assert main(self.OWN_ARGS) == 0
        plain = capsys.readouterr().out
        assert main(self.OWN_ARGS + ["--metrics"]) == 0
        metered = capsys.readouterr().out
        assert metered == plain


class TestObservabilityFlags:
    ARGS = [
        "sweep", "cmesh256", "--rates", "0.01", "--cycles", "300",
        "--warmup", "100",
    ]

    def test_live_plain_summary_on_captured_stderr(self, capsys):
        assert main(self.ARGS + ["--live", "--heartbeat-cycles", "50"]) == 0
        captured = capsys.readouterr()
        assert "live:" in captured.err
        assert "saturation offered load" in captured.out

    def test_log_json_emits_json_lines(self, capsys):
        import json

        assert main(self.ARGS + ["--log-json", "--jobs", "1",
                                 "--heartbeat-cycles", "50"]) == 0
        err = capsys.readouterr().err
        engine_lines = [l for l in err.splitlines() if "engine" in l]
        assert engine_lines
        doc = json.loads(engine_lines[-1])
        assert doc["msg"].startswith("engine: 1 simulated")
        assert doc["runs_executed"] == 1

    def test_status_and_openmetrics_artifacts(self, tmp_path, capsys):
        import json

        status = tmp_path / "status.json"
        prom = tmp_path / "metrics.prom"
        assert main(self.ARGS + [
            "--heartbeat-cycles", "50",
            "--status-json", str(status), "--openmetrics", str(prom),
        ]) == 0
        capsys.readouterr()
        doc = json.loads(status.read_text())
        assert doc["done"] == 1 and doc["total"] == 1
        assert doc["heartbeats"] >= 3
        (state,) = doc["runs"].values()
        assert state["phase"] == "finished"
        text = prom.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_runs_done 1" in text
        assert "repro_run_cycle{" in text

    def test_observed_sweep_output_identical(self, capsys):
        assert main(self.ARGS) == 0
        plain = capsys.readouterr().out
        assert main(self.ARGS + ["--live", "--heartbeat-cycles", "50"]) == 0
        observed = capsys.readouterr().out
        assert observed == plain

    def test_scenarios_accept_obs_flags(self, tmp_path, capsys):
        import json

        status = tmp_path / "status.json"
        rc = main([
            "scenarios", "run", "--only", "coherence,own256,clean,ideal",
            "--cycles", "200", "--warmup", "50",
            "--heartbeat-cycles", "50", "--status-json", str(status),
        ])
        assert rc == 0
        capsys.readouterr()
        doc = json.loads(status.read_text())
        assert doc["done"] == 1 and doc["heartbeats"] >= 1


class TestDiffCommand:
    SWEEP = [
        "sweep", "cmesh256", "--rates", "0.01,0.02", "--cycles", "200",
        "--warmup", "50",
    ]

    def make_log(self, path, capsys):
        assert main(self.SWEEP + ["--metrics", "--runlog", str(path)]) == 0
        capsys.readouterr()

    def test_identical_seed_logs_diff_clean(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self.make_log(a, capsys)
        self.make_log(b, capsys)
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "digests match" in out
        assert "clean" in out
        assert "+0.0000" in out and "REGRESSION" not in out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        import json

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self.make_log(a, capsys)
        records = [json.loads(l) for l in a.read_text().splitlines()]
        for r in records:
            r["summary"]["latency_mean"] *= 1.5
        b.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert main(["diff", str(a), str(b)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # A generous threshold lets the same delta through.
        assert main(["diff", str(a), str(b), "--threshold", "0.6"]) == 0
        capsys.readouterr()

    def test_json_dump(self, tmp_path, capsys):
        import json

        a = tmp_path / "a.jsonl"
        self.make_log(a, capsys)
        out = tmp_path / "diff.json"
        assert main(["diff", str(a), str(a), "--json", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["clean"] is True
        assert len(payload["matched"]) == 2

    def test_missing_file_is_error(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        self.make_log(a, capsys)
        assert main(["diff", str(a), str(tmp_path / "nope.jsonl")]) == 2
        capsys.readouterr()

    def test_disjoint_logs_error_unless_allowed(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self.make_log(a, capsys)
        b.write_text("")
        assert main(["diff", str(a), str(b)]) == 2
        capsys.readouterr()
        assert main(["diff", str(a), str(b), "--allow-unmatched"]) == 0
        capsys.readouterr()


class TestReportAnalyze:
    def test_analyze_writes_html_and_json(self, tmp_path, capsys):
        import json

        html_out = tmp_path / "diag.html"
        json_out = tmp_path / "diag.json"
        rc = main([
            "report", "--analyze", "cmesh256", "--rates", "0.01,0.04",
            "--cycles", "200", "--warmup", "50",
            "-o", str(html_out), "--json", str(json_out),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "verdict" in captured.err
        html = html_out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        payload = json.loads(json_out.read_text())
        assert [p["rate"] for p in payload["points"]] == [0.01, 0.04]
        assert payload["points"][0]["attribution"]["overall"]["exact"] is True


class TestCacheCounters:
    def test_hits_and_misses_surface_in_engine_line(self, tmp_path, capsys):
        args = [
            "sweep", "cmesh256", "--rates", "0.01,0.02", "--cycles", "200",
            "--warmup", "50", "--cache", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().err
        assert "[0 hits / 2 misses]" in first
        assert main(args) == 0
        second = capsys.readouterr().err
        assert "[2 hits / 0 misses]" in second


class TestScenariosCommand:
    def test_list_prints_cells_and_digests(self, capsys):
        assert main(["scenarios", "list", "--only", "coherence,own256"]) == 0
        captured = capsys.readouterr()
        lines = [l for l in captured.out.splitlines() if l.strip()]
        assert len(lines) == 4  # {clean,bursts} x {ideal,conservative}
        assert all(l.startswith("coherence/own256/") for l in lines)
        assert "4 cells" in captured.err

    def test_bad_filter_is_error(self, capsys):
        assert main(["scenarios", "list", "--only", "sorting-network"]) == 2
        assert "no scenario cells match" in capsys.readouterr().err

    def test_run_writes_records_and_report(self, tmp_path, capsys):
        import json

        runlog = tmp_path / "scn.jsonl"
        report = tmp_path / "report.json"
        rc = main([
            "scenarios", "run", "--only", "coherence,own256,clean",
            "--cycles", "200", "--warmup", "50",
            "--runlog", str(runlog), "--report", str(report),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Scenario matrix (2 cells)" in out
        records = [json.loads(l) for l in runlog.read_text().splitlines()]
        assert len(records) == 2
        for record in records:
            assert record["scenario"]["workload"] == "coherence"
            assert record["verdict"]
            assert "summary" in record
        payload = json.loads(report.read_text())
        assert payload["n_cells"] == 2
        assert sum(payload["verdict_histogram"].values()) == 2

    def test_replay_renders_runlog(self, tmp_path, capsys):
        runlog = tmp_path / "scn.jsonl"
        assert main([
            "scenarios", "run", "--only", "coherence,own256,clean,ideal",
            "--cycles", "200", "--warmup", "50", "--runlog", str(runlog),
        ]) == 0
        capsys.readouterr()
        assert main(["scenarios", "replay", str(runlog)]) == 0
        out = capsys.readouterr().out
        assert "Scenario run log (1 cells)" in out
        assert "coherence" in out

    def test_replay_needs_path(self, capsys):
        assert main(["scenarios", "replay"]) == 2
        assert "needs a run-log path" in capsys.readouterr().err
