"""Oscillator / PA / LNA behavioural models against the Fig. 4 anchors."""

import math

import numpy as np
import pytest

from repro.rf.lna import CascodeLNA
from repro.rf.oscillator import ColpittsOscillator, design_for_frequency
from repro.rf.pa import ClassABPA


class TestOscillator:
    def test_oscillates_at_90ghz(self):
        osc = ColpittsOscillator()
        assert osc.frequency_ghz == pytest.approx(90.0, abs=0.5)

    def test_phase_noise_anchor(self):
        """Fig. 4a: ~-86 dBc/Hz at 1 MHz offset."""
        osc = ColpittsOscillator()
        assert osc.phase_noise_dbc_hz(1e6) == pytest.approx(-86.0, abs=1.0)

    def test_phase_noise_falls_with_offset(self):
        osc = ColpittsOscillator()
        pn = [osc.phase_noise_dbc_hz(f) for f in (1e5, 1e6, 1e7)]
        assert pn[0] > pn[1] > pn[2]

    def test_leeson_slope_20db_per_decade(self):
        """In the 1/f^2 region the slope is -20 dB/decade."""
        osc = ColpittsOscillator(flicker_corner_mhz=0.0001)
        delta = osc.phase_noise_dbc_hz(1e6) - osc.phase_noise_dbc_hz(1e7)
        assert delta == pytest.approx(20.0, abs=0.5)

    def test_effective_capacitance_series(self):
        osc = ColpittsOscillator(cgs_ff=70.0, cgd_ff=35.0)
        assert osc.effective_capacitance_f == pytest.approx(23.33e-15, rel=1e-3)

    def test_dc_power(self):
        osc = ColpittsOscillator(supply_v=1.0, bias_current_ma=6.0)
        assert osc.dc_power_mw == 6.0

    def test_design_for_frequency(self):
        for target in (60.0, 90.0, 300.0, 500.0):
            osc = design_for_frequency(target)
            assert osc.frequency_ghz == pytest.approx(target, rel=1e-6)

    def test_design_rejects_bad_target(self):
        with pytest.raises(ValueError):
            design_for_frequency(0.0)

    def test_offset_validation(self):
        with pytest.raises(ValueError):
            ColpittsOscillator().phase_noise_dbc_hz(0.0)

    def test_waveform_amplitude_and_period(self):
        osc = ColpittsOscillator()
        t = np.linspace(0, 1 / osc.frequency_hz, 256, endpoint=False)
        wave = osc.waveform(t, amplitude_v=0.4)
        assert np.max(wave) == pytest.approx(0.4, rel=1e-2)
        # One full period: mean ~ 0.
        assert abs(np.mean(wave)) < 1e-3

    def test_psd_symmetric_in_offset_magnitude(self):
        osc = ColpittsOscillator()
        psd = osc.psd_dbc_hz([-1e6, 1e6])
        assert psd[0] == pytest.approx(psd[1])


class TestPA:
    def test_peak_gain_anchor(self):
        assert ClassABPA().gain_db(90.0) == pytest.approx(3.5)

    def test_2db_bandwidth_20ghz(self):
        pa = ClassABPA()
        assert pa.gain_db(80.0) == pytest.approx(1.5, abs=0.01)
        assert pa.gain_db(100.0) == pytest.approx(1.5, abs=0.01)

    def test_compression_point_anchor(self):
        """Fig. 4b: output P1dB ~ 5 dBm."""
        assert ClassABPA().compression_point_dbm() == pytest.approx(5.0, abs=0.7)

    def test_small_signal_linear(self):
        pa = ClassABPA()
        out = pa.output_power_dbm(-30.0)
        assert out == pytest.approx(-30.0 + 3.5, abs=0.05)

    def test_saturation(self):
        pa = ClassABPA()
        assert pa.output_power_dbm(30.0) <= pa.psat_dbm + 0.1

    def test_can_deliver_required_power(self):
        """'sufficient RF power (PRF) of 7 dBm (>=4 mW required)'."""
        pa = ClassABPA()
        # >= 4 mW (6 dBm) at moderate drive; ~7 dBm when driven hard.
        assert pa.output_power_dbm(5.0) >= 6.0
        assert pa.output_power_dbm(8.0) >= 6.9

    def test_efficiency_below_unity(self):
        pa = ClassABPA()
        eff = pa.drain_efficiency(7.0)
        assert 0.0 < eff < 1.0
        # 5 mW out of 14 mW DC ~ 36 %.
        assert eff == pytest.approx(0.36, abs=0.05)

    def test_gain_sweep_matches_scalar(self):
        pa = ClassABPA()
        freqs = np.array([85.0, 90.0, 95.0])
        sweep = pa.gain_sweep(freqs)
        assert sweep[1] == pytest.approx(pa.gain_db(90.0))

    def test_reflection_loss_in_band(self):
        pa = ClassABPA()
        assert pa.reflection_loss_fraction(90.0) <= 0.10
        assert pa.reflection_loss_fraction(130.0) > 0.10

    def test_frequency_validation(self):
        with pytest.raises(ValueError):
            ClassABPA().gain_db(0.0)


class TestLNA:
    def test_peak_gain_anchor(self):
        assert CascodeLNA().gain_db(90.0) == pytest.approx(10.0)

    def test_3db_bandwidth(self):
        lna = CascodeLNA(bandwidth_3db_ghz=30.0)
        assert lna.gain_db(90.0 - 15.0) == pytest.approx(7.0, abs=0.05)
        assert lna.gain_db(90.0 + 15.0) == pytest.approx(7.0, abs=0.05)

    def test_cascade_rolls_off_faster_than_single(self):
        two = CascodeLNA(stages=2)
        one = CascodeLNA(stages=1)
        # Same overall 3-dB BW, but the cascade falls faster beyond it.
        assert two.gain_db(130.0) < one.gain_db(130.0)

    def test_output_snr(self):
        lna = CascodeLNA(noise_figure_db=6.5)
        assert lna.output_snr_db(20.0) == pytest.approx(13.5)

    def test_sufficient_for(self):
        lna = CascodeLNA()
        assert lna.sufficient_for(10.0)
        assert not lna.sufficient_for(12.0)

    def test_frequency_validation(self):
        with pytest.raises(ValueError):
            CascodeLNA().gain_db(-1.0)
