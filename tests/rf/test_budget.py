"""Link budget (Fig. 3) anchors and physics invariants."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rf.budget import LinkBudget, free_space_path_loss_db


class TestFSPL:
    def test_anchor_90ghz_50mm(self):
        # lambda = 3.33 mm; 4*pi*d/lambda = 188.5 -> 45.5 dB.
        assert free_space_path_loss_db(50.0, 90.0) == pytest.approx(45.5, abs=0.2)

    def test_20db_per_decade(self):
        a = free_space_path_loss_db(5.0, 90.0)
        b = free_space_path_loss_db(50.0, 90.0)
        assert b - a == pytest.approx(20.0)

    def test_frequency_scaling(self):
        a = free_space_path_loss_db(50.0, 90.0)
        b = free_space_path_loss_db(50.0, 180.0)
        assert b - a == pytest.approx(6.02, abs=0.05)

    @pytest.mark.parametrize("d,f", [(0, 90), (-1, 90), (50, 0), (50, -5)])
    def test_validation(self, d, f):
        with pytest.raises(ValueError):
            free_space_path_loss_db(d, f)

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=1.0, max_value=1000.0),
    )
    def test_monotone_in_distance_and_frequency(self, d, f):
        assert free_space_path_loss_db(d * 2, f) > free_space_path_loss_db(d, f)
        assert free_space_path_loss_db(d, f * 2) > free_space_path_loss_db(d, f)


class TestLinkBudget:
    def test_paper_anchor(self):
        """'>= 4 dBm for a maximum distance of 50 mm' (Sec. IV-A)."""
        b = LinkBudget()
        p = b.required_tx_power_dbm(50.0)
        assert 4.0 <= p <= 5.0

    def test_sensitivity_composition(self):
        b = LinkBudget()
        # kTB(32 GHz) ~ -69 dBm + NF 8 + SNR 14 + margin 5.5 ~ -41.5 dBm.
        assert b.receiver_sensitivity_dbm == pytest.approx(-41.5, abs=0.3)

    def test_antenna_gain_reduces_power(self):
        b = LinkBudget()
        iso = b.required_tx_power_dbm(50.0)
        directive = b.required_tx_power_dbm(50.0, tx_gain_dbi=5.0, rx_gain_dbi=5.0)
        assert iso - directive == pytest.approx(10.0)

    def test_watts_variant(self):
        b = LinkBudget()
        dbm = b.required_tx_power_dbm(30.0)
        w = b.required_tx_power_w(30.0)
        assert w == pytest.approx(1e-3 * 10 ** (dbm / 10.0))

    def test_link_distance_factor_d_squared(self):
        b = LinkBudget()
        assert b.link_distance_factor(60.0) == pytest.approx(1.0)
        assert b.link_distance_factor(30.0) == pytest.approx(0.25)
        # The d^2 law brackets Table III's LD factors once transceiver
        # overheads are folded in (0.15 for SR at 10 mm).
        assert b.link_distance_factor(10.0) == pytest.approx(0.0278, abs=1e-3)

    def test_link_distance_factor_validation(self):
        with pytest.raises(ValueError):
            LinkBudget().link_distance_factor(30.0, reference_mm=0.0)

    def test_sweep_shape(self):
        b = LinkBudget()
        grid = b.sweep([10.0, 20.0, 30.0], gains_dbi=[0.0, 10.0])
        assert grid.shape == (2, 3)
        assert np.all(np.diff(grid, axis=1) > 0)  # distance monotone
        assert np.all(grid[0] > grid[1])  # gain helps

    def test_narrower_bandwidth_needs_less_power(self):
        wide = LinkBudget(data_rate_gbps=32.0)
        narrow = LinkBudget(data_rate_gbps=16.0)
        assert narrow.required_tx_power_dbm(50.0) < wide.required_tx_power_dbm(50.0)
        # Halving the bandwidth buys exactly 3 dB of noise floor.
        delta = wide.required_tx_power_dbm(50.0) - narrow.required_tx_power_dbm(50.0)
        assert delta == pytest.approx(3.01, abs=0.02)
