"""Spectral isolation of the channel plan (the Sec. IV guard-band claim)."""

import pytest

from repro.power import SCENARIOS
from repro.rf.spectrum import (
    EmissionMask,
    adjacent_channel_isolation_db,
    channel_plan_isolation,
    intermodulation_products,
)


class TestEmissionMask:
    def test_in_band_flat(self):
        mask = EmissionMask()
        assert mask.psd_dbc(0.0, 16.0) == 0.0
        assert mask.psd_dbc(15.9, 16.0) == 0.0

    def test_rolloff(self):
        mask = EmissionMask(rolloff_db_per_ghz=3.0)
        assert mask.psd_dbc(18.0, 16.0) == pytest.approx(-6.0)

    def test_floor(self):
        mask = EmissionMask(floor_dbc=-50.0)
        assert mask.psd_dbc(200.0, 16.0) == -50.0

    def test_symmetric(self):
        mask = EmissionMask()
        assert mask.psd_dbc(-20.0, 16.0) == mask.psd_dbc(20.0, 16.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmissionMask().psd_dbc(1.0, 0.0)


class TestIsolation:
    def test_overlapping_channels_zero_isolation(self):
        assert adjacent_channel_isolation_db(100.0, 32.0, 110.0, 32.0) == 0.0

    def test_isolation_grows_with_guard(self):
        tight = adjacent_channel_isolation_db(100.0, 16.0, 120.0, 16.0)  # 4 GHz
        wide = adjacent_channel_isolation_db(100.0, 16.0, 130.0, 16.0)  # 14 GHz
        assert wide > tight

    def test_paper_guard_bands_sufficient(self):
        """Both Table III plans achieve >= 20 dB adjacent-channel isolation
        without dedicated filters -- the Sec. IV design intent."""
        for scenario in SCENARIOS.values():
            rep = channel_plan_isolation(scenario)
            assert rep.meets(20.0), (scenario.key, rep.worst_db)

    def test_ideal_guards_beat_conservative(self):
        ideal = channel_plan_isolation(SCENARIOS[1]).worst_db
        cons = channel_plan_isolation(SCENARIOS[2]).worst_db
        assert ideal > cons

    def test_worst_pair_is_adjacent(self):
        rep = channel_plan_isolation(SCENARIOS[1])
        a, b = rep.worst_pair
        assert abs(a - b) == 1

    def test_fifteen_adjacent_pairs(self):
        rep = channel_plan_isolation(SCENARIOS[2])
        assert len(rep.per_adjacent_db) == 15


class TestIM3:
    def test_products(self):
        prods = intermodulation_products(100.0, 140.0)
        assert prods["2f1-f2"] == 60.0
        assert prods["2f2-f1"] == 180.0
        assert prods["f1+f2"] == 240.0

    def test_evenly_spaced_grid_property(self):
        """On the Table III grid, IM3 of neighbours lands on grid slots --
        harmless for single-carrier OOK PAs but the reason multi-carrier
        sharing of one PA is off the table."""
        s = SCENARIOS[1]
        f1, f2 = s.frequency(3), s.frequency(4)
        prods = intermodulation_products(f1, f2)
        assert prods["2f1-f2"] == s.frequency(2)
        assert prods["2f2-f1"] == s.frequency(5)
