"""OOK transceiver composition and technology parameter sets."""

import pytest

from repro.rf.ook import OOKTransceiver, ook_ber, required_snr_db
from repro.rf.technology import (
    DEVICES,
    EFFICIENCY_RAMP_PJ,
    TECH_BICMOS,
    TECH_CMOS,
    TECH_HBT,
    technology_for_frequency,
    validate_technology,
)


class TestBER:
    def test_ber_falls_with_snr(self):
        assert ook_ber(10.0) > ook_ber(15.0) > ook_ber(20.0)

    def test_required_snr_inverse(self):
        for target in (1e-6, 1e-9, 1e-12):
            snr = required_snr_db(target)
            assert ook_ber(snr) == pytest.approx(target, rel=1e-6)

    def test_required_snr_anchor(self):
        # 1e-9 BER with non-coherent OOK needs ~19 dB.
        assert required_snr_db(1e-9) == pytest.approx(19.0, abs=0.3)

    @pytest.mark.parametrize("bad", [0.0, 0.5, 0.9, -1e-3])
    def test_required_snr_validation(self, bad):
        with pytest.raises(ValueError):
            required_snr_db(bad)


class TestTransceiver:
    def test_defaults_compose(self):
        t = OOKTransceiver()
        assert t.oscillator.frequency_ghz == pytest.approx(90.0, rel=1e-3)
        assert t.pa.center_ghz == 90.0
        assert t.lna.center_ghz == 90.0

    def test_retunes_to_channel(self):
        t = OOKTransceiver(freq_ghz=140.0)
        assert t.oscillator.frequency_ghz == pytest.approx(140.0, rel=1e-3)

    def test_link_closes_at_budget_power(self):
        t = OOKTransceiver()
        p = t.tx_power_dbm_for(50.0)
        assert t.closes(50.0, p + 0.1)
        assert not t.closes(50.0, p - 8.0)

    def test_ber_improves_with_power(self):
        t = OOKTransceiver()
        assert t.ber(50.0, 0.0) > t.ber(50.0, 6.0)

    def test_energy_per_bit_scales_with_distance(self):
        t = OOKTransceiver()
        assert t.energy_per_bit_pj(60.0) > t.energy_per_bit_pj(30.0) > t.energy_per_bit_pj(10.0)

    def test_energy_per_bit_magnitude(self):
        """Sub-pJ/bit at 32 Gbps for the Fig. 4-class 65 nm blocks."""
        t = OOKTransceiver()
        e = t.energy_per_bit_pj(60.0)
        assert 0.3 <= e <= 2.0

    def test_rx_power_constant(self):
        t = OOKTransceiver()
        assert t.rx_dc_power_mw() == t.lna.dc_power_mw + t.detector_power_mw

    def test_tx_power_scales_down_for_short_links(self):
        t = OOKTransceiver()
        assert t.tx_dc_power_mw(10.0) < t.tx_dc_power_mw(60.0)


class TestTechnology:
    def test_three_tracks(self):
        assert set(DEVICES) == {TECH_CMOS, TECH_BICMOS, TECH_HBT}

    def test_paper_base_efficiencies(self):
        """Sec. IV: 0.1 pJ/bit CMOS base, 0.5 pJ/bit HBT base."""
        assert DEVICES[TECH_CMOS].base_energy_pj_per_bit == 0.1
        assert DEVICES[TECH_HBT].base_energy_pj_per_bit == 0.5

    def test_paper_ramps(self):
        assert EFFICIENCY_RAMP_PJ["ideal"] == {
            TECH_CMOS: 0.05, TECH_BICMOS: 0.07, TECH_HBT: 0.10,
        }
        assert EFFICIENCY_RAMP_PJ["conservative"] == {
            TECH_CMOS: 0.05, TECH_BICMOS: 0.06, TECH_HBT: 0.07,
        }

    def test_frequency_pairing(self):
        assert technology_for_frequency(100.0) == TECH_CMOS
        assert technology_for_frequency(220.0) == TECH_CMOS
        assert technology_for_frequency(260.0) == TECH_BICMOS
        assert technology_for_frequency(320.0) == TECH_BICMOS
        # "~300 GHz as a limit beyond which to use SiGe HBT-only circuitry"
        assert technology_for_frequency(340.0) == TECH_HBT
        assert technology_for_frequency(700.0) == TECH_HBT

    def test_supports(self):
        assert DEVICES[TECH_CMOS].supports(200.0)
        assert not DEVICES[TECH_CMOS].supports(300.0)
        assert DEVICES[TECH_HBT].supports(700.0)

    def test_speed_ordering(self):
        assert (
            DEVICES[TECH_CMOS].ft_ghz
            < DEVICES[TECH_BICMOS].ft_ghz
            < DEVICES[TECH_HBT].ft_ghz
        )

    def test_validate(self):
        assert validate_technology("CMOS") == "CMOS"
        with pytest.raises(ValueError):
            validate_technology("GaAs")
