"""Property-based checks of the OOK BER model (:mod:`repro.rf.ook`).

The fault layer's corruption probabilities are sampled straight from
``ook_ber``, so the inverse pair and monotonicity are load-bearing: a
non-monotone BER curve would make a *deeper* SNR dip *less* harmful.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rf.ook import ook_ber, required_snr_db

_settings = settings(max_examples=200, deadline=None)

# Keep exp(-snr/4) comfortably inside float range: ook_ber underflows to
# exactly 0.0 above ~33 dB, where the inverse is undefined.
_snr_db = st.floats(min_value=-10.0, max_value=25.0,
                    allow_nan=False, allow_infinity=False)
_ber = st.floats(min_value=1e-30, max_value=0.499,
                 allow_nan=False, allow_infinity=False)


class TestRoundTrip:
    @given(snr_db=_snr_db)
    @_settings
    def test_required_snr_inverts_ber(self, snr_db):
        assert required_snr_db(ook_ber(snr_db)) == pytest.approx(
            snr_db, abs=1e-9
        )

    @given(target=_ber)
    @_settings
    def test_ber_inverts_required_snr(self, target):
        assert ook_ber(required_snr_db(target)) == pytest.approx(
            target, rel=1e-9
        )


class TestMonotonicity:
    @given(a=_snr_db, b=_snr_db)
    @_settings
    def test_ber_decreases_with_snr(self, a, b):
        lo, hi = sorted((a, b))
        assert ook_ber(hi) <= ook_ber(lo)

    @given(a=_ber, b=_ber)
    @_settings
    def test_required_snr_decreases_with_target(self, a, b):
        lo, hi = sorted((a, b))
        # A laxer (larger) BER target needs no more SNR.
        assert required_snr_db(hi) <= required_snr_db(lo)

    @given(snr_db=_snr_db)
    @_settings
    def test_ber_bounded(self, snr_db):
        ber = ook_ber(snr_db)
        assert 0.0 < ber < 0.5


class TestDomain:
    @pytest.mark.parametrize("bad", [0.0, 0.5, 0.7, -0.1])
    def test_required_snr_rejects_degenerate_targets(self, bad):
        with pytest.raises(ValueError):
            required_snr_db(bad)
