"""Property tests: the control plane preserves the engine's determinism.

Two load-bearing guarantees from ``docs/control.md``:

1. a control-enabled run delivers bit-identically under dense stepping
   and active-set fast-forward (control epochs are scheduled wake
   sources, never "missed" by a clock skip);
2. the decision log is byte-stable -- same spec, same canonical bytes,
   same CRC -- which is what lets CI pin ``control_log_crc`` exactly.
"""

from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import reset_packet_ids
from repro.noc.stats import StatsCollector
from repro.runtime.executor import execute_inline
from repro.runtime.spec import ControlSpec, FaultSpec, RunSpec


@contextmanager
def delivery_log():
    """Record every (cycle, packet id) ejection, in delivery order."""
    events = []
    orig = StatsCollector.on_packet_ejected

    def patched(self, packet, now):
        events.append((now, packet.pid))
        return orig(self, packet, now)

    StatsCollector.on_packet_ejected = patched
    try:
        yield events
    finally:
        StatsCollector.on_packet_ejected = orig


def _run(rate, seed, faults, dense):
    reset_packet_ids()
    spec = RunSpec.create(
        topology="own256_ft",
        topology_kwargs={"with_reconfiguration": True},
        pattern="UN",
        rate=rate,
        cycles=600,
        warmup=100,
        seed=seed,
        faults=faults,
        control=ControlSpec(epoch_cycles=150),
        dense=dense,
    )
    with delivery_log() as events:
        _, _, result = execute_inline(spec)
    return events, result


FAULTS = st.sampled_from(
    [
        None,
        FaultSpec(kind="bursty", burst_rate=0.002, burst_duration=150,
                  snr_penalty_db=14.0, max_channel=4),
        FaultSpec(kind="death", at=150),
    ]
)


@settings(max_examples=6, deadline=None)
@given(
    rate=st.sampled_from([0.02, 0.05]),
    seed=st.integers(min_value=0, max_value=2**16 - 1),
    faults=FAULTS,
)
def test_control_runs_deliver_identically_dense_and_fast(rate, seed, faults):
    fast_events, fast = _run(rate, seed, faults, dense=False)
    dense_events, dense = _run(rate, seed, faults, dense=True)

    assert fast_events, "scenario delivered no packets; raise rate/cycles"
    assert fast_events == dense_events
    assert fast.summary == dense.summary  # includes control_log_crc
    assert fast.meta["control"] == dense.meta["control"]


def test_control_runs_identical_serial_and_parallel():
    from repro.runtime import Executor

    faults = FaultSpec(kind="bursty", burst_rate=0.002, burst_duration=150,
                       snr_penalty_db=14.0, max_channel=4)
    specs = [
        RunSpec.create(
            topology="own256_ft",
            topology_kwargs={"with_reconfiguration": True},
            pattern="UN", rate=rate, cycles=600, warmup=100, seed=5,
            faults=faults, control=ControlSpec(epoch_cycles=150),
        )
        for rate in (0.02, 0.05)
    ]
    serial = Executor(jobs=1).run(specs)
    parallel = Executor(jobs=2).run(specs)
    assert [r.summary for r in parallel] == [r.summary for r in serial]
    assert [r.meta["control"] for r in parallel] == [
        r.meta["control"] for r in serial
    ]


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16 - 1))
def test_decision_log_is_byte_stable_across_reruns(seed):
    faults = FaultSpec(kind="bursty", burst_rate=0.002, burst_duration=150,
                       snr_penalty_db=14.0, max_channel=4)
    _, first = _run(0.05, seed, faults, dense=False)
    _, second = _run(0.05, seed, faults, dense=False)

    assert first.meta["control"]["decisions"] == second.meta["control"]["decisions"]
    assert first.summary["control_log_crc"] == second.summary["control_log_crc"]
    assert first.meta["control"]["log"] == second.meta["control"]["log"]
