"""DecisionLog: canonical encoding, CRC sensitivity, counts."""

from repro.control.decisions import DecisionLog


def test_records_are_json_safe_and_counted():
    log = DecisionLog()
    rec = log.append(250, 1, "plan", desired=[(0, 2), (1, 3)], pinned=set())
    assert rec == {
        "cycle": 250, "epoch": 1, "action": "plan",
        "desired": [[0, 2], [1, 3]], "pinned": [],
    }
    log.append(500, 2, "probe", link="wch1.A0->B2", ok=True, streak=1)
    assert len(log) == 2
    assert log.counts == {"plan": 1, "probe": 1}
    assert log.summary()["actions"] == {"plan": 1, "probe": 1}


def test_canonical_encoding_is_byte_stable():
    def build():
        log = DecisionLog()
        log.append(250, 1, "plan", desired=[(2, 0)], class_flits={"E2E": 9})
        log.append(500, 2, "relay", pair=(0, 2), via=3)
        return log

    assert build().canonical_json() == build().canonical_json()
    assert build().crc() == build().crc()


def test_crc_flags_any_change():
    base = DecisionLog()
    base.append(250, 1, "plan", desired=[(0, 2)])

    altered = DecisionLog()
    altered.append(250, 1, "plan", desired=[(0, 3)])

    extra = DecisionLog()
    extra.append(250, 1, "plan", desired=[(0, 2)])
    extra.append(251, 1, "probe", ok=False)

    crcs = {base.crc(), altered.crc(), extra.crc(), DecisionLog().crc()}
    assert len(crcs) == 4  # every variation is distinguishable
