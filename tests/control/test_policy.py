"""Unit tests for the pure policy layer: ranking, hysteresis, dwell."""

import pytest

from repro.control.policy import AdaptiveSparePolicy, TelemetryWindow, feasible_with
from repro.core.reconfig import N_SPARE_CHANNELS


def window(epoch=0, cycle=0, **pair_flits):
    """Window with pair demand given as ``p01=…`` keyword shorthand."""
    flits = {(int(k[1]), int(k[2])): v for k, v in pair_flits.items()}
    return TelemetryWindow(epoch=epoch, cycle=cycle, pair_flits=flits)


class TestWindow:
    def test_demand_sums_primary_and_spare(self):
        w = TelemetryWindow(
            epoch=0, cycle=100,
            pair_flits={(0, 1): 10}, spare_flits={(0, 1): 5, (2, 3): 7},
        )
        assert w.demand((0, 1)) == 15
        assert w.demand((2, 3)) == 7
        assert w.demand((1, 0)) == 0


class TestFeasibility:
    def test_one_outgoing_and_incoming_per_cluster(self):
        assert feasible_with([], (0, 1))
        assert not feasible_with([(0, 1)], (0, 2))  # D0 already transmits
        assert not feasible_with([(0, 1)], (2, 1))  # D1 already receives
        assert feasible_with([(0, 1)], (1, 0))
        assert feasible_with([(0, 1), (1, 0)], (2, 3))


class TestAdaptiveSparePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSparePolicy(hysteresis=0.9)
        with pytest.raises(ValueError):
            AdaptiveSparePolicy(min_dwell_epochs=-1)

    def test_picks_hottest_feasible_pairs(self):
        pol = AdaptiveSparePolicy(min_dwell_epochs=0)
        eligible = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)]
        plan = pol.decide(
            window(p01=100, p02=90, p12=80, p23=70, p30=60),
            epoch=0, pinned=[], eligible=eligible,
        )
        # (0,2) loses to (0,1) on the D0 transmitter; the rest fit.
        assert plan == [(0, 1), (1, 2), (2, 3), (3, 0)]
        assert len(plan) <= N_SPARE_CHANNELS

    def test_idle_pairs_never_planned(self):
        pol = AdaptiveSparePolicy()
        plan = pol.decide(window(p01=5), 0, [], [(0, 1), (2, 3)])
        assert plan == [(0, 1)]  # (2,3) shows zero demand

    def test_pins_consume_slots_and_feasibility(self):
        pol = AdaptiveSparePolicy(min_dwell_epochs=0)
        plan = pol.decide(
            window(p01=100, p21=90, p23=50),
            epoch=0, pinned=[(0, 1)], eligible=[(0, 1), (2, 1), (2, 3)],
        )
        # (2,1) collides with the pinned (0,1) on D1's receiver.
        assert plan == [(2, 3)]

    def test_hysteresis_keeps_incumbent_against_small_challenger(self):
        pol = AdaptiveSparePolicy(hysteresis=1.5, min_dwell_epochs=0)
        eligible = [(0, 1), (0, 2)]
        assert pol.decide(window(p01=100, p02=0), 0, [], eligible) == [(0, 1)]
        # Challenger at 1.2x does not clear the 1.5x bar...
        assert pol.decide(window(p01=100, p02=120), 1, [], eligible) == [(0, 1)]
        # ...but 2x does.
        assert pol.decide(window(p01=100, p02=200), 2, [], eligible) == [(0, 2)]

    def test_dwell_protects_recent_admission(self):
        pol = AdaptiveSparePolicy(hysteresis=1.0, min_dwell_epochs=3)
        eligible = [(0, 1), (0, 2)]
        assert pol.decide(window(p01=10, p02=0), 0, [], eligible) == [(0, 1)]
        # A hotter conflicting pair cannot evict within the dwell window
        # while the incumbent still shows demand...
        assert pol.decide(window(p01=10, p02=500), 1, [], eligible) == [(0, 1)]
        assert pol.decide(window(p01=10, p02=500), 2, [], eligible) == [(0, 1)]
        # ...but can once the dwell expires.
        assert pol.decide(window(p01=10, p02=500), 3, [], eligible) == [(0, 2)]

    def test_dead_weight_is_evictable_inside_dwell(self):
        pol = AdaptiveSparePolicy(hysteresis=1.0, min_dwell_epochs=5)
        eligible = [(0, 1), (0, 2)]
        assert pol.decide(window(p01=10), 0, [], eligible) == [(0, 1)]
        # Incumbent demand collapsed to zero: dwell does not apply.
        assert pol.decide(window(p02=7), 1, [], eligible) == [(0, 2)]

    def test_equal_demand_is_order_deterministic(self):
        eligible = [(3, 0), (0, 1), (1, 2), (2, 3)]
        plans = set()
        for _ in range(3):
            pol = AdaptiveSparePolicy(min_dwell_epochs=0)
            plan = pol.decide(
                window(p30=50, p01=50, p12=50, p23=50), 0, [], eligible
            )
            plans.add(tuple(plan))
        assert plans == {((0, 1), (1, 2), (2, 3), (3, 0))}

    def test_reset_drops_incumbency(self):
        pol = AdaptiveSparePolicy(hysteresis=2.0, min_dwell_epochs=0)
        pol.decide(window(p01=100), 0, [], [(0, 1), (0, 2)])
        pol.reset()
        assert pol.plan == [] and pol.admitted == {}
        # Post-reset, the old incumbent holds no hysteresis advantage.
        plan = pol.decide(window(p01=100, p02=110), 1, [], [(0, 1), (0, 2)])
        assert plan == [(0, 2)]
