"""ControlLoop unit tests: recovery probing, pin retry, oscillation guard.

The epoch-driven mechanisms (backoff, freeze) are exercised against the
real OWN-256 plant (routing + reconfiguration controller) but with a
minimal fake simulator clock, so each decision boundary is a direct call
rather than thousands of simulated cycles. The probe/recovery path runs
the real simulator end to end -- it needs genuine link-layer fault state.
"""

from types import SimpleNamespace

import pytest

from repro.control import ControlLoop
from repro.control.policy import ControlPolicy
from repro.core.faults import build_fault_tolerant_own256
from repro.core.own256 import make_reconfig_controller
from repro.faults import FaultCampaign, FaultLayer, HealthMonitor, TransientFault
from repro.faults.models import LinkFaultState
from repro.noc import Simulator, reset_packet_ids
from repro.noc.invariants import audit_network
from repro.traffic import SyntheticTraffic
from repro.utils.rng import RngStreams

BURST_LINK = "wch1.A0->B2"  # channel 1 carries the (0, 2) cluster pair
EPOCH = 250


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


class FakeSim:
    """Just enough simulator surface for a ControlLoop epoch step."""

    def __init__(self):
        self.now = 0
        self.stats = SimpleNamespace(channels_recovered=0)
        self._tracer = None


def make_plant(**loop_kwargs):
    built = build_fault_tolerant_own256(with_reconfiguration=True)
    routing = built.notes["routing"]
    ctrl = make_reconfig_controller(built, epoch_cycles=EPOCH)
    loop = ControlLoop(
        routing, ctrl, epoch_cycles=EPOCH, rng=RngStreams(23), **loop_kwargs
    )
    return built, routing, ctrl, loop


def step_epochs(loop, sim, start, stop):
    for epoch in range(start, stop):
        sim.now = epoch * EPOCH
        loop(sim)


class TestScheduling:
    def test_next_wake_epoch_schedule(self):
        _, _, _, loop = make_plant()
        assert loop.next_wake(0) == EPOCH
        assert loop.next_wake(1) == EPOCH
        assert loop.next_wake(EPOCH) == EPOCH  # boundary: fire now
        assert loop.next_wake(EPOCH + 1) == 2 * EPOCH

    def test_loop_takes_ownership_of_the_controller(self):
        _, _, ctrl, loop = make_plant()
        assert ctrl.managed  # periodic utilisation reassigns are off
        assert loop.epochs == 0 and not loop.frozen

    def test_validation(self):
        built, routing, ctrl, _ = make_plant()
        with pytest.raises(ValueError):
            ControlLoop(routing, ctrl, epoch_cycles=0)
        with pytest.raises(ValueError):
            ControlLoop(routing, ctrl, osc_window=4, osc_threshold=5)
        with pytest.raises(ValueError):
            ControlLoop(routing, ctrl, probe_ok_needed=0)


class TestProbeRecovery:
    def test_transient_failure_is_probed_back_to_service(self):
        """A burst condemns channel 1; once it clears, consecutive probe
        successes un-fail the pair, unpin the spare, and reset the
        monitor -- the transient costs a window, not the rest of the run."""
        built = build_fault_tolerant_own256(with_reconfiguration=True)
        routing = built.notes["routing"]
        campaign = FaultCampaign(
            [TransientFault(at=200, duration=600, snr_penalty_db=14.0,
                            target=BURST_LINK)]
        )
        layer = FaultLayer(built.network, campaign=campaign, rng=RngStreams(11))
        ctrl = make_reconfig_controller(built, epoch_cycles=EPOCH)
        monitor = HealthMonitor(layer, routing=routing, reconfig=ctrl,
                                epoch_cycles=100)
        loop = ControlLoop(routing, ctrl, layer=layer, monitor=monitor,
                           epoch_cycles=EPOCH, probe_ok_needed=2,
                           rng=RngStreams(23))
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, "UN", 0.03, 4, seed=7),
            warmup_cycles=100,
            faults=layer,
        )
        sim.add_hook(monitor)
        sim.add_hook(loop)
        sim.run(3000)
        assert sim.drain(30_000)
        audit_network(sim)

        assert sim.stats.channels_failed_over >= 1, "burst never condemned"
        assert loop.recovered_channels >= 1
        assert sim.stats.channels_recovered == loop.recovered_channels
        assert routing.failed_pairs == set()
        assert (0, 2) not in ctrl.pinned
        assert loop.log.counts.get("probe", 0) >= loop.probe_ok_needed
        assert loop.log.counts.get("unfail", 0) == loop.recovered_channels
        # The healed link carries traffic again after recovery.
        link = next(l for l in built.network.links if l.name == BURST_LINK)
        assert not link.fault.failed_over and not link.fault.dead


class TestPinRetry:
    def test_pin_lands_when_spare_is_healthy(self):
        _, routing, ctrl, loop = make_plant()
        routing.fail_channel(0, 2)
        sim = FakeSim()
        step_epochs(loop, sim, 1, 2)
        assert (0, 2) in ctrl.pinned
        assert loop.log.counts.get("pin") == 1
        assert (0, 2) not in loop._pin_retry

    def test_backoff_doubles_and_gives_up(self):
        _, routing, ctrl, loop = make_plant()
        loop.retry_base_epochs = 1
        loop.retry_cap_epochs = 4
        loop.max_pin_attempts = 3
        routing.fail_channel(0, 2)
        # Kill the spare hardware so every pin attempt finds it unusable.
        spare = ctrl.spare_links[(0, 2)]
        spare.fault = LinkFaultState()
        spare.fault.dead = True

        sim = FakeSim()
        step_epochs(loop, sim, 1, 12)
        events = [
            (r["epoch"], r["action"], r["attempts"])
            for r in loop.log.records
            if r["action"] in ("pin_retry", "pin_giveup")
        ]
        # Retry at epoch 1 (wait 1), epoch 2 (wait 2), give up at epoch 4.
        assert events == [
            (1, "pin_retry", 1),
            (2, "pin_retry", 2),
            (4, "pin_giveup", 3),
        ]
        assert (0, 2) not in ctrl.pinned
        assert loop._pin_retry[(0, 2)].given_up
        # Degraded, not dead: the failed pair still routes via relay.
        assert routing._next_cluster(0, 2) != 2

    def test_faulty_pinned_spare_is_evicted(self):
        _, routing, ctrl, loop = make_plant()
        ctrl.pin((0, 2))
        spare = ctrl.spare_links[(0, 2)]
        spare.fault = LinkFaultState()
        spare.fault.dead = True

        sim = FakeSim()
        step_epochs(loop, sim, 1, 2)
        assert (0, 2) not in ctrl.pinned
        assert loop.log.counts.get("unpin_faulty") == 1


class FlipFlopPolicy(ControlPolicy):
    """Pathological policy: a different plan every epoch."""

    def __init__(self):
        self.calls = 0
        self.resets = 0

    def decide(self, window, epoch, pinned, eligible):
        self.calls += 1
        return [(0, 1)] if epoch % 2 else [(2, 3)]

    def reset(self):
        self.resets += 1


class TestOscillationGuard:
    def test_flapping_policy_is_frozen_to_the_static_plan(self):
        built, routing, ctrl, _ = make_plant()
        policy = FlipFlopPolicy()
        loop = ControlLoop(routing, ctrl, policy=policy, epoch_cycles=EPOCH,
                           osc_window=8, osc_threshold=6, rng=RngStreams(23))
        sim = FakeSim()
        step_epochs(loop, sim, 1, 9)  # 8 epochs, every one a plan flip

        assert loop.frozen
        assert ctrl.desired == []  # fallback: failover pins only
        assert policy.resets == 1
        assert loop.log.counts.get("freeze") == 1
        freeze = next(r for r in loop.log.records if r["action"] == "freeze")
        assert freeze["flips"] >= 6

        # Frozen means frozen: later epochs never consult the policy again.
        calls = policy.calls
        step_epochs(loop, sim, 9, 14)
        assert policy.calls == calls
        assert loop.epochs == 13  # ...but the loop itself keeps running

    def test_stable_policy_is_never_frozen(self):
        _, routing, ctrl, loop = make_plant()
        sim = FakeSim()
        step_epochs(loop, sim, 1, 20)
        assert not loop.frozen
        assert loop.log.counts.get("freeze") is None
