"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; a refactor that breaks one
should fail CI, not a reader. reproduce_paper is exercised through its
``--only`` fast path (the full run is the benchmark suite's job).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "power breakdown" in out
        assert "mean latency" in out

    def test_custom_topology(self):
        out = run_example("custom_topology.py")
        assert "hybrid-ring" in out

    def test_wireless_design_space(self):
        out = run_example("wireless_design_space.py")
        assert "Table III" in out
        assert "reductions vs configuration 1" in out

    def test_reproduce_paper_subset(self):
        out = run_example("reproduce_paper.py", "--quick", "--only", "table1,fig4")
        assert "[table1]" in out and "[fig4]" in out

    def test_reproduce_paper_rejects_unknown(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "reproduce_paper.py"), "--only", "zzz"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode != 0

    @pytest.mark.slow
    def test_kilo_core_scaling(self):
        out = run_example("kilo_core_scaling.py")
        assert "photonic component inventories" in out
        assert "OWN-1024" in out

    @pytest.mark.slow
    def test_thermal_and_area(self):
        out = run_example("thermal_and_area.py")
        assert "thermal map" in out

    @pytest.mark.slow
    def test_design_space_pareto(self):
        out = run_example("design_space_pareto.py")
        assert "Pareto frontier" in out
        assert "cfg4" in out
