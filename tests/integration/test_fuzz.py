"""Hypothesis-driven fuzzing: random traffic against the conservation laws.

Each case drives a network with randomly drawn scripted packets (sources,
destinations, sizes, times), runs to completion, and asserts (a) exact
delivery, (b) the invariant audits at intermediate cycles, (c) per-packet
hop bounds. This is the widest net over simulator edge cases: simultaneous
injections, duplicate (src, dst) pairs, size-1 packets, adversarial timing.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import build_own256
from repro.noc import Simulator, reset_packet_ids
from repro.noc.invariants import audit_network
from repro.topologies import build_cmesh, build_optxb
from repro.traffic import ScriptedTraffic

_fuzz_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# A schedule entry: (cycle, src, dst, size) with sizes 1..8 (vc_depth is 8).
def schedule_strategy(n_cores: int, max_packets: int = 30):
    entry = st.tuples(
        st.integers(min_value=0, max_value=150),
        st.integers(min_value=0, max_value=n_cores - 1),
        st.integers(min_value=0, max_value=n_cores - 1),
        st.integers(min_value=1, max_value=8),
    )
    return st.lists(entry, min_size=1, max_size=max_packets)


def run_fuzz_case(built, schedule):
    reset_packet_ids()
    clean = [(t, s, d, z) for (t, s, d, z) in schedule if s != d]
    sim = Simulator(built.network, traffic=ScriptedTraffic(clean), watchdog=3000)
    sim.run(200)
    audit_network(sim)
    ok = sim.drain(60_000)
    assert ok, "network failed to drain"
    audit_network(sim)
    assert sim.stats.packets_ejected == len(clean)
    return sim


class TestFuzzCmesh:
    @given(schedule=schedule_strategy(64))
    @_fuzz_settings
    def test_random_schedules(self, schedule):
        run_fuzz_case(build_cmesh(64), schedule)


class TestFuzzOptxb:
    @given(schedule=schedule_strategy(64))
    @_fuzz_settings
    def test_random_schedules(self, schedule):
        run_fuzz_case(build_optxb(64), schedule)


class TestFuzzOwn256:
    @given(schedule=schedule_strategy(256, max_packets=25))
    @settings(max_examples=15, deadline=None)
    def test_random_schedules(self, schedule):
        sim = run_fuzz_case(build_own256(), schedule)
        # OWN hop bound: every packet <= 3 network hops (+1 ejection each).
        packets = sim.stats.measured_packets
        if packets:
            assert sim.stats.hop_sum <= packets * 4


class TestFuzzBurstSameDestination:
    """Deterministic worst cases hypothesis tends to find interesting."""

    def test_all_cores_target_one_core(self):
        built = build_own256()
        schedule = [(0, s, 7, 4) for s in range(0, 256, 8) if s != 7]
        run_fuzz_case(built, schedule)

    def test_back_to_back_from_one_source(self):
        built = build_cmesh(64)
        schedule = [(t, 0, 63, 4) for t in range(25)]
        run_fuzz_case(built, schedule)

    def test_single_flit_flood(self):
        built = build_optxb(64)
        schedule = [(t % 5, s, (s + 1) % 64, 1) for t, s in enumerate(range(64))]
        run_fuzz_case(built, schedule)
