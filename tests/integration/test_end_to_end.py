"""Cross-module integration tests: full simulate-then-account pipelines,
deadlock-freedom stress at deep saturation, and determinism."""

import pytest

from repro import (
    SCENARIOS,
    Simulator,
    SyntheticTraffic,
    build_cmesh,
    build_optxb,
    build_own256,
    build_own1024,
    build_pclos,
    build_wcmesh,
    measure_power,
)
from repro.noc import reset_packet_ids


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


ALL_BUILDERS = {
    "cmesh": lambda: build_cmesh(256),
    "wcmesh": lambda: build_wcmesh(256),
    "optxb": lambda: build_optxb(256),
    "pclos": lambda: build_pclos(256),
    "own": build_own256,
}


class TestFullPipeline:
    @pytest.mark.parametrize("name", sorted(ALL_BUILDERS))
    def test_simulate_and_account(self, name):
        built = ALL_BUILDERS[name]()
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, "UN", 0.02, 4, seed=1),
            warmup_cycles=200,
        )
        sim.run(700)
        summary = sim.summary()
        assert summary["packets_measured"] > 50
        assert summary["latency_mean"] > 0
        pb = measure_power(built, sim)
        assert pb.total_w > 0
        assert pb.energy_per_packet_nj > 0

    def test_power_ordering_paper_shape(self):
        """The Fig. 6 ordering holds end to end at a common load."""
        totals = {}
        for name, builder in ALL_BUILDERS.items():
            reset_packet_ids()
            built = builder()
            sim = Simulator(
                built.network, traffic=SyntheticTraffic(256, "UN", 0.03, 4, seed=5)
            )
            sim.run(900)
            totals[name] = measure_power(built, sim).total_w
        assert totals["optxb"] < totals["pclos"] < totals["own"]
        assert totals["own"] < totals["wcmesh"]
        assert totals["own"] < totals["cmesh"]
        # Headline: >30 % savings vs CMESH.
        assert totals["cmesh"] / totals["own"] > 1.3


class TestDeadlockFreedomStress:
    """Deep-saturation runs: the watchdog must never fire.

    These exercise the VC-partitioning proofs in repro.core.routing -- the
    ascending/wireless/descending ordering plus virtual cut-through token
    holds -- under loads far beyond the saturation point.
    """

    @pytest.mark.parametrize("pattern", ["UN", "BC", "TOR"])
    def test_own256_overload(self, pattern):
        built = build_own256()
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, pattern, 0.2, 4, seed=13),
            watchdog=1500,
        )
        sim.run(2500)  # raises SimulationDeadlock on a stall
        assert sim.stats.packets_ejected > 0

    def test_own1024_overload(self):
        built = build_own1024()
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(1024, "UN", 0.1, 4, seed=13),
            watchdog=1500,
        )
        sim.run(1200)
        assert sim.stats.packets_ejected > 0

    @pytest.mark.parametrize("name", ["cmesh", "wcmesh", "optxb", "pclos"])
    def test_baselines_overload(self, name):
        built = ALL_BUILDERS[name]()
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, "UN", 0.2, 4, seed=13),
            watchdog=1500,
        )
        sim.run(1500)
        assert sim.stats.packets_ejected > 0

    def test_own256_conservative_wireless(self):
        """The 16 GHz scenario (2 cycles/flit on wireless) stays live."""
        built = build_own256(wireless_cycles_per_flit=2)
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, "UN", 0.15, 4, seed=13),
            watchdog=1500,
        )
        sim.run(1500)
        assert sim.stats.packets_ejected > 0


class TestDeterminismEndToEnd:
    def test_identical_runs_identical_power(self):
        def run():
            reset_packet_ids()
            built = build_own256()
            sim = Simulator(
                built.network, traffic=SyntheticTraffic(256, "UN", 0.03, 4, seed=21)
            )
            sim.run(500)
            pb = measure_power(built, sim)
            return (pb.total_w, pb.wireless_w, sim.mean_latency())

        assert run() == run()

    def test_scenarios_registry(self):
        assert set(SCENARIOS) == {1, 2}


class TestLatencyShape:
    def test_own_beats_cmesh_at_low_load(self):
        """Abstract: OWN improves latency vs CMESH (~50 % at zero load)."""
        lats = {}
        for name in ("own", "cmesh"):
            reset_packet_ids()
            built = ALL_BUILDERS[name]()
            sim = Simulator(
                built.network,
                traffic=SyntheticTraffic(256, "UN", 0.01, 4, seed=3),
                warmup_cycles=200,
            )
            sim.run(800)
            lats[name] = sim.mean_latency()
        assert lats["own"] < lats["cmesh"]
        assert 1.0 - lats["own"] / lats["cmesh"] > 0.25

    def test_own_diameter_three_network_hops(self):
        """No packet ever takes more than 3 network hops in OWN-256."""
        built = build_own256()
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, "UN", 0.02, 4, seed=3, stop_cycle=300),
        )
        sim.run(300)
        sim.drain()
        # hops counts network hops + 1 ejection.
        assert sim.stats.measured_packets > 0
        max_possible = 4  # 3 network + eject
        # avg strictly below the worst case and every class bounded:
        assert sim.stats.avg_hops() <= max_possible
