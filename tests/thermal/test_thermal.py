"""Thermal grid solver and network thermal analysis."""

import numpy as np
import pytest

from repro.core import build_own256
from repro.noc import Simulator, reset_packet_ids
from repro.thermal import (
    ThermalGrid,
    ThermalParams,
    ascii_heatmap,
    power_map_for,
    thermal_report,
)
from repro.topologies import build_cmesh, build_optxb
from repro.traffic import SyntheticTraffic


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_packet_ids()


class TestGridSolver:
    def test_zero_power_is_ambient(self):
        grid = ThermalGrid(8)
        temp = grid.solve(np.zeros((8, 8)))
        assert np.allclose(temp, grid.params.ambient_c)

    def test_uniform_power_uniform_temperature(self):
        grid = ThermalGrid(8)
        temp = grid.solve(np.full((8, 8), 0.1))
        # Uniform heating: no lateral flow, rise = q / g_sink everywhere.
        expected = grid.params.ambient_c + 0.1 / grid.g_sink
        assert np.allclose(temp, expected, rtol=1e-9)

    def test_point_source_peaks_at_source(self):
        grid = ThermalGrid(9)
        power = np.zeros((9, 9))
        power[4, 4] = 2.0
        temp = grid.solve(power)
        assert temp.argmax() == 4 * 9 + 4
        # Monotone decay away from the source along a row.
        row = temp[4]
        assert row[4] > row[5] > row[6] > row[7]

    def test_superposition(self):
        """The solver is linear: T(q1+q2) - amb == (T(q1)-amb)+(T(q2)-amb)."""
        grid = ThermalGrid(8)
        q1 = np.zeros((8, 8)); q1[1, 1] = 1.0
        q2 = np.zeros((8, 8)); q2[6, 6] = 0.5
        amb = grid.params.ambient_c
        lhs = grid.solve(q1 + q2) - amb
        rhs = (grid.solve(q1) - amb) + (grid.solve(q2) - amb)
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_corner_source_hotter_than_center_source(self):
        """Boundary cells have fewer spreading paths -> hotter peaks."""
        grid = ThermalGrid(9)
        center = np.zeros((9, 9)); center[4, 4] = 1.0
        corner = np.zeros((9, 9)); corner[0, 0] = 1.0
        assert grid.solve(corner).max() > grid.solve(center).max()

    def test_energy_balance(self):
        """Total heat into the sink equals total injected power."""
        grid = ThermalGrid(8)
        power = np.zeros((8, 8))
        power[2, 3] = 1.5
        power[6, 1] = 0.5
        temp = grid.solve(power)
        rise = temp - grid.params.ambient_c
        sunk = (rise * grid.g_sink).sum()
        assert sunk == pytest.approx(power.sum(), rel=1e-9)

    def test_validation(self):
        grid = ThermalGrid(8)
        with pytest.raises(ValueError):
            grid.solve(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            grid.solve(np.full((8, 8), -1.0))
        with pytest.raises(ValueError):
            ThermalGrid(1)

    def test_cell_of_clamps(self):
        grid = ThermalGrid(10, ThermalParams(die_edge_mm=50.0))
        assert grid.cell_of(-5.0, -5.0) == (0, 0)
        assert grid.cell_of(100.0, 100.0) == (9, 9)
        assert grid.cell_of(25.0, 25.0) == (5, 5)


class TestHeatmap:
    def test_shape_and_range_line(self):
        art = ascii_heatmap(np.array([[0.0, 1.0], [0.5, 0.25]]))
        lines = art.split("\n")
        assert len(lines) == 3
        assert lines[-1].startswith("range: 0.0 .. 1.0")

    def test_constant_map_no_crash(self):
        art = ascii_heatmap(np.full((3, 3), 7.0))
        assert "7.0 .. 7.0" in art


class TestNetworkThermal:
    def run_own(self, **kwargs):
        built = build_own256(**kwargs)
        sim = Simulator(
            built.network, traffic=SyntheticTraffic(256, "UN", 0.03, 4, seed=2)
        )
        sim.run(500)
        return built, sim

    def test_power_map_totals_match_accounting_order(self):
        from repro.power import measure_power
        from repro.thermal.grid import ThermalGrid

        built, sim = self.run_own()
        grid = ThermalGrid(16)
        pmap = power_map_for(built, sim, grid)
        pb = measure_power(built, sim)
        # Power map total within ~20 % of the accounting total (ring tuning
        # and minor terms are attributed differently).
        assert pmap.sum() == pytest.approx(pb.total_w, rel=0.2)

    def test_report_fields(self):
        built, sim = self.run_own()
        rep = thermal_report(built, sim)
        assert rep.peak_c > ThermalParams().ambient_c
        assert rep.gradient_c > 0
        assert rep.iterations >= 1
        assert rep.temperature_c.shape == (16, 16)
        assert "range:" in rep.heatmap

    def test_more_load_more_heat(self):
        built = build_own256()
        sim = Simulator(
            built.network, traffic=SyntheticTraffic(256, "UN", 0.01, 4, seed=2)
        )
        sim.run(500)
        cool = thermal_report(built, sim).peak_c

        reset_packet_ids()
        built2 = build_own256()
        sim2 = Simulator(
            built2.network, traffic=SyntheticTraffic(256, "UN", 0.04, 4, seed=2)
        )
        sim2.run(500)
        hot = thermal_report(built2, sim2).peak_c
        assert hot > cool

    def test_optxb_pays_more_ring_tuning_than_own(self):
        """Sec. I's thermal argument: a million-ring crossbar chases the
        gradient with far more tuning power than OWN's 4k rings."""
        results = {}
        for name, builder in (("own", build_own256), ("optxb", lambda: build_optxb(256))):
            reset_packet_ids()
            built = builder()
            sim = Simulator(
                built.network, traffic=SyntheticTraffic(256, "UN", 0.03, 4, seed=2)
            )
            sim.run(500)
            results[name] = thermal_report(built, sim).tuning_power_w
        assert results["optxb"] > 3 * results["own"]

    def test_cmesh_has_no_tuning_power(self):
        built = build_cmesh(256)
        sim = Simulator(
            built.network, traffic=SyntheticTraffic(256, "UN", 0.03, 4, seed=2)
        )
        sim.run(400)
        rep = thermal_report(built, sim)
        assert rep.tuning_power_w == 0.0
