"""The --live progress view: TTY table vs plain-stream fallback."""

import io

from repro.obs import LiveView


class FakeTty(io.StringIO):
    def isatty(self):
        return True


def snap(done=0, total=2, runs=None, **over):
    base = {
        "ts": 1700000000.0,
        "total": total,
        "done": done,
        "inflight": len(runs or {}),
        "stalled": 0,
        "heartbeats": 3,
        "runs": runs or {},
    }
    base.update(over)
    return base


def run_state(phase="run", **over):
    st = {
        "run": "ab12cd34ef56",
        "label": "own256/UN@0.03x1200",
        "phase": phase,
        "cycle": 600,
        "target_cycles": 1200,
        "progress": 0.5,
        "injected": 500,
        "ejected": 450,
        "cycles_per_sec": 400.0,
        "eta_s": 1.5,
        "stalled": False,
        "last_ts": 1700000000.0,
    }
    st.update(over)
    return st


class ManualClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class TestTtyTable:
    def test_table_rendered_in_place(self):
        stream = FakeTty()
        view = LiveView(stream=stream, clock=ManualClock())
        view.render(snap(runs={"ab12cd34ef56": run_state()}))
        out = stream.getvalue()
        assert "live: 0/2 done" in out
        assert "own256/UN@0.03x1200" in out
        assert " 50%" in out
        # First draw never moves the cursor up; subsequent draws do.
        assert "\x1b[" in out  # line-clear codes
        assert "F" not in out.split("own256")[0].split("\x1b[")[1]

    def test_redraw_moves_cursor_up(self):
        stream = FakeTty()
        clock = ManualClock()
        view = LiveView(stream=stream, clock=clock)
        view.render(snap(runs={"ab12cd34ef56": run_state()}))
        clock.t += 10
        view.render(snap(done=1, runs={"ab12cd34ef56": run_state("finished")}))
        assert "\x1b[3F" in stream.getvalue()  # header + cols + 1 row

    def test_throttling_skips_fast_redraw(self):
        stream = FakeTty()
        clock = ManualClock()
        view = LiveView(stream=stream, interval_s=0.2, clock=clock)
        view.render(snap())
        clock.t += 0.01
        view.render(snap(done=1))
        assert view.renders == 1
        clock.t += 1.0
        view.render(snap(done=1))
        assert view.renders == 2

    def test_stalled_run_marked(self):
        stream = FakeTty()
        view = LiveView(stream=stream, clock=ManualClock())
        state = run_state(stalled=True, last_ts=1699999990.0)
        view.render(snap(stalled=1, runs={"ab12cd34ef56": state}))
        assert "STALL" in stream.getvalue()

    def test_close_leaves_cursor_below_table(self):
        stream = FakeTty()
        view = LiveView(stream=stream, clock=ManualClock())
        view.render(snap())
        view.close(snap(done=2))
        assert stream.getvalue().endswith("\n")


class TestPlainStream:
    def test_single_line_summary(self):
        stream = io.StringIO()
        view = LiveView(stream=stream, clock=ManualClock())
        view.render(
            snap(runs={"ab12cd34ef56": run_state()}), force=True
        )
        out = stream.getvalue()
        assert out.count("\n") == 1
        assert "live: 0/2 done, 1 running" in out
        assert "own256/UN@0.03x1200" in out
        assert "\x1b[" not in out  # no ANSI on dumb streams

    def test_slower_cadence_than_tty(self):
        stream = io.StringIO()
        clock = ManualClock()
        view = LiveView(
            stream=stream, interval_s=0.2, plain_interval_s=5.0, clock=clock
        )
        view.render(snap())
        clock.t += 1.0  # beyond the TTY interval, below the plain one
        view.render(snap(done=1))
        assert view.renders == 1
