"""Structured logging: formatters, REPRO_LOG parsing, dynamic stderr."""

import json
import logging

import pytest

from repro.obs.log import (
    ContextLogger,
    HumanFormatter,
    JsonLinesFormatter,
    configure_logging,
    get_logger,
)


@pytest.fixture(autouse=True)
def _reset_logging():
    """Each test starts from the default (human, INFO) configuration."""
    configure_logging(json_mode=False, level=logging.INFO, force=True)
    yield
    configure_logging(json_mode=False, level=logging.INFO, force=True)


def make_record(msg="hello", level=logging.INFO, **extra):
    record = logging.LogRecord(
        "repro.test", level, __file__, 1, msg, (), None
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return record


class TestHumanFormatter:
    def test_info_is_message_only(self):
        assert HumanFormatter().format(make_record("engine: 2 simulated")) == (
            "engine: 2 simulated"
        )

    def test_warning_gets_level_prefix(self):
        out = HumanFormatter().format(
            make_record("worker quiet", level=logging.WARNING)
        )
        assert out == "warning: worker quiet"

    def test_error_gets_level_prefix(self):
        out = HumanFormatter().format(
            make_record("no comparable run points", level=logging.ERROR)
        )
        assert out == "error: no comparable run points"


class TestJsonLinesFormatter:
    def test_extra_fields_become_keys(self):
        out = JsonLinesFormatter().format(
            make_record("beat", run="ab12", phase="run", cycle=500)
        )
        doc = json.loads(out)
        assert doc["msg"] == "beat"
        assert doc["level"] == "info"
        assert doc["logger"] == "repro.test"
        assert (doc["run"], doc["phase"], doc["cycle"]) == ("ab12", "run", 500)
        assert "ts" in doc

    def test_strict_json_scrubs_nonfinite(self):
        out = JsonLinesFormatter().format(
            make_record("x", latency=float("nan"))
        )
        assert json.loads(out)["latency"] is None

    def test_one_line_per_record(self):
        out = JsonLinesFormatter().format(make_record("a\nb"))
        # The message may contain escaped newlines but the document is one line.
        assert "\n" not in out


class TestConfigureLogging:
    def test_human_output_reaches_capsys_stderr(self, capsys):
        get_logger("repro.cli").info("engine: 1 simulated, 0 from cache")
        assert "engine: 1 simulated, 0 from cache\n" in capsys.readouterr().err

    def test_json_mode_emits_json_lines(self, capsys):
        configure_logging(json_mode=True, force=True)
        get_logger("repro.cli").info("hi", extra={"run": "abc"})
        line = capsys.readouterr().err.strip()
        doc = json.loads(line)
        assert doc["msg"] == "hi" and doc["run"] == "abc"

    def test_idempotent_no_handler_stacking(self, capsys):
        configure_logging(json_mode=False)
        configure_logging(json_mode=False)
        logger = logging.getLogger("repro")
        assert len(logger.handlers) == 1
        get_logger().info("once")
        assert capsys.readouterr().err.count("once") == 1

    def test_env_json_mode(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "json")
        configure_logging(force=True)
        get_logger().info("env")
        assert json.loads(capsys.readouterr().err)["msg"] == "env"

    def test_env_off_silences(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "off")
        configure_logging(force=True)
        get_logger().warning("quiet")
        assert capsys.readouterr().err == ""

    def test_env_level_suffix(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "human:warning")
        configure_logging(force=True)
        log = get_logger()
        log.info("hidden")
        log.warning("shown")
        err = capsys.readouterr().err
        assert "hidden" not in err and "warning: shown" in err


class TestContextLogger:
    def test_bound_context_rides_along(self, capsys):
        configure_logging(json_mode=True, force=True)
        log = get_logger("repro.worker", run="ab12", worker=7)
        log.info("beat")
        doc = json.loads(capsys.readouterr().err)
        assert doc["run"] == "ab12" and doc["worker"] == 7

    def test_per_call_extra_overrides_bound(self, capsys):
        configure_logging(json_mode=True, force=True)
        log = get_logger("repro.worker", phase="run")
        log.info("x", extra={"phase": "drain"})
        assert json.loads(capsys.readouterr().err)["phase"] == "drain"

    def test_bind_returns_extended_logger(self, capsys):
        configure_logging(json_mode=True, force=True)
        log = get_logger("repro.worker", run="ab12")
        child = log.bind(phase="drain")
        assert isinstance(child, ContextLogger)
        child.info("y")
        doc = json.loads(capsys.readouterr().err)
        assert doc["run"] == "ab12" and doc["phase"] == "drain"

    def test_names_nest_under_repro_root(self):
        assert get_logger("cli").logger.name == "repro.cli"
        assert get_logger("repro.cli").logger.name == "repro.cli"
