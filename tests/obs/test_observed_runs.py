"""Observation-only guarantee + executor integration (serial and pool).

The load-bearing invariant of the whole observability layer: attaching
an observer changes *nothing* about the simulation -- summaries, power,
telemetry metrics are bit-identical with and without it, serial or
parallel. CI additionally locks this via a golden ``repro diff`` at 0%.
"""

import logging

import pytest

from repro.obs import (
    HEARTBEAT,
    RUN_FINISHED,
    RUN_STARTED,
    ObservationHub,
    RunObserver,
    clear_worker_bus,
)
from repro.obs.log import configure_logging
from repro.runtime import Executor, RunSpec
from repro.runtime.executor import run_spec

SPEC = RunSpec.create(
    "cmesh", rate=0.02, cycles=300, warmup=100, seed=3,
    topology_kwargs={"n_cores": 64},
)
SPECS = [
    RunSpec.create(
        "cmesh", rate=r, cycles=300, warmup=100, seed=3,
        topology_kwargs={"n_cores": 64},
    )
    for r in (0.01, 0.02, 0.03)
]


@pytest.fixture(autouse=True)
def _clean_state():
    configure_logging(json_mode=False, level=logging.INFO, force=True)
    clear_worker_bus()
    yield
    clear_worker_bus()


def make_hub(**kwargs):
    kwargs.setdefault("sample_every", 50)
    kwargs.setdefault("stall_after_s", 0)
    return ObservationHub(**kwargs)


class TestObservationOnly:
    def test_observed_serial_run_bit_identical(self):
        baseline = run_spec(SPEC)
        observed = Executor(jobs=1, observe=make_hub()).run_one(SPEC)
        assert observed.summary == baseline.summary
        assert observed.power == baseline.power
        assert observed.digest == baseline.digest

    def test_observed_pool_run_bit_identical(self):
        baselines = [run_spec(s) for s in SPECS]
        observed = Executor(jobs=2, observe=make_hub()).run(SPECS)
        for base, obs in zip(baselines, observed):
            assert obs.summary == base.summary

    def test_observed_telemetry_metrics_identical(self):
        spec = SPEC.with_(telemetry=True)
        baseline = run_spec(spec)
        observed = Executor(jobs=1, observe=make_hub()).run_one(spec)
        assert observed.metrics == baseline.metrics
        assert observed.summary == baseline.summary

    def test_fine_stride_still_identical(self):
        baseline = run_spec(SPEC)
        observed = Executor(
            jobs=1, observe=make_hub(sample_every=1)
        ).run_one(SPEC)
        assert observed.summary == baseline.summary


class TestSerialEvents:
    def test_lifecycle_event_stream(self):
        hub = make_hub()
        events = []
        hub.subscribe(events.append)
        Executor(jobs=1, observe=hub).run_one(SPEC)
        kinds = [e["event"] for e in events]
        assert kinds[0] == RUN_STARTED
        assert kinds[-1] == RUN_FINISHED
        beats = [e for e in events if e["event"] == HEARTBEAT]
        # 300 measured + drain budget at stride 50 -> several beats.
        assert len(beats) >= 3
        cycles = [e["cycle"] for e in beats]
        assert cycles == sorted(cycles)
        for beat in beats:
            assert beat["injected"] >= beat["ejected"] >= 0
            assert beat["target_cycles"] > 0
            assert beat["phase"] in ("run", "drain")

    def test_hub_final_state(self):
        hub = make_hub()
        Executor(jobs=1, observe=hub).run_one(SPEC)
        snap = hub.snapshot()
        assert snap["done"] == 1 and snap["total"] == 1
        assert snap["inflight"] == 0
        (state,) = snap["runs"].values()
        assert state["phase"] == "finished"
        assert state["latency_mean"] is not None

    def test_windows_ride_heartbeats_when_traced(self):
        hub = make_hub()
        events = []
        hub.subscribe(events.append)
        Executor(jobs=1, observe=hub).run_one(SPEC.with_(telemetry=True))
        beats = [e for e in events if e["event"] == HEARTBEAT]
        with_windows = [b for b in beats if b.get("windows")]
        assert with_windows, "traced observed run carried no window snapshots"
        last = with_windows[-1]["windows"]
        assert last["events"] > 0 and "link_busy" in last["kinds"]

    def test_untraced_run_has_no_window_payload(self):
        hub = make_hub()
        events = []
        hub.subscribe(events.append)
        Executor(jobs=1, observe=hub).run_one(SPEC)
        beats = [e for e in events if e["event"] == HEARTBEAT]
        assert beats and all(b.get("windows") is None for b in beats)


class TestPoolEvents:
    def test_worker_events_cross_the_queue(self):
        hub = make_hub()
        events = []
        hub.subscribe(events.append)
        Executor(jobs=2, observe=hub).run(SPECS)
        kinds = [e["event"] for e in events]
        assert kinds.count(RUN_STARTED) == 3
        assert kinds.count(RUN_FINISHED) == 3
        assert kinds.count(HEARTBEAT) >= 9
        workers = {e["worker"] for e in events if e["event"] == HEARTBEAT}
        assert len(workers) >= 2, "expected heartbeats from multiple workers"
        assert hub.snapshot()["done"] == 3


class TestCacheHits:
    def test_cache_hit_noted_finished(self, tmp_path):
        hub = make_hub()
        ex = Executor(jobs=1, cache=str(tmp_path / "cache"), observe=hub)
        ex.run_one(SPEC)
        events = []
        hub.subscribe(events.append)
        result = ex.run_one(SPEC)
        assert result.cache_hit
        fins = [e for e in events if e["event"] == RUN_FINISHED]
        assert len(fins) == 1 and fins[0]["cache_hit"] is True
        assert hub.snapshot()["done"] == 1  # same digest: one run state

    def test_cache_hit_wall_s_well_defined(self, tmp_path):
        ex = Executor(jobs=1, cache=str(tmp_path / "cache"))
        ex.run_one(SPEC)
        hit = ex.run_one(SPEC)
        assert hit.cache_hit and hit.wall_s >= 0.0

    def test_cache_hit_record_has_no_cycles_per_sec(self, tmp_path):
        from repro.runtime import read_runlog

        log_path = tmp_path / "runs.jsonl"
        ex = Executor(
            jobs=1, cache=str(tmp_path / "cache"), runlog=str(log_path)
        )
        ex.run_one(SPEC)
        ex.run_one(SPEC)
        miss, hit = read_runlog(log_path)
        assert miss["cycles_per_sec"] is not None
        assert hit["cache_hit"] is True
        assert hit["cycles_per_sec"] is None

    def test_empty_batch_short_circuits(self):
        hub = make_hub()
        assert Executor(jobs=1, observe=hub).run([]) == []
        assert hub.snapshot()["total"] == 0


class TestProgressPhases:
    def test_legacy_callback_sees_only_completions(self):
        seen = []
        ex = Executor(
            jobs=1,
            observe=make_hub(),
            progress=lambda done, total, r: seen.append((done, total)),
        )
        ex.run(SPECS)
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_phase_aware_callback_sees_inflight(self):
        calls = []

        def progress(done, total, result, phase=None, info=None):
            calls.append((phase, result is not None, info))

        ex = Executor(jobs=1, observe=make_hub(), progress=progress)
        ex.run_one(SPEC)
        phases = [c[0] for c in calls]
        assert phases[0] == "started"
        assert "heartbeat" in phases
        assert phases[-1] == "finished"
        # Only the completion carries a result; in-flight calls carry the
        # raw event instead.
        for phase, has_result, info in calls:
            if phase == "finished":
                assert has_result and info is None
            else:
                assert not has_result and info["event"] is not None

    def test_phase_without_info_param_supported(self):
        calls = []

        def progress(done, total, result, phase=None):
            calls.append(phase)

        Executor(jobs=1, observe=make_hub(), progress=progress).run_one(SPEC)
        assert calls[0] == "started" and calls[-1] == "finished"

    def test_phase_aware_without_hub_gets_finished_only(self):
        calls = []

        def progress(done, total, result, phase=None, info=None):
            calls.append(phase)

        Executor(jobs=1, progress=progress).run_one(SPEC)
        assert calls == ["finished"]


class TestRunObserverUnit:
    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            RunObserver(lambda e: None, digest="ab" * 32, label="x", every=0)

    def test_min_interval_rate_limits(self):
        events = []
        obs = RunObserver(
            events.append, digest="ab" * 32, label="x", every=10,
            target_cycles=100, min_interval_s=3600.0,
        )

        class _Stats:
            packets_created = 0
            packets_ejected = 0

        class _Net:
            def total_occupancy(self):
                return 0

        class _Sim:
            stats = _Stats()
            network = _Net()
            _paused_traffic = None
            _active_routers = ()
            _active_nis = ()

        sim = _Sim()
        obs.sample(sim, 10)
        obs.sample(sim, 20)
        obs.sample(sim, 30)
        # The wall-clock floor suppresses all but the stride bookkeeping.
        assert obs.heartbeats <= 1
        assert obs.next_cycle == 40
