"""Event schema, bus transports, hub folding, and stall detection."""

import logging
import multiprocessing

import pytest

from repro.obs import (
    HEARTBEAT,
    OBS_SCHEMA,
    RUN_FINISHED,
    RUN_STARTED,
    STALL,
    BusDrain,
    InlineBus,
    ObservationHub,
    QueueBus,
    is_event,
    make_event,
    run_id,
)
from repro.obs.log import configure_logging


@pytest.fixture(autouse=True)
def _human_logging():
    configure_logging(json_mode=False, level=logging.INFO, force=True)


def beat(run="abcdef123456", seq=1, **data):
    data.setdefault("phase", "run")
    data.setdefault("cycle", 500)
    data.setdefault("target_cycles", 1000)
    return make_event(
        HEARTBEAT, run=run, label="own256/UN@0.03", tag="", worker=1,
        seq=seq, **data,
    )


class TestEvents:
    def test_make_event_shape(self):
        ev = beat()
        assert ev["event"] == HEARTBEAT
        assert ev["obs_schema"] == OBS_SCHEMA
        assert ev["run"] == "abcdef123456"
        assert ev["ts"] > 0
        assert is_event(ev)

    def test_is_event_rejects_junk(self):
        assert not is_event(None)
        assert not is_event("stop")
        assert not is_event({"event": "nonsense"})
        assert not is_event({"run": "x"})

    def test_run_id_is_digest_prefix(self):
        assert run_id("ab" * 32) == ("ab" * 32)[:12]


class TestInlineBus:
    def test_synchronous_dispatch_in_order(self):
        bus = InlineBus()
        seen = []
        bus.subscribe(seen.append)
        bus.subscribe(lambda ev: seen.append(("again", ev["seq"])))
        bus.publish(beat(seq=1))
        bus.publish(beat(seq=2))
        assert [e["seq"] for e in seen[::2]] == [1, 2]
        assert seen[1] == ("again", 1)
        assert bus.published == 2


class TestQueueBus:
    def test_publish_never_raises(self):
        class Broken:
            def put_nowait(self, item):
                raise RuntimeError("torn down")

        bus = QueueBus(Broken())
        bus.publish(beat())  # must not raise
        assert bus.dropped == 1 and bus.published == 0

    def test_drain_pumps_events_to_handler(self):
        ctx = multiprocessing.get_context()
        queue = ctx.Queue()
        got = []
        drain = BusDrain(queue, got.append, tick_s=0.05).start()
        bus = QueueBus(queue)
        for seq in (1, 2, 3):
            bus.publish(beat(seq=seq))
        queue.put("not an event")
        drain.stop()
        assert [e["seq"] for e in got] == [1, 2, 3]
        assert drain.drained == 3
        assert drain.malformed == 1

    def test_drain_on_tick_fires_while_idle(self):
        import time

        ctx = multiprocessing.get_context()
        queue = ctx.Queue()
        ticks = []
        drain = BusDrain(
            queue, lambda ev: None, on_tick=lambda: ticks.append(1),
            tick_s=0.01,
        ).start()
        time.sleep(0.15)
        drain.stop()
        assert ticks, "idle queue produced no stall-check ticks"


class TestHubFolding:
    def make_hub(self, **kwargs):
        kwargs.setdefault("stall_after_s", 0)  # no watchdog thread in tests
        return ObservationHub(**kwargs)

    def test_lifecycle_counts(self):
        hub = self.make_hub()
        rid = "abcdef123456"
        hub.handle(make_event(
            RUN_STARTED, run=rid, label="l", tag="", worker=1, seq=1,
            phase="build", target_cycles=1000,
        ))
        hub.handle(beat(run=rid, seq=2, cycle=400))
        hub.handle(beat(run=rid, seq=3, cycle=900, phase="drain"))
        st = hub.states[rid]
        assert st.phase == "drain" and st.cycle == 900
        assert st.heartbeats == 2 and hub.heartbeats == 2
        hub.handle(make_event(
            RUN_FINISHED, run=rid, label="l", tag="", worker=1, seq=4,
            phase="finished", wall_s=1.5, cache_hit=False,
        ))
        assert hub.done == 1
        assert st.phase == "finished" and st.progress == 1.0

    def test_duplicate_finish_counted_once(self):
        hub = self.make_hub()
        fin = make_event(
            RUN_FINISHED, run="aa" * 6, label="l", tag="", worker=1,
            seq=1, phase="finished", wall_s=0.1,
        )
        hub.handle(fin)
        hub.handle(dict(fin))
        assert hub.done == 1

    def test_progress_ratio_clamped(self):
        hub = self.make_hub()
        hub.handle(beat(run="bb" * 6, cycle=1500, target_cycles=1000))
        assert hub.states["bb" * 6].progress == 1.0

    def test_snapshot_strict_json(self):
        import json

        hub = self.make_hub()
        hub.handle(beat(cycle=100, cycles_per_sec=float("inf")))
        json.dumps(hub.snapshot(), allow_nan=False)

    def test_snapshot_counts(self):
        hub = self.make_hub()
        hub.handle(beat(run="aa" * 6))
        hub.handle(beat(run="bb" * 6))
        snap = hub.snapshot()
        assert snap["inflight"] == 2 and snap["done"] == 0
        assert set(snap["runs"]) == {"aa" * 6, "bb" * 6}

    def test_exporter_failure_does_not_break_handling(self):
        class Exploding:
            def update(self, snap):
                raise RuntimeError("disk full")

        hub = self.make_hub(exporters=[Exploding()])
        hub.handle(beat())  # must not raise
        assert hub.events_handled == 1

    def test_subscribers_see_every_event(self):
        hub = self.make_hub()
        got = []
        hub.subscribe(got.append)
        hub.handle(beat(seq=1))
        hub.handle(beat(seq=2))
        assert [e["seq"] for e in got] == [1, 2]


class TestStallDetection:
    def test_quiet_run_flagged_and_warned(self, capsys):
        clock = [1000.0]
        hub = ObservationHub(stall_after_s=5.0, clock=lambda: clock[0])
        hub.handle(beat(run="cc" * 6, cycle=100))
        assert hub.check_stalls() == []  # fresh beat, not stalled
        clock[0] += 10.0
        newly = hub.check_stalls()
        assert newly == ["cc" * 6]
        assert hub.states["cc" * 6].stalled
        err = capsys.readouterr().err
        assert "warning: no heartbeat from own256/UN@0.03 for 5s" in err

    def test_stall_warned_once_until_next_beat(self, capsys):
        clock = [1000.0]
        hub = ObservationHub(stall_after_s=5.0, clock=lambda: clock[0])
        hub.handle(beat(run="dd" * 6))
        clock[0] += 10.0
        assert hub.check_stalls() == ["dd" * 6]
        assert hub.check_stalls() == []  # already flagged
        # A new heartbeat clears the flag; going quiet again re-warns.
        hub.handle(beat(run="dd" * 6, seq=2))
        assert not hub.states["dd" * 6].stalled
        clock[0] += 10.0
        assert hub.check_stalls() == ["dd" * 6]

    def test_finished_runs_never_stall(self):
        clock = [1000.0]
        hub = ObservationHub(stall_after_s=5.0, clock=lambda: clock[0])
        hub.handle(make_event(
            RUN_FINISHED, run="ee" * 6, label="l", tag="", worker=1,
            seq=1, phase="finished", wall_s=0.5,
        ))
        clock[0] += 100.0
        assert hub.check_stalls() == []

    def test_stall_event_reaches_subscribers(self, capsys):
        clock = [1000.0]
        hub = ObservationHub(stall_after_s=5.0, clock=lambda: clock[0])
        got = []
        hub.subscribe(got.append)
        hub.handle(beat(run="ff" * 6))
        clock[0] += 10.0
        hub.check_stalls()
        kinds = [e["event"] for e in got]
        assert kinds == [HEARTBEAT, STALL]

    def test_zero_disables_watchdog(self):
        hub = ObservationHub(stall_after_s=0)
        hub.begin([])
        assert hub._watchdog is None
        hub.end()
