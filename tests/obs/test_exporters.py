"""OpenMetrics textfile + JSON status document exporters."""

import json

from repro.obs import OpenMetricsExporter, StatusExporter


def snap(**over):
    base = {
        "ts": 1700000000.0,
        "total": 2,
        "done": 1,
        "inflight": 1,
        "stalled": 0,
        "heartbeats": 7,
        "runs": {
            "ab12cd34ef56": {
                "run": "ab12cd34ef56",
                "label": "own256/UN@0.03x1200",
                "tag": "",
                "worker": 41,
                "phase": "run",
                "cycle": 800,
                "target_cycles": 1200,
                "progress": 800 / 1200,
                "injected": 900,
                "ejected": 850,
                "occupancy": 64,
                "heartbeats": 7,
                "wall_s": 2.0,
                "cycles_per_sec": 400.0,
                "eta_s": 1.0,
                "cache_hit": False,
                "stalled": False,
                "started_ts": 1699999998.0,
                "last_ts": 1700000000.0,
                "latency_mean": None,
                "throughput": None,
                "windows": None,
            },
        },
    }
    base.update(over)
    return base


class TestOpenMetrics:
    def test_render_structure(self, tmp_path):
        exp = OpenMetricsExporter(tmp_path / "m.prom")
        text = exp.render(snap())
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        assert "# TYPE repro_runs gauge" in lines
        assert "repro_runs 2" in lines
        assert "repro_runs_done 1" in lines
        assert "repro_heartbeats_total 7" in lines
        assert (
            'repro_run_cycle{run="ab12cd34ef56",label="own256/UN@0.03x1200"}'
            " 800" in lines
        )

    def test_update_writes_file_atomically(self, tmp_path):
        path = tmp_path / "m.prom"
        exp = OpenMetricsExporter(path)
        exp.update(snap())
        first = path.read_text()
        assert first.endswith("# EOF\n")
        exp.update(snap(done=2, inflight=0))
        assert "repro_runs_done 2" in path.read_text()
        assert not list(tmp_path.glob("*.tmp")), "temp file left behind"

    def test_label_escaping(self, tmp_path):
        bad = snap()
        bad["runs"]["ab12cd34ef56"]["label"] = 'we"ird\\lab\nel'
        text = OpenMetricsExporter(tmp_path / "m.prom").render(bad)
        assert 'label="we\\"ird\\\\lab\\nel"' in text

    def test_non_finite_values_skipped(self, tmp_path):
        bad = snap()
        bad["runs"]["ab12cd34ef56"]["cycles_per_sec"] = float("inf")
        bad["runs"]["ab12cd34ef56"]["eta_s"] = None
        text = OpenMetricsExporter(tmp_path / "m.prom").render(bad)
        assert "repro_run_cycles_per_sec{" not in text
        assert "repro_run_eta_seconds{" not in text
        # Finite series still render.
        assert "repro_run_cycle{" in text

    def test_heartbeat_age_from_snapshot_ts(self, tmp_path):
        aged = snap()
        aged["runs"]["ab12cd34ef56"]["last_ts"] = 1699999990.0
        text = OpenMetricsExporter(tmp_path / "m.prom").render(aged)
        assert "repro_run_heartbeat_age_seconds{" in text
        line = next(
            l for l in text.splitlines()
            if l.startswith("repro_run_heartbeat_age_seconds{")
        )
        assert float(line.rsplit(" ", 1)[1]) == 10.0


class TestStatusExporter:
    def test_writes_snapshot_json(self, tmp_path):
        path = tmp_path / "status.json"
        StatusExporter(path).update(snap())
        doc = json.loads(path.read_text())
        assert doc["total"] == 2 and doc["heartbeats"] == 7
        assert doc["runs"]["ab12cd34ef56"]["cycle"] == 800

    def test_rewrite_replaces_document(self, tmp_path):
        path = tmp_path / "status.json"
        exp = StatusExporter(path)
        exp.update(snap())
        exp.update(snap(done=2, heartbeats=9))
        doc = json.loads(path.read_text())
        assert doc["done"] == 2 and doc["heartbeats"] == 9
        assert not list(tmp_path.glob("*.tmp"))
