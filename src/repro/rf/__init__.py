"""Wireless transceiver substrate: link budget + behavioural circuit models.

These modules replace the paper's SPICE-level 65 nm simulations (Figs. 3-4)
with analytical models that reproduce the published scalar figures and curve
shapes; see DESIGN.md ("Substitutions").
"""

from repro.rf.technology import (
    DeviceTechnology,
    DEVICES,
    EFFICIENCY_RAMP_PJ,
    TECH_CMOS,
    TECH_BICMOS,
    TECH_HBT,
    TECHNOLOGIES,
    technology_for_frequency,
    validate_technology,
)
from repro.rf.budget import LinkBudget, free_space_path_loss_db
from repro.rf.oscillator import ColpittsOscillator, design_for_frequency
from repro.rf.pa import ClassABPA
from repro.rf.lna import CascodeLNA
from repro.rf.ook import OOKTransceiver, ook_ber, required_snr_db
from repro.rf.spectrum import (
    EmissionMask,
    IsolationReport,
    adjacent_channel_isolation_db,
    channel_plan_isolation,
    intermodulation_products,
)

__all__ = [
    "DeviceTechnology",
    "DEVICES",
    "EFFICIENCY_RAMP_PJ",
    "TECH_CMOS",
    "TECH_BICMOS",
    "TECH_HBT",
    "TECHNOLOGIES",
    "technology_for_frequency",
    "validate_technology",
    "LinkBudget",
    "free_space_path_loss_db",
    "ColpittsOscillator",
    "design_for_frequency",
    "ClassABPA",
    "CascodeLNA",
    "OOKTransceiver",
    "ook_ber",
    "required_snr_db",
    "EmissionMask",
    "IsolationReport",
    "adjacent_channel_isolation_db",
    "channel_plan_isolation",
    "intermodulation_products",
]
