"""Behavioural Colpitts oscillator model (Fig. 4a).

The paper's carrier source is "a power-efficient Colpitt oscillator at
90 GHz" with no external capacitors: the M1 gate-source / gate-drain
capacitances resonate with the tank inductor L. Reported figures the model
reproduces: oscillation at 90 GHz from a 1 V supply, and phase noise of
about -86 dBc/Hz at 1 MHz offset.

The phase-noise curve follows Leeson's equation; the PSD around the carrier
is the corresponding Lorentzian line shape. These are the quantities the
system-level OOK model consumes (spectral occupancy, SNR degradation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.units import BOLTZMANN_J_K, ROOM_TEMPERATURE_K


@dataclass(frozen=True)
class ColpittsOscillator:
    """A Colpitts oscillator built from device parasitics.

    Attributes
    ----------
    inductance_ph:
        Tank inductance in picohenries.
    cgs_ff, cgd_ff:
        M1 gate-source / gate-drain capacitances in femtofarads; they form
        the capacitive divider (series combination loads the tank).
    tank_q:
        Loaded tank quality factor (on-chip inductors at 90 GHz: Q ~ 10-15).
    signal_power_dbm:
        Carrier power delivered to the tank.
    supply_v, bias_current_ma:
        DC operating point (1 V supply per Fig. 4a); sets DC power.
    noise_factor:
        Leeson effective noise factor F of the active device.
    flicker_corner_mhz:
        1/f^3 corner frequency.
    """

    inductance_ph: float = 134.0
    cgs_ff: float = 70.0
    cgd_ff: float = 35.0
    tank_q: float = 8.0
    signal_power_dbm: float = -6.0
    supply_v: float = 1.0
    bias_current_ma: float = 6.0
    noise_factor: float = 4.0
    flicker_corner_mhz: float = 0.3

    @property
    def effective_capacitance_f(self) -> float:
        """Series combination of the Cgs/Cgd divider loading the tank."""
        cgs = self.cgs_ff * 1e-15
        cgd = self.cgd_ff * 1e-15
        return cgs * cgd / (cgs + cgd)

    @property
    def frequency_hz(self) -> float:
        """Oscillation frequency 1 / (2*pi*sqrt(L*Ceff))."""
        l_h = self.inductance_ph * 1e-12
        return 1.0 / (2.0 * math.pi * math.sqrt(l_h * self.effective_capacitance_f))

    @property
    def frequency_ghz(self) -> float:
        return self.frequency_hz / 1e9

    @property
    def dc_power_mw(self) -> float:
        return self.supply_v * self.bias_current_ma

    def phase_noise_dbc_hz(self, offset_hz: float) -> float:
        """Leeson's phase noise at ``offset_hz`` from the carrier [dBc/Hz].

        L(df) = 10 log10( (2 F k T / P_sig) * (1 + (f0 / (2 Q df))^2)
                          * (1 + fc / df) / 2 )
        """
        if offset_hz <= 0:
            raise ValueError(f"offset must be positive, got {offset_hz}")
        p_sig_w = 1e-3 * 10 ** (self.signal_power_dbm / 10.0)
        f0 = self.frequency_hz
        q = self.tank_q
        fc = self.flicker_corner_mhz * 1e6
        lorentzian = 1.0 + (f0 / (2.0 * q * offset_hz)) ** 2
        flicker = 1.0 + fc / offset_hz
        density = (
            2.0
            * self.noise_factor
            * BOLTZMANN_J_K
            * ROOM_TEMPERATURE_K
            / p_sig_w
            * lorentzian
            * flicker
            / 2.0
        )
        return 10.0 * math.log10(density)

    def psd_dbc_hz(self, offsets_hz: Sequence[float]) -> np.ndarray:
        """Single-sideband PSD samples for Fig. 4a's spectrum plot."""
        return np.array([self.phase_noise_dbc_hz(abs(f)) for f in offsets_hz])

    def waveform(self, t_s: np.ndarray, amplitude_v: float = 0.4) -> np.ndarray:
        """Ideal time-domain carrier (Fig. 4a right inset)."""
        return amplitude_v * np.sin(2.0 * math.pi * self.frequency_hz * np.asarray(t_s))


def design_for_frequency(target_ghz: float, **overrides) -> ColpittsOscillator:
    """Pick the tank inductance that oscillates at ``target_ghz``.

    Keeps the device capacitances fixed (they are parasitics, not design
    knobs) and solves L = 1 / ((2*pi*f)^2 * Ceff).
    """
    if target_ghz <= 0:
        raise ValueError(f"target frequency must be positive, got {target_ghz}")
    base = ColpittsOscillator(**overrides)
    ceff = base.effective_capacitance_f
    f_hz = target_ghz * 1e9
    l_h = 1.0 / ((2.0 * math.pi * f_hz) ** 2 * ceff)
    return ColpittsOscillator(
        inductance_ph=l_h * 1e12,
        cgs_ff=base.cgs_ff,
        cgd_ff=base.cgd_ff,
        tank_q=base.tank_q,
        signal_power_dbm=base.signal_power_dbm,
        supply_v=base.supply_v,
        bias_current_ma=base.bias_current_ma,
        noise_factor=base.noise_factor,
        flicker_corner_mhz=base.flicker_corner_mhz,
    )
