"""Device-technology parameter sets: CMOS, BiCMOS, SiGe HBT.

Sec. IV develops three technology tracks for the OWN wireless transceivers:

* **65 nm CMOS** -- demonstrated building blocks at ~100 GHz (Fig. 4);
  power-efficient but gain/bandwidth-limited above ~220 GHz.
* **SiGe BiCMOS** -- CMOS digital + selective SiGe HBT in PA/LNA; "the only
  feasible semiconductor process" for the full OWN-256 band plan.
* **SiGe HBT** -- speculative all-HBT design "likely to shape Si integration
  above ~500 GHz"; highest gain, least efficient.

The base energy-per-bit figures and per-band efficiency ramps come straight
from the paper's Technology Choices paragraph; the BiCMOS base (not stated
numerically) is reconstructed as the CMOS/HBT midpoint, 0.3 pJ/bit, which
also reproduces the paper's Fig. 5 ratios (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

TECH_CMOS = "CMOS"
TECH_BICMOS = "BiCMOS"
TECH_HBT = "SiGe"

TECHNOLOGIES = (TECH_CMOS, TECH_BICMOS, TECH_HBT)


@dataclass(frozen=True)
class DeviceTechnology:
    """Parameters of one device technology track.

    Attributes
    ----------
    name:
        Canonical name (``CMOS`` / ``BiCMOS`` / ``SiGe``).
    ft_ghz, fmax_ghz:
        Transition / maximum-oscillation frequencies (device speed).
    max_link_freq_ghz:
        Highest carrier this track can serve (Sec. IV: "~300 GHz as a limit
        beyond which to use SiGe HBT-only circuitry"; CMOS-only tops out
        lower due to "limited gain and increasing parasitics").
    base_energy_pj_per_bit:
        Transceiver efficiency at the lowest band.
    supply_v:
        Nominal supply voltage (the Fig. 4 circuits run at 1 V).
    """

    name: str
    ft_ghz: float
    fmax_ghz: float
    max_link_freq_ghz: float
    base_energy_pj_per_bit: float
    supply_v: float = 1.0

    def supports(self, link_freq_ghz: float) -> bool:
        return link_freq_ghz <= self.max_link_freq_ghz


#: The three tracks with their band ceilings used by the Table III
#: frequency->technology pairing (CMOS <= 220 GHz, BiCMOS <= 320 GHz,
#: SiGe HBT above; reconstruction documented in DESIGN.md).
DEVICES: Dict[str, DeviceTechnology] = {
    TECH_CMOS: DeviceTechnology(
        name=TECH_CMOS,
        ft_ghz=200.0,
        fmax_ghz=250.0,
        max_link_freq_ghz=220.0,
        base_energy_pj_per_bit=0.10,
    ),
    TECH_BICMOS: DeviceTechnology(
        name=TECH_BICMOS,
        ft_ghz=300.0,
        fmax_ghz=400.0,
        max_link_freq_ghz=320.0,
        base_energy_pj_per_bit=0.30,
    ),
    TECH_HBT: DeviceTechnology(
        name=TECH_HBT,
        ft_ghz=500.0,
        fmax_ghz=700.0,
        max_link_freq_ghz=700.0,
        base_energy_pj_per_bit=0.50,
    ),
}

#: Per-band efficiency ramps [pJ/bit per band step] (Sec. IV, Technology
#: Choices): losses grow with link frequency since "silicon is not an
#: optimal substrate for THz integration".
EFFICIENCY_RAMP_PJ: Dict[str, Dict[str, float]] = {
    "ideal": {TECH_CMOS: 0.05, TECH_BICMOS: 0.07, TECH_HBT: 0.10},
    "conservative": {TECH_CMOS: 0.05, TECH_BICMOS: 0.06, TECH_HBT: 0.07},
}


def technology_for_frequency(link_freq_ghz: float) -> str:
    """The Table III frequency->technology pairing."""
    if link_freq_ghz <= DEVICES[TECH_CMOS].max_link_freq_ghz:
        return TECH_CMOS
    if link_freq_ghz <= DEVICES[TECH_BICMOS].max_link_freq_ghz:
        return TECH_BICMOS
    return TECH_HBT


def validate_technology(name: str) -> str:
    if name not in TECHNOLOGIES:
        raise ValueError(f"unknown technology {name!r}; known: {TECHNOLOGIES}")
    return name
