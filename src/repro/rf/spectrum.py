"""Spectral occupancy and adjacent-channel isolation of the Table III plan.

Sec. IV: "link frequencies are chosen such that there is at least 4 GHz or
8 GHz isolation between the adjacent bands in the conservative or ideal
cases, respectively. This is to ensure that there is no significant
intermodulation between them, thereby saving significant power or area that
would have been committed to inefficient passive/active filters."

This module quantifies that claim. The transmitted OOK spectrum is modelled
with the standard piecewise emission mask (flat in-band, linear dB roll-off
across the transition, noise floor beyond); adjacent-channel interference
integrates the neighbour's mask over the victim's band. The channel-plan
check then asserts every pair of channels meets a target isolation without
dedicated filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - deferred to break the package cycle
    # repro.power.wireless itself imports repro.rf.technology; importing it
    # lazily inside channel_plan_isolation keeps repro.rf importable alone.
    from repro.power.wireless import WirelessScenario


@dataclass(frozen=True)
class EmissionMask:
    """Piecewise OOK transmit mask.

    Attributes
    ----------
    rolloff_db_per_ghz:
        Out-of-band roll-off slope beyond the channel edge. OOK with simple
        pulse shaping rolls off gently; this default corresponds to a
        single-pole RF band-pass at the PA output.
    floor_dbc:
        Wideband emission floor relative to in-band PSD.
    """

    rolloff_db_per_ghz: float = 3.0
    floor_dbc: float = -50.0

    def psd_dbc(self, offset_ghz: float, half_bw_ghz: float) -> float:
        """Emission PSD at ``offset_ghz`` from the carrier [dBc, per-GHz].

        0 dBc in-band; linear dB roll-off past the edge down to the floor.
        """
        if half_bw_ghz <= 0:
            raise ValueError(f"half bandwidth must be positive, got {half_bw_ghz}")
        excess = abs(offset_ghz) - half_bw_ghz
        if excess <= 0:
            return 0.0
        return max(self.floor_dbc, -self.rolloff_db_per_ghz * excess)


def adjacent_channel_isolation_db(
    tx_center_ghz: float,
    tx_bw_ghz: float,
    victim_center_ghz: float,
    victim_bw_ghz: float,
    mask: EmissionMask = EmissionMask(),
    steps: int = 64,
) -> float:
    """Power ratio (dB) between the TX's in-band power and what it leaks
    into the victim channel's band (higher = better isolation)."""
    import math

    half = tx_bw_ghz / 2.0
    lo = victim_center_ghz - victim_bw_ghz / 2.0
    hi = victim_center_ghz + victim_bw_ghz / 2.0
    if lo < tx_center_ghz + half and hi > tx_center_ghz - half:
        return 0.0  # spectral overlap: no isolation at all
    step = (hi - lo) / steps
    leaked = 0.0
    for i in range(steps):
        f = lo + (i + 0.5) * step
        psd = mask.psd_dbc(f - tx_center_ghz, half)
        leaked += 10 ** (psd / 10.0) * step
    in_band = tx_bw_ghz  # 0 dBc across the band
    return 10.0 * math.log10(in_band / leaked)


@dataclass
class IsolationReport:
    """Worst-pair isolation of a scenario's 16-channel plan."""

    scenario: str
    worst_db: float
    worst_pair: Tuple[int, int]
    per_adjacent_db: List[float]

    def meets(self, target_db: float) -> bool:
        return self.worst_db >= target_db


def channel_plan_isolation(
    scenario: "WirelessScenario", mask: EmissionMask = EmissionMask()
) -> IsolationReport:
    """Isolation analysis of a full Table III plan.

    Adjacent channels dominate (the mask is monotone in offset), so the
    worst pair is always a neighbouring one; all pairs are still checked.
    """
    from repro.power.wireless import wireless_channel_table

    table = wireless_channel_table(scenario)
    worst = float("inf")
    worst_pair = (0, 0)
    adjacent: List[float] = []
    for i, tx in enumerate(table):
        for j, victim in enumerate(table):
            if i == j:
                continue
            iso = adjacent_channel_isolation_db(
                tx.freq_ghz, tx.bandwidth_ghz,
                victim.freq_ghz, victim.bandwidth_ghz, mask,
            )
            if abs(i - j) == 1 and j > i:
                adjacent.append(iso)
            if iso < worst:
                worst = iso
                worst_pair = (tx.index, victim.index)
    return IsolationReport(
        scenario=scenario.key,
        worst_db=worst,
        worst_pair=worst_pair,
        per_adjacent_db=adjacent,
    )


def intermodulation_products(
    f1_ghz: float, f2_ghz: float
) -> Dict[str, float]:
    """Third-order intermodulation frequencies of two carriers.

    With the evenly spaced Table III grid, 2f1-f2 of adjacent channels
    lands on the next grid slot -- which is why OOK (constant-envelope-ish,
    one carrier per PA) rather than multi-carrier modulation keeps the plan
    filter-free: IM3 needs two strong tones in one nonlinearity.
    """
    return {
        "2f1-f2": 2 * f1_ghz - f2_ghz,
        "2f2-f1": 2 * f2_ghz - f1_ghz,
        "f1+f2": f1_ghz + f2_ghz,
    }
