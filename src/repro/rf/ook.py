"""End-to-end OOK transceiver model.

"The modulation scheme proposed is the non-coherent On-Off keying (OOK)
because of its design simplicity as well as power and area efficiency. ...
It requires an oscillator and modulated power amplifier (PA) driving the
antenna on the transmitter side and a low-noise amplifier (LNA) followed by
an envelope detector on the receiver end." (Sec. IV-A, Fig. 3 inset)

This module composes the oscillator / PA / LNA behavioural models with the
link budget into one transceiver object that answers the two system-level
questions the architecture needs:

* does a given channel close (BER at the target distance/rate)?
* what is its energy per bit (TX + RX DC power over the data rate), and how
  does it scale with the link-distance (LD) factor?
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.rf.budget import LinkBudget, free_space_path_loss_db
from repro.rf.lna import CascodeLNA
from repro.rf.oscillator import ColpittsOscillator, design_for_frequency
from repro.rf.pa import ClassABPA
from repro.utils.units import db_to_linear, dbm_to_watts


def ook_ber(snr_db: float) -> float:
    """Bit error rate of non-coherent OOK with envelope detection.

    Standard high-SNR approximation BER ~ 0.5 * exp(-SNR/4) (equal-probable
    marks/spaces, threshold at half the mark amplitude).
    """
    snr = db_to_linear(snr_db)
    return 0.5 * math.exp(-snr / 4.0)


def required_snr_db(target_ber: float) -> float:
    """Inverse of :func:`ook_ber`.

    Raises
    ------
    ValueError
        For a target BER outside (0, 0.5).
    """
    if not 0.0 < target_ber < 0.5:
        raise ValueError(f"target BER must be in (0, 0.5), got {target_ber}")
    return 10.0 * math.log10(-4.0 * math.log(2.0 * target_ber))


@dataclass
class OOKTransceiver:
    """A complete OOK TX/RX pair for one wireless channel.

    Attributes
    ----------
    freq_ghz, data_rate_gbps:
        Channel carrier and payload rate (90 GHz / 32 Gbps nominal).
    budget:
        Link budget (defaults re-derived at the channel's carrier).
    oscillator, pa, lna:
        Circuit blocks; defaults follow Fig. 4. The oscillator is retuned
        to the channel carrier.
    detector_power_mw:
        Envelope detector + clock/data recovery DC power.
    modulator_power_mw:
        OOK switch / driver DC power on the TX side.
    """

    freq_ghz: float = 90.0
    data_rate_gbps: float = 32.0
    budget: LinkBudget = field(default=None)  # type: ignore[assignment]
    oscillator: ColpittsOscillator = field(default=None)  # type: ignore[assignment]
    pa: ClassABPA = field(default=None)  # type: ignore[assignment]
    lna: CascodeLNA = field(default=None)  # type: ignore[assignment]
    detector_power_mw: float = 2.0
    modulator_power_mw: float = 1.5

    def __post_init__(self) -> None:
        if self.budget is None:
            self.budget = LinkBudget(freq_ghz=self.freq_ghz, data_rate_gbps=self.data_rate_gbps)
        if self.oscillator is None:
            self.oscillator = design_for_frequency(self.freq_ghz)
        if self.pa is None:
            self.pa = ClassABPA(center_ghz=self.freq_ghz)
        if self.lna is None:
            self.lna = CascodeLNA(center_ghz=self.freq_ghz)

    # ------------------------------------------------------------------ #
    # Link closure
    # ------------------------------------------------------------------ #

    def received_snr_db(self, distance_mm: float, tx_power_dbm: float,
                        antenna_gain_dbi: float = 0.0) -> float:
        """SNR at the detector for a given radiated power and distance."""
        noise_dbm = (
            self.budget.receiver_sensitivity_dbm
            - self.budget.snr_required_db
            - self.budget.margin_db
        )
        rx_dbm = (
            tx_power_dbm
            + 2 * antenna_gain_dbi
            - free_space_path_loss_db(distance_mm, self.freq_ghz)
        )
        return rx_dbm - noise_dbm

    def ber(self, distance_mm: float, tx_power_dbm: float,
            antenna_gain_dbi: float = 0.0) -> float:
        """End-to-end BER (envelope detection after the LNA)."""
        snr = self.received_snr_db(distance_mm, tx_power_dbm, antenna_gain_dbi)
        return ook_ber(self.lna.output_snr_db(snr) + self.lna.noise_figure_db)

    def closes(self, distance_mm: float, tx_power_dbm: float,
               target_ber: float = 1e-9) -> bool:
        """Does the link meet the NoC BER target (1e-9, the usual WiNoC
        figure) at this power and distance?"""
        return self.ber(distance_mm, tx_power_dbm) <= target_ber

    # ------------------------------------------------------------------ #
    # Power / energy
    # ------------------------------------------------------------------ #

    def tx_power_dbm_for(self, distance_mm: float) -> float:
        """Radiated power needed for this channel's distance (Fig. 3)."""
        return self.budget.required_tx_power_dbm(distance_mm)

    def tx_dc_power_mw(self, distance_mm: float) -> float:
        """Transmitter DC power: oscillator + modulator + PA.

        The PA's DC draw is scaled by the radiated power relative to its
        nominal bias (the LD-factor optimisation of Sec. IV: "OWN-256
        design [must] not waste excess power over shorter distances").
        """
        radiated_w = dbm_to_watts(self.tx_power_dbm_for(distance_mm))
        nominal_w = dbm_to_watts(7.0)  # the paper's PRF = 7 dBm bias point
        pa_mw = self.pa.dc_power_mw * min(1.0, radiated_w / nominal_w)
        return self.oscillator.dc_power_mw + self.modulator_power_mw + pa_mw

    def rx_dc_power_mw(self) -> float:
        """Receiver DC power: LNA + envelope detector."""
        return self.lna.dc_power_mw + self.detector_power_mw

    def energy_per_bit_pj(self, distance_mm: float) -> float:
        """Total (TX+RX) energy per bit at this channel's data rate."""
        total_mw = self.tx_dc_power_mw(distance_mm) + self.rx_dc_power_mw()
        return total_mw * 1e-3 / (self.data_rate_gbps * 1e9) * 1e12
