"""Wireless link budget (Fig. 3 of the paper).

Fig. 3 plots "the link budget estimation at the data rate of 32 Gbps and the
center frequency of 90 GHz for different antenna directivities": the OOK
transmitter output power required to close the link as a function of
distance. Its headline number: ">= 4 dBm for a maximum distance of 50 mm"
with isotropic (0 dBi) antennas.

Model: Friis free-space path loss + thermal-noise-floor receiver sensitivity

    P_tx(d) = S_rx + FSPL(d, f) - G_tx - G_rx
    S_rx    = kTB + NF + SNR_req + margin

with an OOK detection SNR and an implementation margin calibrated so the
50 mm / 0 dBi point lands at ~4 dBm (the published curve), which then fixes
the whole family of curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.units import (
    SPEED_OF_LIGHT_M_S,
    dbm_to_watts,
    mm,
    thermal_noise_dbm,
)


def free_space_path_loss_db(distance_mm: float, freq_ghz: float) -> float:
    """Friis free-space path loss, 20*log10(4*pi*d/lambda), in dB.

    Raises
    ------
    ValueError
        For non-positive distance or frequency.
    """
    if distance_mm <= 0:
        raise ValueError(f"distance must be positive, got {distance_mm}")
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    wavelength_m = SPEED_OF_LIGHT_M_S / (freq_ghz * 1e9)
    return 20.0 * math.log10(4.0 * math.pi * mm(distance_mm) / wavelength_m)


@dataclass(frozen=True)
class LinkBudget:
    """Link-budget parameters for one OOK channel.

    Attributes
    ----------
    freq_ghz, data_rate_gbps:
        Carrier and data rate; OOK needs receiver bandwidth ~ data rate.
    noise_figure_db:
        Receiver (LNA + detector) noise figure.
    snr_required_db:
        Detection SNR for the target BER with non-coherent OOK.
    margin_db:
        Implementation margin (intra-chip multipath, process spread).
        Default calibrated so the paper's 50 mm / 0 dBi point needs ~4 dBm.
    """

    freq_ghz: float = 90.0
    data_rate_gbps: float = 32.0
    noise_figure_db: float = 8.0
    snr_required_db: float = 14.0
    margin_db: float = 5.5

    @property
    def receiver_sensitivity_dbm(self) -> float:
        """Minimum received power that closes the link."""
        bandwidth_hz = self.data_rate_gbps * 1e9
        return (
            thermal_noise_dbm(bandwidth_hz)
            + self.noise_figure_db
            + self.snr_required_db
            + self.margin_db
        )

    def required_tx_power_dbm(
        self, distance_mm: float, tx_gain_dbi: float = 0.0, rx_gain_dbi: float = 0.0
    ) -> float:
        """TX power needed to close the link over ``distance_mm``."""
        return (
            self.receiver_sensitivity_dbm
            + free_space_path_loss_db(distance_mm, self.freq_ghz)
            - tx_gain_dbi
            - rx_gain_dbi
        )

    def required_tx_power_w(
        self, distance_mm: float, tx_gain_dbi: float = 0.0, rx_gain_dbi: float = 0.0
    ) -> float:
        return dbm_to_watts(self.required_tx_power_dbm(distance_mm, tx_gain_dbi, rx_gain_dbi))

    def link_distance_factor(self, distance_mm: float, reference_mm: float = 60.0) -> float:
        """Radiated-power scaling vs the longest (C2C) link.

        Sec. IV's "Distance Scaling": the LD factor "is the result of power
        changes as a function of distance as indicated in the link budget
        calculations of Figure 3". Under Friis the radiated power scales as
        d^2, so LD(d) = (d/d_ref)^2 -- which indeed gives ~1 / ~0.25-0.5 /
        ~0.03-0.15 for 60/30/10 mm, bracketing Table III's 1 / 0.5 / 0.15
        once fixed transceiver overheads are folded in.
        """
        if reference_mm <= 0:
            raise ValueError("reference distance must be positive")
        return (distance_mm / reference_mm) ** 2

    def sweep(
        self,
        distances_mm: Sequence[float],
        gains_dbi: Sequence[float] = (0.0, 5.0, 10.0),
    ) -> "np.ndarray":
        """Fig. 3 data: TX power [dBm], shape (len(gains), len(distances)).

        Antenna gain is applied at both ends (directive antennas face each
        other across the chip).
        """
        out = np.empty((len(gains_dbi), len(distances_mm)), dtype=float)
        for i, g in enumerate(gains_dbi):
            for j, d in enumerate(distances_mm):
                out[i, j] = self.required_tx_power_dbm(d, tx_gain_dbi=g, rx_gain_dbi=g)
        return out
