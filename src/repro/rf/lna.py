"""Behavioural LNA model (Fig. 4c).

"In the receiver end, a wideband common-source degeneration cascade-cascode
LNA is designed, which has a gain of 10 dB ... The LNA gain is sufficient
for 50 mm operation and can be further lowered depending on the performance
of the envelope detector."

Two cascaded tuned stages give the wideband response of Fig. 4c; the noise
figure feeds the link budget, and DC power feeds the receiver-side
energy/bit accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CascodeLNA:
    """Wideband cascode LNA.

    Attributes
    ----------
    center_ghz, peak_gain_db:
        Band centre / peak gain (90 GHz / 10 dB per Fig. 4c).
    bandwidth_3db_ghz:
        3-dB bandwidth of the cascade ("wideband": ~30 GHz).
    stages:
        Number of cascaded tuned stages (cascade-cascode: 2).
    noise_figure_db:
        Receiver NF; consumed by :class:`repro.rf.budget.LinkBudget`.
    dc_power_mw, supply_v:
        Bias point.
    """

    center_ghz: float = 90.0
    peak_gain_db: float = 10.0
    bandwidth_3db_ghz: float = 30.0
    stages: int = 2
    noise_figure_db: float = 6.5
    dc_power_mw: float = 8.0
    supply_v: float = 1.0

    def gain_db(self, freq_ghz: float) -> float:
        """Cascade gain at ``freq_ghz``.

        Each stage is a single-tuned section; the cascade's overall 3-dB
        bandwidth equals ``bandwidth_3db_ghz`` (per-stage bandwidth is
        widened by the cascade shrinkage factor sqrt(2^(1/n) - 1)).
        """
        if freq_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {freq_ghz}")
        shrink = math.sqrt(2 ** (1.0 / self.stages) - 1.0)
        per_stage_bw = self.bandwidth_3db_ghz / shrink
        x = (freq_ghz - self.center_ghz) / (per_stage_bw / 2.0)
        per_stage_db = -10.0 * math.log10(1.0 + x * x)
        return self.peak_gain_db + self.stages * per_stage_db

    def gain_sweep(self, freqs_ghz: np.ndarray) -> np.ndarray:
        """Fig. 4c gain-vs-frequency series."""
        return np.array([self.gain_db(float(f)) for f in np.asarray(freqs_ghz)])

    def output_snr_db(self, input_snr_db: float) -> float:
        """SNR after the LNA: degraded by the noise figure."""
        return input_snr_db - self.noise_figure_db

    def sufficient_for(self, required_gain_db: float) -> bool:
        """Is the in-band gain enough for the detector's sensitivity?"""
        return self.peak_gain_db >= required_gain_db
