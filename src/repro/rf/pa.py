"""Behavioural class-AB power amplifier model (Fig. 4b).

Paper figures the model reproduces: "a one-stage class-AB amplifier with a
DC power dissipation of 14 mW at 1 V supply. It can be biased to produce a
sufficient RF power (PRF) of 7 dBm (>= 4 mW required) with sufficiently
low-distortion as verified from the 1-dB compression point of ~5 dBm. The
PA achieves a peak gain of 3.5 dB centered around 90 GHz with a bandwidth
of around 20 GHz considering a gain of 2 dB."

Gain vs frequency is a single-tuned resonator response; compression uses
the Rapp (soft-limiting) model, the standard behavioural abstraction for
solid-state PAs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.units import dbm_to_watts, watts_to_dbm


@dataclass(frozen=True)
class ClassABPA:
    """One-stage class-AB PA.

    Attributes
    ----------
    center_ghz, peak_gain_db:
        Band centre and small-signal peak gain (90 GHz / 3.5 dB in Fig. 4b).
    bandwidth_2db_ghz:
        Width of the band where gain stays above 2 dB (~20 GHz in Fig. 4b);
        fixes the resonator Q.
    psat_dbm:
        Saturated output power; with the Rapp knee below, it places the
        output 1-dB compression point near 5 dBm as published.
    rapp_smoothness:
        Rapp model knee sharpness (2-3 typical of class-AB).
    dc_power_mw, supply_v:
        Bias point (14 mW at 1 V in the paper).
    """

    center_ghz: float = 90.0
    peak_gain_db: float = 3.5
    bandwidth_2db_ghz: float = 20.0
    psat_dbm: float = 7.3
    rapp_smoothness: float = 2.0
    dc_power_mw: float = 14.0
    supply_v: float = 1.0

    def gain_db(self, freq_ghz: float) -> float:
        """Small-signal gain at ``freq_ghz`` (single-tuned response)."""
        if freq_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {freq_ghz}")
        # Solve the detuning scale so gain drops (peak-2 dB) at +-BW/2.
        drop_lin = 10 ** ((self.peak_gain_db - 2.0) / 10.0) / 10 ** (self.peak_gain_db / 10.0)
        # |H|^2 = 1 / (1 + (x/x0)^2) with x = 2*(f-f0)/f0.
        x_edge = 2.0 * (self.bandwidth_2db_ghz / 2.0) / self.center_ghz
        x0 = x_edge / math.sqrt(1.0 / drop_lin - 1.0)
        x = 2.0 * (freq_ghz - self.center_ghz) / self.center_ghz
        rolloff = 1.0 / (1.0 + (x / x0) ** 2)
        return self.peak_gain_db + 10.0 * math.log10(rolloff)

    def output_power_dbm(self, input_dbm: float, freq_ghz: float | None = None) -> float:
        """Large-signal output power via the Rapp soft limiter."""
        freq = self.center_ghz if freq_ghz is None else freq_ghz
        g_lin = 10 ** (self.gain_db(freq) / 10.0)
        p_in_w = dbm_to_watts(input_dbm)
        p_lin_w = g_lin * p_in_w
        p_sat_w = dbm_to_watts(self.psat_dbm)
        s = self.rapp_smoothness
        p_out_w = p_lin_w / (1.0 + (p_lin_w / p_sat_w) ** s) ** (1.0 / s)
        return watts_to_dbm(p_out_w)

    def compression_point_dbm(self, tol: float = 1e-4) -> float:
        """Output-referred 1-dB compression point (bisection solve)."""
        lo, hi = -30.0, self.psat_dbm + 10.0
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            linear = mid + self.gain_db(self.center_ghz)
            actual = self.output_power_dbm(mid)
            if linear - actual < 1.0:
                lo = mid
            else:
                hi = mid
            if hi - lo < tol:
                break
        return self.output_power_dbm(0.5 * (lo + hi))

    def drain_efficiency(self, output_dbm: float) -> float:
        """RF output power / DC power at the given output level."""
        return dbm_to_watts(output_dbm) * 1e3 / self.dc_power_mw

    def gain_sweep(self, freqs_ghz: np.ndarray) -> np.ndarray:
        """Fig. 4b gain-vs-frequency series."""
        return np.array([self.gain_db(float(f)) for f in np.asarray(freqs_ghz)])

    def reflection_loss_fraction(self, freq_ghz: float) -> float:
        """Output mismatch power fraction; <= 10 % inside the matched band
        ("The PA reflection loss >= 10% indicates ... sufficient output
        matching", Sec. IV-A)."""
        detune = abs(freq_ghz - self.center_ghz) / (self.bandwidth_2db_ghz / 2.0)
        return min(1.0, 0.05 + 0.05 * detune**2)
