"""Steady-state die thermal modelling (grid solver + network analysis)."""

from repro.thermal.grid import ThermalGrid, ThermalParams, ascii_heatmap
from repro.thermal.analysis import (
    ThermalReport,
    power_map_for,
    thermal_report,
    TUNING_UW_PER_RING_K,
)

__all__ = [
    "ThermalGrid",
    "ThermalParams",
    "ascii_heatmap",
    "ThermalReport",
    "power_map_for",
    "thermal_report",
    "TUNING_UW_PER_RING_K",
]
