"""Thermal analysis of simulated networks.

Bridges the power accounting and the thermal grid: per-router measured
power becomes a die power map, the grid solves the temperature field, and
the photonic side feeds back -- rings detuned by thermal gradients need
extra tuning power, which is itself heat (a short fixed-point iteration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.noc.simulator import Simulator
from repro.power.accounting import PowerModel
from repro.thermal.grid import ThermalGrid, ThermalParams, ascii_heatmap
from repro.topologies.base import BuiltTopology


@dataclass
class ThermalReport:
    """Steady-state thermal verdict for one simulated run."""

    temperature_c: np.ndarray
    peak_c: float
    gradient_c: float
    tuning_power_w: float
    iterations: int
    total_power_w: float

    @property
    def heatmap(self) -> str:
        return ascii_heatmap(self.temperature_c)


#: Extra tuning power per ring per Kelvin of local deviation from the
#: thermal set point [uW / (ring*K)] -- ring resonance drifts ~10 GHz/K and
#: heaters burn roughly this much recovering it.
TUNING_UW_PER_RING_K = 0.3


def power_map_for(
    built: BuiltTopology,
    sim: Simulator,
    grid: ThermalGrid,
    model: Optional[PowerModel] = None,
) -> np.ndarray:
    """Distribute a run's measured power over the thermal grid.

    Router power lands at each router's floorplan position; link power is
    attributed to the source router's cell (drivers dominate); wireless
    transceiver power to the gateway cells.
    """
    model = model or PowerModel()
    net = built.network
    duration = model.dsent.cycles_to_seconds(sim.now)
    power = np.zeros((grid.n, grid.n))

    for router in net.routers:
        w = (
            model.dsent.router_dynamic_energy_pj(router) * 1e-12 / duration
            + model.dsent.router_static_power_mw(router) * 1e-3
        )
        cx, cy = grid.cell_of(*router.position_mm)
        power[cy, cx] += w

    for link in net.links:
        if link.src_router is None or link.bits_carried == 0:
            continue
        if link.kind == "electrical":
            w = model.dsent.wire_energy_pj(link.bits_carried, link.length_mm)
        elif link.kind == "photonic":
            w = model.photonic.link_dynamic_energy_pj(link.bits_carried)
        else:  # wireless
            e = model.wireless_link_energy_pj_per_bit(link)
            w = link.bits_carried * model.wireless.effective_energy_pj(
                e, link.multicast_degree
            )
        cx, cy = grid.cell_of(*link.src_router.position_mm)
        power[cy, cx] += w * 1e-12 / duration

    # Wireless static bias at transceiver sites.
    static_w = model.wireless.static_mw_per_transceiver_end * 1e-3
    for link in net.links:
        if link.kind != "wireless" or link.src_router is None:
            continue
        cx, cy = grid.cell_of(*link.src_router.position_mm)
        power[cy, cx] += static_w
    return power


def thermal_report(
    built: BuiltTopology,
    sim: Simulator,
    grid_cells: int = 16,
    params: ThermalParams = ThermalParams(),
    model: Optional[PowerModel] = None,
    max_iterations: int = 8,
) -> ThermalReport:
    """Solve the coupled power/temperature fixed point for a finished run.

    Iterates: solve T from the power map; compute ring-tuning power from
    the gradient (rings chase the hottest reference); add it as heat at the
    photonic sites; re-solve until the tuning power stabilises.
    """
    model = model or PowerModel()
    grid = ThermalGrid(grid_cells, params)
    base_power = power_map_for(built, sim, grid, model)
    rings = model.photonic_ring_count(built)
    rings_per_cell = rings / (grid.n * grid.n) if rings else 0.0

    tuning_w = 0.0
    temp = grid.solve(base_power)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if rings == 0:
            break
        # Rings tune to the hottest point; each cell's rings pay for their
        # deviation below it.
        deviation = np.max(temp) - temp
        tuning_map = deviation * rings_per_cell * TUNING_UW_PER_RING_K * 1e-6
        new_tuning = float(tuning_map.sum())
        temp = grid.solve(base_power + tuning_map)
        if abs(new_tuning - tuning_w) < 1e-4:
            tuning_w = new_tuning
            break
        tuning_w = new_tuning

    return ThermalReport(
        temperature_c=temp,
        peak_c=grid.peak_c(temp),
        gradient_c=grid.gradient_c(temp),
        tuning_power_w=tuning_w,
        iterations=iterations,
        total_power_w=float(base_power.sum()) + tuning_w,
    )
