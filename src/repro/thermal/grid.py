"""Steady-state die thermal model (finite-difference grid).

Thermal behaviour is load-bearing for both of the paper's technology
arguments: photonic rings must be kept on-resonance against thermal
gradients ("mitigating thermal and parametric variations with exceedingly
large number of components ... is difficult", Sec. I), and antenna
placement is chosen to avoid "load and thermal imbalance" (Sec. III-A).

The model is the standard compact one: the die is an N x N grid of cells;
each cell couples laterally to its neighbours through silicon spreading
conductance and vertically to the heat sink. Steady state solves

    (G_lateral * L + G_sink * I) T_rise = Q

where ``L`` is the grid Laplacian, ``Q`` the per-cell power [W], and
``T_rise`` the temperature above ambient. The sparse system is solved with
SciPy (``scipy.sparse``), sized so kilo-core maps solve in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy.sparse import lil_matrix
from scipy.sparse.linalg import spsolve


@dataclass(frozen=True)
class ThermalParams:
    """Compact thermal-model coefficients.

    Attributes
    ----------
    die_edge_mm:
        Physical die edge; cells are square tiles of it.
    k_si_w_mk:
        Silicon thermal conductivity [W/(m*K)].
    die_thickness_mm:
        Active-layer + bulk thickness participating in lateral spreading.
    sink_conductance_w_k_cm2:
        Vertical conductance to ambient per cm^2 (package + heatsink).
    ambient_c:
        Ambient / coolant temperature [degC].
    """

    die_edge_mm: float = 50.0
    k_si_w_mk: float = 120.0
    die_thickness_mm: float = 0.5
    sink_conductance_w_k_cm2: float = 1.0
    ambient_c: float = 45.0


class ThermalGrid:
    """N x N steady-state thermal solver over a square die."""

    def __init__(self, n_cells: int = 16, params: ThermalParams = ThermalParams()) -> None:
        if n_cells < 2:
            raise ValueError(f"need at least a 2x2 grid, got {n_cells}")
        self.n = n_cells
        self.params = params
        cell_mm = params.die_edge_mm / n_cells
        # Lateral conductance between adjacent cells: k * A_cross / L with
        # A_cross = thickness * cell_edge and L = cell_edge -> k * thickness.
        self.g_lateral = params.k_si_w_mk * (params.die_thickness_mm * 1e-3)
        # Vertical conductance per cell: h * cell area.
        cell_cm2 = (cell_mm / 10.0) ** 2
        self.g_sink = params.sink_conductance_w_k_cm2 * cell_cm2
        self._solve_matrix = self._build_matrix()

    def _build_matrix(self):
        n = self.n
        size = n * n
        a = lil_matrix((size, size))
        for y in range(n):
            for x in range(n):
                i = y * n + x
                diag = self.g_sink
                for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                    if 0 <= nx < n and 0 <= ny < n:
                        j = ny * n + nx
                        a[i, j] = -self.g_lateral
                        diag += self.g_lateral
                a[i, i] = diag
        return a.tocsr()

    def cell_of(self, x_mm: float, y_mm: float) -> Tuple[int, int]:
        """Grid cell containing a die coordinate (clamped to the die)."""
        cell_mm = self.params.die_edge_mm / self.n
        cx = min(self.n - 1, max(0, int(x_mm / cell_mm)))
        cy = min(self.n - 1, max(0, int(y_mm / cell_mm)))
        return cx, cy

    def solve(self, power_map_w: np.ndarray) -> np.ndarray:
        """Steady-state temperature map [degC] for a per-cell power map [W].

        Raises
        ------
        ValueError
            If the power map has the wrong shape or negative entries.
        """
        power = np.asarray(power_map_w, dtype=float)
        if power.shape != (self.n, self.n):
            raise ValueError(
                f"power map must be {self.n}x{self.n}, got {power.shape}"
            )
        if (power < 0).any():
            raise ValueError("power map entries must be non-negative")
        rise = spsolve(self._solve_matrix, power.ravel())
        return self.params.ambient_c + rise.reshape(self.n, self.n)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @staticmethod
    def peak_c(temp_map: np.ndarray) -> float:
        return float(np.max(temp_map))

    @staticmethod
    def gradient_c(temp_map: np.ndarray) -> float:
        """Largest on-die temperature difference (ring-tuning driver)."""
        return float(np.max(temp_map) - np.min(temp_map))


def ascii_heatmap(values: np.ndarray, width: int = 2) -> str:
    """Render a 2-D array as an ASCII heat map (shade ramp ``.:-=+*#%@``).

    Keeps thermal output inspectable without plotting dependencies.
    """
    ramp = " .:-=+*#%@"
    arr = np.asarray(values, dtype=float)
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo if hi > lo else 1.0
    lines: List[str] = []
    for row in arr:
        cells = []
        for v in row:
            idx = int((v - lo) / span * (len(ramp) - 1))
            cells.append(ramp[idx] * width)
        lines.append("".join(cells))
    lines.append(f"range: {lo:.1f} .. {hi:.1f}")
    return "\n".join(lines)
