"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments``
    Regenerate paper tables/figures (all, or a comma list via ``--only``);
    ``--quick`` shortens the simulation windows. ``--jobs/--cache/--runlog``
    route the simulation points through the parallel/cached execution
    engine (:mod:`repro.runtime`).
``sweep``
    Latency/throughput load sweep for one topology and pattern, with the
    same ``--jobs/--cache/--runlog`` engine flags.
``info``
    Structural summary of a topology (routers, radix, links, media,
    bisection accounting, photonic component inventory).
``channels``
    Print the wireless channel plan (Tables I-IV) without simulating.
``report``
    Markdown run report over the experiment suite; or, with
    ``--analyze TOPOLOGY``, an instrumented load sweep rendered as a
    self-contained HTML diagnosis (latency decomposition + bottleneck
    verdicts, congestion heatmaps, simulator self-profile) with an
    optional JSON dump.
``diff``
    Compare two JSONL run logs point by point (latency / throughput /
    power deltas with noise bands from repeated runs); exits non-zero
    when a gated metric regresses beyond the noise band plus
    ``--threshold`` -- the CI regression gate.
``scenarios``
    The application-workload scenario matrix ({workload} x {topology} x
    {fault campaign} x {wireless scenario}; see ``docs/workloads.md``):
    ``list`` the cells, ``run`` a (filtered) suite through the cached
    engine with per-cell bottleneck-attribution verdicts folded into the
    run records, or ``replay`` a previous run's JSONL log as a table.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Callable, Dict, Optional

from repro.analysis import (
    EXPERIMENTS,
    format_table,
    load_sweep,
    measure_bisection,
)
from repro.obs import (
    DEFAULT_SAMPLE_EVERY,
    DEFAULT_STALL_AFTER_S,
    configure_logging,
    get_logger,
)
from repro.runtime import DEFAULT_CACHE_DIR, Executor, NAMED_TOPOLOGIES, build_ref

TOPOLOGIES: Dict[str, Callable] = {
    name: (lambda ref=ref: build_ref(ref)) for name, ref in NAMED_TOPOLOGIES.items()
}

#: CLI-layer structured logger; diagnostic lines that used to be bare
#: ``print(..., file=sys.stderr)`` calls flow through here (identical
#: human rendering; ``--log-json`` / ``REPRO_LOG=json`` switches the
#: whole tree to JSON lines). Human-facing result tables stay on stdout.
log = get_logger("repro.cli")


def add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Live-observability flags shared by simulation-driving commands."""
    parser.add_argument(
        "--live", action="store_true",
        help="render an in-place per-run progress table on stderr while "
             "simulations are in flight",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="structured JSON-lines logging on stderr (one object per "
             "diagnostic, with correlation fields; see also REPRO_LOG)",
    )
    parser.add_argument(
        "--status-json", default=None, metavar="PATH",
        help="rewrite a JSON status document at PATH on every observation "
             "event (atomic; the payload a live dashboard would poll)",
    )
    parser.add_argument(
        "--openmetrics", default=None, metavar="PATH",
        help="rewrite an OpenMetrics/Prometheus textfile snapshot at PATH "
             "on every observation event (node-exporter textfile collector)",
    )
    parser.add_argument(
        "--heartbeat-cycles", type=int, default=None, metavar="N",
        help="in-flight heartbeat stride in simulated cycles "
             f"(default: {DEFAULT_SAMPLE_EVERY})",
    )
    parser.add_argument(
        "--stall-after", type=float, default=None, metavar="SEC",
        help="warn (naming the spec) when an in-flight run goes SEC "
             "wall-seconds without a heartbeat "
             f"(default: {DEFAULT_STALL_AFTER_S:g}; 0 disables)",
    )


def add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Execution-engine flags shared by simulation-driving commands."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for simulation points (default: 1, serial)",
    )
    parser.add_argument(
        "--cache", nargs="?", const=DEFAULT_CACHE_DIR, default=None, metavar="DIR",
        help=f"reuse cached results from DIR (default dir: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--runlog", default=None, metavar="PATH",
        help="append one JSONL run record per simulation point to PATH",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect per-channel-class telemetry metrics into run results "
             "(and --runlog records)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record cycle-level events and export one Chrome trace_event "
             "JSON per simulation point (implies --metrics; see --trace-out)",
    )
    parser.add_argument(
        "--trace-out", default="traces", metavar="DIR",
        help="directory for Chrome trace files (default: traces/)",
    )
    add_obs_flags(parser)


def observation_from_args(args: argparse.Namespace):
    """Build an :class:`repro.obs.ObservationHub` from CLI flags.

    Returns ``None`` when no observability flag is set -- the engine then
    runs entirely unobserved (zero overhead, not even a hub object).
    """
    wants = (
        args.live
        or args.status_json is not None
        or args.openmetrics is not None
        or args.heartbeat_cycles is not None
    )
    if not wants:
        return None
    from repro.obs import (
        LiveView,
        ObservationHub,
        OpenMetricsExporter,
        StatusExporter,
    )

    exporters = []
    if args.openmetrics is not None:
        exporters.append(OpenMetricsExporter(args.openmetrics))
    if args.status_json is not None:
        exporters.append(StatusExporter(args.status_json))
    return ObservationHub(
        sample_every=args.heartbeat_cycles or DEFAULT_SAMPLE_EVERY,
        stall_after_s=(
            DEFAULT_STALL_AFTER_S if args.stall_after is None
            else args.stall_after
        ),
        live=LiveView() if args.live else None,
        exporters=exporters,
    )


def executor_from_args(args: argparse.Namespace) -> Optional[Executor]:
    """Build an engine executor from CLI flags (``None`` if all defaults)."""
    hub = observation_from_args(args)
    if (
        hub is None
        and args.jobs == 1
        and args.cache is None
        and args.runlog is None
        and not args.metrics
        and not args.trace
    ):
        return None

    live = args.live

    def _progress(done: int, total: int, result) -> None:
        if live:
            return  # the --live table already shows per-run completion
        tag = "cache" if result.cache_hit else f"{result.wall_s:.1f}s"
        log.info(
            f"  [{done}/{total}] {result.spec.label()} ({tag})",
            extra={
                "run": result.digest[:12],
                "label": result.spec.label(),
                "tag": result.spec.tag,
                "phase": "finished",
                "cache_hit": result.cache_hit,
                "wall_s": round(result.wall_s, 4),
            },
        )

    return Executor(
        jobs=args.jobs,
        cache=args.cache,
        runlog=args.runlog,
        progress=_progress,
        telemetry=args.metrics,
        trace_dir=args.trace_out if args.trace else None,
        observe=hub,
    )


def report_engine_stats(executor: Optional[Executor]) -> None:
    if executor is None:
        return
    stats = executor.stats()
    line = (
        f"engine: {stats['runs_executed']} simulated, "
        f"{stats['runs_from_cache']} from cache"
    )
    extra: Dict[str, object] = {
        "runs_executed": stats["runs_executed"],
        "runs_from_cache": stats["runs_from_cache"],
    }
    cache = executor.cache
    if cache is not None and (cache.hits + cache.misses) > 0:
        # The hit-rate clause only renders once the cache has actually
        # been consulted; with zero lookups there is no rate to report.
        line += (
            f" (hit rate {cache.hit_rate:.0%})"
            f" [{cache.hits} hits / {cache.misses} misses]"
        )
        extra.update(
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_hit_rate=round(cache.hit_rate, 4),
        )
    log.info(line, extra=extra)


def cmd_experiments(args: argparse.Namespace) -> int:
    wanted = [w for w in args.only.split(",") if w] or list(EXPERIMENTS)
    unknown = set(wanted) - set(EXPERIMENTS)
    if unknown:
        log.error(
            f"unknown experiments: {sorted(unknown)}",
            extra={"unknown": sorted(unknown)},
        )
        log.info(f"known: {sorted(EXPERIMENTS)}")
        return 2
    executor = executor_from_args(args)
    for key in wanted:
        runner = EXPERIMENTS[key]
        params = inspect.signature(runner).parameters
        kwargs = {}
        if args.quick and "quick" in params:
            kwargs["quick"] = True
        if executor is not None and "executor" in params:
            kwargs["executor"] = executor
        t0 = time.time()
        result = runner(**kwargs)
        print("=" * 72)
        print(f"[{key}] ({time.time() - t0:.1f}s)")
        print(result.rendered)
        for k, v in result.notes.items():
            print(f"  note {k}: {v}")
    report_engine_stats(executor)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    ref = NAMED_TOPOLOGIES[args.topology]
    rates = [float(r) for r in args.rates.split(",")]
    executor = executor_from_args(args)
    sweep = load_sweep(
        ref,
        args.pattern,
        rates,
        cycles=args.cycles,
        warmup=args.warmup,
        name=args.topology,
        executor=executor,
        dense=args.dense,
    )
    rows = [
        [p.offered, round(p.latency, 1), round(p.throughput, 4),
         round(p.accepted_fraction, 3)]
        for p in sweep.points
    ]
    print(format_table(
        ["offered", "latency", "accepted", "fraction"],
        rows,
        title=f"{args.topology} / {args.pattern}",
    ))
    print(f"saturation offered load: {sweep.saturation_offered()}")
    report_engine_stats(executor)
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    built = TOPOLOGIES[args.topology]()
    net = built.network
    print(f"{net.name}: {net.n_cores} cores, {net.n_routers} routers")
    print(f"  links: {len(net.links)} "
          f"(electrical {len(net.links_by_kind('electrical'))}, "
          f"photonic {len(net.links_by_kind('photonic'))}, "
          f"wireless {len(net.links_by_kind('wireless'))})")
    print(f"  shared media: {len(net.mediums)}")
    print(f"  radix histogram: {dict(sorted(net.radix_histogram().items()))}")
    entry = measure_bisection(built)
    print(f"  bisection: {entry.crossing_channels} directed channels crossing, "
          f"{entry.cycles_per_flit} cycles/flit, "
          f"{entry.equalized_flits_per_cycle:.1f} flits/cycle equalised, "
          f"{entry.raw_gbps:.0f} Gbps raw")
    from repro.power import PowerModel

    rings = PowerModel().photonic_ring_count(built)
    if rings:
        print(f"  photonic rings: {rings:,}")
    for k, v in built.notes.items():
        if isinstance(v, (int, float, str)):
            print(f"  note {k}: {v}")
    return 0


def cmd_channels(args: argparse.Namespace) -> int:
    for key in ("table1", "table2", "table3", "table4"):
        print(EXPERIMENTS[key]().rendered)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.analyze:
        return _report_analyze(args)
    from repro.analysis import generate_report

    only = [w for w in args.only.split(",") if w] or None
    try:
        text = generate_report(only=only, quick=not args.full)
    except KeyError as exc:
        log.error(str(exc))
        return 2
    with open(args.output, "w") as fh:
        fh.write(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    return 0


def _report_analyze(args: argparse.Namespace) -> int:
    """``report --analyze``: instrumented sweep -> HTML + JSON diagnosis."""
    import json

    from repro.analysis import diagnose_sweep, render_sweep_report
    from repro.runtime import resolve_ref
    from repro.runtime.records import json_safe

    key, kwargs = resolve_ref(NAMED_TOPOLOGIES[args.analyze])
    rates = [float(r) for r in args.rates.split(",")]
    diag = diagnose_sweep(
        key,
        pattern=args.pattern,
        rates=rates,
        cycles=args.cycles,
        warmup=args.warmup,
        topology_kwargs=kwargs,
    )
    for p in diag.points:
        log.info(
            f"  rate {p.rate:g}: latency {p.latency:.1f} cyc, "
            f"verdict {p.verdict} ({p.attribution.verdict_share:.0%})"
            if p.attribution
            else f"  rate {p.rate:g}: no packet breakdown",
            extra={"rate": p.rate, "verdict": p.verdict},
        )
    flip = diag.verdict_flip()
    if flip:
        print(
            f"saturation knee at rate {flip['at']:g}: "
            f"{flip['before']} -> {flip['after']}"
        )
    elif diag.knee is not None:
        print(f"saturation knee at rate {diag.knee:g}")
    else:
        print("no saturation knee within the swept load range")
    out = args.output if args.output != "report.md" else "diagnosis.html"
    with open(out, "w") as fh:
        fh.write(render_sweep_report(diag))
    print(f"wrote {out}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(json_safe(diag.to_json_dict()), fh, indent=1,
                      allow_nan=False)
        print(f"wrote {args.json}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.analysis import diff_runlogs, format_diff

    try:
        diff = diff_runlogs(args.runlog_a, args.runlog_b,
                            rel_threshold=args.threshold)
    except OSError as exc:
        log.error(str(exc))
        return 2
    print(format_diff(diff))
    if args.json:
        import json

        from repro.runtime.records import json_safe

        with open(args.json, "w") as fh:
            json.dump(json_safe(diff.to_json_dict()), fh, indent=1,
                      allow_nan=False)
        log.info(f"wrote {args.json}")
    if not diff.matched and not args.allow_unmatched:
        log.error(
            "no comparable run points (use --allow-unmatched to tolerate)"
        )
        return 2
    return 0 if diff.clean else 1


def cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from repro.workloads import (
        attribution_report,
        filter_cells,
        render_scenarios,
        run_scenarios,
        scenario_matrix,
    )

    if args.action == "replay":
        return _scenarios_replay(args)

    cycles, warmup = args.cycles, args.warmup
    if args.quick:
        cycles, warmup = min(cycles, 400), min(warmup, 100)
    cells = scenario_matrix(cycles=cycles, warmup=warmup, seed=args.seed)
    if args.only:
        cells = filter_cells(cells, args.only)
    if not cells:
        log.error(f"no scenario cells match --only {args.only!r}")
        return 2

    if args.action == "list":
        for cell in cells:
            print(f"{cell.key:48s} {cell.spec.digest()[:12]}")
        log.info(f"{len(cells)} cells")
        return 0

    live = args.live

    def _progress(done: int, total: int, result) -> None:
        if live:
            return  # the --live table already shows per-run completion
        tag = "cache" if result.cache_hit else f"{result.wall_s:.1f}s"
        log.info(
            f"  [{done}/{total}] {result.spec.tag} ({tag})",
            extra={
                "run": result.digest[:12],
                "tag": result.spec.tag,
                "phase": "finished",
                "cache_hit": result.cache_hit,
                "wall_s": round(result.wall_s, 4),
            },
        )

    executor = Executor(
        jobs=args.jobs, cache=args.cache, progress=_progress,
        observe=observation_from_args(args),
    )
    outcomes = run_scenarios(cells, executor, runlog=args.runlog)
    print(render_scenarios(outcomes, title=f"Scenario matrix ({len(cells)} cells)"))
    if args.report:
        from repro.runtime.records import json_safe

        with open(args.report, "w") as fh:
            json.dump(json_safe(attribution_report(outcomes)), fh, indent=1)
        log.info(f"wrote {args.report}")
    report_engine_stats(executor)
    return 0


def _scenarios_replay(args: argparse.Namespace) -> int:
    """``scenarios replay``: re-render a scenario run log as a table."""
    import json

    from repro.analysis import format_table
    from repro.workloads import SCENARIO_HEADERS

    if not args.runlog_path:
        log.error("scenarios replay needs a run-log path")
        return 2
    rows = []
    try:
        with open(args.runlog_path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                scn = record.get("scenario")
                if not scn:
                    continue
                summary = record.get("summary", {})
                power = record.get("power", {})
                total_w = 0.0
                for block in power.values():
                    if isinstance(block, dict) and "total_w" in block:
                        total_w = block["total_w"]
                rows.append([
                    scn.get("workload"), scn.get("topology"),
                    scn.get("faults"), scn.get("wireless"),
                    round(summary.get("latency_mean") or float("nan"), 1),
                    round(summary.get("latency_p99") or float("nan"), 1),
                    round(summary.get("throughput", 0.0), 4),
                    int(summary.get("packets_retransmitted", 0)),
                    round(total_w, 2),
                    record.get("verdict", "?"),
                ])
    except OSError as exc:
        log.error(str(exc))
        return 2
    if not rows:
        log.error(f"no scenario records in {args.runlog_path}")
        return 2
    print(format_table(SCENARIO_HEADERS, rows,
                       title=f"Scenario run log ({len(rows)} cells)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p_exp.add_argument("--only", default="", help="comma-separated experiment ids")
    p_exp.add_argument("--quick", action="store_true")
    add_engine_flags(p_exp)
    p_exp.set_defaults(fn=cmd_experiments)

    p_sweep = sub.add_parser("sweep", help="latency/throughput load sweep")
    p_sweep.add_argument("topology", choices=sorted(TOPOLOGIES))
    p_sweep.add_argument("--pattern", default="UN")
    p_sweep.add_argument("--rates", default="0.01,0.02,0.03,0.04,0.05")
    p_sweep.add_argument("--cycles", type=int, default=1200)
    p_sweep.add_argument("--warmup", type=int, default=400)
    p_sweep.add_argument(
        "--dense", action="store_true",
        help="execute every cycle instead of fast-forwarding idle "
             "stretches (results are bit-identical; CI equivalence gate)",
    )
    add_engine_flags(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_info = sub.add_parser("info", help="structural summary of a topology")
    p_info.add_argument("topology", choices=sorted(TOPOLOGIES))
    p_info.set_defaults(fn=cmd_info)

    p_ch = sub.add_parser("channels", help="print the wireless channel plan")
    p_ch.set_defaults(fn=cmd_channels)

    p_rep = sub.add_parser(
        "report", help="generate a markdown run report or an HTML diagnosis"
    )
    p_rep.add_argument("-o", "--output", default="report.md")
    p_rep.add_argument("--only", default="", help="comma-separated experiment ids")
    p_rep.add_argument("--full", action="store_true",
                       help="full simulation windows (slow)")
    p_rep.add_argument(
        "--analyze", default=None, metavar="TOPOLOGY",
        choices=sorted(TOPOLOGIES),
        help="instead of the markdown report, run an instrumented load "
             "sweep on TOPOLOGY and write a self-contained HTML diagnosis "
             "(bottleneck attribution, congestion heatmaps, self-profile)",
    )
    p_rep.add_argument("--pattern", default="UN",
                       help="traffic pattern for --analyze (default: UN)")
    p_rep.add_argument("--rates", default="0.01,0.03,0.05,0.07",
                       help="comma-separated offered loads for --analyze")
    p_rep.add_argument("--cycles", type=int, default=800)
    p_rep.add_argument("--warmup", type=int, default=200)
    p_rep.add_argument("--json", default=None, metavar="PATH",
                       help="also dump the --analyze diagnosis as JSON")
    p_rep.set_defaults(fn=cmd_report)

    p_diff = sub.add_parser(
        "diff", help="compare two JSONL run logs (CI regression gate)"
    )
    p_diff.add_argument("runlog_a", help="baseline run log (JSONL)")
    p_diff.add_argument("runlog_b", help="candidate run log (JSONL)")
    p_diff.add_argument(
        "--threshold", type=float, default=0.05, metavar="FRAC",
        help="relative delta beyond the noise band that counts as a "
             "regression (default: 0.05)",
    )
    p_diff.add_argument("--json", default=None, metavar="PATH",
                        help="also dump the structured diff as JSON")
    p_diff.add_argument(
        "--allow-unmatched", action="store_true",
        help="exit 0 even when the logs share no run points",
    )
    p_diff.set_defaults(fn=cmd_diff)

    p_scn = sub.add_parser(
        "scenarios",
        help="workload x topology x faults x wireless scenario matrix",
    )
    p_scn.add_argument(
        "action", choices=("list", "run", "replay"),
        help="list matrix cells, run a suite, or re-render a run log",
    )
    p_scn.add_argument(
        "runlog_path", nargs="?", default=None,
        help="JSONL run log to re-render (replay action only)",
    )
    p_scn.add_argument(
        "--only", default="", metavar="EXPR",
        help="keep cells whose key contains every comma-separated term "
             "(e.g. 'coherence,own256,ideal')",
    )
    p_scn.add_argument("--cycles", type=int, default=1500)
    p_scn.add_argument("--warmup", type=int, default=300)
    p_scn.add_argument("--seed", type=int, default=2)
    p_scn.add_argument("--quick", action="store_true",
                       help="cap windows at 400/100 cycles")
    p_scn.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for matrix cells (default: 1, serial)",
    )
    p_scn.add_argument(
        "--cache", nargs="?", const=DEFAULT_CACHE_DIR, default=None,
        metavar="DIR",
        help=f"reuse cached results from DIR (default dir: {DEFAULT_CACHE_DIR})",
    )
    p_scn.add_argument(
        "--runlog", default=None, metavar="PATH",
        help="append one JSONL record per cell (scenario coordinates and "
             "attribution verdict included) to PATH",
    )
    p_scn.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the per-cell attribution report as JSON to PATH",
    )
    add_obs_flags(p_scn)
    p_scn.set_defaults(fn=cmd_scenarios)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # --log-json upgrades the whole repro logging tree to JSON lines;
    # commands without observability flags keep the (env-driven) default.
    if getattr(args, "log_json", False):
        configure_logging(json_mode=True)
    else:
        configure_logging()
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
