"""Deterministic random-number stream management.

Cycle-accurate simulation must be exactly reproducible for a given seed:
the latency/throughput tables in EXPERIMENTS.md are regenerated from fixed
seeds. Each traffic source gets an *independent* NumPy ``Generator`` derived
from a master seed plus a stable stream key, so adding a new consumer of
randomness never perturbs the draws seen by existing consumers (a classic
reproducibility bug in monolithic-RNG simulators).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

import numpy as np


def derive_seed(master_seed: int, *key_parts: object) -> int:
    """Derive a 63-bit child seed from ``master_seed`` and a stream key.

    The derivation hashes the textual representation of the key parts with
    SHA-256, which makes it stable across Python versions and processes
    (unlike ``hash()``).

    >>> derive_seed(42, "traffic", 7) == derive_seed(42, "traffic", 7)
    True
    >>> derive_seed(42, "traffic", 7) != derive_seed(42, "traffic", 8)
    True
    """
    payload = repr((int(master_seed),) + tuple(key_parts)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


class RngStreams:
    """A factory of named, independent ``numpy.random.Generator`` streams.

    Parameters
    ----------
    master_seed:
        The experiment-level seed. Two ``RngStreams`` with the same master
        seed produce identical streams for identical keys.

    Examples
    --------
    >>> streams = RngStreams(123)
    >>> g1 = streams.get("traffic", 0)
    >>> g2 = streams.get("traffic", 1)
    >>> g1 is streams.get("traffic", 0)   # cached
    True
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._cache: Dict[Tuple[object, ...], np.random.Generator] = {}

    def get(self, *key_parts: object) -> np.random.Generator:
        """Return (and cache) the generator for stream ``key_parts``."""
        key = tuple(key_parts)
        gen = self._cache.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.master_seed, *key))
            self._cache[key] = gen
        return gen

    def spawn(self, *key_parts: object) -> "RngStreams":
        """Create a child ``RngStreams`` namespaced under ``key_parts``.

        Useful to hand a subsystem its own seed-space without threading the
        full key through every call site.
        """
        return RngStreams(derive_seed(self.master_seed, "spawn", *key_parts))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngStreams(master_seed={self.master_seed}, streams={len(self._cache)})"
