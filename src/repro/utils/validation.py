"""Small argument-validation helpers.

Simulator configuration errors should fail fast with a precise message at
construction time rather than surfacing as confusing mid-simulation state;
these helpers keep that checking terse at the call sites.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def check_positive(name: str, value: Number) -> Number:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: Number) -> Number:
    """Require ``value >= 0``; return it for chaining."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value: Number, lo: Number, hi: Number) -> Number:
    """Require ``lo <= value <= hi``; return it for chaining."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_probability(name: str, value: Number) -> Number:
    """Require ``0 <= value <= 1``; return it for chaining."""
    return check_in_range(name, value, 0.0, 1.0)


def check_power_of_two(name: str, value: int) -> int:
    """Require ``value`` to be a positive power of two; return it.

    Several synthetic permutations (bit-reversal, perfect shuffle) are only
    defined on power-of-two node counts.
    """
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return value
