"""Shared utilities: unit conversions, RNG stream management, validation.

These helpers are deliberately dependency-light; they are used by every
other subpackage (``repro.noc``, ``repro.rf``, ``repro.power`` ...).
"""

from repro.utils.units import (
    db_to_linear,
    linear_to_db,
    dbm_to_watts,
    watts_to_dbm,
    ghz,
    mhz,
    mm,
    SPEED_OF_LIGHT_M_S,
    BOLTZMANN_J_K,
)
from repro.utils.rng import RngStreams, derive_seed
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_probability,
)

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "ghz",
    "mhz",
    "mm",
    "SPEED_OF_LIGHT_M_S",
    "BOLTZMANN_J_K",
    "RngStreams",
    "derive_seed",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
]
