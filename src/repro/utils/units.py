"""Unit conversions and physical constants used across the RF and power models.

The wireless link-budget math (Fig. 3 of the paper) works in dB / dBm while
the power-accounting pipeline works in watts and joules; these helpers keep
the conversions in one audited place.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum [m/s]; used by the Friis free-space path loss.
SPEED_OF_LIGHT_M_S: float = 299_792_458.0

#: Boltzmann constant [J/K]; used for thermal-noise floor computation.
BOLTZMANN_J_K: float = 1.380_649e-23

#: Reference room temperature [K] for noise calculations.
ROOM_TEMPERATURE_K: float = 290.0


def db_to_linear(value_db: float) -> float:
    """Convert a power ratio expressed in dB to a linear ratio.

    >>> db_to_linear(3.0103)  # doctest: +ELLIPSIS
    2.0...
    """
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a linear power ratio to dB.

    Raises
    ------
    ValueError
        If ``value`` is not strictly positive (log of non-positive power
        ratio is undefined).
    """
    if value <= 0.0:
        raise ValueError(f"cannot express non-positive ratio {value!r} in dB")
    return 10.0 * math.log10(value)


def dbm_to_watts(value_dbm: float) -> float:
    """Convert a power level in dBm (dB relative to 1 mW) to watts.

    >>> dbm_to_watts(0.0)
    0.001
    """
    return 1e-3 * db_to_linear(value_dbm)


def watts_to_dbm(value_w: float) -> float:
    """Convert a power level in watts to dBm.

    Raises
    ------
    ValueError
        If ``value_w`` is not strictly positive.
    """
    if value_w <= 0.0:
        raise ValueError(f"cannot express non-positive power {value_w!r} in dBm")
    return linear_to_db(value_w / 1e-3)


def ghz(value: float) -> float:
    """Express ``value`` GHz in Hz."""
    return value * 1e9


def mhz(value: float) -> float:
    """Express ``value`` MHz in Hz."""
    return value * 1e6


def mm(value: float) -> float:
    """Express ``value`` millimetres in metres."""
    return value * 1e-3


def wavelength_m(frequency_hz: float) -> float:
    """Free-space wavelength for a carrier at ``frequency_hz``.

    Raises
    ------
    ValueError
        If the frequency is not strictly positive.
    """
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return SPEED_OF_LIGHT_M_S / frequency_hz


def thermal_noise_dbm(bandwidth_hz: float, temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Thermal noise floor ``kTB`` expressed in dBm.

    Used by :mod:`repro.rf.budget` to derive receiver sensitivity.

    Raises
    ------
    ValueError
        If bandwidth or temperature is not strictly positive.
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz!r}")
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k!r}")
    return watts_to_dbm(BOLTZMANN_J_K * temperature_k * bandwidth_hz)
