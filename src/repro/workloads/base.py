"""Shared machinery for application-model workload generators.

Every workload model in :mod:`repro.workloads` is a frozen description of
an application's communication behaviour that *compiles* to a
:class:`~repro.traffic.trace.TrafficTrace` -- a deterministic packet
schedule the existing replay machinery (:class:`~repro.traffic.trace.
TraceTraffic`) drives through any topology. The contract every generator
must honour (property-tested in ``tests/workloads``):

- **Pure function of (params, n_cores, seed).** All randomness flows
  through :class:`~repro.utils.rng.RngStreams` keyed on the workload
  name, so adding a generator never perturbs another's draws.
- **Byte-stable emission.** Same inputs -> the identical array contents
  (and, via ``TrafficTrace.save``, the identical ``.npz`` on one numpy
  version); different seeds -> different traces.
- **Replayable anywhere.** Emitted packets carry core ids in
  ``[0, n_cores)`` only, never topology internals, so one trace runs on
  OWN-256 and a 256-core mesh alike.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.traffic.trace import TrafficTrace
from repro.utils.rng import RngStreams
from repro.utils.validation import check_positive


class TraceBuilder:
    """Accumulates (cycle, src, dst, size) emissions into a trace.

    Generators append in whatever order their model produces packets; the
    :class:`TrafficTrace` constructor's stable sort puts them in schedule
    order while preserving each cycle's emission order -- which therefore
    must itself be deterministic (it is: every generator walks plain data
    structures in index order).
    """

    def __init__(self, horizon: int) -> None:
        check_positive("horizon", horizon)
        self.horizon = int(horizon)
        self._cycles: List[int] = []
        self._srcs: List[int] = []
        self._dsts: List[int] = []
        self._sizes: List[int] = []

    def emit(self, cycle: int, src: int, dst: int, size: int) -> None:
        """Record one packet; emissions at/after the horizon are dropped
        (an in-flight request DAG is simply cut off at the trace end, the
        same way a live generator's ``stop_cycle`` cuts injection)."""
        if cycle >= self.horizon or src == dst:
            return
        self._cycles.append(int(cycle))
        self._srcs.append(int(src))
        self._dsts.append(int(dst))
        self._sizes.append(int(size))

    def __len__(self) -> int:
        return len(self._cycles)

    def build(self) -> TrafficTrace:
        return TrafficTrace(
            np.asarray(self._cycles, dtype=np.int64),
            np.asarray(self._srcs, dtype=np.int64),
            np.asarray(self._dsts, dtype=np.int64),
            np.asarray(self._sizes, dtype=np.int64),
        )


class EventQueue:
    """Deterministic discrete-event heap for generator-internal timelines.

    Ties on the timestamp are broken by insertion sequence number, so the
    processing order is a pure function of the generator's emission order
    -- never of heap internals or object identity.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, object]] = []
        self._seq = 0

    def push(self, cycle: int, payload: object) -> None:
        heapq.heappush(self._heap, (int(cycle), self._seq, payload))
        self._seq += 1

    def pop(self) -> Tuple[int, object]:
        cycle, _, payload = heapq.heappop(self._heap)
        return cycle, payload

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain_until(self, horizon: int) -> Iterator[Tuple[int, object]]:
        """Pop events in order until the queue empties or passes ``horizon``."""
        while self._heap and self._heap[0][0] < horizon:
            yield self.pop()


def workload_rng(seed: int, name: str, *key: object) -> np.random.Generator:
    """The single RNG-stream derivation every generator uses."""
    return RngStreams(int(seed)).get("workload", name, *key)


def spread_over_cores(
    n_items: int, n_cores: int, rng: np.random.Generator
) -> np.ndarray:
    """Map ``n_items`` logical endpoints onto distinct-ish cores.

    Items are dealt over a random permutation of the cores, wrapping when
    there are more items than cores -- placement is uniform but fixed for
    the whole trace, like a static deployment.
    """
    perm = rng.permutation(n_cores)
    return perm[np.arange(n_items) % n_cores]


def geometric_delay(rng: np.random.Generator, mean: float) -> int:
    """Integer delay >= 1 with the given mean (degenerate mean -> 1)."""
    if mean <= 1.0:
        return 1
    return int(rng.geometric(1.0 / mean))


class WorkloadModel:
    """Base class: parameter validation + the ``trace()`` entry point.

    Subclasses implement :meth:`_generate` against a fresh
    :class:`TraceBuilder`; ``trace()`` wraps it with the common horizon
    bookkeeping so every model compiles the same way.
    """

    #: Registry key; subclasses override.
    name = "base"

    def __init__(self, duration: int = 2000, seed: int = 1) -> None:
        check_positive("duration", duration)
        self.duration = int(duration)
        self.seed = int(seed)

    def rng(self, *key: object) -> np.random.Generator:
        return workload_rng(self.seed, self.name, *key)

    def trace(self, n_cores: int) -> TrafficTrace:
        check_positive("n_cores", n_cores)
        builder = TraceBuilder(self.duration)
        self._generate(builder, int(n_cores))
        out = builder.build()
        out.validate(n_cores)
        return out

    def _generate(self, builder: TraceBuilder, n_cores: int) -> None:
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(duration={self.duration}, seed={self.seed})"
