"""Workload registry: string keys -> application-model builders.

Mirrors the topology registry's contract: a
:class:`~repro.runtime.spec.TrafficSpec` with ``kind="workload"``
references its generator by name plus frozen params, never by object, so
workload runs hash, cache and cross process boundaries like any other
spec. :func:`build_workload_traffic` is the executor's entry point: it
compiles the named model to a :class:`~repro.traffic.trace.TrafficTrace`
(a pure function of name/params/seed/duration) and wraps it in the
standard :class:`~repro.traffic.trace.TraceTraffic` replayer.

``spec.rate`` maps onto each family's intensity knob (microservice
request rate, coherence miss rate; collectives are iteration-driven and
ignore it), so workload sweeps read like load sweeps.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.traffic.trace import TraceTraffic, TrafficTrace
from repro.workloads.base import WorkloadModel
from repro.workloads.blends import BlendWorkload
from repro.workloads.coherence import CoherenceWorkload
from repro.workloads.collectives import CollectiveWorkload
from repro.workloads.microservice import MicroserviceWorkload

#: Default intensity (``spec.rate``) per family, used by the scenario
#: matrix; chosen well below OWN-256 saturation so matrix cells measure
#: pattern shape, not pure overload.
DEFAULT_RATES: Dict[str, float] = {
    "microservice": 0.05,
    "collective": 0.0,
    "coherence": 0.008,
    "mixed": 0.03,
    "adversarial": 0.01,
}


def _build_microservice(duration: int, seed: int, rate: float, params: Dict) -> WorkloadModel:
    params.setdefault("request_rate", rate if rate > 0 else 0.05)
    return MicroserviceWorkload(duration=duration, seed=seed, **params)


def _build_collective(duration: int, seed: int, rate: float, params: Dict) -> WorkloadModel:
    return CollectiveWorkload(duration=duration, seed=seed, **params)


def _build_coherence(duration: int, seed: int, rate: float, params: Dict) -> WorkloadModel:
    params.setdefault("miss_rate", rate if rate > 0 else 0.008)
    return CoherenceWorkload(duration=duration, seed=seed, **params)


def _build_mixed(duration: int, seed: int, rate: float, params: Dict) -> WorkloadModel:
    """Microservice + stencil sharing the fabric, uniform background."""
    background = params.pop("background_rate", 0.01)
    return BlendWorkload(
        [
            MicroserviceWorkload(
                duration=duration, seed=seed * 2 + 1,
                request_rate=rate if rate > 0 else 0.03,
            ),
            CollectiveWorkload(
                duration=duration, seed=seed * 2 + 2, kind="stencil3d",
                iterations=max(2, duration // 250),
            ),
        ],
        duration=duration,
        seed=seed,
        background_rate=background,
        **params,
    )


def _build_adversarial(duration: int, seed: int, rate: float, params: Dict) -> WorkloadModel:
    """Tree all-reduce with a hotspot burst aimed at its own root."""
    background = params.pop("background_rate", 0.02)
    return BlendWorkload(
        [
            CollectiveWorkload(
                duration=duration, seed=seed * 2 + 1, kind="allreduce_tree",
                iterations=max(2, duration // 200), message_size=4,
            ),
            CoherenceWorkload(
                duration=duration, seed=seed * 2 + 2,
                miss_rate=rate if rate > 0 else 0.01,
            ),
        ],
        duration=duration,
        seed=seed,
        background_rate=background,
        adversarial=True,
        **params,
    )


WorkloadBuilder = Callable[[int, int, float, Dict], WorkloadModel]

#: The registry. The first three are the generator *families* the test
#: harness golden-locks individually; the blends compose them.
WORKLOADS: Dict[str, WorkloadBuilder] = {
    "microservice": _build_microservice,
    "collective": _build_collective,
    "coherence": _build_coherence,
    "mixed": _build_mixed,
    "adversarial": _build_adversarial,
}

#: The non-composite families (one golden trace each).
GENERATOR_FAMILIES: Tuple[str, ...] = ("microservice", "collective", "coherence")


def workload_names() -> Tuple[str, ...]:
    return tuple(sorted(WORKLOADS))


def make_workload(
    name: str,
    duration: int = 2000,
    seed: int = 1,
    rate: float = 0.0,
    params: Optional[Mapping[str, object]] = None,
) -> WorkloadModel:
    """Instantiate the named workload model."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {list(workload_names())}"
        ) from None
    return builder(int(duration), int(seed), float(rate), dict(params or {}))


def workload_trace(
    name: str,
    n_cores: int,
    duration: int = 2000,
    seed: int = 1,
    rate: float = 0.0,
    params: Optional[Mapping[str, object]] = None,
) -> TrafficTrace:
    """Compile the named workload to a deterministic packet trace."""
    return make_workload(name, duration, seed, rate, params).trace(n_cores)


def build_workload_traffic(
    spec: "TrafficSpec",  # noqa: F821 - structural (runtime import cycle)
    n_cores: int,
    stop_cycle: Optional[int],
    default_duration: Optional[int] = None,
) -> TraceTraffic:
    """Executor hook: a ``kind="workload"`` TrafficSpec -> replayer.

    ``duration`` defaults to the run's simulated cycles (the trace covers
    exactly the measured window) unless the params override it.
    """
    params = dict(spec.workload_params)
    duration = int(params.pop("duration", default_duration or 2000))
    trace = workload_trace(
        spec.workload, n_cores, duration=duration, seed=spec.seed,
        rate=spec.rate, params=params,
    )
    return TraceTraffic(trace, n_cores=n_cores, stop_cycle=stop_cycle)
