"""MPI collective communication patterns as deterministic traces.

Three classic HPC exchange structures, emitted as logical schedules (the
open-loop model assumes each step takes ``step_cycles``; the simulator
then measures what the fabric actually does with the offered pattern):

* **ring all-reduce** -- the bandwidth-optimal reduce-scatter +
  all-gather: ``2 * (P - 1)`` steps, each rank sending one chunk to its
  ring successor per step.
* **tree all-reduce** -- binary-tree reduce up to rank 0 followed by a
  broadcast back down: latency-optimal, hammers the tree root.
* **3D stencil halo exchange** -- each rank swaps halos with its (up to)
  six neighbours on a periodic 3D process grid every iteration; the
  staple proxy for finite-difference/CFD codes.

Per-rank start skew (OS noise) is drawn from a named RNG stream, so even
the fully regular patterns exercise arbitration differently per seed
while staying byte-reproducible.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.utils.validation import check_positive
from repro.workloads.base import TraceBuilder, WorkloadModel, spread_over_cores

COLLECTIVE_KINDS = ("allreduce_ring", "allreduce_tree", "stencil3d")


def _grid_dims(p: int) -> Tuple[int, int, int]:
    """Near-cubic factorisation of ``p`` ranks into a 3D process grid."""
    best = (p, 1, 1)
    best_score = p  # surface-to-volume proxy: max dimension
    for x in range(1, p + 1):
        if p % x:
            continue
        rest = p // x
        for y in range(1, rest + 1):
            if rest % y:
                continue
            z = rest // y
            score = max(x, y, z)
            if score < best_score:
                best, best_score = (x, y, z), score
    return best


class CollectiveWorkload(WorkloadModel):
    """Iterated MPI collectives over a rank subset of the chip.

    Parameters
    ----------
    kind:
        One of :data:`COLLECTIVE_KINDS`.
    participants:
        Ranks taking part (0 = every core). Ranks are placed on a fixed
        random core subset, like a job scheduler carving out a partition.
    iterations:
        Collective invocations in the trace (compute between them).
    message_size:
        Flits per transfer step.
    compute_cycles:
        Gap between an iteration's last step and the next iteration.
    step_cycles:
        Logical duration of one communication step.
    skew_max:
        Per-rank uniform start jitter in cycles (0 disables).
    """

    name = "collective"

    def __init__(
        self,
        duration: int = 2000,
        seed: int = 1,
        kind: str = "allreduce_ring",
        participants: int = 0,
        iterations: int = 8,
        message_size: int = 4,
        compute_cycles: int = 40,
        step_cycles: int = 8,
        skew_max: int = 4,
    ) -> None:
        super().__init__(duration=duration, seed=seed)
        if kind not in COLLECTIVE_KINDS:
            raise ValueError(f"unknown collective kind {kind!r}; known: {COLLECTIVE_KINDS}")
        check_positive("iterations", iterations)
        check_positive("message_size", message_size)
        check_positive("step_cycles", step_cycles)
        if participants < 0 or compute_cycles < 0 or skew_max < 0:
            raise ValueError("participants, compute_cycles and skew_max must be >= 0")
        self.kind = kind
        self.participants = int(participants)
        self.iterations = int(iterations)
        self.message_size = int(message_size)
        self.compute_cycles = int(compute_cycles)
        self.step_cycles = int(step_cycles)
        self.skew_max = int(skew_max)

    # ------------------------------------------------------------------ #

    def _rank_cores(self, n_cores: int) -> np.ndarray:
        p = self.participants or n_cores
        if p > n_cores:
            raise ValueError(f"{p} participants but only {n_cores} cores")
        if p < 2:
            raise ValueError("collectives need at least 2 participants")
        return spread_over_cores(p, n_cores, self.rng("ranks"))

    def _skews(self, p: int) -> np.ndarray:
        if self.skew_max == 0:
            return np.zeros(p, dtype=np.int64)
        return self.rng("skew").integers(0, self.skew_max + 1, size=p)

    def _generate(self, builder: TraceBuilder, n_cores: int) -> None:
        cores = self._rank_cores(n_cores)
        p = len(cores)
        skew = self._skews(p)
        steps = {
            "allreduce_ring": self._ring_steps,
            "allreduce_tree": self._tree_steps,
            "stencil3d": self._stencil_steps,
        }[self.kind](p)
        # steps: list of per-step (src_rank, dst_rank) transfer lists.
        iter_span = len(steps) * self.step_cycles + self.compute_cycles
        for it in range(self.iterations):
            base = it * iter_span
            if base >= self.duration:
                break
            for k, transfers in enumerate(steps):
                t = base + k * self.step_cycles
                for src, dst in transfers:
                    builder.emit(
                        t + int(skew[src]), int(cores[src]), int(cores[dst]),
                        self.message_size,
                    )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _ring_steps(p: int) -> List[List[Tuple[int, int]]]:
        """Reduce-scatter then all-gather: 2*(P-1) ring-neighbour steps."""
        one_step = [(r, (r + 1) % p) for r in range(p)]
        return [list(one_step) for _ in range(2 * (p - 1))]

    @staticmethod
    def _tree_steps(p: int) -> List[List[Tuple[int, int]]]:
        """Binary-tree reduce to rank 0, then broadcast back down."""
        levels: List[List[Tuple[int, int]]] = []
        stride = 1
        while stride < p:
            level = [
                (r + stride, r)
                for r in range(0, p, 2 * stride)
                if r + stride < p
            ]
            levels.append(level)
            stride *= 2
        reduce_steps = levels
        bcast_steps = [[(dst, src) for src, dst in level] for level in reversed(levels)]
        return reduce_steps + bcast_steps

    @staticmethod
    def _stencil_steps(p: int) -> List[List[Tuple[int, int]]]:
        """One halo-exchange step: every rank to its 6 periodic neighbours."""
        nx, ny, nz = _grid_dims(p)

        def rank(x: int, y: int, z: int) -> int:
            return (x % nx) + nx * ((y % ny) + ny * (z % nz))

        transfers: List[Tuple[int, int]] = []
        for z in range(nz):
            for y in range(ny):
                for x in range(nx):
                    r = rank(x, y, z)
                    for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                                       (0, -1, 0), (0, 0, 1), (0, 0, -1)):
                        nb = rank(x + dx, y + dy, z + dz)
                        if nb != r:
                            transfers.append((r, nb))
        return [transfers]
