"""Microservice request-DAG traffic (muBench-style service graphs).

Models the communication of a microservice deployment the way muBench's
workload-model -> execution pipeline does: a **service graph** (which
service calls which), a **work model** (per-service think time before the
downstream calls go out), and an open-loop **arrival process** of external
requests hitting the gateway. Each external request walks the DAG:

1. the gateway service receives the request,
2. after its think time it fans requests out to its callees (request
   packets), each of which recurses,
3. a leaf replies immediately after its think time; an internal service
   replies once its *slowest* callee's response has arrived (barrier
   semantics, like a scatter-gather RPC),
4. responses propagate back up to the gateway.

Network latency inside the model is approximated by a fixed per-hop
``rpc_overhead`` (the model is open-loop: it schedules offered traffic,
the simulator measures what the fabric does with it). Every request,
response and think time is drawn from named RNG streams, so the emitted
:class:`~repro.traffic.trace.TrafficTrace` is a pure function of the
parameters and seed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.utils.validation import check_positive, check_probability
from repro.workloads.base import (
    TraceBuilder,
    WorkloadModel,
    geometric_delay,
    spread_over_cores,
)


class MicroserviceWorkload(WorkloadModel):
    """Service-graph fan-out with think times over an open arrival process.

    Parameters
    ----------
    n_services:
        Number of services; service 0 is the external gateway.
    fanout:
        Mean number of downstream calls an internal service makes.
    depth:
        Layers of the service DAG (gateway = layer 0). Services are dealt
        round-robin over the layers; edges only point to deeper layers, so
        the call graph is acyclic by construction.
    request_rate:
        Probability an external request arrives at the gateway each cycle.
    think_mean:
        Mean think time (cycles) a service spends before calling out /
        replying; geometric, min 1.
    request_size / response_size:
        Packet sizes in flits (requests small, responses carry payload).
    rpc_overhead:
        Fixed scheduling gap standing in for one network traversal.
    replicas:
        Instances per service; callers rotate over them round-robin (the
        load-balancer view muBench's deployment model exposes).
    """

    name = "microservice"

    def __init__(
        self,
        duration: int = 2000,
        seed: int = 1,
        n_services: int = 12,
        fanout: float = 2.0,
        depth: int = 3,
        request_rate: float = 0.05,
        think_mean: float = 6.0,
        request_size: int = 1,
        response_size: int = 4,
        rpc_overhead: int = 4,
        replicas: int = 2,
    ) -> None:
        super().__init__(duration=duration, seed=seed)
        check_positive("n_services", n_services)
        check_positive("depth", depth)
        check_probability("request_rate", request_rate)
        check_positive("think_mean", think_mean)
        check_positive("request_size", request_size)
        check_positive("response_size", response_size)
        check_positive("replicas", replicas)
        if fanout < 1.0:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        if n_services < depth:
            raise ValueError("need at least one service per DAG layer")
        self.n_services = int(n_services)
        self.fanout = float(fanout)
        self.depth = int(depth)
        self.request_rate = float(request_rate)
        self.think_mean = float(think_mean)
        self.request_size = int(request_size)
        self.response_size = int(response_size)
        self.rpc_overhead = int(rpc_overhead)
        self.replicas = int(replicas)

    # ------------------------------------------------------------------ #

    def service_graph(self) -> Dict[int, List[int]]:
        """Callee lists per service (acyclic: edges go to deeper layers)."""
        rng = self.rng("graph")
        # Deal services over layers: service 0 is the gateway (layer 0),
        # the rest round-robin over layers 1..depth-1 so every layer below
        # the gateway is populated.
        layer_of = [0] + [1 + (s - 1) % (self.depth - 1) if self.depth > 1 else 0
                          for s in range(1, self.n_services)]
        by_layer: Dict[int, List[int]] = {}
        for s, layer in enumerate(layer_of):
            by_layer.setdefault(layer, []).append(s)
        graph: Dict[int, List[int]] = {s: [] for s in range(self.n_services)}
        for s, layer in enumerate(layer_of):
            pool: List[int] = []
            for deeper in range(layer + 1, self.depth):
                pool.extend(by_layer.get(deeper, []))
            if not pool:
                continue  # leaf layer
            want = max(1, int(round(rng.geometric(1.0 / self.fanout))))
            picks = rng.choice(len(pool), size=min(want, len(pool)), replace=False)
            graph[s] = sorted(pool[int(i)] for i in picks)
        return graph

    def placement(self, n_cores: int) -> np.ndarray:
        """(service, replica) -> core, a fixed random deployment."""
        rng = self.rng("placement")
        flat = spread_over_cores(self.n_services * self.replicas, n_cores, rng)
        return flat.reshape(self.n_services, self.replicas)

    # ------------------------------------------------------------------ #

    def _generate(self, builder: TraceBuilder, n_cores: int) -> None:
        graph = self.service_graph()
        cores = self.placement(n_cores)
        arrivals = self.rng("arrivals")
        think = self.rng("think")
        rr = np.zeros(self.n_services, dtype=np.int64)  # replica rotation

        def pick_core(service: int) -> int:
            replica = int(rr[service] % self.replicas)
            rr[service] += 1
            return int(cores[service, replica])

        def finish_time(service: int, t_recv: int, on_core: int) -> int:
            """Logical completion time of ``service`` handling a request
            that landed on ``on_core`` at ``t_recv``; emits every
            downstream request and response packet along the way."""
            t_ready = t_recv + geometric_delay(think, self.think_mean)
            latest = t_ready
            for callee in graph[service]:
                dst_core = pick_core(callee)
                t_send = t_ready  # scatter: all callees called together
                builder.emit(t_send, on_core, dst_core, self.request_size)
                t_child_done = finish_time(callee, t_send + self.rpc_overhead, dst_core)
                # The callee's response travels back to this service.
                builder.emit(t_child_done, dst_core, on_core, self.response_size)
                latest = max(latest, t_child_done + self.rpc_overhead)
            return latest

        draws = arrivals.random(self.duration)
        for t in np.nonzero(draws < self.request_rate)[0]:
            # Gateway handles the external request; its response leaves the
            # DAG (the client is off-chip), so only internal traffic is
            # emitted.
            finish_time(0, int(t), pick_core(0))
