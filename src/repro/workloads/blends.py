"""Mixed and adversarial workload blends.

Real chips never run one clean pattern: a latency-critical microservice
shares the fabric with a background batch job, or a collective's barrier
lands exactly when a bursty phase peaks. :class:`BlendWorkload` merges
the traces of any component workloads and can layer a Markov-modulated
background on top -- recorded from :class:`repro.traffic.bursty.
BurstyTraffic` through the standard ``TrafficTrace.record`` path, so the
background's statistics are exactly those of the existing bursty
generator at the same knobs.

The ``adversarial`` preset aims that background at the blend's own hot
cores (hotspot pattern over the busiest destinations of the foreground
trace), producing the worst-case interference mix the fault/control
studies want to stress.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.traffic.bursty import BurstyTraffic
from repro.traffic.patterns import TrafficPattern
from repro.traffic.trace import TrafficTrace
from repro.utils.validation import check_probability
from repro.workloads.base import TraceBuilder, WorkloadModel


def merge_traces(traces: Sequence[TrafficTrace]) -> TrafficTrace:
    """Concatenate traces into one schedule.

    Within a cycle, packets keep component order (trace 0's packets
    first): the stable sort in :class:`TrafficTrace` preserves
    concatenation order, so merging is deterministic.
    """
    if not traces:
        raise ValueError("need at least one trace to merge")
    return TrafficTrace(
        np.concatenate([t.cycles for t in traces]),
        np.concatenate([t.srcs for t in traces]),
        np.concatenate([t.dsts for t in traces]),
        np.concatenate([t.sizes for t in traces]),
    )


class BlendWorkload(WorkloadModel):
    """Foreground application models + optional bursty background.

    Parameters
    ----------
    components:
        The foreground :class:`~repro.workloads.base.WorkloadModel`
        instances. Their own durations/seeds stand; the blend's
        ``duration`` only bounds the background and the merged horizon.
    background_rate:
        Mean offered load of the bursty background (0 disables it).
    background_burst_factor / background_burst_cycles:
        Burstiness knobs forwarded to :class:`BurstyTraffic`.
    adversarial:
        Aim the background at the foreground's hottest destinations
        (hotspot pattern over the top ``n_hotspots`` destination cores)
        instead of uniform -- interference lands exactly where the
        application already queues.
    n_hotspots:
        Hot-core count for the adversarial background.
    """

    name = "blend"

    def __init__(
        self,
        components: Sequence[WorkloadModel],
        duration: int = 2000,
        seed: int = 1,
        background_rate: float = 0.0,
        background_burst_factor: float = 4.0,
        background_burst_cycles: float = 20.0,
        adversarial: bool = False,
        n_hotspots: int = 4,
    ) -> None:
        super().__init__(duration=duration, seed=seed)
        if not components:
            raise ValueError("a blend needs at least one component workload")
        check_probability("background_rate", background_rate)
        self.components: List[WorkloadModel] = list(components)
        self.background_rate = float(background_rate)
        self.background_burst_factor = float(background_burst_factor)
        self.background_burst_cycles = float(background_burst_cycles)
        self.adversarial = bool(adversarial)
        self.n_hotspots = int(n_hotspots)

    # ------------------------------------------------------------------ #

    @staticmethod
    def hot_destinations(trace: TrafficTrace, n: int) -> List[int]:
        """The ``n`` most-targeted destination cores of a trace (by flits),
        ties broken by core id for determinism."""
        if len(trace) == 0:
            return []
        flits = np.bincount(trace.dsts, weights=trace.sizes.astype(np.float64))
        order = np.lexsort((np.arange(flits.size), -flits))
        return [int(c) for c in order[:n] if flits[c] > 0]

    def _background(
        self, n_cores: int, hotspots: Optional[List[int]]
    ) -> Optional[TrafficTrace]:
        if self.background_rate <= 0.0:
            return None
        if hotspots:
            pattern = TrafficPattern(
                "HOT", n_cores, hotspot_fraction=0.6, hotspots=hotspots
            )
        else:
            pattern = TrafficPattern("UN", n_cores)
        source = BurstyTraffic(
            n_cores,
            pattern,
            self.background_rate,
            packet_size_flits=4,
            seed=int(self.rng("background").integers(0, 2**31 - 1)),
            burst_factor=self.background_burst_factor,
            mean_burst_cycles=self.background_burst_cycles,
        )
        return TrafficTrace.record(source, cycles=self.duration)

    def trace(self, n_cores: int) -> TrafficTrace:
        foreground = merge_traces([c.trace(n_cores) for c in self.components])
        hotspots = (
            self.hot_destinations(foreground, self.n_hotspots)
            if self.adversarial
            else None
        )
        background = self._background(n_cores, hotspots)
        parts = [foreground] + ([background] if background is not None else [])
        merged = merge_traces(parts)
        # Clip to the blend horizon (components may run longer).
        keep = merged.cycles < self.duration
        out = TrafficTrace(
            merged.cycles[keep], merged.srcs[keep], merged.dsts[keep],
            merged.sizes[keep],
        )
        out.validate(n_cores)
        return out

    def _generate(self, builder: TraceBuilder, n_cores: int) -> None:
        raise NotImplementedError("BlendWorkload overrides trace() directly")
