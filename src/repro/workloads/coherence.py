"""Memory/coherence-style request-reply flows.

Models the on-chip traffic of a directory coherence protocol the way NoC
application studies abstract it: each core is a cache that *misses* at a
configurable rate; a miss sends a short request to the address's **home
node** (directory / LLC slice, address-interleaved over a dedicated core
subset), which answers with a cache-line-sized reply after its lookup
latency. A fraction of misses hit **shared** lines: the directory then
also sends invalidations to the current sharers, each of which acks the
requester directly -- the classic 3-hop pattern whose reply skew is what
distinguishes coherence traffic from independent Bernoulli sources.

Spatial locality is modelled by giving each core a hot set of home nodes
(its working set) that attracts most of its misses, generalising
:class:`repro.traffic.bursty.ApplicationTraffic`'s skew to full
request-reply causality.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive, check_probability
from repro.workloads.base import TraceBuilder, WorkloadModel, spread_over_cores


class CoherenceWorkload(WorkloadModel):
    """Directory-protocol request/reply/invalidation traffic.

    Parameters
    ----------
    miss_rate:
        Per-core probability of issuing a miss each cycle.
    n_homes:
        Directory/LLC slice count (placed on a fixed random core subset).
    working_set:
        Hot home nodes per core.
    locality:
        Probability a miss targets the core's working set.
    share_prob:
        Probability a miss hits a shared line (triggers invalidations).
    max_sharers:
        Upper bound on sharers invalidated per shared miss.
    req_size / line_size / inv_size:
        Packet sizes in flits (request, data reply, invalidation/ack).
    directory_latency:
        Cycles between the request arriving at the home and the reply
        (and invalidations) leaving it.
    hop_cycles:
        Logical one-way traversal stand-in used to schedule the chain.
    """

    name = "coherence"

    def __init__(
        self,
        duration: int = 2000,
        seed: int = 1,
        miss_rate: float = 0.01,
        n_homes: int = 16,
        working_set: int = 4,
        locality: float = 0.7,
        share_prob: float = 0.2,
        max_sharers: int = 3,
        req_size: int = 1,
        line_size: int = 5,
        inv_size: int = 1,
        directory_latency: int = 6,
        hop_cycles: int = 4,
    ) -> None:
        super().__init__(duration=duration, seed=seed)
        check_probability("miss_rate", miss_rate)
        check_positive("n_homes", n_homes)
        check_positive("working_set", working_set)
        check_probability("locality", locality)
        check_probability("share_prob", share_prob)
        check_positive("max_sharers", max_sharers)
        check_positive("req_size", req_size)
        check_positive("line_size", line_size)
        check_positive("inv_size", inv_size)
        check_positive("directory_latency", directory_latency)
        check_positive("hop_cycles", hop_cycles)
        if working_set > n_homes:
            raise ValueError("working_set cannot exceed n_homes")
        self.miss_rate = float(miss_rate)
        self.n_homes = int(n_homes)
        self.working_set = int(working_set)
        self.locality = float(locality)
        self.share_prob = float(share_prob)
        self.max_sharers = int(max_sharers)
        self.req_size = int(req_size)
        self.line_size = int(line_size)
        self.inv_size = int(inv_size)
        self.directory_latency = int(directory_latency)
        self.hop_cycles = int(hop_cycles)

    # ------------------------------------------------------------------ #

    def _generate(self, builder: TraceBuilder, n_cores: int) -> None:
        if self.n_homes > n_cores:
            raise ValueError(f"{self.n_homes} home nodes but only {n_cores} cores")
        place = self.rng("placement")
        homes = spread_over_cores(self.n_homes, n_cores, place)
        # Per-core hot home subsets (the working set).
        hot = np.empty((n_cores, self.working_set), dtype=np.int64)
        for core in range(n_cores):
            hot[core] = place.choice(self.n_homes, size=self.working_set, replace=False)

        draws = self.rng("misses")
        pick = self.rng("targets")
        for t in range(self.duration):
            missing = np.nonzero(draws.random(n_cores) < self.miss_rate)[0]
            if missing.size == 0:
                continue
            use_hot = pick.random(missing.size) < self.locality
            hot_idx = pick.integers(0, self.working_set, size=missing.size)
            uniform = pick.integers(0, self.n_homes, size=missing.size)
            shared = pick.random(missing.size) < self.share_prob
            for j, core in enumerate(missing.tolist()):
                home_idx = int(hot[core, hot_idx[j]] if use_hot[j] else uniform[j])
                home_core = int(homes[home_idx])
                # Request to the directory ...
                builder.emit(t, core, home_core, self.req_size)
                t_dir = t + self.hop_cycles + self.directory_latency
                # ... data reply back ...
                builder.emit(t_dir, home_core, core, self.line_size)
                if not shared[j]:
                    continue
                # ... and for shared lines, invalidations fanning out with
                # acks converging on the requester (3-hop pattern).
                n_shar = int(pick.integers(1, self.max_sharers + 1))
                sharers = pick.integers(0, n_cores, size=n_shar)
                for s in sharers.tolist():
                    if s == core or s == home_core:
                        continue
                    builder.emit(t_dir, home_core, int(s), self.inv_size)
                    builder.emit(
                        t_dir + self.hop_cycles, int(s), core, self.inv_size
                    )
