"""The scenario matrix: {workload} x {topology} x {faults} x {wireless}.

The paper evaluates synthetic traffic on healthy hardware under one
wireless technology scenario. This module crosses every axis the repo
now models into a registry of :class:`ScenarioCell`s -- application
workload (from :mod:`repro.workloads`), topology (OWN-256 / OWN-1024),
fault campaign (clean vs transient interference bursts) and wireless
technology scenario (Table III's ideal vs conservative) -- each cell a
frozen :class:`~repro.runtime.spec.RunSpec` executed through the cached
:class:`~repro.runtime.Executor`.

Every executed cell gets a **bottleneck-attribution verdict**
(:mod:`repro.analysis.attribution` over the cell's telemetry metrics)
folded into its JSONL run record next to the summary metrics, so a
scenario run log answers not just "how slow" but "why" per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.runtime.executor import Executor, get_executor
from repro.runtime.records import RunLog, make_record
from repro.runtime.spec import FaultSpec, RunSpec
from repro.workloads.registry import DEFAULT_RATES, workload_names

#: Topology axis: label -> (registry key, builder kwargs).
SCENARIO_TOPOLOGIES: Dict[str, Tuple[str, Dict[str, object]]] = {
    "own256": ("own256", {}),
    "own1024": ("own1024", {}),
}

#: Fault-campaign axis: label -> FaultSpec factory (None = clean run).
#: The burst campaign injects transient SNR dips on the wireless data
#: channels, recovered by link-layer retransmission.
SCENARIO_FAULTS: Dict[str, Optional[FaultSpec]] = {
    "clean": None,
    "bursts": FaultSpec(
        kind="bursty", seed=7, burst_rate=0.001, burst_duration=50,
        snr_penalty_db=5.0,
    ),
}

#: Wireless technology axis: label -> Table III scenario number, measured
#: through the power model (config 4, the paper's efficient mapping).
SCENARIO_WIRELESS: Dict[str, int] = {
    "ideal": 1,
    "conservative": 2,
}

#: Workload axis default: the three generator families plus both blends.
SCENARIO_WORKLOADS: Tuple[str, ...] = (
    "microservice", "collective", "coherence", "mixed", "adversarial",
)


@dataclass(frozen=True)
class ScenarioCell:
    """One point of the matrix, with its fully resolved frozen spec."""

    workload: str
    topology: str
    faults: str
    wireless: str
    spec: RunSpec

    @property
    def key(self) -> str:
        return f"{self.workload}/{self.topology}/{self.faults}/{self.wireless}"


def cell_spec(
    workload: str,
    topology: str,
    faults: str,
    wireless: str,
    cycles: int = 1500,
    warmup: int = 300,
    seed: int = 2,
) -> RunSpec:
    """Resolve one matrix coordinate to its frozen RunSpec."""
    key, kwargs = SCENARIO_TOPOLOGIES[topology]
    fault_spec = SCENARIO_FAULTS[faults]
    scen_num = SCENARIO_WIRELESS[wireless]
    if workload not in workload_names():
        raise KeyError(f"unknown workload {workload!r}")
    return RunSpec.create(
        key,
        pattern=f"wl-{workload}",
        rate=DEFAULT_RATES.get(workload, 0.0),
        cycles=cycles,
        warmup=warmup,
        seed=seed,
        topology_kwargs=kwargs,
        traffic_kind="workload",
        workload=workload,
        faults=fault_spec,
        power=((4, scen_num),),
        telemetry=True,
        tag=f"{workload}/{topology}/{faults}/{wireless}",
    )


def scenario_matrix(
    workloads: Sequence[str] = SCENARIO_WORKLOADS,
    topologies: Sequence[str] = tuple(SCENARIO_TOPOLOGIES),
    faults: Sequence[str] = tuple(SCENARIO_FAULTS),
    wireless: Sequence[str] = tuple(SCENARIO_WIRELESS),
    cycles: int = 1500,
    warmup: int = 300,
    seed: int = 2,
) -> List[ScenarioCell]:
    """Cross the axes into a suite of frozen cells (row-major order)."""
    cells: List[ScenarioCell] = []
    for w in workloads:
        for topo in topologies:
            for f in faults:
                for wl in wireless:
                    cells.append(
                        ScenarioCell(
                            workload=w, topology=topo, faults=f, wireless=wl,
                            spec=cell_spec(
                                w, topo, f, wl, cycles=cycles, warmup=warmup,
                                seed=seed,
                            ),
                        )
                    )
    return cells


def filter_cells(cells: Iterable[ScenarioCell], expr: str) -> List[ScenarioCell]:
    """Keep cells whose key contains every comma-separated term of ``expr``."""
    terms = [t for t in expr.split(",") if t]
    return [c for c in cells if all(t in c.key for t in terms)]


@dataclass
class ScenarioOutcome:
    """One executed cell plus its bottleneck attribution."""

    cell: ScenarioCell
    result: "RunResult"  # noqa: F821
    verdict: str
    verdict_share: float

    def row(self) -> List[object]:
        s = self.result.summary
        power = self.result.power.get(
            f"cfg4_s{SCENARIO_WIRELESS[self.cell.wireless]}", {}
        )
        return [
            self.cell.workload,
            self.cell.topology,
            self.cell.faults,
            self.cell.wireless,
            round(s.get("latency_mean", float("nan")), 1),
            round(s.get("latency_p99", float("nan")), 1),
            round(s.get("throughput", 0.0), 4),
            int(s.get("packets_retransmitted", 0)),
            round(power.get("total_w", 0.0), 2),
            self.verdict,
        ]


SCENARIO_HEADERS = [
    "workload", "topology", "faults", "wireless", "latency", "p99",
    "accepted", "retx", "power_w", "verdict",
]


def run_scenarios(
    cells: Sequence[ScenarioCell],
    executor: Optional[Executor] = None,
    runlog: Optional[Union[str, RunLog]] = None,
) -> List[ScenarioOutcome]:
    """Execute the suite and fold per-cell verdicts into run records.

    The executor's cache/parallelism apply as usual; the run records this
    function writes carry a ``scenario`` object (the cell coordinates)
    and the attribution ``verdict``, which the executor's own generic
    records cannot know about -- so pass the run log here, not to the
    executor, when running a matrix.
    """
    from repro.analysis.attribution import attribute_metrics

    executor = get_executor(executor)
    if isinstance(runlog, (str, bytes)) or hasattr(runlog, "__fspath__"):
        runlog = RunLog(runlog)
    results = executor.run([cell.spec for cell in cells])
    outcomes: List[ScenarioOutcome] = []
    for cell, result in zip(cells, results):
        attribution = attribute_metrics(result.metrics or {})
        verdict = attribution.verdict if attribution else "no-telemetry"
        share = attribution.verdict_share if attribution else 0.0
        outcomes.append(ScenarioOutcome(cell, result, verdict, share))
        if runlog is not None:
            record = make_record(result, engine=executor.engine_snapshot())
            record["scenario"] = {
                "workload": cell.workload,
                "topology": cell.topology,
                "faults": cell.faults,
                "wireless": cell.wireless,
            }
            record["verdict"] = verdict
            record["verdict_share"] = round(share, 4)
            runlog.write(record)
    return outcomes


def render_scenarios(outcomes: Sequence[ScenarioOutcome], title: str = "Scenario matrix") -> str:
    from repro.analysis.tables import format_table

    return format_table(SCENARIO_HEADERS, [o.row() for o in outcomes], title=title)


def attribution_report(outcomes: Sequence[ScenarioOutcome]) -> Dict[str, object]:
    """JSON-ready per-cell attribution summary (the CI artifact)."""
    cells = []
    for o in outcomes:
        s = o.result.summary
        cells.append(
            {
                "cell": o.cell.key,
                "digest": o.result.digest,
                "verdict": o.verdict,
                "verdict_share": round(o.verdict_share, 4),
                "latency_mean": s.get("latency_mean"),
                "latency_p99": s.get("latency_p99"),
                "throughput": s.get("throughput"),
                "cache_hit": o.result.cache_hit,
            }
        )
    by_verdict: Dict[str, int] = {}
    for c in cells:
        by_verdict[c["verdict"]] = by_verdict.get(c["verdict"], 0) + 1
    return {"cells": cells, "verdict_histogram": by_verdict, "n_cells": len(cells)}
