"""Application-model workload generators and the scenario matrix.

The paper evaluates synthetic traffic only ("in the future, we will
evaluate with real workloads"). This package closes that gap with
application models that compile to deterministic
:class:`~repro.traffic.trace.TrafficTrace` schedules -- microservice
request DAGs, MPI collectives, directory-coherence flows, and
mixed/adversarial blends -- plus a scenario registry that crosses them
with topologies, fault campaigns and wireless technology scenarios into
cached, attribution-annotated run suites. See ``docs/workloads.md``.
"""

from repro.workloads.base import EventQueue, TraceBuilder, WorkloadModel
from repro.workloads.blends import BlendWorkload, merge_traces
from repro.workloads.coherence import CoherenceWorkload
from repro.workloads.collectives import COLLECTIVE_KINDS, CollectiveWorkload
from repro.workloads.microservice import MicroserviceWorkload
from repro.workloads.registry import (
    DEFAULT_RATES,
    GENERATOR_FAMILIES,
    WORKLOADS,
    build_workload_traffic,
    make_workload,
    workload_names,
    workload_trace,
)
from repro.workloads.scenarios import (
    SCENARIO_FAULTS,
    SCENARIO_HEADERS,
    SCENARIO_TOPOLOGIES,
    SCENARIO_WIRELESS,
    SCENARIO_WORKLOADS,
    ScenarioCell,
    ScenarioOutcome,
    attribution_report,
    cell_spec,
    filter_cells,
    render_scenarios,
    run_scenarios,
    scenario_matrix,
)

__all__ = [
    "EventQueue",
    "TraceBuilder",
    "WorkloadModel",
    "BlendWorkload",
    "merge_traces",
    "CoherenceWorkload",
    "COLLECTIVE_KINDS",
    "CollectiveWorkload",
    "MicroserviceWorkload",
    "DEFAULT_RATES",
    "GENERATOR_FAMILIES",
    "WORKLOADS",
    "build_workload_traffic",
    "make_workload",
    "workload_names",
    "workload_trace",
    "SCENARIO_FAULTS",
    "SCENARIO_HEADERS",
    "SCENARIO_TOPOLOGIES",
    "SCENARIO_WIRELESS",
    "SCENARIO_WORKLOADS",
    "ScenarioCell",
    "ScenarioOutcome",
    "attribution_report",
    "cell_spec",
    "filter_cells",
    "render_scenarios",
    "run_scenarios",
    "scenario_matrix",
]
