"""OWN-1024 builder (Fig. 2 of the paper).

Four OWN-256 groups. Intra-cluster photonics is unchanged; wireless becomes
SWMR: each of the 12 inter-group channels is written (under a circulating
token) by the matching antenna of *any* cluster of the source group and
received by that antenna in *all four* clusters of the destination group --
"the intended destination cluster will simply forward the signal and the
rest will discard it" (Sec. III-B). Four intra-group channels on the D
antennas handle cluster-to-cluster traffic within a group.

Receiver energy for the three discarding clusters is charged through the
medium's ``multicast_degree`` (Sec. III-B: "receiver power is consumed since
the data has to be analyzed before discarding it").
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.channels import own1024_channel_map, own1024_channels
from repro.core.coords import OWN1024_DIMS
from repro.core.floorplan import antenna, tile_position_mm, CLUSTER_EDGE_MM
from repro.core.own256 import (
    PHOTONIC_LINK_LATENCY,
    PHOTONIC_TOKEN_LATENCY,
    SNAKE_LENGTH_MM,
)
from repro.core.routing import Own1024Routing
from repro.noc.links import SharedMedium
from repro.noc.network import Network
from repro.topologies.base import BuiltTopology, CONCENTRATION, attach_concentrated_cores

#: Token hand-off latency among the four cluster transmitters of a group.
WIRELESS_TOKEN_LATENCY = 2

#: Group origin offsets in the 2x2 assembly of 50 mm groups.
GROUP_EDGE_MM = 2 * CLUSTER_EDGE_MM


def _group_origin(group: int) -> Tuple[float, float]:
    from repro.core.channels import GROUP_GRID

    gx, gy = GROUP_GRID[group]
    return (gx * GROUP_EDGE_MM, gy * GROUP_EDGE_MM)


def build_own1024(
    num_vcs: int = 4,
    vc_depth: int = 8,
    wireless_cycles_per_flit: int = 1,
    wireless_latency: int = 1,
) -> BuiltTopology:
    """Build the OWN-1024 network (see :func:`repro.core.own256.build_own256`
    for the parameter semantics)."""
    dims = OWN1024_DIMS
    net = Network("own1024", dims.n_cores, num_vcs=num_vcs, vc_depth=vc_depth)

    channels = own1024_channels()
    gateway_tiles: Dict[Tuple[int, int], str] = {}
    for cluster in range(dims.clusters):
        for letter in "ABCD":
            ant = antenna(cluster, letter)
            gateway_tiles[(cluster, ant.tile)] = letter

    for rid in range(dims.n_routers):
        g, c, t = dims.router_to_gct(rid)
        ox, oy = _group_origin(g)
        tx, ty = tile_position_mm(c, t)
        is_gateway = (c, t) in gateway_tiles
        net.add_router(
            position_mm=(ox + tx, oy + ty),
            attrs={
                "group": g,
                "cluster": c,
                "tile": t,
                "gateway": gateway_tiles.get((c, t)),
                # Sec. V-A: "The maximum radix is 22 (15 photonic, 3
                # wireless and 4 cores)" at gateway tiles.
                "paper_radix": 22 if is_gateway else 19,
            },
        )
    for rid in range(dims.n_routers):
        attach_concentrated_cores(net, rid, rid * CONCENTRATION)

    # Intra-cluster photonic crossbars (16 clusters x 16 waveguides).
    photonic_port: Dict[Tuple[int, int], int] = {}
    for g in range(dims.groups):
        for cluster in range(dims.clusters):
            tiles = [dims.gct_to_router(g, cluster, t) for t in range(dims.tiles)]
            for reader in tiles:
                medium = SharedMedium(
                    f"g{g}c{cluster}.wg{reader}",
                    kind="photonic",
                    arb_latency=PHOTONIC_TOKEN_LATENCY,
                )
                writers = [w for w in tiles if w != reader]
                ports = net.connect_bus(
                    writers,
                    reader,
                    kind="photonic",
                    medium=medium,
                    latency=PHOTONIC_LINK_LATENCY,
                    length_mm=SNAKE_LENGTH_MM,
                )
                for w, port in ports.items():
                    photonic_port[(w, reader)] = port

    # Wireless channels: 12 inter-group SWMR + 4 intra-group.
    wireless_port: Dict[Tuple[int, int], int] = {}
    gateway_rid: Dict[Tuple[int, int], int] = {}

    def antenna_rid(group: int, cluster: int, letter: str) -> int:
        return dims.gct_to_router(group, cluster, antenna(cluster, letter).tile)

    def cluster_resolver(packet):
        _, c_dst, _, _ = dims.core_to_quad(packet.dst_core)
        return c_dst

    for ch in channels:
        letter = ch.tx
        writers = [antenna_rid(ch.src_group, c, letter) for c in range(dims.clusters)]
        readers = [antenna_rid(ch.dst_group, c, letter) for c in range(dims.clusters)]
        medium = SharedMedium(
            f"wch{ch.channel_index}.{ch.name}",
            kind="wireless",
            arb_latency=WIRELESS_TOKEN_LATENCY,
            multicast_degree=dims.clusters,
        )
        ports = net.connect_multicast(
            writers,
            readers,
            resolver=cluster_resolver,
            reader_keys=list(range(dims.clusters)),
            kind="wireless",
            medium=medium,
            latency=wireless_latency,
            cycles_per_flit=wireless_cycles_per_flit,
            length_mm=ch.distance_mm,
            channel_id=ch.channel_index,
        )
        for cluster, w in enumerate(writers):
            wireless_port[(w, ch.channel_index)] = ports[w]
            gateway_rid[(ch.channel_index, cluster)] = w

    routing = Own1024Routing(
        net, dims, photonic_port, wireless_port, own1024_channel_map(), gateway_rid
    )
    net.set_routing(routing)
    net.finalize()
    return BuiltTopology(
        network=net,
        kind="own",
        params={
            "n_cores": dims.n_cores,
            "wireless_cycles_per_flit": wireless_cycles_per_flit,
            "channels": len(channels),
        },
        notes={
            "max_radix_paper": 22,
            "diameter_hops": 3,
            "waveguides": dims.groups * dims.clusters * dims.tiles,
        },
    )
