"""Wireless channel fault tolerance for OWN-256.

The paper's lineage (3D-NoC [12], "dynamic reconfiguration ... improving
fault tolerance") motivates surviving transceiver failures. OWN's channel
plan has no path diversity by itself -- each ordered cluster pair owns one
channel -- so a failed channel must be *relayed*: route cs -> cx on one
live channel, traverse cx's photonic crossbar, then cx -> cd on another.

Deadlock safety needs one refinement of the VC discipline (worst case grows
to five hops): photonic VC0 carries first-leg ascents, VC1 carries
middle-cluster ascents (and the single ascent of un-relayed packets),
VCs {2,3} descents; wireless VCs {0,1} carry first legs of relayed packets,
{2,3} final legs. The resource order

  ph0 < w{0,1} < ph1 < w{2,3} < ph{2,3} < sink

is strictly increasing along every path, relayed or not, hence cycle-free;
``tests/core/test_faults.py`` stresses it at overload with multiple failed
channels.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core.channels import ChannelAssignment
from repro.core.coords import OwnDims
from repro.core.routing import Own256Routing
from repro.noc.network import Network
from repro.noc.router import Router


class UnroutableError(RuntimeError):
    """No live relay path exists for a failed channel's traffic."""


class FaultTolerantOwn256Routing(Own256Routing):
    """OWN-256 routing that relays around failed wireless channels.

    When a reconfiguration controller is attached (``with_reconfiguration``
    builds + :meth:`attach_reconfiguration`), a failed pair whose spare
    D->D channel has been pinned (:meth:`ReconfigurationController.pin`)
    routes *directly* over the spare -- a single wireless hop, same VC
    discipline as an un-relayed path -- instead of the two-hop relay.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.failed_pairs: Set[Tuple[int, int]] = set()
        self.relayed_packets = 0

    # ---------------- fault management ---------------- #

    def _spare_active(self, cs: int, cd: int) -> bool:
        """Is a spare D->D channel currently assigned to (cs, cd)?"""
        return (
            self.reconfig is not None
            and (cs, cd) in self.spare_out_port
            and self.reconfig.boosted(cs, cd) is not None
        )

    def fail_channel(self, src_cluster: int, dst_cluster: int) -> None:
        """Mark the (src, dst) channel dead; traffic relays around it.

        Raises
        ------
        UnroutableError
            If the failure leaves some pair with no relay (e.g. every
            channel out of a cluster dead).
        """
        self.failed_pairs.add((src_cluster, dst_cluster))
        # Verify every ordered pair can still route.
        for cs in range(self.dims.clusters):
            for cd in range(self.dims.clusters):
                if cs != cd:
                    self._next_cluster(cs, cd)  # raises if stuck

    def restore_channel(self, src_cluster: int, dst_cluster: int) -> None:
        self.failed_pairs.discard((src_cluster, dst_cluster))

    def alive(self, cs: int, cd: int) -> bool:
        return (cs, cd) not in self.failed_pairs

    def _relay_for(self, cs: int, cd: int) -> int:
        for cx in range(self.dims.clusters):
            if cx in (cs, cd):
                continue
            if self.alive(cs, cx) and self.alive(cx, cd):
                return cx
        raise UnroutableError(
            f"no live relay from cluster {cs} to {cd}; failed={sorted(self.failed_pairs)}"
        )

    def _next_cluster(self, cs: int, cd: int) -> int:
        """The next cluster a packet at ``cs`` heading to ``cd`` crosses to."""
        if self.alive(cs, cd) or self._spare_active(cs, cd):
            return cd
        return self._relay_for(cs, cd)

    def _legs_remaining(self, c_cur: int, c_dst: int) -> int:
        """How many wireless hops remain from cluster ``c_cur``."""
        if c_cur == c_dst:
            return 0
        if self.alive(c_cur, c_dst) or self._spare_active(c_cur, c_dst):
            return 1
        return 2

    # ---------------- routing ---------------- #

    def compute(self, router: Router, packet) -> int:
        rid = router.rid
        dst_rid = self._dst_rid(packet)
        if dst_rid == rid:
            return self.net.core_eject_port[packet.dst_core]
        _, c_cur, _ = self._gct(rid)
        _, c_dst, _ = self._gct(dst_rid)
        if c_cur == c_dst:
            return self.photonic_port[(rid, dst_rid)]
        use_spare = (
            # Dead pair with a pinned spare: all its traffic takes the D
            # path. Alive pair: inherit the parity-interleaved boost.
            self._spare_active(c_cur, c_dst)
            if not self.alive(c_cur, c_dst)
            else self._use_spare(packet, c_cur, c_dst)
        )
        if use_spare:
            d_gateway = self.spare_gateway_rid[c_cur]
            if rid == d_gateway:
                return self.spare_out_port[(c_cur, c_dst)]
            return self.photonic_port[(rid, d_gateway)]
        c_next = self._next_cluster(c_cur, c_dst)
        if c_next != c_dst and rid == self.gateway_rid[
            self.channel_map[(c_cur, c_next)].channel_index
        ]:
            self.relayed_packets += 1
        channel = self.channel_map[(c_cur, c_next)]
        gateway = self.gateway_rid[channel.channel_index]
        if rid == gateway:
            return self.wireless_port[(rid, channel.channel_index)]
        return self.photonic_port[(rid, gateway)]

    def allowed_vcs(self, router: Router, out_port: int, packet) -> Sequence[int]:
        link = router.out_links[out_port]
        dst_rid = self._dst_rid(packet)
        _, c_dst, _ = self._gct(dst_rid)
        _, c_cur, _ = self._gct(router.rid)
        legs = self._legs_remaining(c_cur, c_dst)
        if link.kind == "photonic":
            if legs == 0:
                return (2, 3)  # descending
            if legs == 1:
                return (1,)  # single / middle ascent
            return (0,)  # first-leg ascent of a relayed packet
        if link.kind == "wireless":
            return (2, 3) if legs == 1 else (0, 1)
        return range(router.num_vcs)


def build_fault_tolerant_own256(**kwargs):
    """Build OWN-256 with relay-capable routing installed.

    Accepts the same keyword arguments as
    :func:`repro.core.own256.build_own256` and swaps the routing function
    for :class:`FaultTolerantOwn256Routing`. Returns the
    :class:`~repro.topologies.base.BuiltTopology`; the routing object is in
    ``built.notes["routing"]`` for fault injection::

        built = build_fault_tolerant_own256()
        built.notes["routing"].fail_channel(0, 2)
    """
    from repro.core.own256 import build_own256

    built = build_own256(**kwargs)
    old = built.notes["routing"]
    routing = FaultTolerantOwn256Routing(
        old.net,
        old.dims,
        old.photonic_port,
        old.wireless_port,
        old.channel_map,
        old.gateway_rid,
        spare_gateway_rid=old.spare_gateway_rid,
        spare_out_port=old.spare_out_port,
    )
    built.network.set_routing(routing)
    built.notes["routing"] = routing
    built.params["fault_tolerant"] = True
    return built
