"""Wireless channel fault tolerance for OWN-256.

The paper's lineage (3D-NoC [12], "dynamic reconfiguration ... improving
fault tolerance") motivates surviving transceiver failures. OWN's channel
plan has no path diversity by itself -- each ordered cluster pair owns one
channel -- so a failed channel must be *relayed*: route cs -> cx on one
live channel, traverse cx's photonic crossbar, then cx -> cd on another.

Deadlock safety needs one refinement of the VC discipline (worst case grows
to five hops): photonic VC0 carries first-leg ascents, VC1 carries
middle-cluster ascents (and the single ascent of un-relayed packets),
VCs {2,3} descents; wireless VCs {0,1} carry first legs of relayed packets,
{2,3} final legs. The resource order

  ph0 < w{0,1} < ph1 < w{2,3} < ph{2,3} < sink

is strictly increasing along every path, relayed or not, hence cycle-free;
``tests/core/test_faults.py`` stresses it at overload with multiple failed
channels.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core.channels import ChannelAssignment
from repro.core.coords import OwnDims
from repro.core.routing import Own256Routing
from repro.noc.network import Network
from repro.noc.router import Router


class UnroutableError(RuntimeError):
    """No live relay path exists for a failed channel's traffic."""


class FaultTolerantOwn256Routing(Own256Routing):
    """OWN-256 routing that relays around failed wireless channels.

    When a reconfiguration controller is attached (``with_reconfiguration``
    builds + :meth:`attach_reconfiguration`), a failed pair whose spare
    D->D channel has been pinned (:meth:`ReconfigurationController.pin`)
    routes *directly* over the spare -- a single wireless hop, same VC
    discipline as an un-relayed path -- instead of the two-hop relay.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.failed_pairs: Set[Tuple[int, int]] = set()
        self.relayed_packets = 0
        #: Mid-flight packets forced onto the escape path: a fail/reassign
        #: flip would have sent them onto a *third* wireless first-leg,
        #: beyond the two-leg VC discipline. They restart store-and-forward
        #: instead (see :meth:`hold_for_full`).
        self.reroute_escapes = 0
        #: Control-plane relay steering: ``(cs, cd) -> cx`` forces relayed
        #: traffic for a failed pair through middle cluster ``cx`` when
        #: that relay is live (see :meth:`prefer_relay`).
        self.relay_preference: Dict[Tuple[int, int], int] = {}
        self.unfailed_channels = 0
        # Inverse maps so allowed_vcs() can classify a hop from the
        # *chosen out-port* alone (see the method's docstring): primary
        # channel index -> ordered cluster pair, (rid, photonic port) ->
        # neighbour rid, and sender-gateway rid -> channel index.
        self._pair_of_channel: Dict[int, Tuple[int, int]] = {
            a.channel_index: pair for pair, a in self.channel_map.items()
        }
        self._photonic_dst: Dict[Tuple[int, int], int] = {
            (rid, port): dst for (rid, dst), port in self.photonic_port.items()
        }
        self._gateway_channel: Dict[int, int] = {
            rid: idx for idx, rid in self.gateway_rid.items()
        }

    # ---------------- fault management ---------------- #

    def _spare_active(self, cs: int, cd: int) -> bool:
        """Is an ACTIVE spare D->D channel assigned to (cs, cd)?

        Draining assignments do not count: they accept no new packets, so
        routability decisions (:meth:`_next_cluster`) must not rely on
        them. Committed in-flight packets still finish crossing a draining
        spare via the base class's ``_spare_route``.
        """
        return (
            self.reconfig is not None
            and (cs, cd) in self.spare_out_port
            and self.reconfig.steerable(cs, cd)
        )

    def fail_channel(self, src_cluster: int, dst_cluster: int) -> None:
        """Mark the (src, dst) channel dead; traffic relays around it.

        Raises
        ------
        UnroutableError
            If the failure leaves some pair with no relay (e.g. every
            channel out of a cluster dead). The channel is then NOT
            marked failed -- the failure is rolled back so routing state
            stays self-consistent and callers can keep the link in
            degraded (retransmitting) service instead.
        """
        pair = (src_cluster, dst_cluster)
        already = pair in self.failed_pairs
        self.failed_pairs.add(pair)
        try:
            # Verify every ordered pair can still route.
            for cs in range(self.dims.clusters):
                for cd in range(self.dims.clusters):
                    if cs != cd:
                        self._next_cluster(cs, cd)  # raises if stuck
        except UnroutableError:
            if not already:
                self.failed_pairs.discard(pair)
            raise
        if not already:
            # Heads waiting on a route planned against the healthy channel
            # must re-route onto relays (see invalidate_pending_routes).
            self.invalidate_pending_routes()

    def restore_channel(self, src_cluster: int, dst_cluster: int) -> None:
        if (src_cluster, dst_cluster) in self.failed_pairs:
            self.failed_pairs.discard((src_cluster, dst_cluster))
            self.invalidate_pending_routes()

    def unfail_channel(self, src_cluster: int, dst_cluster: int) -> bool:
        """Return a healed channel to service (control-plane recovery).

        The probe-confirmed inverse of :meth:`fail_channel`: subsequent
        route computations use the direct channel again, and any relay
        preference for the pair is dropped. Returns ``True`` when the pair
        was actually marked failed.
        """
        if (src_cluster, dst_cluster) not in self.failed_pairs:
            return False
        self.failed_pairs.discard((src_cluster, dst_cluster))
        self.relay_preference.pop((src_cluster, dst_cluster), None)
        self.unfailed_channels += 1
        # Relay-planned heads still waiting for a VC re-route onto the
        # recovered direct channel instead of chasing stale relay legs.
        self.invalidate_pending_routes()
        return True

    def prefer_relay(self, cs: int, cd: int, via: Optional[int]) -> None:
        """Steer the (cs, cd) relay through middle cluster ``via``.

        ``None`` clears the preference (back to first-feasible scan). A
        preference for a relay that later dies is ignored by
        :meth:`_relay_for` rather than raising, so a stale preference can
        degrade placement but never correctness.
        """
        if via is None:
            self.relay_preference.pop((cs, cd), None)
        else:
            self.relay_preference[(cs, cd)] = via

    def alive(self, cs: int, cd: int) -> bool:
        return (cs, cd) not in self.failed_pairs

    def _relay_for(self, cs: int, cd: int) -> int:
        preferred = self.relay_preference.get((cs, cd))
        if (
            preferred is not None
            and preferred not in (cs, cd)
            and self.alive(cs, preferred)
            and self.alive(preferred, cd)
        ):
            return preferred
        for cx in range(self.dims.clusters):
            if cx in (cs, cd):
                continue
            if self.alive(cs, cx) and self.alive(cx, cd):
                return cx
        raise UnroutableError(
            f"no live relay from cluster {cs} to {cd}; failed={sorted(self.failed_pairs)}"
        )

    def _next_cluster(self, cs: int, cd: int) -> int:
        """The next cluster a packet at ``cs`` heading to ``cd`` crosses to."""
        if self.alive(cs, cd) or self._spare_active(cs, cd):
            return cd
        return self._relay_for(cs, cd)

    def _legs_remaining(self, c_cur: int, c_dst: int) -> int:
        """How many wireless hops remain from cluster ``c_cur``."""
        if c_cur == c_dst:
            return 0
        if self.alive(c_cur, c_dst) or self._spare_active(c_cur, c_dst):
            return 1
        return 2

    # ---------------- routing ---------------- #

    def _steer_new(self, router: Router, packet, c_cur: int, c_dst: int) -> bool:
        if not self.alive(c_cur, c_dst):
            # Dead pair with an active spare: the spare *is* the route, so
            # all its traffic takes the D path wherever it currently sits
            # (escaped packets included -- routability first).
            return self._spare_active(c_cur, c_dst)
        # Alive pair: inherit the parity-interleaved source-only boost.
        return super()._steer_new(router, packet, c_cur, c_dst)

    def compute(self, router: Router, packet) -> int:
        rid = router.rid
        dst_rid = self._dst_rid(packet)
        ctrl = self.reconfig
        if dst_rid == rid:
            if ctrl is not None and ctrl._pid_pair:
                _, c_cur, _ = self._gct(rid)
                ctrl.note_arrival(packet.pid, c_cur)
            return self.net.core_eject_port[packet.dst_core]
        _, c_cur, _ = self._gct(rid)
        _, c_dst, _ = self._gct(dst_rid)
        if c_cur == c_dst:
            if ctrl is not None and ctrl._pid_pair:
                ctrl.note_arrival(packet.pid, c_cur)
            return self.photonic_port[(rid, dst_rid)]
        port = self._spare_route(router, packet, c_cur, c_dst)
        if port is not None:
            return port
        c_next = self._next_cluster(c_cur, c_dst)
        if c_next != c_dst:
            if packet.wireless_hops >= 1 and not packet.escaped:
                # Mid-flight re-relay: this packet already crossed a
                # wireless leg and is now being handed another *first*
                # leg (fail/reassign flipped under it) -- a third hop
                # would exceed the two-leg VC discipline. Latch the
                # escape: the remaining path restarts store-and-forward
                # at every ascent (hold_for_full), so each inter-restart
                # segment is a fresh monotone climb through the existing
                # VC classes.
                packet.escaped = True
                self.reroute_escapes += 1
            if rid == self.gateway_rid[
                self.channel_map[(c_cur, c_next)].channel_index
            ]:
                self.relayed_packets += 1
        channel = self.channel_map[(c_cur, c_next)]
        gateway = self.gateway_rid[channel.channel_index]
        if rid == gateway:
            return self.wireless_port[(rid, channel.channel_index)]
        return self.photonic_port[(rid, gateway)]

    def hold_for_full(self, router: Router, out_port: int, packet) -> bool:
        """Store-and-forward gate for escape-path restarts.

        An escaped packet (spare revoked under it, or a mid-flight
        re-relay) restarts each remaining photonic *ascent* only once all
        of its flits are buffered locally. By then every upstream resource
        the packet held has been released (the tail has arrived), so the
        restart cannot couple two home waveguides into a mid-packet
        token-hold cycle -- the failure mode behind the open-loop
        re-pointer deadlock. Descents and wireless hops stay wormhole.
        """
        if not packet.escaped:
            return False
        if router.out_links[out_port].kind != "photonic":
            return False
        _, c_cur, _ = self._gct(router.rid)
        _, c_dst, _ = self._gct(self._dst_rid(packet))
        return c_cur != c_dst  # ascending hop

    def allowed_vcs(self, router: Router, out_port: int, packet) -> Sequence[int]:
        """VC discipline derived from the *chosen out-port*, not fault state.

        The route (``out_port``) is computed once per packet per router,
        but VC allocation can retry for many cycles afterwards. If the
        VC classes were derived from the *current* ``failed_pairs`` (as
        ``_legs_remaining`` does), a fail/unfail flip between those two
        moments would hand a first-leg packet a final-leg VC (or vice
        versa), breaking the strictly increasing resource order that
        makes the discipline deadlock-free. Classifying the hop from the
        out-port itself -- which channel it is, or which gateway the
        photonic hop ascends to -- keeps every grant consistent with the
        route the packet is actually on. In steady state this is exactly
        the ``_legs_remaining`` answer; it differs only inside
        reconfiguration windows, where it is the safe one.
        """
        link = router.out_links[out_port]
        dst_rid = self._dst_rid(packet)
        _, c_dst, _ = self._gct(dst_rid)
        _, c_cur, _ = self._gct(router.rid)
        if link.kind == "wireless":
            pair = self._pair_of_channel.get(link.channel_id)
            if pair is not None and pair[1] != c_dst:
                return (0, 1)  # first leg of a relayed packet
            # Direct/final-leg primary, or a spare D->D channel (spares
            # only ever carry single-leg traffic).
            return (2, 3)
        if link.kind == "photonic":
            if c_cur == c_dst:
                return (2, 3)  # descending
            if (
                router.rid == self.spare_gateway_rid.get(c_cur)
                and self.net.core_router[packet.src_core] != router.rid
            ):
                # Re-ascent out of the D gateway. A remote packet only
                # sits here because a mid-flight reconfiguration revoked
                # the spare it was routed to; its second photonic ascent
                # must not reuse the VC1 class its first ascent (and the
                # ascents of packets still heading *toward* D) occupy, or
                # the two directions wait on each other -- observed as a
                # D<->A VC1 cycle after a fail/recover churn. VC0 keeps
                # the resource order strict: ph0 < w{0,1} < ph1 < ...
                # holds whether the restart is a relay first leg or a
                # direct hop (w{2,3} > ph0 too). Packets *originating*
                # on the D tile keep VC1 -- steady state is untouched.
                return (0,)
            nxt = self._photonic_dst.get((router.rid, out_port))
            ch = self._gateway_channel.get(nxt)
            if ch is not None and self._pair_of_channel[ch][1] != c_dst:
                return (0,)  # first-leg ascent of a relayed packet
            return (1,)  # single / middle / spare-gateway ascent
        return range(router.num_vcs)


def build_fault_tolerant_own256(**kwargs):
    """Build OWN-256 with relay-capable routing installed.

    Accepts the same keyword arguments as
    :func:`repro.core.own256.build_own256` and swaps the routing function
    for :class:`FaultTolerantOwn256Routing`. Returns the
    :class:`~repro.topologies.base.BuiltTopology`; the routing object is in
    ``built.notes["routing"]`` for fault injection::

        built = build_fault_tolerant_own256()
        built.notes["routing"].fail_channel(0, 2)
    """
    from repro.core.own256 import build_own256

    built = build_own256(**kwargs)
    old = built.notes["routing"]
    routing = FaultTolerantOwn256Routing(
        old.net,
        old.dims,
        old.photonic_port,
        old.wireless_port,
        old.channel_map,
        old.gateway_rid,
        spare_gateway_rid=old.spare_gateway_rid,
        spare_out_port=old.spare_out_port,
    )
    built.network.set_routing(routing)
    built.notes["routing"] = routing
    built.params["fault_tolerant"] = True
    return built
