"""OWN: the paper's contribution -- hybrid photonic-wireless NoC.

* :mod:`repro.core.coords`    -- (g, c, t, p) addressing,
* :mod:`repro.core.floorplan` -- cluster geometry, antenna placement,
* :mod:`repro.core.channels`  -- Table I / Table II channel allocation + SDM,
* :mod:`repro.core.routing`   -- 3-hop hierarchical routing, VC partitioning,
* :mod:`repro.core.own256` / :mod:`repro.core.own1024` -- builders.
"""

from repro.core.coords import OwnDims, OWN256_DIMS, OWN1024_DIMS
from repro.core.floorplan import (
    Antenna,
    antenna,
    all_antennas,
    classify_distance,
    distance_mm,
    tile_position_mm,
    segments_intersect,
    LD_FACTOR,
    NOMINAL_DISTANCE_MM,
    DISTANCE_CLASSES,
    CLUSTER_EDGE_MM,
)
from repro.core.channels import (
    ChannelAssignment,
    own256_channels,
    own256_channel_map,
    own1024_channels,
    own1024_channel_map,
    sdm_frequency_reuse_groups,
    channel_segments,
    CLUSTER_PAIR_ANTENNAS,
    GROUP_OFFSET_ANTENNA,
)
from repro.core.routing import (
    Own256Routing,
    Own1024Routing,
    group_pair_vc,
    ASCENDING_VCS,
    DESCENDING_VCS,
)
from repro.core.own256 import build_own256, make_reconfig_controller
from repro.core.own1024 import build_own1024
from repro.core.reconfig import ReconfigurationController, SpareAssignment, N_SPARE_CHANNELS
from repro.core.faults import (
    FaultTolerantOwn256Routing,
    UnroutableError,
    build_fault_tolerant_own256,
)
from repro.core.faults1024 import (
    FaultTolerantOwn1024Routing,
    build_fault_tolerant_own1024,
)

__all__ = [
    "OwnDims",
    "OWN256_DIMS",
    "OWN1024_DIMS",
    "Antenna",
    "antenna",
    "all_antennas",
    "classify_distance",
    "distance_mm",
    "tile_position_mm",
    "segments_intersect",
    "LD_FACTOR",
    "NOMINAL_DISTANCE_MM",
    "DISTANCE_CLASSES",
    "CLUSTER_EDGE_MM",
    "ChannelAssignment",
    "own256_channels",
    "own256_channel_map",
    "own1024_channels",
    "own1024_channel_map",
    "sdm_frequency_reuse_groups",
    "channel_segments",
    "CLUSTER_PAIR_ANTENNAS",
    "GROUP_OFFSET_ANTENNA",
    "Own256Routing",
    "Own1024Routing",
    "group_pair_vc",
    "ASCENDING_VCS",
    "DESCENDING_VCS",
    "build_own256",
    "build_own1024",
    "make_reconfig_controller",
    "ReconfigurationController",
    "SpareAssignment",
    "N_SPARE_CHANNELS",
    "FaultTolerantOwn256Routing",
    "UnroutableError",
    "build_fault_tolerant_own256",
    "FaultTolerantOwn1024Routing",
    "build_fault_tolerant_own1024",
]
