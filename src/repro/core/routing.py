"""OWN hierarchical routing and VC-based deadlock avoidance.

Both OWN instances route in at most three network hops (Sec. V-A):

1. photonic hop within the source cluster to the wireless gateway tile,
2. one wireless hop (inter-cluster for OWN-256; inter-group SWMR multicast
   or intra-group channel for OWN-1024),
3. photonic hop within the destination cluster to the destination tile.

Deadlock avoidance
------------------
The paper allocates "2 VCs for data packet communication over the photonic
link and 2 VCs for wireless link" (OWN-256) and, for OWN-1024, "VC0 for
intra-group communication, VC1 for inter-group vertical, VC2 for inter-group
horizontal and VC3 for inter-group diagonal".

We keep those allocations on the *wireless* ports and refine the photonic
side: photonic input VCs {0,1} carry **ascending** hops (towards a wireless
gateway) and VCs {2,3} carry **descending** hops (towards the destination
tile / ejection; purely intra-cluster packets are descending). This yields a
strict resource order

    ascending photonic VC < wireless VC < descending photonic VC < sink,

which is provably cycle-free; without the role split, the first and last
photonic hops of opposing flows can share a VC class at gateway tiles and
close a credit cycle (the watchdog catches this in the ablation test).
DESIGN.md records this as a documented refinement of the paper's scheme.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.channels import (
    ChannelAssignment,
    GROUP_GRID,
    GROUP_OFFSET_ANTENNA,
)
from repro.core.coords import OwnDims
from repro.noc.buffers import VCState
from repro.noc.network import Network
from repro.noc.router import Router, RoutingFunction

#: Photonic VC roles (see module docstring).
ASCENDING_VCS: Tuple[int, ...] = (0, 1)
DESCENDING_VCS: Tuple[int, ...] = (2, 3)

#: OWN-256 wireless channels may use VCs {0,1} ("2 VCs for wireless link").
OWN256_WIRELESS_VCS: Tuple[int, ...] = (0, 1)


def group_pair_vc(src_group: int, dst_group: int) -> int:
    """OWN-1024 wireless VC class (Sec. V-A).

    VC0 intra-group, VC1 inter-group vertical, VC2 horizontal, VC3 diagonal.
    """
    if src_group == dst_group:
        return 0
    (sx, sy), (dx, dy) = GROUP_GRID[src_group], GROUP_GRID[dst_group]
    if sx == dx:
        return 1  # vertical
    if sy == dy:
        return 2  # horizontal
    return 3  # diagonal


class OwnRoutingBase(RoutingFunction):
    """Shared machinery for OWN-256 / OWN-1024 routing functions.

    Parameters
    ----------
    net, dims:
        The network under construction and its (g, c, t, p) dimensions.
    photonic_port:
        ``(writer_rid, reader_rid) -> out_port`` for intra-cluster buses.
    wireless_port:
        ``(gateway_rid, channel_index) -> out_port``.
    gateway_rid:
        ``channel_index -> transmitting router`` (OWN-256) or
        ``(channel_index, src_cluster) -> transmitting router`` (OWN-1024).
    """

    def __init__(
        self,
        net: Network,
        dims: OwnDims,
        photonic_port: Dict[Tuple[int, int], int],
        wireless_port: Dict[Tuple[int, int], int],
    ) -> None:
        self.net = net
        self.dims = dims
        self.photonic_port = photonic_port
        self.wireless_port = wireless_port
        # rid -> (g, c, t) memo: router coordinates are static, and the
        # divmod arithmetic in router_to_gct dominates route computation on
        # kilo-core hot paths.
        self._gct_cache: Dict[int, Tuple[int, int, int]] = {}

    # -- helpers ------------------------------------------------------- #

    def _gct(self, rid: int) -> Tuple[int, int, int]:
        gct = self._gct_cache.get(rid)
        if gct is None:
            gct = self._gct_cache[rid] = self.dims.router_to_gct(rid)
        return gct

    def _dst_rid(self, packet) -> int:
        return self.net.core_router[packet.dst_core]

    def allowed_vcs(self, router: Router, out_port: int, packet) -> Sequence[int]:
        link = router.out_links[out_port]
        if link.kind == "photonic":
            dst_rid = self._dst_rid(packet)
            g_dst, c_dst, _ = self._gct(dst_rid)
            g_cur, c_cur, _ = self._gct(router.rid)
            descending = (g_dst, c_dst) == (g_cur, c_cur)
            return DESCENDING_VCS if descending else ASCENDING_VCS
        if link.kind == "wireless":
            return self._wireless_vcs(packet)
        return range(router.num_vcs)

    def _wireless_vcs(self, packet) -> Sequence[int]:
        raise NotImplementedError

    def invalidate_pending_routes(self) -> None:
        """Force re-routing of every head still waiting for a VC grant.

        Routes are computed once per packet per router and cached on the
        input VC; a head parked in WAITING_VC then re-polls only its
        *cached* downstream candidates. When channel fault state or the
        spare plan flips underneath it, those cached decisions can aim
        opposing flows at each other's gateway waveguides -- two full
        ascents each waiting on the other's input VC is a stable cycle
        that no VC-class ordering breaks, because both decisions were
        legal when taken but against different topologies. Flushing
        WAITING_VC heads back to IDLE makes them re-run route computation
        against the live state, so stale-route cycles cannot persist past
        the reconfiguration event that created them. ACTIVE packets are
        already streaming into a granted VC and drain normally; runs with
        no fault or spare churn never reach this path, keeping them
        bit-identical.
        """
        for router in self.net.routers:
            if not router._occupied:
                continue
            input_ports = router.input_ports
            rc_pending = router._rc_pending
            for key in router._occupied:
                vc = input_ports[key[0]].vcs[key[1]]
                if vc.state is not VCState.WAITING_VC:
                    continue
                vc.state = VCState.IDLE
                vc.out_port = None
                vc.cand_endpoint = None
                vc.cand_vcs = None
                if vc.kern is not None:
                    vc.kern.vc_state[vc.gslot] = 0
                rc_pending.add(key)


class Own256Routing(OwnRoutingBase):
    """OWN-256: photonic -> dedicated inter-cluster wireless -> photonic.

    When built ``with_reconfiguration=True`` the routing additionally knows
    the spare D->D channels; packets of a boosted cluster pair interleave
    (by packet-id parity, keeping each packet on a single path) between the
    primary gateway and the D-antenna gateway. See
    :mod:`repro.core.reconfig`.
    """

    def __init__(
        self,
        net: Network,
        dims: OwnDims,
        photonic_port: Dict[Tuple[int, int], int],
        wireless_port: Dict[Tuple[int, int], int],
        channel_map: Dict[Tuple[int, int], ChannelAssignment],
        gateway_rid: Dict[int, int],
        spare_gateway_rid: Dict[int, int] | None = None,
        spare_out_port: Dict[Tuple[int, int], int] | None = None,
    ) -> None:
        super().__init__(net, dims, photonic_port, wireless_port)
        self.channel_map = channel_map  # (src_cluster, dst_cluster) -> channel
        self.gateway_rid = gateway_rid  # channel_index -> tx router
        self.spare_gateway_rid = spare_gateway_rid or {}  # cluster -> D router
        self.spare_out_port = spare_out_port or {}  # (src, dst cluster) -> port
        self.reconfig = None  # ReconfigurationController, set via attach

    def attach_reconfiguration(self, controller) -> None:
        self.reconfig = controller
        controller.invalidate_routes = self.invalidate_pending_routes

    def _steer_new(self, router: Router, packet, c_cur: int, c_dst: int) -> bool:
        """Should a not-yet-committed packet be steered at the D gateway?"""
        if packet.escaped:
            # Escape path: a packet already forced off a revoked spare (or
            # off a failed relay leg) never re-enters the spare plan.
            return False
        if not self.reconfig.steerable(c_cur, c_dst):
            return False
        if self.net.core_router[packet.src_core] != router.rid:
            # The steer is the *ascend decision*, taken once at the source
            # router. A packet already past it keeps its path: diverting
            # it at the primary gateway would bounce it back toward D --
            # a second ascent in the same VC class, which couples the two
            # gateways' home waveguides into exactly the mutual-wait
            # cycle the drain protocol exists to prevent.
            return False
        # Per-packet stickiness: parity splits the pair's load ~50/50 while
        # every flit of a packet follows one path.
        return packet.pid % 2 == 1

    def _spare_route(self, router: Router, packet, c_cur: int, c_dst: int):
        """Spare-channel leg of route computation; ``None`` means primary.

        New packets are steered only while the pair's assignment is ACTIVE
        (:meth:`ReconfigurationController.steerable`) and the steer is
        recorded per-pid (:meth:`track_steer`) so the controller can drain
        the leg before re-pointing the channel. A *committed* packet keeps
        its path through the D gateway while the assignment is active or
        draining; if a drain timeout revoked it first, the packet escapes
        (:meth:`note_escape`) onto the primary plan.
        """
        ctrl = self.reconfig
        if ctrl is None:
            return None
        rid = router.rid
        pair = (c_cur, c_dst)
        if ctrl._pid_pair and ctrl.committed_pair(packet.pid) == pair:
            if ctrl.assignment_for(pair) is not None:
                d_gateway = self.spare_gateway_rid[c_cur]
                if rid == d_gateway:
                    return self.spare_out_port[pair]
                return self.photonic_port[(rid, d_gateway)]
            ctrl.note_escape(packet.pid, packet)
            return None
        if self._steer_new(router, packet, c_cur, c_dst):
            ctrl.track_steer(packet.pid, pair)
            d_gateway = self.spare_gateway_rid[c_cur]
            if rid == d_gateway:
                return self.spare_out_port[pair]
            return self.photonic_port[(rid, d_gateway)]
        return None

    def compute(self, router: Router, packet) -> int:
        rid = router.rid
        dst_rid = self._dst_rid(packet)
        ctrl = self.reconfig
        if dst_rid == rid:
            if ctrl is not None and ctrl._pid_pair:
                _, c_cur, _ = self._gct(rid)
                ctrl.note_arrival(packet.pid, c_cur)
            return self.net.core_eject_port[packet.dst_core]
        _, c_cur, _ = self._gct(rid)
        _, c_dst, _ = self._gct(dst_rid)
        if c_cur == c_dst:
            if ctrl is not None and ctrl._pid_pair:
                ctrl.note_arrival(packet.pid, c_cur)
            return self.photonic_port[(rid, dst_rid)]
        port = self._spare_route(router, packet, c_cur, c_dst)
        if port is not None:
            return port
        channel = self.channel_map[(c_cur, c_dst)]
        gateway = self.gateway_rid[channel.channel_index]
        if rid == gateway:
            return self.wireless_port[(rid, channel.channel_index)]
        return self.photonic_port[(rid, gateway)]

    def _wireless_vcs(self, packet) -> Sequence[int]:
        return OWN256_WIRELESS_VCS


class Own1024Routing(OwnRoutingBase):
    """OWN-1024: adds inter-group SWMR multicast and intra-group channels."""

    def __init__(
        self,
        net: Network,
        dims: OwnDims,
        photonic_port: Dict[Tuple[int, int], int],
        wireless_port: Dict[Tuple[int, int], int],
        channel_map: Dict[Tuple[int, int], ChannelAssignment],
        gateway_rid: Dict[Tuple[int, int], int],
    ) -> None:
        super().__init__(net, dims, photonic_port, wireless_port)
        self.channel_map = channel_map  # (src_group, dst_group) -> channel
        self.gateway_rid = gateway_rid  # (channel_index, cluster) -> tx router

    def compute(self, router: Router, packet) -> int:
        rid = router.rid
        dst_rid = self._dst_rid(packet)
        if dst_rid == rid:
            return self.net.core_eject_port[packet.dst_core]
        g_cur, c_cur, _ = self._gct(rid)
        g_dst, c_dst, _ = self._gct(dst_rid)
        if (g_cur, c_cur) == (g_dst, c_dst):
            return self.photonic_port[(rid, dst_rid)]
        # Wireless is needed: intra-group (D antennas) or inter-group SWMR.
        channel = self.channel_map[(g_cur, g_dst)]
        gateway = self.gateway_rid[(channel.channel_index, c_cur)]
        if rid == gateway:
            return self.wireless_port[(rid, channel.channel_index)]
        return self.photonic_port[(rid, gateway)]

    def _wireless_vcs(self, packet) -> Sequence[int]:
        g_src, _, _, _ = self.dims.core_to_quad(packet.src_core)
        g_dst, _, _, _ = self.dims.core_to_quad(packet.dst_core)
        return (group_pair_vc(g_src, g_dst),)
