"""OWN-256 builder (Fig. 1 of the paper).

4 clusters x 16 tiles x 4 cores. Within a cluster every tile owns a home
waveguide written MWSR by the other 15 tiles under token arbitration
("we need 16 waveguides with one home waveguide per tile and 16 tokens",
Sec. III-A). The 12 wireless channels of Table I connect cluster pairs as
dedicated unidirectional links at the gateway (corner) tiles.

Router radix bookkeeping matches Sec. V-A: wireless gateway routers have
radix 20 (15 photonic + 1 wireless + 4 cores), plain tiles 19; these feed
the DSENT-style router power model via ``attrs["paper_radix"]``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.channels import own256_channel_map, own256_channels
from repro.core.coords import OWN256_DIMS, OwnDims
from repro.core.floorplan import antenna, tile_position_mm, CLUSTER_EDGE_MM
from repro.core.routing import Own256Routing
from repro.noc.links import SharedMedium
from repro.noc.network import Network
from repro.topologies.base import BuiltTopology, CONCENTRATION, attach_concentrated_cores

#: Cycles for the MWSR token to reach a granted writer within a cluster
#: (optical tokens circulate fast over the 25 mm cluster: 1 cycle).
PHOTONIC_TOKEN_LATENCY = 1

#: Light propagation along the snake waveguide, in cycles.
PHOTONIC_LINK_LATENCY = 2

#: Snake waveguide length within one 25 mm cluster [mm] (serpentine through
#: a 4x4 tile grid: ~4 passes of the cluster edge).
SNAKE_LENGTH_MM = 4 * CLUSTER_EDGE_MM


#: Centre tiles of the 4x4 grid, used by the antenna-placement ablation
#: ("If all the wireless transceivers were located in close proximity
#: (center of the cluster), then all inter-cluster traffic will be directed
#: to the center which could lead to load and thermal imbalance", Sec. III-A).
CENTER_ANTENNA_TILES: Dict[str, int] = {"A": 5, "D": 6, "B": 9, "C": 10}


def build_own256(
    num_vcs: int = 4,
    vc_depth: int = 8,
    wireless_cycles_per_flit: int = 1,
    wireless_latency: int = 1,
    antenna_placement: str = "corners",
    with_reconfiguration: bool = False,
) -> BuiltTopology:
    """Build the OWN-256 network.

    Parameters
    ----------
    wireless_cycles_per_flit:
        1 under the ideal scenario (32 GHz channels); 2 under the
        conservative scenario (16 GHz halves every channel's bandwidth,
        Table III).
    wireless_latency:
        Propagation + transceiver latency of a wireless hop in cycles
        (mm-wave time-of-flight is sub-cycle; serialization dominates).
    antenna_placement:
        ``"corners"`` (the paper's design) or ``"center"`` (the rejected
        alternative, kept for the load-balance ablation).
    with_reconfiguration:
        Additionally build the 12 candidate D->D spare links that the
        reconfiguration channels 13-16 can be mapped onto
        (:mod:`repro.core.reconfig`). The spares are inert until a
        :class:`~repro.core.reconfig.ReconfigurationController` is attached
        via :func:`make_reconfig_controller`.
    """
    if antenna_placement not in ("corners", "center"):
        raise ValueError(f"unknown antenna placement {antenna_placement!r}")
    dims = OWN256_DIMS
    net = Network("own256", dims.n_cores, num_vcs=num_vcs, vc_depth=vc_depth)

    channels = own256_channels()
    gateway_tiles: Dict[Tuple[int, int], str] = {}  # (cluster, tile) -> letter
    def antenna_tile(cluster: int, letter: str) -> int:
        if antenna_placement == "center":
            return CENTER_ANTENNA_TILES[letter]
        return antenna(cluster, letter).tile

    for cluster in range(dims.clusters):
        for letter in "ABCD":
            gateway_tiles[(cluster, antenna_tile(cluster, letter))] = letter

    # Routers: one per tile.
    for rid in range(dims.n_routers):
        _, c, t = dims.router_to_gct(rid)
        is_gateway = (c, t) in gateway_tiles
        net.add_router(
            position_mm=tile_position_mm(c, t),
            attrs={
                "cluster": c,
                "tile": t,
                "gateway": gateway_tiles.get((c, t)),
                # Sec. V-A radix accounting for the power model:
                "paper_radix": 20 if is_gateway else 19,
            },
        )
    for rid in range(dims.n_routers):
        attach_concentrated_cores(net, rid, rid * CONCENTRATION)

    # Photonic MWSR crossbar per cluster: one home waveguide per tile.
    photonic_port: Dict[Tuple[int, int], int] = {}
    for cluster in range(dims.clusters):
        tiles = [dims.gct_to_router(0, cluster, t) for t in range(dims.tiles)]
        for reader in tiles:
            medium = SharedMedium(
                f"c{cluster}.wg{reader}",
                kind="photonic",
                arb_latency=PHOTONIC_TOKEN_LATENCY,
            )
            writers = [w for w in tiles if w != reader]
            ports = net.connect_bus(
                writers,
                reader,
                kind="photonic",
                medium=medium,
                latency=PHOTONIC_LINK_LATENCY,
                length_mm=SNAKE_LENGTH_MM,
            )
            for w, port in ports.items():
                photonic_port[(w, reader)] = port

    # Wireless inter-cluster channels (Table I).
    wireless_port: Dict[Tuple[int, int], int] = {}
    gateway_rid: Dict[int, int] = {}
    for ch in channels:
        tx_rid = dims.gct_to_router(0, ch.src_cluster, antenna_tile(ch.src_cluster, ch.tx))
        rx_rid = dims.gct_to_router(0, ch.dst_cluster, antenna_tile(ch.dst_cluster, ch.rx))
        out_port, _ = net.connect(
            tx_rid,
            rx_rid,
            kind="wireless",
            latency=wireless_latency,
            cycles_per_flit=wireless_cycles_per_flit,
            length_mm=ch.distance_mm,
            name=f"wch{ch.channel_index}.{ch.name}",
            channel_id=ch.channel_index,
        )
        wireless_port[(tx_rid, ch.channel_index)] = out_port
        gateway_rid[ch.channel_index] = tx_rid

    # Optional reconfiguration spares: D -> D candidate links for every
    # ordered cluster pair (at most 4 are active at a time; see
    # repro.core.reconfig).
    spare_gateway_rid: Dict[int, int] = {}
    spare_out_port: Dict[Tuple[int, int], int] = {}
    spare_links: Dict[Tuple[int, int], object] = {}
    primary_links: Dict[Tuple[int, int], object] = {}
    if with_reconfiguration:
        for cluster in range(dims.clusters):
            spare_gateway_rid[cluster] = dims.gct_to_router(
                0, cluster, antenna_tile(cluster, "D")
            )
        from repro.core.floorplan import distance_mm as _dist, antenna as _ant

        for cs in range(dims.clusters):
            for cd in range(dims.clusters):
                if cs == cd:
                    continue
                d_mm = _dist(_ant(cs, "D"), _ant(cd, "D"))
                out_port, _ = net.connect(
                    spare_gateway_rid[cs],
                    spare_gateway_rid[cd],
                    kind="wireless",
                    latency=wireless_latency,
                    cycles_per_flit=wireless_cycles_per_flit,
                    length_mm=d_mm,
                    name=f"spare.D{cs}->D{cd}",
                    channel_id=None,
                )
                spare_out_port[(cs, cd)] = out_port
                spare_links[(cs, cd)] = net.routers[spare_gateway_rid[cs]].out_links[out_port]
        cmap = own256_channel_map()
        for (cs, cd), ch in cmap.items():
            tx_rid2 = gateway_rid[ch.channel_index]
            port = wireless_port[(tx_rid2, ch.channel_index)]
            primary_links[(cs, cd)] = net.routers[tx_rid2].out_links[port]

    routing = Own256Routing(
        net,
        dims,
        photonic_port,
        wireless_port,
        own256_channel_map(),
        gateway_rid,
        spare_gateway_rid=spare_gateway_rid,
        spare_out_port=spare_out_port,
    )
    net.set_routing(routing)
    net.finalize()
    return BuiltTopology(
        network=net,
        kind="own",
        params={
            "n_cores": dims.n_cores,
            "wireless_cycles_per_flit": wireless_cycles_per_flit,
            "channels": len(channels),
            "antenna_placement": antenna_placement,
        },
        notes={
            "max_radix_paper": 20,
            "diameter_hops": 3,
            "waveguides": dims.clusters * dims.tiles,
            "spare_links": spare_links,
            "primary_links": primary_links,
            "routing": routing,
        },
    )


def make_reconfig_controller(
    built: BuiltTopology,
    epoch_cycles: int = 500,
    drain_timeout: int | None = None,
):
    """Create + attach a reconfiguration controller to an OWN-256 network.

    The returned controller must also be registered as a simulator hook::

        built = build_own256(with_reconfiguration=True)
        ctrl = make_reconfig_controller(built, epoch_cycles=500)
        sim = Simulator(built.network, traffic=...)
        sim.add_hook(ctrl)

    Raises
    ------
    ValueError
        If the topology was not built ``with_reconfiguration=True``.
    """
    from repro.core.reconfig import (
        DEFAULT_DRAIN_TIMEOUT,
        ReconfigurationController,
        validate_spare_topology,
    )

    spare_links = built.notes.get("spare_links")
    if not spare_links:
        raise ValueError(
            "topology was not built with_reconfiguration=True; no spare links"
        )
    validate_spare_topology(spare_links)
    controller = ReconfigurationController(
        built.network,
        spare_links,
        built.notes["primary_links"],
        epoch_cycles=epoch_cycles,
        drain_timeout=(
            DEFAULT_DRAIN_TIMEOUT if drain_timeout is None else drain_timeout
        ),
    )
    built.notes["routing"].attach_reconfiguration(controller)
    return controller
