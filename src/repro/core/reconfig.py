"""Adaptive reconfiguration channels (the paper's forward-looking feature).

Table III reserves channels 13-16 as "reconfiguration channels that could
adaptively be utilized to improve performance" (Sec. IV). This module
implements that mechanism for OWN-256:

* The four **D antennas** -- unused by the static Table I plan -- host four
  spare transceivers (one per cluster).
* Spare channels run D_src -> D_dst for an ordered cluster pair; a D
  antenna can drive at most one outgoing and one incoming spare at a time,
  so up to four spare channels are live concurrently.
* A :class:`ReconfigurationController` samples per-channel utilisation over
  fixed epochs and re-assigns the spares to the hottest cluster pairs; the
  routing layer then splits that pair's traffic across the primary gateway
  and the D gateway (packet-id interleaving keeps per-packet ordering
  intact since each packet still uses a single path).

Deadlock safety: a spare path is photonic-ascending -> wireless ->
photonic-descending, exactly like a primary path, so the VC ordering of
:mod:`repro.core.routing` continues to hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.channels import own256_channel_map
from repro.noc.links import Link
from repro.noc.network import Network

#: Number of spare (reconfiguration) channels: Table III rows 13-16.
N_SPARE_CHANNELS = 4


@dataclass
class SpareAssignment:
    """One live spare channel: which pair it boosts and its link."""

    pair: Tuple[int, int]
    channel_index: int
    link: Link


class ReconfigurationController:
    """Epoch-based manager of the four spare wireless channels.

    Parameters
    ----------
    network:
        An OWN-256 network built with ``with_reconfiguration=True`` (the
        builder pre-creates the 12 candidate D->D spare links; only the
        assigned subset is routed onto).
    spare_links:
        Ordered map ``(src_cluster, dst_cluster) -> Link`` of candidates.
    epoch_cycles:
        Utilisation sampling window.
    """

    def __init__(
        self,
        network: Network,
        spare_links: Dict[Tuple[int, int], Link],
        primary_links: Dict[Tuple[int, int], Link],
        epoch_cycles: int = 500,
    ) -> None:
        if epoch_cycles < 1:
            raise ValueError(f"epoch_cycles must be >= 1, got {epoch_cycles}")
        self.network = network
        self.spare_links = spare_links
        self.primary_links = primary_links
        self.epoch_cycles = epoch_cycles
        self.assignments: Dict[Tuple[int, int], SpareAssignment] = {}
        #: Pairs permanently holding a spare (failover; see :meth:`pin`).
        #: Assigned before utilisation-ranked candidates on every epoch.
        self.pinned: List[Tuple[int, int]] = []
        #: ``True`` when an external control plane (:mod:`repro.control`)
        #: owns spare placement: :meth:`reassign` then installs the pinned
        #: pairs plus the controller-set :attr:`desired` list instead of
        #: ranking by utilisation itself.
        self.managed = False
        #: Managed-mode placement wish list (ordered), set via
        #: :meth:`set_desired` by the control plane.
        self.desired: List[Tuple[int, int]] = []
        self._last_counts: Dict[Tuple[int, int], int] = {
            pair: 0 for pair in primary_links
        }
        self.epochs = 0
        self.reassignments = 0

    # ------------------------------------------------------------------ #

    def utilisation_last_epoch(self) -> Dict[Tuple[int, int], int]:
        """Flits carried per primary channel during the last epoch."""
        out = {}
        for pair, link in self.primary_links.items():
            out[pair] = link.flits_carried - self._last_counts[pair]
        return out

    def _feasible(self, chosen: List[Tuple[int, int]], pair: Tuple[int, int]) -> bool:
        """D-antenna constraint: one outgoing + one incoming spare per
        cluster."""
        src, dst = pair
        for (s, d) in chosen:
            if s == src or d == dst:
                return False
        return True

    def pin(self, pair: Tuple[int, int]) -> None:
        """Permanently dedicate a spare channel to ``pair`` (failover).

        Pinned pairs take precedence over utilisation-ranked candidates on
        every reassignment, and the spare is installed immediately rather
        than waiting for the next epoch boundary -- the health monitor
        calls this when a primary channel dies mid-run.

        Raises
        ------
        ValueError
            If ``pair`` has no spare link or the D-antenna constraint
            (one outgoing + one incoming spare per cluster) cannot be met
            against already pinned pairs.
        """
        if pair in self.pinned:
            return
        if pair not in self.spare_links:
            raise ValueError(f"no spare D->D link for cluster pair {pair}")
        if not self._feasible(self.pinned, pair):
            raise ValueError(
                f"pinning {pair} violates the D-antenna constraint against "
                f"pinned pairs {self.pinned}"
            )
        self.pinned.append(pair)
        self.reassign()

    def unpin(self, pair: Tuple[int, int]) -> bool:
        """Release a failover pin (the pair's channel recovered).

        Returns ``True`` when the pair was pinned; the freed spare goes
        back into the normal placement pool on the immediate reassign.
        """
        if pair not in self.pinned:
            return False
        self.pinned.remove(pair)
        self.reassign()
        return True

    def set_desired(self, pairs: List[Tuple[int, int]]) -> None:
        """Hand spare placement to a control plane (managed mode).

        ``pairs`` is an ordered wish list; :meth:`reassign` installs the
        feasible prefix after the pinned failover pairs. Implies
        ``managed=True`` for every subsequent epoch.
        """
        self.managed = True
        self.desired = list(pairs)
        self.reassign()

    def reassign(self) -> None:
        """Give the spares to the hottest cluster pairs (greedy, feasible).

        Pinned (failover) pairs are assigned first, unconditionally. In
        managed mode the utilisation ranking is replaced by the control
        plane's :attr:`desired` list (see :meth:`set_desired`).
        """
        usage = self.utilisation_last_epoch()
        if self.managed:
            ranked = [(pair, 1) for pair in self.desired]
        else:
            ranked = sorted(usage.items(), key=lambda kv: kv[1], reverse=True)
        chosen: List[Tuple[int, int]] = list(self.pinned)
        for pair, flits in ranked:
            if flits == 0 or len(chosen) >= N_SPARE_CHANNELS:
                break
            if pair not in chosen and self._feasible(chosen, pair):
                chosen.append(pair)
        new_assignments: Dict[Tuple[int, int], SpareAssignment] = {}
        for i, pair in enumerate(chosen):
            link = self.spare_links[pair]
            channel_index = 13 + i
            link.channel_id = channel_index
            new_assignments[pair] = SpareAssignment(pair, channel_index, link)
        if set(new_assignments) != set(self.assignments):
            self.reassignments += 1
        self.assignments = new_assignments
        # Snapshot counters for the next epoch.
        for pair, link in self.primary_links.items():
            self._last_counts[pair] = link.flits_carried

    # ------------------------------------------------------------------ #

    def __call__(self, sim) -> None:
        """Simulator end-of-cycle hook: reassign on epoch boundaries."""
        if sim.now > 0 and sim.now % self.epoch_cycles == 0:
            self.epochs += 1
            self.reassign()

    def next_wake(self, now: int) -> int:
        """Next epoch boundary (a scheduled fast-forward wake source).

        Lets the active-set simulator keep idle fast-forward enabled with
        this hook installed: the clock may skip quiescent stretches but
        must step every epoch boundary, where :meth:`__call__` acts.
        """
        if now <= 0:
            return self.epoch_cycles
        if now % self.epoch_cycles == 0:
            return now
        return (now // self.epoch_cycles + 1) * self.epoch_cycles

    def boosted(self, src_cluster: int, dst_cluster: int) -> Optional[SpareAssignment]:
        return self.assignments.get((src_cluster, dst_cluster))

    def summary(self) -> Dict[str, object]:
        return {
            "epochs": self.epochs,
            "reassignments": self.reassignments,
            "active_pairs": sorted(self.assignments.keys()),
            "pinned_pairs": list(self.pinned),
            "spare_flits": sum(
                a.link.flits_carried for a in self.assignments.values()
            ),
        }


def validate_spare_topology(spare_links: Dict[Tuple[int, int], Link]) -> None:
    """Sanity checks the builder output: 12 ordered pairs, all wireless."""
    pairs = {(s, d) for s in range(4) for d in range(4) if s != d}
    if set(spare_links) != pairs:
        raise ValueError(
            f"spare links must cover all 12 ordered cluster pairs, got "
            f"{sorted(spare_links)}"
        )
    for link in spare_links.values():
        if link.kind != "wireless":
            raise ValueError(f"spare link {link.name} is not wireless")
