"""Adaptive reconfiguration channels (the paper's forward-looking feature).

Table III reserves channels 13-16 as "reconfiguration channels that could
adaptively be utilized to improve performance" (Sec. IV). This module
implements that mechanism for OWN-256:

* The four **D antennas** -- unused by the static Table I plan -- host four
  spare transceivers (one per cluster).
* Spare channels run D_src -> D_dst for an ordered cluster pair; a D
  antenna can drive at most one outgoing and one incoming spare at a time,
  so up to four spare channels are live concurrently.
* A :class:`ReconfigurationController` samples per-channel utilisation over
  fixed epochs and re-assigns the spares to the hottest cluster pairs; the
  routing layer then splits that pair's traffic across the primary gateway
  and the D gateway (packet-id interleaving keeps per-packet ordering
  intact since each packet still uses a single path).

Deadlock safety: a spare path is photonic-ascending -> wireless ->
photonic-descending, exactly like a primary path, so the VC ordering of
:mod:`repro.core.routing` continues to hold.

Two-phase draining re-assignment
--------------------------------
Re-pointing a spare channel is not atomic for the packets already steered
at it: a packet past the ascend decision is committed to the D gateway,
and yanking the channel from under it used to strand the packet there
(the D gateway re-ascent traffic then coupled the two gateways' home
waveguides into a mid-packet token-hold cycle -- an observed watchdog
deadlock under sustained hotspots). Re-assignment is therefore two-phase:

1. **DRAINING** -- the assignment stays installed but
   :meth:`ReconfigurationController.boosted` stops advertising it, so the
   routing layer steers no *new* packets at the D gateway. Packets already
   committed (tracked per-pid via :meth:`track_steer`) keep their path;
   the controller watches the leg's in-flight occupancy every cycle.
2. **Revoke** -- once the leg is empty the channel is re-pointed (and any
   deferred target installs land). A bounded :attr:`drain_timeout` caps
   the wait: on expiry the channel is revoked anyway and the stragglers
   take the *escape path* -- :meth:`note_escape` latches
   ``packet.escaped`` and the routing layer restarts them over the
   primary plan store-and-forward (see
   :meth:`FaultTolerantOwn256Routing.hold_for_full`).

Every phase transition is recorded in :attr:`transitions` (byte-stable
canonical JSON, CRC-gated like the control-plane decision log) and
mirrored into the :class:`~repro.control.loop.ControlLoop` decision log
when one manages this controller.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.noc.links import Link
from repro.noc.network import Network

#: Number of spare (reconfiguration) channels: Table III rows 13-16.
N_SPARE_CHANNELS = 4

#: Assignment phases (two-phase draining re-assignment).
PHASE_ACTIVE = "active"
PHASE_DRAINING = "draining"

#: Default bound on how long a revoked spare may sit in DRAINING before the
#: channel is re-pointed anyway and stragglers take the escape path.
DEFAULT_DRAIN_TIMEOUT = 1_000

Pair = Tuple[int, int]


@dataclass
class SpareAssignment:
    """One live spare channel: which pair it boosts and its link.

    ``phase`` is :data:`PHASE_ACTIVE` while the assignment accepts new
    packets and :data:`PHASE_DRAINING` once it has been retired but still
    carries committed in-flight packets; ``drain_from`` is the cycle the
    drain began (``-1`` while active).
    """

    pair: Pair
    channel_index: int
    link: Link
    phase: str = PHASE_ACTIVE
    drain_from: int = -1


class ReconfigurationController:
    """Epoch-based manager of the four spare wireless channels.

    Parameters
    ----------
    network:
        An OWN-256 network built with ``with_reconfiguration=True`` (the
        builder pre-creates the 12 candidate D->D spare links; only the
        assigned subset is routed onto).
    spare_links:
        Ordered map ``(src_cluster, dst_cluster) -> Link`` of candidates.
    primary_links:
        ``(src_cluster, dst_cluster) -> Link`` of the Table I channels,
        whose per-epoch utilisation drives placement.
    epoch_cycles:
        Utilisation sampling window.
    drain_timeout:
        Upper bound (cycles) on the DRAINING phase of a retired spare.
    """

    def __init__(
        self,
        network: Network,
        spare_links: Dict[Pair, Link],
        primary_links: Dict[Pair, Link],
        epoch_cycles: int = 500,
        drain_timeout: int = DEFAULT_DRAIN_TIMEOUT,
    ) -> None:
        if epoch_cycles < 1:
            raise ValueError(f"epoch_cycles must be >= 1, got {epoch_cycles}")
        if drain_timeout < 1:
            raise ValueError(f"drain_timeout must be >= 1, got {drain_timeout}")
        self.network = network
        self.spare_links = spare_links
        self.primary_links = primary_links
        self.epoch_cycles = epoch_cycles
        self.drain_timeout = drain_timeout
        self.assignments: Dict[Pair, SpareAssignment] = {}
        #: Pairs permanently holding a spare (failover; see :meth:`pin`).
        #: Assigned before utilisation-ranked candidates on every epoch.
        self.pinned: List[Pair] = []
        #: ``True`` when an external control plane (:mod:`repro.control`)
        #: owns spare placement: :meth:`reassign` then installs the pinned
        #: pairs plus the controller-set :attr:`desired` list instead of
        #: ranking by utilisation itself.
        self.managed = False
        #: Managed-mode placement wish list (ordered), set via
        #: :meth:`set_desired` by the control plane.
        self.desired: List[Pair] = []
        self._last_counts: Dict[Pair, int] = {pair: 0 for pair in primary_links}
        self.epochs = 0
        self.reassignments = 0
        # --- drain state machine ------------------------------------- #
        #: Wanted placement from the last :meth:`reassign`; pairs blocked
        #: by a draining antenna install as soon as the drain completes.
        self._target: List[Pair] = []
        #: Committed in-flight packets: pid -> pair it was steered for.
        self._pid_pair: Dict[int, Pair] = {}
        #: Per-pair committed-packet count (the drain occupancy signal).
        self._leg_load: Dict[Pair, int] = {}
        #: Number of assignments currently in DRAINING (cheap per-cycle guard).
        self._n_draining = 0
        #: Clock as of the last end-of-cycle hook invocation.
        self._now = 0
        self.drains_started = 0
        self.drains_completed = 0
        self.drain_timeouts = 0
        #: Committed packets forced onto the escape path (revocation beat
        #: them to the D gateway).
        self.escapes = 0
        #: Byte-stable phase-transition records (dicts of JSON-safe values).
        self.transitions: List[Dict[str, object]] = []
        #: Optional observer called with each transition record -- the
        #: :class:`~repro.control.loop.ControlLoop` uses this to mirror
        #: drain transitions into its decision log.
        self.on_transition: Optional[Callable[[Dict[str, object]], None]] = None
        #: Routing-layer callback flushing cached-but-uncommitted route
        #: decisions (wired by ``Own256Routing.attach_reconfiguration``).
        #: Every phase transition except ``escape`` changes which paths
        #: route computation may pick, so heads parked on a stale decision
        #: must re-route; see ``invalidate_pending_routes``.
        self.invalidate_routes: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ #

    def utilisation_last_epoch(self) -> Dict[Pair, int]:
        """Flits carried per primary channel during the last epoch."""
        out = {}
        for pair, link in self.primary_links.items():
            out[pair] = link.flits_carried - self._last_counts[pair]
        return out

    def _feasible(self, chosen: List[Pair], pair: Pair) -> bool:
        """D-antenna constraint: one outgoing + one incoming spare per
        cluster."""
        src, dst = pair
        for (s, d) in chosen:
            if s == src or d == dst:
                return False
        return True

    def pin(self, pair: Pair) -> None:
        """Permanently dedicate a spare channel to ``pair`` (failover).

        Pinned pairs take precedence over utilisation-ranked candidates on
        every reassignment, and the spare is installed immediately rather
        than waiting for the next epoch boundary -- the health monitor
        calls this when a primary channel dies mid-run. If the needed D
        antenna is still draining a retired assignment, the install is
        deferred until that drain completes (bounded by
        :attr:`drain_timeout`); relay routes cover the pair meanwhile.

        Raises
        ------
        ValueError
            If ``pair`` has no spare link or the D-antenna constraint
            (one outgoing + one incoming spare per cluster) cannot be met
            against already pinned pairs.
        """
        if pair in self.pinned:
            return
        if pair not in self.spare_links:
            raise ValueError(f"no spare D->D link for cluster pair {pair}")
        if not self._feasible(self.pinned, pair):
            raise ValueError(
                f"pinning {pair} violates the D-antenna constraint against "
                f"pinned pairs {self.pinned}"
            )
        self.pinned.append(pair)
        self.reassign()

    def unpin(self, pair: Pair) -> bool:
        """Release a failover pin (the pair's channel recovered).

        Returns ``True`` when the pair was pinned. The freed spare goes
        back into the placement pool on the immediate reassign; if packets
        are still committed to it the assignment drains first instead of
        being revoked under them.
        """
        if pair not in self.pinned:
            return False
        self.pinned.remove(pair)
        self.reassign()
        return True

    def set_desired(self, pairs: List[Pair]) -> None:
        """Hand spare placement to a control plane (managed mode).

        ``pairs`` is an ordered wish list; :meth:`reassign` installs the
        feasible prefix after the pinned failover pairs. Implies
        ``managed=True`` for every subsequent epoch.
        """
        self.managed = True
        self.desired = list(pairs)
        self.reassign()

    # ---------------- in-flight commitment tracking ---------------- #

    def occupancy(self, pair: Pair) -> int:
        """Packets committed to ``pair``'s spare leg and not yet home."""
        return self._leg_load.get(pair, 0)

    def committed_pair(self, pid: int) -> Optional[Pair]:
        """The spare pair packet ``pid`` is committed to, if any."""
        return self._pid_pair.get(pid)

    def track_steer(self, pid: int, pair: Pair) -> None:
        """Record that packet ``pid`` was steered onto ``pair``'s spare.

        Called by the routing layer at the ascend decision; idempotent
        (route computation may be re-run for a held packet).
        """
        if pid not in self._pid_pair:
            self._pid_pair[pid] = pair
            self._leg_load[pair] = self._leg_load.get(pair, 0) + 1

    def note_arrival(self, pid: int, cluster: int) -> None:
        """A tracked packet reached cluster ``cluster``: release its leg."""
        pair = self._pid_pair.get(pid)
        if pair is not None and pair[1] == cluster:
            del self._pid_pair[pid]
            self._leg_load[pair] -= 1

    def note_escape(self, pid: int, packet=None) -> None:
        """A committed packet lost its spare before crossing: escape path.

        Untracks the packet, latches ``packet.escaped`` (so it is never
        steered onto a spare again and restarts store-and-forward), and
        records the activation. Idempotent on untracked pids.
        """
        pair = self._pid_pair.pop(pid, None)
        if pair is None:
            return
        self._leg_load[pair] -= 1
        self.escapes += 1
        if packet is not None:
            packet.escaped = True
        self._emit("escape", pair, pid=pid)

    # ---------------- placement ---------------- #

    def _emit(self, event: str, pair: Pair, **detail) -> None:
        record: Dict[str, object] = {
            "cycle": self._now,
            "event": event,
            "pair": list(pair),
        }
        record.update(detail)
        self.transitions.append(record)
        if self.on_transition is not None:
            self.on_transition(record)
        if event != "escape" and self.invalidate_routes is not None:
            # Spare install/retire/revoke changes the route set; flush
            # heads still waiting on a VC so they re-route against the
            # new state ("escape" affects a single already-tracked packet
            # and is emitted mid-route-computation, so it is exempt).
            self.invalidate_routes()

    def _active_pairs(self) -> frozenset:
        return frozenset(
            pair
            for pair, a in self.assignments.items()
            if a.phase == PHASE_ACTIVE
        )

    def _revoke(self, a: SpareAssignment, event: str, **detail) -> None:
        del self.assignments[a.pair]
        a.link.channel_id = None  # back to an inert candidate
        self._emit(event, a.pair, channel=a.channel_index, **detail)

    def _retire(self, a: SpareAssignment) -> None:
        """Take an active assignment out of service (phase 1)."""
        if self.occupancy(a.pair) == 0:
            self._revoke(a, "revoke")  # leg already empty: re-point now
            return
        a.phase = PHASE_DRAINING
        a.drain_from = self._now
        self._n_draining += 1
        self.drains_started += 1
        self._emit(
            "drain_start",
            a.pair,
            channel=a.channel_index,
            in_flight=self.occupancy(a.pair),
        )

    def _advance_drains(self) -> bool:
        """Complete empty / timed-out drains. Returns True when any ended."""
        if not self._n_draining:
            return False
        ended = False
        for pair in sorted(self.assignments):
            a = self.assignments[pair]
            if a.phase != PHASE_DRAINING:
                continue
            waited = self._now - a.drain_from
            if self.occupancy(pair) == 0:
                self._n_draining -= 1
                self.drains_completed += 1
                self._revoke(a, "drain_complete", cycles=waited)
                ended = True
            elif waited >= self.drain_timeout:
                # Bounded wait expired: re-point anyway. Committed
                # stragglers stay tracked and resolve through
                # note_escape/note_arrival as they reach the D gateway or
                # their destination cluster.
                self._n_draining -= 1
                self.drain_timeouts += 1
                self._revoke(
                    a, "drain_timeout", cycles=waited,
                    in_flight=self.occupancy(pair),
                )
                ended = True
        return ended

    def _install_target(self) -> None:
        """Install wanted pairs into free antenna slots (phase 2)."""
        for pair in self._target:
            if pair in self.assignments:
                continue
            if len(self.assignments) >= N_SPARE_CHANNELS:
                break
            # Draining assignments still hold their D antennas, so a
            # blocked install simply waits for _advance_drains to free it.
            if not self._feasible(list(self.assignments), pair):
                continue
            used = {a.channel_index for a in self.assignments.values()}
            channel_index = min(
                i for i in range(13, 13 + N_SPARE_CHANNELS) if i not in used
            )
            link = self.spare_links[pair]
            link.channel_id = channel_index
            self.assignments[pair] = SpareAssignment(pair, channel_index, link)
            self._emit("install", pair, channel=channel_index)

    def reassign(self) -> None:
        """Give the spares to the hottest cluster pairs (greedy, feasible).

        Pinned (failover) pairs are assigned first, unconditionally. In
        managed mode the utilisation ranking is replaced by the control
        plane's :attr:`desired` list (see :meth:`set_desired`).

        Re-assignment is two-phase: an active assignment that falls out of
        the target set is revoked immediately only when its leg carries no
        committed packets; otherwise it enters DRAINING (new packets stop
        steering at it via :meth:`boosted`) and the channel is re-pointed
        by :meth:`_advance_drains` once the leg empties or
        :attr:`drain_timeout` expires. A draining pair re-selected by the
        target is resurrected in place.
        """
        usage = self.utilisation_last_epoch()
        if self.managed:
            ranked = [(pair, 1) for pair in self.desired]
        else:
            ranked = sorted(usage.items(), key=lambda kv: kv[1], reverse=True)
        chosen: List[Pair] = list(self.pinned)
        for pair, flits in ranked:
            if flits == 0 or len(chosen) >= N_SPARE_CHANNELS:
                break
            if pair not in chosen and self._feasible(chosen, pair):
                chosen.append(pair)
        before_active = self._active_pairs()
        self._target = chosen
        for pair in sorted(self.assignments):
            a = self.assignments[pair]
            if pair in self._target:
                if a.phase == PHASE_DRAINING:
                    # Re-chosen before the drain finished: resurrect.
                    a.phase = PHASE_ACTIVE
                    a.drain_from = -1
                    self._n_draining -= 1
                    self._emit("drain_cancel", pair, channel=a.channel_index)
            elif a.phase == PHASE_ACTIVE:
                self._retire(a)
        self._advance_drains()
        self._install_target()
        if self._active_pairs() != before_active:
            self.reassignments += 1
        # Snapshot counters for the next epoch.
        for pair, link in self.primary_links.items():
            self._last_counts[pair] = link.flits_carried

    # ------------------------------------------------------------------ #

    def __call__(self, sim) -> None:
        """Simulator end-of-cycle hook.

        Epoch boundaries trigger :meth:`reassign`; while any assignment is
        draining, every stepped cycle also advances the drain state machine
        so the channel is re-pointed the moment its leg empties (or the
        timeout expires), not at the next epoch boundary.
        """
        now = sim.now
        self._now = now
        if self._n_draining:
            before_active = self._active_pairs()
            if self._advance_drains():
                self._install_target()
                if self._active_pairs() != before_active:
                    self.reassignments += 1
        if now > 0 and now % self.epoch_cycles == 0:
            self.epochs += 1
            self.reassign()

    def next_wake(self, now: int) -> int:
        """Next epoch boundary (a scheduled fast-forward wake source).

        Lets the active-set simulator keep idle fast-forward enabled with
        this hook installed: the clock may skip quiescent stretches but
        must step every epoch boundary, where :meth:`__call__` acts.
        While a drain is in progress the controller wakes every cycle, so
        drain completion/timeout checks run on the dense clock (in
        practice a draining leg has buffered flits and the network is not
        quiescent anyway; this keeps the guarantee explicit).
        """
        if self._n_draining:
            return now + 1
        if now <= 0:
            return self.epoch_cycles
        if now % self.epoch_cycles == 0:
            return now
        return (now // self.epoch_cycles + 1) * self.epoch_cycles

    def boosted(self, src_cluster: int, dst_cluster: int) -> Optional[SpareAssignment]:
        """The ACTIVE assignment for a pair -- the steer-new-packets API.

        Draining assignments are deliberately invisible here: that is the
        mechanism by which phase 1 stops new traffic at the old spare.
        Use :meth:`assignment_for` for the committed-continuation view.
        """
        a = self.assignments.get((src_cluster, dst_cluster))
        if a is not None and a.phase == PHASE_ACTIVE:
            return a
        return None

    def steerable(self, src_cluster: int, dst_cluster: int) -> bool:
        """May *new* packets still be steered onto this pair's spare?"""
        return self.boosted(src_cluster, dst_cluster) is not None

    def assignment_for(self, pair: Pair) -> Optional[SpareAssignment]:
        """Active *or draining* assignment: committed packets may finish
        crossing a draining spare even though new packets no longer may."""
        return self.assignments.get(pair)

    def transition_crc(self) -> int:
        """CRC32 of the canonical phase-transition log (byte-stable)."""
        payload = json.dumps(
            self.transitions, sort_keys=True, separators=(",", ":")
        )
        return zlib.crc32(payload.encode("utf-8"))

    def summary(self) -> Dict[str, object]:
        draining = sorted(
            pair
            for pair, a in self.assignments.items()
            if a.phase == PHASE_DRAINING
        )
        return {
            "epochs": self.epochs,
            "reassignments": self.reassignments,
            "active_pairs": sorted(self._active_pairs()),
            "draining_pairs": draining,
            "pinned_pairs": list(self.pinned),
            "spare_flits": sum(
                a.link.flits_carried for a in self.assignments.values()
            ),
            "drains_started": self.drains_started,
            "drains_completed": self.drains_completed,
            "drain_timeouts": self.drain_timeouts,
            "escapes": self.escapes,
            "in_flight": len(self._pid_pair),
            "drain_state": [
                {
                    "pair": list(pair),
                    "phase": a.phase,
                    "cycles_in_drain": (
                        self._now - a.drain_from
                        if a.phase == PHASE_DRAINING
                        else 0
                    ),
                    "in_flight": self.occupancy(pair),
                }
                for pair, a in sorted(self.assignments.items())
            ],
        }

    def summary_metrics(self) -> Dict[str, float]:
        """Flat metrics folded into run summaries (diff-gateable)."""
        return {
            "spare_drains_started": float(self.drains_started),
            "spare_drains_completed": float(self.drains_completed),
            "spare_drain_timeouts": float(self.drain_timeouts),
            "spare_escapes": float(self.escapes),
            "drain_log_crc": float(self.transition_crc()),
        }

    def meta_payload(self) -> Dict[str, object]:
        """Drain state machine + transition log for ``RunResult.meta``."""
        return {
            "summary": self.summary(),
            "transitions": [dict(t) for t in self.transitions],
        }


def validate_spare_topology(spare_links: Dict[Pair, Link]) -> None:
    """Sanity checks the builder output: 12 ordered pairs, all wireless."""
    pairs = {(s, d) for s in range(4) for d in range(4) if s != d}
    if set(spare_links) != pairs:
        raise ValueError(
            f"spare links must cover all 12 ordered cluster pairs, got "
            f"{sorted(spare_links)}"
        )
    for link in spare_links.values():
        if link.kind != "wireless":
            raise ValueError(f"spare link {link.name} is not wireless")
