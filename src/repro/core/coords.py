"""OWN hierarchical addressing: the (g, c, t, p) quadruple.

"Each core is identified as a quadruple (g, c, t, p) where g identifies the
group, c identifies the cluster, t identifies the tile and p identifies the
processing element." (Sec. III-A)

OWN-256 has G=1, C=4, T=16, P=4 (the paper writes "G = 0" meaning a single
group, index 0); OWN-1024 has G=4. One router serves one tile, so router
ids enumerate (g, c, t) in the same mixed-radix order as cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class OwnDims:
    """Dimension parameters of an OWN instance."""

    groups: int = 1
    clusters: int = 4
    tiles: int = 16
    cores_per_tile: int = 4

    def __post_init__(self) -> None:
        for name in ("groups", "clusters", "tiles", "cores_per_tile"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def n_cores(self) -> int:
        return self.groups * self.clusters * self.tiles * self.cores_per_tile

    @property
    def n_routers(self) -> int:
        return self.groups * self.clusters * self.tiles

    # ---------------- core-id conversions ---------------- #

    def core_to_quad(self, core: int) -> Tuple[int, int, int, int]:
        """Flat core id -> (g, c, t, p)."""
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} out of range [0, {self.n_cores})")
        p = core % self.cores_per_tile
        t = (core // self.cores_per_tile) % self.tiles
        c = (core // (self.cores_per_tile * self.tiles)) % self.clusters
        g = core // (self.cores_per_tile * self.tiles * self.clusters)
        return (g, c, t, p)

    def quad_to_core(self, g: int, c: int, t: int, p: int) -> int:
        """(g, c, t, p) -> flat core id (validates every component)."""
        if not 0 <= g < self.groups:
            raise ValueError(f"group {g} out of range [0, {self.groups})")
        if not 0 <= c < self.clusters:
            raise ValueError(f"cluster {c} out of range [0, {self.clusters})")
        if not 0 <= t < self.tiles:
            raise ValueError(f"tile {t} out of range [0, {self.tiles})")
        if not 0 <= p < self.cores_per_tile:
            raise ValueError(f"pe {p} out of range [0, {self.cores_per_tile})")
        return ((g * self.clusters + c) * self.tiles + t) * self.cores_per_tile + p

    # ---------------- router-id conversions ---------------- #

    def router_of_core(self, core: int) -> int:
        return core // self.cores_per_tile

    def router_to_gct(self, rid: int) -> Tuple[int, int, int]:
        """Router id -> (g, c, t)."""
        if not 0 <= rid < self.n_routers:
            raise ValueError(f"router {rid} out of range [0, {self.n_routers})")
        t = rid % self.tiles
        c = (rid // self.tiles) % self.clusters
        g = rid // (self.tiles * self.clusters)
        return (g, c, t)

    def gct_to_router(self, g: int, c: int, t: int) -> int:
        if not 0 <= g < self.groups:
            raise ValueError(f"group {g} out of range [0, {self.groups})")
        if not 0 <= c < self.clusters:
            raise ValueError(f"cluster {c} out of range [0, {self.clusters})")
        if not 0 <= t < self.tiles:
            raise ValueError(f"tile {t} out of range [0, {self.tiles})")
        return (g * self.clusters + c) * self.tiles + t


#: The paper's two evaluated instances.
OWN256_DIMS = OwnDims(groups=1, clusters=4, tiles=16, cores_per_tile=4)
OWN1024_DIMS = OwnDims(groups=4, clusters=4, tiles=16, cores_per_tile=4)
