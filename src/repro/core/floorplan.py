"""OWN floorplan: cluster geometry, antenna placement, distance classes.

Sec. III-A: each cluster is 25 x 25 mm^2; four clusters tile a ~50 x 50 mm
2.5D assembly. Four wireless transceivers sit at the four *corners* of each
cluster ("by isolating the four transceivers to the four corners, we balance
the load ... as well as thermal impact"). Table I defines three distance
classes with their link-distance (LD) power factors:

=========  ================  ==========  =========
class      nominal distance  LD factor   channels
=========  ================  ==========  =========
C2C        ~60 mm (diagonal) 1.00        A0-B2, B2-A0, A3-B1, B1-A3
E2E        ~30 mm (edge)     0.50        A2-B3, B3-A2, A1-B0, B0-A1
SR         ~10 mm (short)    0.15        C0-C3, C3-C0, C1-C2, C2-C1
=========  ================  ==========  =========

The concrete antenna->corner assignment below is reconstructed so that every
pair in Table I falls into its stated class under Euclidean distance
(documented in DESIGN.md). Clusters are laid out 0=top-left, 1=top-right,
2=bottom-right, 3=bottom-left, which makes 0-2 / 1-3 the diagonals, 0-1 /
2-3 the (horizontal) edge pairs and 0-3 / 1-2 the short vertical pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Cluster edge [mm] (Sec. III-A: 25 x 25 mm^2, near the 61-core Xeon Phi die).
CLUSTER_EDGE_MM = 25.0

#: Antenna inset from the cluster corner [mm].
ANTENNA_INSET_MM = 2.5

#: Distance classes and their nominal lengths / LD power factors (Table I +
#: Sec. IV "Distance Scaling").
DISTANCE_CLASSES = ("C2C", "E2E", "SR")
NOMINAL_DISTANCE_MM = {"C2C": 60.0, "E2E": 30.0, "SR": 10.0}
LD_FACTOR = {"C2C": 1.0, "E2E": 0.5, "SR": 0.15}

#: Classification thresholds on measured antenna separation [mm]. SR caps at
#: the paper's ~10 mm short-range figure; wCMESH's 12.5 mm cluster-pitch
#: hops therefore classify as E2E.
_C2C_MIN_MM = 45.0
_SR_MAX_MM = 10.0

#: Cluster position in the 2x2 assembly: cluster id -> (col, row).
CLUSTER_GRID: Dict[int, Tuple[int, int]] = {0: (0, 0), 1: (1, 0), 2: (1, 1), 3: (0, 1)}

#: Antenna letter -> corner (TL/TR/BL/BR) for each cluster. Reconstructed so
#: every Table I pair lands in its stated distance class (see module doc).
ANTENNA_CORNER: Dict[int, Dict[str, str]] = {
    0: {"A": "TL", "D": "TR", "B": "BL", "C": "BR"},
    1: {"D": "TL", "B": "TR", "A": "BL", "C": "BR"},
    2: {"A": "TL", "C": "TR", "D": "BL", "B": "BR"},
    3: {"B": "TL", "C": "TR", "A": "BL", "D": "BR"},
}

#: Corner -> tile index in the 4x4 row-major tile grid of a cluster.
CORNER_TILE: Dict[str, int] = {"TL": 0, "TR": 3, "BL": 12, "BR": 15}

ANTENNA_LETTERS = ("A", "B", "C", "D")


@dataclass(frozen=True)
class Antenna:
    """One wireless transceiver: its cluster, letter, corner and position."""

    cluster: int
    letter: str
    corner: str
    position_mm: Tuple[float, float]

    @property
    def tile(self) -> int:
        """Tile (hence router) hosting this antenna within its cluster."""
        return CORNER_TILE[self.corner]

    @property
    def name(self) -> str:
        return f"{self.letter}{self.cluster}"


def cluster_origin_mm(cluster: int) -> Tuple[float, float]:
    """Top-left corner of the cluster in chip coordinates."""
    col, row = CLUSTER_GRID[cluster]
    return (col * CLUSTER_EDGE_MM, row * CLUSTER_EDGE_MM)


def corner_position_mm(cluster: int, corner: str) -> Tuple[float, float]:
    """Chip-coordinate position of a cluster corner (with antenna inset)."""
    ox, oy = cluster_origin_mm(cluster)
    lo = ANTENNA_INSET_MM
    hi = CLUSTER_EDGE_MM - ANTENNA_INSET_MM
    dx, dy = {"TL": (lo, lo), "TR": (hi, lo), "BL": (lo, hi), "BR": (hi, hi)}[corner]
    return (ox + dx, oy + dy)


def antenna(cluster: int, letter: str) -> Antenna:
    """The antenna object for e.g. ('A', 0) -> A0."""
    if cluster not in CLUSTER_GRID:
        raise ValueError(f"cluster must be 0..3, got {cluster}")
    if letter not in ANTENNA_LETTERS:
        raise ValueError(f"antenna letter must be one of {ANTENNA_LETTERS}, got {letter!r}")
    corner = ANTENNA_CORNER[cluster][letter]
    return Antenna(cluster, letter, corner, corner_position_mm(cluster, corner))


def all_antennas() -> List[Antenna]:
    return [antenna(c, a) for c in range(4) for a in ANTENNA_LETTERS]


def distance_mm(a: Antenna, b: Antenna) -> float:
    ax, ay = a.position_mm
    bx, by = b.position_mm
    return math.hypot(ax - bx, ay - by)


def classify_distance(d_mm: float) -> str:
    """Map a physical antenna separation onto the Table I class."""
    if d_mm >= _C2C_MIN_MM:
        return "C2C"
    if d_mm <= _SR_MAX_MM:
        return "SR"
    return "E2E"


def tile_position_mm(cluster: int, tile: int) -> Tuple[float, float]:
    """Centre of a tile's router on the chip (4x4 tiles per cluster)."""
    if not 0 <= tile < 16:
        raise ValueError(f"tile must be 0..15, got {tile}")
    ox, oy = cluster_origin_mm(cluster)
    pitch = CLUSTER_EDGE_MM / 4
    x = ox + (tile % 4 + 0.5) * pitch
    y = oy + (tile // 4 + 0.5) * pitch
    return (x, y)


def segments_intersect(
    p1: Tuple[float, float],
    p2: Tuple[float, float],
    q1: Tuple[float, float],
    q2: Tuple[float, float],
) -> bool:
    """Do the open segments p1-p2 and q1-q2 cross?

    Used by the SDM (space-division multiplexing) analysis of Sec. V-B: two
    wireless channels may reuse the same carrier frequency when their
    propagation paths do not intersect.
    """

    def orient(a, b, c) -> float:
        return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])

    d1 = orient(q1, q2, p1)
    d2 = orient(q1, q2, p2)
    d3 = orient(p1, p2, q1)
    d4 = orient(p1, p2, q2)
    if (d1 * d2 < 0) and (d3 * d4 < 0):
        return True  # proper crossing
    if d1 == d2 == d3 == d4 == 0:
        # Collinear: interfere when the 1-D projections overlap in more
        # than a point (e.g. the forward and reverse channels of a pair
        # share the whole propagation path).
        lo_x = max(min(p1[0], p2[0]), min(q1[0], q2[0]))
        hi_x = min(max(p1[0], p2[0]), max(q1[0], q2[0]))
        lo_y = max(min(p1[1], p2[1]), min(q1[1], q2[1]))
        hi_y = min(max(p1[1], p2[1]), max(q1[1], q2[1]))
        return (lo_x < hi_x) or (lo_y < hi_y)
    # Single-point endpoint touches (T-shapes) are not interference-
    # relevant crossings for SDM purposes.
    return False
