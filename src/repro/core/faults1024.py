"""Wireless channel fault tolerance for OWN-1024 (group-level relay).

Extends :mod:`repro.core.faults` to kilo-core scale. A failed inter-group
SWMR channel (g_s -> g_d) is relayed through an intermediate group g_x:

1. photonic ascent to the (g_s -> g_x) gateway in the source cluster,
2. wireless leg 1 to group g_x -- the SWMR resolver delivers to the
   packet's destination-cluster antenna inside g_x, where every letter
   antenna exists, so no resolver change is needed,
3. a *middle* photonic hop inside that cluster to the (g_x -> g_d) gateway,
4. wireless leg 2 to the destination group,
5. photonic descent to the destination tile.

VC discipline (mirrors the OWN-256 fault scheme; the paper's per-direction
wireless classes are collapsed into per-leg classes while faults are
present): photonic VC0 first ascent / VC1 middle ascent / VCs {2,3}
descent; wireless VCs {0,1} leg 1 / {2,3} final leg. The order

    ph0 < w{0,1} < ph1 < w{2,3} < ph{2,3} < sink

is strictly increasing along direct (3-hop) and relayed (5-hop) paths
alike, hence deadlock-free; the overload tests exercise it with multiple
simultaneous failures.

Intra-group (D-antenna) channels have no relay alternative inside this
scheme -- failing one raises :class:`~repro.core.faults.UnroutableError`
immediately rather than producing undeliverable traffic.
"""

from __future__ import annotations

from typing import Sequence, Set, Tuple

from repro.core.faults import UnroutableError
from repro.core.routing import Own1024Routing
from repro.noc.router import Router


class FaultTolerantOwn1024Routing(Own1024Routing):
    """OWN-1024 routing that relays around failed inter-group channels."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.failed_pairs: Set[Tuple[int, int]] = set()
        self.relayed_packets = 0

    # ---------------- fault management ---------------- #

    def fail_channel(self, src_group: int, dst_group: int) -> None:
        """Mark the inter-group channel dead.

        Raises
        ------
        UnroutableError
            For intra-group channels (no relay exists) or when the failure
            leaves some ordered group pair without a two-leg alternative.
        """
        if src_group == dst_group:
            raise UnroutableError(
                f"intra-group channel g{src_group} has no relay alternative"
            )
        self.failed_pairs.add((src_group, dst_group))
        for gs in range(4):
            for gd in range(4):
                if gs != gd:
                    self._next_group(gs, gd)  # raises if stuck

    def restore_channel(self, src_group: int, dst_group: int) -> None:
        self.failed_pairs.discard((src_group, dst_group))

    def alive(self, gs: int, gd: int) -> bool:
        return gs == gd or (gs, gd) not in self.failed_pairs

    def _relay_for(self, gs: int, gd: int) -> int:
        for gx in range(4):
            if gx in (gs, gd):
                continue
            if self.alive(gs, gx) and self.alive(gx, gd):
                return gx
        raise UnroutableError(
            f"no live relay from group {gs} to {gd}; "
            f"failed={sorted(self.failed_pairs)}"
        )

    def _next_group(self, gs: int, gd: int) -> int:
        if self.alive(gs, gd):
            return gd
        return self._relay_for(gs, gd)

    def _legs_remaining(self, g_cur: int, g_dst: int) -> int:
        if g_cur == g_dst:
            return 0  # any remaining wireless is the intra-group final leg
        return 1 if self.alive(g_cur, g_dst) else 2

    # ---------------- routing ---------------- #

    def compute(self, router: Router, packet) -> int:
        rid = router.rid
        dst_rid = self._dst_rid(packet)
        if dst_rid == rid:
            return self.net.core_eject_port[packet.dst_core]
        g_cur, c_cur, _ = self._gct(rid)
        g_dst, c_dst, _ = self._gct(dst_rid)
        if (g_cur, c_cur) == (g_dst, c_dst):
            return self.photonic_port[(rid, dst_rid)]
        if g_cur == g_dst:
            # Intra-group cluster change: the D-antenna channel, as normal.
            channel = self.channel_map[(g_cur, g_dst)]
        else:
            g_next = self._next_group(g_cur, g_dst)
            channel = self.channel_map[(g_cur, g_next)]
            if g_next != g_dst:
                gateway_probe = self.gateway_rid[(channel.channel_index, c_cur)]
                if rid == gateway_probe:
                    self.relayed_packets += 1
        gateway = self.gateway_rid[(channel.channel_index, c_cur)]
        if rid == gateway:
            return self.wireless_port[(rid, channel.channel_index)]
        return self.photonic_port[(rid, gateway)]

    def allowed_vcs(self, router: Router, out_port: int, packet) -> Sequence[int]:
        link = router.out_links[out_port]
        dst_rid = self._dst_rid(packet)
        g_dst, c_dst, _ = self._gct(dst_rid)
        g_cur, c_cur, _ = self._gct(router.rid)
        if g_cur == g_dst and c_cur != c_dst:
            legs = 1  # intra-group wireless hop still ahead
        else:
            legs = self._legs_remaining(g_cur, g_dst)
        if link.kind == "photonic":
            if legs == 0 and (g_cur, c_cur) == (g_dst, c_dst):
                return (2, 3)
            if legs <= 1:
                return (1,)
            return (0,)
        if link.kind == "wireless":
            return (2, 3) if legs <= 1 else (0, 1)
        return range(router.num_vcs)


def build_fault_tolerant_own1024(**kwargs):
    """Build OWN-1024 with group-level relay routing installed.

    Mirrors :func:`repro.core.faults.build_fault_tolerant_own256`; the
    routing object is exposed in ``built.notes["routing"]``.
    """
    from repro.core.own1024 import build_own1024

    built = build_own1024(**kwargs)
    net = built.network
    # Rebuild the routing function with the same port maps.
    old_routing = net.routers[0].routing
    routing = FaultTolerantOwn1024Routing(
        old_routing.net,
        old_routing.dims,
        old_routing.photonic_port,
        old_routing.wireless_port,
        old_routing.channel_map,
        old_routing.gateway_rid,
    )
    net.set_routing(routing)
    built.notes["routing"] = routing
    built.params["fault_tolerant"] = True
    return built
