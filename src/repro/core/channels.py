"""Wireless channel allocation for OWN-256 (Table I) and OWN-1024 (Table II).

OWN-256 uses 12 dedicated unidirectional channels between cluster pairs,
grouped by Table I's distance classes; channels 13-16 are "reserved for
reconfiguration channels" (Sec. IV, Table III). OWN-1024 needs all 16:
12 inter-group SWMR channels (one per ordered group pair) plus 4 intra-group
channels (one per group, on the D antennas -- "one additional wireless
channel is used for intra-group communication", Sec. III-B).

Channel *indices* (1..16) tie each assignment to a Table III row, i.e. to a
link frequency, a device technology and an energy/bit; the allocator orders
them so the longest links take the lowest-index (lowest-frequency, most
efficient) bands -- the optimisation Sec. IV motivates.

The SDM analysis of Sec. V-B ("we could assign B3-A2 and B0-A1 the same
channel frequency since the signals do not intersect") is implemented by
:func:`sdm_frequency_reuse_groups`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.floorplan import (
    Antenna,
    antenna,
    classify_distance,
    distance_mm,
    segments_intersect,
)

#: Table I: ordered cluster pair -> (tx antenna letter, rx antenna letter).
#: E.g. cluster 3 -> cluster 1 transmits on A3 and is received by B1.
CLUSTER_PAIR_ANTENNAS: Dict[Tuple[int, int], Tuple[str, str]] = {
    (0, 2): ("A", "B"),
    (2, 0): ("B", "A"),
    (3, 1): ("A", "B"),
    (1, 3): ("B", "A"),
    (2, 3): ("A", "B"),
    (3, 2): ("B", "A"),
    (0, 1): ("B", "A"),
    (1, 0): ("A", "B"),
    (0, 3): ("C", "C"),
    (3, 0): ("C", "C"),
    (1, 2): ("C", "C"),
    (2, 1): ("C", "C"),
}

#: Inter-group antenna letter by group offset (Table II: group 0 transmits to
#: group 1 on the A antennas, etc.).
GROUP_OFFSET_ANTENNA: Dict[int, str] = {1: "A", 2: "B", 3: "C"}

#: Intra-group communication uses the D antennas (Sec. III-A/B).
INTRA_GROUP_ANTENNA = "D"

#: Group placement mirrors the cluster 2x2 grid: 0=TL, 1=TR, 2=BR, 3=BL.
GROUP_GRID: Dict[int, Tuple[int, int]] = {0: (0, 0), 1: (1, 0), 2: (1, 1), 3: (0, 1)}


@dataclass(frozen=True)
class ChannelAssignment:
    """One wireless channel: endpoints, distance class, Table III index."""

    channel_index: int  # 1-based row in Table III
    src_cluster: int
    dst_cluster: int
    tx: str  # antenna letter at the source
    rx: str  # antenna letter at the destination
    distance_class: str  # C2C / E2E / SR
    distance_mm: float
    src_group: int = 0
    dst_group: int = 0
    multicast: bool = False  # SWMR inter-group channels in OWN-1024

    @property
    def name(self) -> str:
        if self.src_group == self.dst_group == 0 and not self.multicast:
            return f"{self.tx}{self.src_cluster}->{self.rx}{self.dst_cluster}"
        return f"g{self.src_group}{self.tx}->g{self.dst_group}{self.rx}"


def _pair_distance(src_cluster: int, dst_cluster: int, tx: str, rx: str) -> float:
    return distance_mm(antenna(src_cluster, tx), antenna(dst_cluster, rx))


def own256_channels() -> List[ChannelAssignment]:
    """The 12 OWN-256 channels of Table I, ordered C2C -> E2E -> SR.

    Channel indices 1-12 map onto Table III rows; the longest (C2C) links
    take the lowest-frequency bands where CMOS efficiency is best.
    """
    entries: List[Tuple[str, float, Tuple[int, int], Tuple[str, str]]] = []
    for (src, dst), (tx, rx) in CLUSTER_PAIR_ANTENNAS.items():
        d = _pair_distance(src, dst, tx, rx)
        entries.append((classify_distance(d), d, (src, dst), (tx, rx)))
    order = {"C2C": 0, "E2E": 1, "SR": 2}
    entries.sort(key=lambda e: (order[e[0]], e[2]))
    channels = []
    for idx, (cls, d, (src, dst), (tx, rx)) in enumerate(entries, start=1):
        channels.append(
            ChannelAssignment(
                channel_index=idx,
                src_cluster=src,
                dst_cluster=dst,
                tx=tx,
                rx=rx,
                distance_class=cls,
                distance_mm=d,
            )
        )
    return channels


def own256_channel_map() -> Dict[Tuple[int, int], ChannelAssignment]:
    """Ordered cluster pair -> channel (routing lookup)."""
    return {(ch.src_cluster, ch.dst_cluster): ch for ch in own256_channels()}


def _group_pair_class(src_group: int, dst_group: int) -> str:
    """Distance class of an inter-group channel.

    Groups sit on the same 2x2 grid as clusters: diagonal pairs are C2C,
    horizontal pairs E2E, vertical pairs SR (Sec. III-B argues 3D-stacked
    groups keep distances "similar ... from before").
    """
    (sx, sy), (dx, dy) = GROUP_GRID[src_group], GROUP_GRID[dst_group]
    if sx != dx and sy != dy:
        return "C2C"
    if sy == dy:
        return "E2E"
    return "SR"


def own1024_channels() -> List[ChannelAssignment]:
    """All 16 OWN-1024 channels: 12 inter-group SWMR + 4 intra-group.

    "It must be noted that in the 1024-core case, we need 16 wireless
    channels and not 12 as in 256-core case." (Sec. V-C)
    """
    inter: List[Tuple[str, int, int, str]] = []
    for src_group in range(4):
        for offset in (1, 2, 3):
            dst_group = (src_group + offset) % 4
            letter = GROUP_OFFSET_ANTENNA[offset]
            inter.append((_group_pair_class(src_group, dst_group), src_group, dst_group, letter))
    order = {"C2C": 0, "E2E": 1, "SR": 2}
    inter.sort(key=lambda e: (order[e[0]], e[1], e[2]))

    channels: List[ChannelAssignment] = []
    for idx, (cls, sg, dg, letter) in enumerate(inter, start=1):
        channels.append(
            ChannelAssignment(
                channel_index=idx,
                src_cluster=-1,  # any cluster of the source group may transmit
                dst_cluster=-1,  # the intended cluster of the dst group forwards
                tx=letter,
                rx=letter,
                distance_class=cls,
                distance_mm=NOMINAL_GROUP_DISTANCE_MM[cls],
                src_group=sg,
                dst_group=dg,
                multicast=True,
            )
        )
    # Intra-group channels take the four remaining (reconfiguration) bands.
    for g in range(4):
        channels.append(
            ChannelAssignment(
                channel_index=13 + g,
                src_cluster=-1,
                dst_cluster=-1,
                tx=INTRA_GROUP_ANTENNA,
                rx=INTRA_GROUP_ANTENNA,
                distance_class="SR",
                distance_mm=NOMINAL_GROUP_DISTANCE_MM["SR"],
                src_group=g,
                dst_group=g,
                multicast=True,
            )
        )
    return channels


#: Nominal inter-/intra-group propagation distances [mm] under the 3D-stacked
#: group layout of Sec. III-B.
NOMINAL_GROUP_DISTANCE_MM = {"C2C": 60.0, "E2E": 30.0, "SR": 10.0}


def own1024_channel_map() -> Dict[Tuple[int, int], ChannelAssignment]:
    """Ordered group pair (src != dst) or (g, g) for intra -> channel."""
    return {(ch.src_group, ch.dst_group): ch for ch in own1024_channels()}


def channel_segments() -> Dict[str, Tuple[Tuple[float, float], Tuple[float, float]]]:
    """Physical propagation segments of the 12 OWN-256 channels."""
    segs = {}
    for ch in own256_channels():
        a = antenna(ch.src_cluster, ch.tx)
        b = antenna(ch.dst_cluster, ch.rx)
        segs[ch.name] = (a.position_mm, b.position_mm)
    return segs


def sdm_frequency_reuse_groups() -> List[List[str]]:
    """Greedy grouping of channels whose paths never intersect (SDM).

    Channels in the same group may share one carrier frequency; Sec. V-B
    proposes this to stretch the four CMOS-friendly bands across more links.
    Greedy first-fit over the channel list gives a deterministic grouping.
    """
    segs = channel_segments()
    groups: List[List[str]] = []
    for name, seg in segs.items():
        placed = False
        for group in groups:
            if all(not segments_intersect(*seg, *segs[other]) for other in group):
                group.append(name)
                placed = True
                break
        if not placed:
            groups.append([name])
    return groups
