"""Fault-injection scheduling: deterministic campaigns of fault events.

A :class:`FaultCampaign` is an ordered collection of fault events
(:mod:`repro.faults.models`) applied to the network at fixed cycles. The
campaign is fully determined at construction -- either explicitly (tests,
targeted failure scenarios) or drawn from a named stream of
:class:`repro.utils.rng.RngStreams` (degradation sweeps), so the same seed
always reproduces the same fault timeline regardless of what the traffic
generator draws.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.utils.rng import RngStreams

from repro.faults.models import (
    FaultEvent,
    PermanentFault,
    TokenLossFault,
    TransientFault,
)

#: Expanded schedule actions: penalty deltas at burst start/end, plus the
#: permanent / token events verbatim.
_PENALTY = "penalty"


class FaultCampaign:
    """A deterministic, cycle-stamped schedule of fault events.

    Parameters
    ----------
    events:
        Fault events in any order; the campaign expands transient bursts
        into (start, +penalty) / (end, -penalty) actions keyed by cycle.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: List[FaultEvent] = list(events)
        self._actions: Dict[int, List[Tuple]] = {}
        for ev in self.events:
            self._expand(ev)

    def _expand(self, ev: FaultEvent) -> None:
        if ev.at < 0:
            raise ValueError(f"fault event scheduled before cycle 0: {ev!r}")
        if isinstance(ev, TransientFault):
            self._actions.setdefault(ev.at, []).append(
                (_PENALTY, ev.target, ev.snr_penalty_db)
            )
            self._actions.setdefault(ev.at + ev.duration, []).append(
                (_PENALTY, ev.target, -ev.snr_penalty_db)
            )
        else:
            self._actions.setdefault(ev.at, []).append((type(ev).__name__, ev))

    def add(self, ev: FaultEvent) -> None:
        self.events.append(ev)
        self._expand(ev)

    def actions_at(self, cycle: int) -> Optional[List[Tuple]]:
        """Actions taking effect this cycle (``None`` when there are none).

        The fault layer pops entries as it consumes them, so each action
        fires exactly once.
        """
        return self._actions.pop(cycle, None)

    @property
    def is_empty(self) -> bool:
        return not self._actions

    def next_cycle(self, start: int) -> Optional[int]:
        """Earliest cycle >= ``start`` with pending actions, if any.

        The simulator's fast-forward uses this as a wake source so a clock
        skip never jumps over a scheduled fault action.
        """
        future = [c for c in self._actions if c >= start]
        return min(future) if future else None

    def last_cycle(self) -> int:
        """Cycle after which the campaign has no further effect."""
        return max(self._actions) if self._actions else 0

    # ------------------------------------------------------------------ #
    # Generators
    # ------------------------------------------------------------------ #

    @classmethod
    def bursty(
        cls,
        link_names: Sequence[str],
        cycles: int,
        rng_streams: RngStreams,
        burst_rate: float,
        burst_duration: int = 50,
        snr_penalty_db: float = 5.0,
        stream_key: object = "campaign",
    ) -> "FaultCampaign":
        """Random interference bursts, Bernoulli per link per cycle.

        Each cycle, each named link independently starts a burst with
        probability ``burst_rate``. Draws come from a dedicated RNG stream
        so changing the campaign never perturbs traffic randomness.
        """
        if not 0.0 <= burst_rate <= 1.0:
            raise ValueError(f"burst_rate must be in [0, 1], got {burst_rate}")
        events: List[FaultEvent] = []
        if burst_rate > 0.0 and link_names:
            gen = rng_streams.get("faults", stream_key)
            # One vectorised draw per link keeps the schedule cheap to build
            # even for multi-thousand-cycle campaigns.
            for name in link_names:
                starts = (gen.random(cycles) < burst_rate).nonzero()[0]
                for at in starts:
                    events.append(
                        TransientFault(
                            at=int(at),
                            duration=burst_duration,
                            snr_penalty_db=snr_penalty_db,
                            target=name,
                        )
                    )
        return cls(events)
