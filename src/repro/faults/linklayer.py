"""Link-layer CRC + ACK/NACK retransmission over faulty channels.

The :class:`FaultLayer` sits between the cycle loop and the wireless /
photonic links. It plays three roles:

* **injection** -- applies the :class:`~repro.faults.campaign.FaultCampaign`
  schedule to per-link :class:`~repro.faults.models.LinkFaultState` and to
  shared-medium tokens, and samples each transmission attempt's CRC outcome
  from the link's effective OOK error probability;
* **protocol** -- tracks every packet sent over a protected link in a
  bounded replay buffer until the receiver's ACK retires it; a NACK
  (CRC failure) or timeout (dead transceiver: no reply at all) schedules a
  retransmission with exponential backoff;
* **recovery** -- when the health monitor retires a channel
  (``state.failed_over``), packets stranded in the replay/retransmit
  machinery are re-injected at the sender-side router's network interface
  so they re-route over the surviving paths (no packet is ever lost).

Corruption model: an attempt's CRC outcome is decided once, at head-flit
send time, and every flit of the attempt shares the fate. Under virtual
cut-through a downstream router may forward early flits before the tail's
CRC could be checked, so per-flit sampling would let corrupt packets leak
past the link layer; deciding per *attempt* is statistically identical for
a packet-level CRC (P[any bit of the packet flips]) and keeps corrupt data
out of downstream buffers entirely. Receivers discard fated flits at
delivery (returning the buffer credit immediately), so timing and credit
accounting stay exact.

Transparency guarantee: on a fault-free run (empty campaign) no link ever
has a positive error probability, so no RNG is consumed, no ACK ever turns
into a NACK, and the retransmit engine never activates -- the simulator
reproduces unprotected latency/throughput numbers bit-exactly.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.noc.links import Link, PHOTONIC, WIRELESS
from repro.utils.rng import RngStreams

from repro.faults.campaign import FaultCampaign
from repro.faults.models import CORRUPT, LOST, LinkFaultState, Target


def _link_name(link: Link) -> str:
    return link.name

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.packet import Flit, Packet
    from repro.noc.simulator import Simulator

#: Event tag used in the simulator's event queue for ACK/NACK arrivals.
ACK_EVENT = "llack"


@dataclass(frozen=True)
class LinkLayerConfig:
    """Protocol parameters for the link-layer retransmission engine.

    Attributes
    ----------
    replay_capacity:
        Outstanding (sent, not yet acknowledged) packets a sender buffers
        per link. When full, the link back-pressures new packets.
    ack_latency:
        Reverse-channel cycles for an ACK/NACK to reach the sender after
        the tail flit arrives.
    timeout:
        Cycles after the tail flit is sent before the sender presumes the
        attempt lost. Must exceed the ACK round trip of every protected
        link (validated at install), otherwise a slow ACK would race its
        own timeout and duplicate the packet.
    backoff_base, backoff_cap:
        Retransmission delay is ``min(cap, base * 2**(attempts-1))``.
    max_retries:
        Attempts before the sender gives up on the link and escalates to
        network-layer recovery (re-injection, which re-routes).
    protect_kinds:
        Link kinds the protocol covers; electrical mesh links are assumed
        reliable (as in the paper).
    """

    replay_capacity: int = 8
    ack_latency: int = 1
    timeout: int = 64
    backoff_base: int = 4
    backoff_cap: int = 64
    max_retries: int = 16
    protect_kinds: Tuple[str, ...] = (WIRELESS, PHOTONIC)

    def __post_init__(self) -> None:
        if self.replay_capacity < 1:
            raise ValueError("replay_capacity must be >= 1")
        if self.ack_latency < 1:
            raise ValueError("ack_latency must be >= 1")
        if self.backoff_base < 1 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 1 <= backoff_base <= backoff_cap")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")


class _ReplayEntry:
    """A sent-but-unacknowledged packet in a link's replay buffer."""

    __slots__ = ("packet", "attempts", "deadline", "fate")

    def __init__(self, packet: "Packet", attempts: int, deadline: int,
                 fate: Optional[str]) -> None:
        self.packet = packet
        self.attempts = attempts
        self.deadline = deadline
        self.fate = fate


class _RetxJob:
    """A packet queued for retransmission (after NACK/timeout + backoff)."""

    __slots__ = ("packet", "attempts", "not_before")

    def __init__(self, packet: "Packet", attempts: int, not_before: int) -> None:
        self.packet = packet
        self.attempts = attempts
        self.not_before = not_before


class _CurrentTx:
    """An in-progress engine retransmission (one flit serialised per cycle)."""

    __slots__ = ("packet", "flits", "idx", "endpoint", "out_vc", "attempts")

    def __init__(self, packet: "Packet", flits: List["Flit"], endpoint,
                 out_vc: int, attempts: int) -> None:
        self.packet = packet
        self.flits = flits
        self.idx = 0
        self.endpoint = endpoint
        self.out_vc = out_vc
        self.attempts = attempts


class FaultLayer:
    """Fault injection + link-layer retransmission for one simulation.

    Usage::

        layer = FaultLayer(network, campaign=campaign, rng=RngStreams(seed))
        sim = Simulator(network, traffic=..., faults=layer)

    Parameters
    ----------
    network:
        The finalized network whose wireless/photonic links to protect.
    campaign:
        Fault schedule; ``None`` or an empty campaign means the protocol
        runs transparently (see module docstring).
    config:
        Protocol parameters.
    rng:
        Deterministic stream factory for CRC-outcome sampling. Defaults to
        a fresh ``RngStreams(0)``; pass the experiment's streams for
        reproducible sweeps.
    """

    def __init__(
        self,
        network,
        campaign: Optional[FaultCampaign] = None,
        config: Optional[LinkLayerConfig] = None,
        rng: Optional[RngStreams] = None,
    ) -> None:
        self.network = network
        self.campaign = campaign
        self.config = config or LinkLayerConfig()
        self.rng = rng or RngStreams(0)
        self.sim: Optional["Simulator"] = None
        self._tracer = None  # set at install() from the simulator
        self._flit_bits = network.flit_width_bits

        #: Protected links and their health state (also set as link.fault).
        self.protected: Dict[Link, LinkFaultState] = {}
        self._by_name: Dict[str, Link] = {}
        self._media_by_name = {m.name: m for m in network.mediums}
        for link in network.links:
            if link.kind in self.config.protect_kinds:
                state = LinkFaultState()
                link.fault = state
                self.protected[link] = state
                self._by_name[link.name] = link

        # Protocol state, all keyed per link:
        self._in_transit: Dict[Tuple[int, int], Optional[str]] = {}
        self._attempt_no: Dict[Tuple[int, int], int] = {}
        self._replay: Dict[Link, "OrderedDict[int, _ReplayEntry]"] = {}
        self._retx: Dict[Link, Deque[_RetxJob]] = {}
        self._current: Dict[Link, _CurrentTx] = {}
        #: Links needing per-cycle service (non-empty replay/retx/current).
        self._active: Set[Link] = set()
        self._reentry: Dict[int, int] = {}  # rid -> a core attached there

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def install(self, sim: "Simulator") -> None:
        """Attach to a simulator (called by ``Simulator.__init__``)."""
        self.sim = sim
        self._tracer = sim._tracer
        cfg = self.config
        for link in self.protected:
            rtt = link.latency + cfg.ack_latency
            if cfg.timeout <= rtt:
                raise ValueError(
                    f"timeout {cfg.timeout} must exceed the ACK round trip "
                    f"{rtt} of protected link {link.name}; a slow ACK would "
                    f"race its own timeout and duplicate the packet"
                )

    def _rng_for(self, link: Link):
        return self.rng.get("linklayer", link.name)

    # ------------------------------------------------------------------ #
    # Send-path tap (called from Simulator._send_fn on protected links)
    # ------------------------------------------------------------------ #

    def note_send(self, link: Link, flit: "Flit", now: int) -> None:
        """Decide/mark the flit's fate; finalise the attempt at the tail."""
        state = link.fault
        key = (id(link), flit.packet.pid)
        if flit.is_head:
            if state.dead or state.failed_over:
                fate: Optional[str] = LOST
                state.lost_attempts += 1
            else:
                p = state.attempt_error_prob(self._flit_bits, flit.packet.size_flits)
                fate = CORRUPT if p > 0.0 and self._rng_for(link).random() < p else None
                if fate is CORRUPT:
                    state.corrupt_attempts += 1
            state.attempts += 1
            self._in_transit[key] = fate
        else:
            fate = self._in_transit[key]
        if fate is not None:
            flit.fate = fate
            state.crc_drop_flits += 1
        if flit.is_tail:
            del self._in_transit[key]
            self._finish_attempt(link, flit.packet, fate, now)

    def _finish_attempt(self, link: Link, packet: "Packet",
                        fate: Optional[str], now: int) -> None:
        state = link.fault
        attempts = self._attempt_no.pop((id(link), packet.pid), 1)
        if fate is LOST and state.failed_over:
            # Channel already retired: skip the pointless timeout wait and
            # escalate straight to network-layer recovery.
            self._recover(link, packet, now)
            return
        entry = _ReplayEntry(packet, attempts, now + self.config.timeout, fate)
        self._replay.setdefault(link, OrderedDict())[packet.pid] = entry
        self._active.add(link)
        if fate is not LOST:
            # The receiver sees the tail at now + latency and replies on the
            # reverse channel: ACK for a clean CRC, NACK for a corrupt one.
            # A dead transceiver stays silent; the replay deadline handles it.
            ok = fate is None
            when = now + link.latency + self.config.ack_latency
            self.sim._schedule(when, (ACK_EVENT, link, packet.pid, ok))

    # ------------------------------------------------------------------ #
    # Delivery tap (called from Simulator._deliver for fated flits)
    # ------------------------------------------------------------------ #

    def note_drop(self, endpoint, vc: int, flit: "Flit", now: int) -> None:
        """Receiver-side discard of a corrupt/lost flit.

        The buffer slot the sender reserved is freed immediately (the flit
        never enters the downstream VC queue), keeping credit accounting
        exact.
        """
        endpoint.return_credit(vc)
        self.sim.stats.flits_dropped += 1
        if self._tracer is not None:
            self._tracer.on_flit_dropped(endpoint, flit, now)

    # ------------------------------------------------------------------ #
    # ACK/NACK arrivals (delegated from the simulator's event loop)
    # ------------------------------------------------------------------ #

    def handle_event(self, ev: Tuple, now: int) -> None:
        _, link, pid, ok = ev
        link.control_msgs += 1
        state = link.fault
        entries = self._replay.get(link)
        entry = entries.pop(pid, None) if entries else None
        if ok:
            self.sim.stats.acks += 1
            state.acks += 1
            state.consecutive_failures = 0
            return
        self.sim.stats.nacks += 1
        state.nacks += 1
        state.consecutive_failures += 1
        if entry is not None:
            # entry is None when the attempt already timed out or the
            # channel was quiesced; the packet is being handled elsewhere.
            self._requeue(link, entry.packet, entry.attempts, now)

    def _backoff(self, attempts: int) -> int:
        return min(self.config.backoff_cap,
                   self.config.backoff_base * (1 << (attempts - 1)))

    def _requeue(self, link: Link, packet: "Packet", attempts: int,
                 now: int) -> None:
        state = link.fault
        if state.failed_over or attempts >= self.config.max_retries:
            self._recover(link, packet, now)
            return
        job = _RetxJob(packet, attempts, now + self._backoff(attempts))
        self._retx.setdefault(link, deque()).append(job)
        self._active.add(link)
        if self._tracer is not None:
            self._tracer.on_retx_queued(link, packet, now)

    # ------------------------------------------------------------------ #
    # Per-cycle phase (between medium arbitration and switch allocation)
    # ------------------------------------------------------------------ #

    def tick(self, sim: "Simulator", now: int) -> int:
        """Apply scheduled faults and run the retransmit engines.

        Runs after token arbitration so freshly granted engines can
        transmit, and before switch allocation so retransmissions have
        priority over new packets (the engine's send marks the link busy).
        Returns the number of flits moved (for the progress watchdog).
        """
        if self.campaign is not None and not self.campaign.is_empty:
            actions = self.campaign.actions_at(now)
            if actions:
                self._apply_actions(actions, now)
        if not self._active:
            return 0
        moved = 0
        # Sorted by link name: service order is observable (two links can
        # recover packets into the same NI queue), and id-based set order
        # would differ between otherwise identical simulations.
        for link in sorted(self._active, key=_link_name):
            moved += self._service(sim, link, now)
        return moved

    def next_action_cycle(self, start: int) -> Optional[int]:
        """Earliest campaign action cycle >= ``start`` (fast-forward wake).

        Only the *campaign schedule* needs surfacing here: all other
        protocol activity (timeouts, backoffs, replays) keeps ``_active``
        non-empty, which already pins the simulator to dense stepping via
        :meth:`pending_work`.
        """
        if self.campaign is None:
            return None
        return self.campaign.next_cycle(start)

    def pending_work(self) -> bool:
        """Protocol state that must settle before a drain can finish.

        Any active link still holds a replay entry (awaiting ACK/timeout),
        a queued retransmission (possibly waiting out its backoff with an
        otherwise idle network -- no events, no buffered flits) or an
        in-progress retransmit. ``Simulator._pending_work`` consults this
        so :meth:`Simulator.drain` cannot strand a NACKed packet in a
        backoff window.
        """
        return bool(self._active)

    def _apply_actions(self, actions: List[Tuple], now: int) -> None:
        for act in actions:
            if act[0] == "penalty":
                _, target, delta = act
                for link in self._resolve(target):
                    state = link.fault
                    state.snr_penalty_db = max(0.0, state.snr_penalty_db + delta)
            elif act[0] == "PermanentFault":
                ev = act[1]
                for link in self._resolve(ev.target):
                    if ev.kind == "transceiver_death":
                        link.fault.dead = True
                    else:  # trim_drift
                        link.fault.snr_penalty_db += ev.drift_db
            else:  # TokenLossFault
                ev = act[1]
                medium = self._media_by_name.get(ev.medium_name)
                if medium is None:
                    raise ValueError(
                        f"token-loss fault targets unknown medium "
                        f"{ev.medium_name!r}"
                    )
                medium.lose_token(now, ev.recovery_cycles)

    def _resolve(self, target: Target) -> List[Link]:
        if target is None:
            return list(self.protected)
        if isinstance(target, str):
            link = self._by_name.get(target)
            if link is not None:
                return [link]
            by_kind = [l for l in self.protected if l.kind == target]
            if not by_kind:
                raise ValueError(f"fault target {target!r} matches no protected link")
            return by_kind
        return [self._by_name[name] for name in target]

    def _service(self, sim: "Simulator", link: Link, now: int) -> int:
        state = link.fault
        entries = self._replay.get(link)
        # Timeouts: deadlines are monotonic per link (FIFO sends, constant
        # timeout), so only the oldest entry can expire each cycle.
        while entries:
            pid, entry = next(iter(entries.items()))
            if entry.deadline > now:
                break
            del entries[pid]
            sim.stats.timeouts += 1
            state.timeouts += 1
            state.consecutive_failures += 1
            self._requeue(link, entry.packet, entry.attempts, now)

        tx = self._current.get(link)
        # Bounded replay: with the buffer full and the engine idle, stall
        # the link so the router cannot launch packets we could not track.
        if tx is None and entries and len(entries) >= self.config.replay_capacity:
            if link.busy_until <= now:
                # Through the mirror-aware setter: the kernel SA sweep must
                # see the stall, or it would launch into the full buffer.
                link.set_busy_until(now + 1)
        elif tx is None:
            tx = self._try_start(link, now)

        moved = 0
        if tx is not None and link.ready(now):
            moved = self._send_next_flit(sim, link, tx, now)

        if (
            not self._current.get(link)
            and not self._retx.get(link)
            and not self._replay.get(link)
        ):
            self._active.discard(link)
        return moved

    def _try_start(self, link: Link, now: int) -> Optional[_CurrentTx]:
        """Begin the front retransmit job if its backoff elapsed and a
        downstream VC with whole-packet room is free (same virtual
        cut-through admission the router's VCA performs)."""
        queue = self._retx.get(link)
        if not queue:
            return None
        job = queue[0]
        if job.not_before > now:
            return None
        packet = job.packet
        endpoint = link.resolve_endpoint(packet)
        router = link.src_router
        if router is not None and router.routing is not None:
            candidates = router.routing.allowed_vcs(router, link.out_port, packet)
        else:
            candidates = range(endpoint.num_vcs)
        for cand in candidates:
            if not endpoint.vc_busy[cand] and endpoint.can_accept_packet(
                cand, packet.size_flits
            ):
                queue.popleft()
                endpoint.acquire_vc(cand)
                if link.medium is not None:
                    link.pending_requests += 1
                    link.medium.note_request(link)
                tx = _CurrentTx(
                    packet, packet.make_flits(), endpoint, cand, job.attempts + 1
                )
                self._current[link] = tx
                self._attempt_no[(id(link), packet.pid)] = tx.attempts
                self.sim.stats.packets_retransmitted += 1
                link.fault.retransmissions += 1
                if self._tracer is not None:
                    self._tracer.on_retx_start(link, packet, tx.attempts, now)
                    if link.medium is not None:
                        self._tracer.on_medium_request(
                            link.medium, link, packet, now
                        )
                return tx
        return None

    def _send_next_flit(self, sim: "Simulator", link: Link,
                        tx: _CurrentTx, now: int) -> int:
        flit = tx.flits[tx.idx]
        tx.idx += 1
        endpoint = tx.endpoint
        if flit.is_head:
            packet = flit.packet
            packet.hops += 1
            if link.kind == PHOTONIC:
                packet.photonic_hops += 1
            elif link.kind == WIRELESS:
                packet.wireless_hops += 1
        endpoint.take_credit(tx.out_vc)
        sim._send_fn(link, endpoint, flit, tx.out_vc, now)
        sim.stats.flits_retransmitted += 1
        link.bits_retransmitted += self._flit_bits
        if flit.is_tail:
            endpoint.release_vc(tx.out_vc)
            if link.medium is not None:
                link.pending_requests -= 1
                if link.pending_requests <= 0:
                    link.medium.drop_request(link)
            del self._current[link]
        return 1

    # ------------------------------------------------------------------ #
    # Network-layer recovery (failover support)
    # ------------------------------------------------------------------ #

    def _reentry_core(self, link: Link, packet: "Packet") -> int:
        router = link.src_router
        if router is None:
            return packet.src_core
        core = self._reentry.get(router.rid)
        if core is None:
            for c, rid in enumerate(self.network.core_router):
                if rid == router.rid:
                    core = c
                    break
            else:
                core = packet.src_core
            self._reentry[router.rid] = core
        return core

    def _recover(self, link: Link, packet: "Packet", now: int) -> None:
        """Re-inject a packet the link layer could not deliver.

        The packet re-enters at the NI of a core attached to the sending
        router, so route computation runs again from where the packet got
        stuck -- after a failover the routing function now steers it around
        the retired channel.
        """
        ni = self.network.interfaces[self._reentry_core(link, packet)]
        ni.requeue_flits(packet.make_flits())
        self.sim.stats.packets_recovered += 1
        self.sim.stats.flits_retransmitted += packet.size_flits
        link.fault.recovered += 1

    def quiesce_link(self, link: Link, now: int) -> None:
        """Retire a channel: stop retrying, drain stranded packets.

        The quiesce-and-drain handshake on failover:

        * queued retransmissions are re-injected immediately (they are not
          in flight, so there is no duplication risk);
        * replay entries whose attempt was *lost* (dead transceiver) are
          likewise re-injected now -- the receiver provably saw nothing;
        * entries with a clean or corrupt attempt stay until their pending
          ACK retires them or their NACK funnels them into recovery -- an
          in-flight clean attempt will be delivered by the receiver, so
          re-injecting it here would duplicate the packet;
        * an engine transmission already serialising finishes its flits;
          its tail-time bookkeeping routes it to recovery (fate ``lost``).
        """
        state = link.fault
        state.failed_over = True
        if self._tracer is not None:
            self._tracer.on_failover(link, now)
        queue = self._retx.pop(link, None)
        if queue:
            for job in queue:
                self._recover(link, job.packet, now)
        entries = self._replay.get(link)
        if entries:
            for pid in [p for p, e in entries.items() if e.fate is LOST]:
                entry = entries.pop(pid)
                self._recover(link, entry.packet, now)
        self._active.add(link)

    def unquiesce_link(self, link: Link, now: int) -> None:
        """Return a retired channel to service (the fault healed).

        The inverse of :meth:`quiesce_link` for *transient* outages: the
        control plane's probes confirmed the transceiver answers again, so
        new attempts may use the link. Protocol counters that feed the
        health monitor's silent-channel verdict are reset; cumulative
        statistics (attempts, retransmissions, ...) are kept.
        """
        state = link.fault
        state.failed_over = False
        state.consecutive_failures = 0
        if self._tracer is not None:
            self._tracer.on_recovery(link, now)
