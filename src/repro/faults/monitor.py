"""Online channel-health monitoring and live failover.

The :class:`HealthMonitor` is a :meth:`Simulator.add_hook` end-of-cycle
hook that watches the per-link protocol counters the
:class:`~repro.faults.linklayer.FaultLayer` maintains. On each epoch
boundary it classifies every protected channel:

* **persistently silent** -- ``consecutive_failures`` (NACKs/timeouts with
  no intervening ACK) at or above ``timeout_threshold``: the transceiver is
  presumed dead;
* **persistently noisy** -- the epoch's corrupt-attempt fraction at or
  above ``corruption_threshold`` for ``patience`` consecutive epochs: the
  channel is burning more bandwidth on retries than it delivers.

Either verdict triggers a live failover: the channel's cluster pair is
marked failed in :class:`repro.core.faults.FaultTolerantOwn256Routing`
(new packets immediately take relay routes), a spare reconfiguration
channel is pinned to the pair when one is feasible
(:meth:`repro.core.reconfig.ReconfigurationController.pin`), and the link
layer quiesces the channel -- stranded packets re-enter the network and
re-route (see :meth:`FaultLayer.quiesce_link`). The network invariant
audit (:func:`repro.noc.invariants.audit_network`) optionally runs every
epoch so any bookkeeping violation surfaces at the epoch it happens.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.faults.linklayer import FaultLayer

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.links import Link
    from repro.noc.simulator import Simulator


class HealthMonitor:
    """Epoch-based failure detector driving online failover.

    Parameters
    ----------
    layer:
        The fault layer whose per-link counters to watch.
    routing:
        A routing object with ``fail_channel(src_cluster, dst_cluster)``
        (e.g. :class:`~repro.core.faults.FaultTolerantOwn256Routing`) and a
        ``channel_map``. ``None`` disables network-layer failover: the link
        layer keeps masking faults by retransmission alone.
    reconfig:
        Optional :class:`~repro.core.reconfig.ReconfigurationController`;
        failed pairs get a spare channel pinned when feasible.
    epoch_cycles:
        Health-classification window.
    timeout_threshold:
        ``consecutive_failures`` needed to declare a channel dead.
    corruption_threshold, patience:
        A channel whose corrupt-attempt fraction is >= the threshold for
        ``patience`` consecutive epochs (with at least ``min_attempts``
        attempts each) is declared dead.
    audit:
        Run the full invariant audit on every epoch boundary.
    """

    def __init__(
        self,
        layer: FaultLayer,
        routing: Optional[object] = None,
        reconfig: Optional[object] = None,
        epoch_cycles: int = 200,
        timeout_threshold: int = 3,
        corruption_threshold: float = 0.5,
        patience: int = 2,
        min_attempts: int = 4,
        audit: bool = True,
    ) -> None:
        if epoch_cycles < 1:
            raise ValueError(f"epoch_cycles must be >= 1, got {epoch_cycles}")
        if not 0.0 < corruption_threshold <= 1.0:
            raise ValueError("corruption_threshold must be in (0, 1]")
        self.layer = layer
        self.routing = routing
        self.reconfig = reconfig
        self.epoch_cycles = epoch_cycles
        self.timeout_threshold = timeout_threshold
        self.corruption_threshold = corruption_threshold
        self.patience = patience
        self.min_attempts = min_attempts
        self.audit = audit

        self.epochs = 0
        #: Failover log: (cycle, link name, cluster pair or None).
        self.failovers: List[Tuple[int, str, Optional[Tuple[int, int]]]] = []
        self._snap: Dict["Link", Tuple[int, int]] = {}
        self._strikes: Dict["Link", int] = {}
        self._pair_by_channel: Optional[Dict[int, Tuple[int, int]]] = None

    # ------------------------------------------------------------------ #

    def __call__(self, sim: "Simulator") -> None:
        if sim.now == 0 or sim.now % self.epoch_cycles != 0:
            return
        self.epochs += 1
        for link, state in self.layer.protected.items():
            if state.failed_over:
                continue
            prev_attempts, prev_corrupt = self._snap.get(link, (0, 0))
            attempts = state.attempts - prev_attempts
            corrupt = state.corrupt_attempts - prev_corrupt
            self._snap[link] = (state.attempts, state.corrupt_attempts)
            noisy = (
                attempts >= self.min_attempts
                and corrupt / attempts >= self.corruption_threshold
            )
            self._strikes[link] = self._strikes.get(link, 0) + 1 if noisy else 0
            silent = state.consecutive_failures >= self.timeout_threshold
            if silent or self._strikes[link] >= self.patience:
                self.fail_over(sim, link)
        if self.audit:
            from repro.noc.invariants import audit_network

            audit_network(sim)

    def next_wake(self, now: int) -> int:
        """Next epoch boundary (a scheduled fast-forward wake source).

        Keeps idle fast-forward enabled with this hook installed: the
        clock may skip quiescent stretches but must step every epoch
        boundary, where :meth:`__call__` classifies channels.
        """
        if now <= 0:
            return self.epoch_cycles
        if now % self.epoch_cycles == 0:
            return now
        return (now // self.epoch_cycles + 1) * self.epoch_cycles

    def notice_recovery(self, link: "Link") -> None:
        """Reset health state after a control plane un-fails ``link``.

        Clears the noisy-epoch strike count and re-snapshots the attempt
        counters so stale deltas from before the outage cannot re-condemn
        a channel that just returned to service.
        """
        state = self.layer.protected[link]
        self._strikes[link] = 0
        self._snap[link] = (state.attempts, state.corrupt_attempts)

    # ------------------------------------------------------------------ #

    def _pair_for(self, link: "Link") -> Optional[Tuple[int, int]]:
        """The (src_cluster, dst_cluster) a primary wireless channel serves."""
        if self.routing is None or link.kind != "wireless" or link.channel_id is None:
            return None
        if self._pair_by_channel is None:
            self._pair_by_channel = {
                assignment.channel_index: pair
                for pair, assignment in self.routing.channel_map.items()
            }
        return self._pair_by_channel.get(link.channel_id)

    def fail_over(self, sim: "Simulator", link: "Link") -> bool:
        """Retire ``link``; returns False when no reroute exists.

        Without a reroute (photonic links, spare channels, or a failure
        pattern that would partition the cluster graph) the channel is left
        in place and the link layer keeps retrying -- degraded service
        beats dropped packets.
        """
        pair = self._pair_for(link)
        if pair is None:
            return False
        try:
            self.routing.fail_channel(*pair)
        except Exception:
            # UnroutableError: failing this channel would strand some pair.
            return False
        if self.reconfig is not None:
            try:
                self.reconfig.pin(pair)
            except ValueError:
                pass  # no feasible spare left; relay routes still carry it
        self.layer.quiesce_link(link, sim.now)
        sim.stats.channels_failed_over += 1
        self.failovers.append((sim.now, link.name, pair))
        return True

    def summary(self) -> Dict[str, object]:
        return {
            "epochs": self.epochs,
            "failovers": list(self.failovers),
            "channels_watched": len(self.layer.protected),
        }
