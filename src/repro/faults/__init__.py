"""Runtime fault injection, link-layer retransmission, and online failover.

This package connects the calibrated RF physics (:mod:`repro.rf`) to the
cycle simulator (:mod:`repro.noc`): scheduled SNR dips, transceiver deaths
and token losses corrupt real in-flight traffic, a CRC + ACK/NACK link
layer masks the corruption by retransmission, and a health monitor retires
channels that stop earning their keep, failing traffic over to the relay
routes and spare channels of :mod:`repro.core`.

See ``docs/fault-tolerance.md`` for the protocol and failover state
machine.
"""

from repro.faults.campaign import FaultCampaign
from repro.faults.linklayer import FaultLayer, LinkLayerConfig
from repro.faults.models import (
    CORRUPT,
    LOST,
    LinkFaultState,
    PermanentFault,
    TokenLossFault,
    TransientFault,
    attempt_error_probability,
    flit_error_probability,
)
from repro.faults.monitor import HealthMonitor

__all__ = [
    "CORRUPT",
    "LOST",
    "FaultCampaign",
    "FaultLayer",
    "HealthMonitor",
    "LinkFaultState",
    "LinkLayerConfig",
    "PermanentFault",
    "TokenLossFault",
    "TransientFault",
    "attempt_error_probability",
    "flit_error_probability",
]
