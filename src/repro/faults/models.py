"""Fault models: per-link channel health and the fault-event taxonomy.

The paper's wireless and photonic channels are engineered to *close* -- the
link budget (:mod:`repro.rf.budget`) provisions TX power so the detection
SNR meets the OOK BER target with margin. This module models what happens
when physics stops cooperating:

* **transient faults** -- interference bursts / SNR dips that subtract from
  the provisioned margin for a bounded window, raising the per-bit error
  probability according to the calibrated OOK waterfall
  (:func:`repro.rf.ook.ook_ber`);
* **permanent faults** -- transceiver death (the link goes silent: flits
  are lost, not corrupted) and photonic trimming drift (a permanent dB
  penalty on the optical power budget, i.e. a higher residual BER);
* **token loss** -- the circulating token of a shared medium is corrupted
  and must be regenerated, freezing arbitration for a recovery window.

A healthy link (no penalty, alive) has error probability exactly 0.0: the
nominal channel closes at BER <= 1e-9, unobservable at simulation
timescales, and modelling it as ideal keeps the retransmission protocol
bit-exact transparent on fault-free runs (no RNG draws, no behaviour
change).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.rf.budget import LinkBudget
from repro.rf.ook import ook_ber

#: Flit fate markers written into :attr:`repro.noc.packet.Flit.fate`.
CORRUPT = "corrupt"
LOST = "lost"


def flit_error_probability(ber: float, flit_bits: int) -> float:
    """Probability that a flit of ``flit_bits`` bits has >= 1 bit error."""
    if ber <= 0.0:
        return 0.0
    if ber >= 1.0:
        return 1.0
    return 1.0 - (1.0 - ber) ** flit_bits


def attempt_error_probability(ber: float, flit_bits: int, size_flits: int) -> float:
    """Probability that a ``size_flits``-flit transmission fails its CRC.

    The link layer protects whole packets (CRC over the packet, checked at
    the tail flit), so a single transmission attempt fails when any of its
    ``size_flits * flit_bits`` bits flip.
    """
    p_flit = flit_error_probability(ber, flit_bits)
    if p_flit <= 0.0:
        return 0.0
    return 1.0 - (1.0 - p_flit) ** size_flits


class LinkFaultState:
    """Mutable channel-health state attached to a protected link.

    The *effective* SNR is ``nominal_snr_db - snr_penalty_db``; penalties
    accumulate from active transient bursts and permanent trimming drift.
    With zero penalty the channel is ideal (error probability 0.0, see
    module docstring), so the state is pure bookkeeping until a fault
    event touches it.

    Parameters
    ----------
    nominal_snr_db:
        Detection SNR of the healthy channel. Defaults to the link budget's
        provisioned operating point ``snr_required_db + margin_db``.
    forced_flit_error_prob:
        Test hook: when set, the per-flit error probability bypasses the
        SNR model entirely.
    """

    __slots__ = (
        "nominal_snr_db",
        "snr_penalty_db",
        "dead",
        "failed_over",
        "forced_flit_error_prob",
        "attempts",
        "corrupt_attempts",
        "lost_attempts",
        "crc_drop_flits",
        "retransmissions",
        "timeouts",
        "acks",
        "nacks",
        "recovered",
        "consecutive_failures",
    )

    def __init__(
        self,
        nominal_snr_db: Optional[float] = None,
        budget: Optional[LinkBudget] = None,
    ) -> None:
        if nominal_snr_db is None:
            budget = budget or LinkBudget()
            nominal_snr_db = budget.snr_required_db + budget.margin_db
        self.nominal_snr_db = nominal_snr_db
        self.snr_penalty_db = 0.0
        self.dead = False
        #: Set by the health monitor once the channel is logically retired;
        #: the link layer then short-circuits recovery instead of retrying.
        self.failed_over = False
        self.forced_flit_error_prob: Optional[float] = None
        # Protocol counters (per link; global aggregates in StatsCollector).
        self.attempts = 0
        self.corrupt_attempts = 0
        self.lost_attempts = 0
        self.crc_drop_flits = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.acks = 0
        self.nacks = 0
        self.recovered = 0
        self.consecutive_failures = 0

    @property
    def effective_snr_db(self) -> float:
        return self.nominal_snr_db - self.snr_penalty_db

    def bit_error_rate(self) -> float:
        """Effective BER; exactly 0.0 for a healthy (penalty-free) channel."""
        if self.snr_penalty_db <= 0.0:
            return 0.0
        return ook_ber(self.effective_snr_db)

    def flit_error_prob(self, flit_bits: int) -> float:
        if self.forced_flit_error_prob is not None:
            return self.forced_flit_error_prob
        return flit_error_probability(self.bit_error_rate(), flit_bits)

    def attempt_error_prob(self, flit_bits: int, size_flits: int) -> float:
        p_flit = self.flit_error_prob(flit_bits)
        if p_flit <= 0.0:
            return 0.0
        return 1.0 - (1.0 - p_flit) ** size_flits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinkFaultState(snr={self.effective_snr_db:.1f}dB, dead={self.dead}, "
            f"failed_over={self.failed_over}, attempts={self.attempts}, "
            f"corrupt={self.corrupt_attempts})"
        )


# --------------------------------------------------------------------- #
# Fault events (the schedulable taxonomy)
# --------------------------------------------------------------------- #

#: Event targets: a link name, a link kind ("wireless"/"photonic"), or a
#: sequence of link names. ``None`` targets every protected link.
Target = Union[None, str, Sequence[str]]


@dataclass(frozen=True)
class TransientFault:
    """An SNR dip / interference burst over ``[at, at + duration)``.

    ``snr_penalty_db`` is subtracted from the targeted links' margins for
    the duration; overlapping bursts stack.
    """

    at: int
    duration: int
    snr_penalty_db: float
    target: Target = None

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ValueError(f"burst duration must be >= 1 cycle, got {self.duration}")
        if self.snr_penalty_db <= 0.0:
            raise ValueError("burst snr_penalty_db must be positive")


@dataclass(frozen=True)
class PermanentFault:
    """An unrecoverable hardware fault taking effect at cycle ``at``.

    ``kind="transceiver_death"`` silences the link: every subsequent flit
    is lost in flight (no NACK -- the sender must time out).
    ``kind="trim_drift"`` models photonic micro-ring trimming drift as a
    permanent ``drift_db`` penalty on the optical budget.
    """

    at: int
    target: Target
    kind: str = "transceiver_death"
    drift_db: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("transceiver_death", "trim_drift"):
            raise ValueError(f"unknown permanent fault kind {self.kind!r}")
        if self.kind == "trim_drift" and self.drift_db <= 0.0:
            raise ValueError("trim_drift needs a positive drift_db")


@dataclass(frozen=True)
class TokenLossFault:
    """The shared medium ``medium_name`` loses its token at cycle ``at``.

    Arbitration freezes for ``recovery_cycles`` while the token is
    regenerated; the current holder keeps its logical hold (packet
    atomicity is preserved) but cannot transmit.
    """

    at: int
    medium_name: str
    recovery_cycles: int = 8

    def __post_init__(self) -> None:
        if self.recovery_cycles < 1:
            raise ValueError(
                f"recovery_cycles must be >= 1, got {self.recovery_cycles}"
            )


FaultEvent = Union[TransientFault, PermanentFault, TokenLossFault]
