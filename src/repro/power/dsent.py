"""DSENT-style electrical router and wire energy model.

The paper "used Dsent v. 0.91 to calculate the area and power of the wired
links and routers for a bulk 45nm LVT technology" (Sec. V). We reproduce the
model's *structure* -- per-event energies whose scaling laws match DSENT's
components -- with coefficients in the published 45 nm range:

* input buffers: energy per flit write/read proportional to flit width,
* crossbar: per-traversal energy grows linearly with the port count
  (loading of the output lines) -- this is what makes high-radix OWN / OptXB
  routers individually hungrier but low-hop networks cheaper overall,
* allocators: small per-grant energy, quadratic-in-radix leakage share,
* clock + leakage: static power proportional to buffering and radix.

Absolute watts are not the reproduction target (different tech assumptions
shift them); the *relative* Fig. 6 / Fig. 8 breakdowns are.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.router import Router


@dataclass(frozen=True)
class DsentParams:
    """Coefficients of the electrical energy model (bulk 45 nm LVT)."""

    flit_width_bits: int = 128
    clock_ghz: float = 2.5

    #: Buffer array energies [pJ per flit]. A 128-bit flit through the
    #: input buffer + pipeline registers costs tens of pJ at bulk 45 nm LVT
    #: (DSENT's dominant router component -- "the majority of the power is
    #: dissipated in the routers" for CMESH, Sec. V-B).
    e_buffer_write_pj: float = 25.0
    e_buffer_read_pj: float = 18.0

    #: Crossbar traversal [pJ per flit] at the reference radix, scaled
    #: linearly with port count: e = e_xbar_pj * (radix / xbar_ref_radix).
    e_xbar_pj: float = 0.5
    xbar_ref_radix: int = 8

    #: Allocation energy per SA/VCA grant [pJ].
    e_arbiter_pj: float = 0.5

    #: Repeated global wire [pJ per bit per mm] (45 nm: ~0.05-0.1).
    e_wire_pj_per_bit_mm: float = 0.045

    #: Static router power [mW]: base + per-port share (buffers + clock).
    #: Together with the radix-scaled crossbar term this is why "the high
    #: radix of OptXB adds considerable power" at 1024 cores (Sec. V-C)
    #: while OptXB still undercuts OWN there, as the paper reports.
    p_static_base_mw: float = 0.4
    p_static_per_port_mw: float = 0.05

    def router_dynamic_energy_pj(self, router: Router) -> float:
        """Total dynamic energy a router consumed, from its event counters."""
        radix = router.attrs.get("paper_radix", router.radix)
        xbar_scale = radix / self.xbar_ref_radix
        return (
            router.buffer_writes * self.e_buffer_write_pj
            + router.buffer_reads * self.e_buffer_read_pj
            + router.xbar_traversals * self.e_xbar_pj * xbar_scale
            + (router.sa_grants + router.vca_grants) * self.e_arbiter_pj
        )

    def router_static_power_mw(self, router: Router) -> float:
        radix = router.attrs.get("paper_radix", router.radix)
        return self.p_static_base_mw + self.p_static_per_port_mw * radix

    def wire_energy_pj(self, bits: int, length_mm: float) -> float:
        """Dynamic energy of ``bits`` traversing a repeated wire."""
        if length_mm < 0:
            raise ValueError(f"length must be >= 0, got {length_mm}")
        return bits * length_mm * self.e_wire_pj_per_bit_mm

    def cycles_to_seconds(self, cycles: int) -> float:
        return cycles / (self.clock_ghz * 1e9)
