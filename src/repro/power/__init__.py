"""Power models: DSENT-style electrical, photonic, wireless (Tables III/IV),
and the accounting layer producing Fig. 6 / Fig. 8 component breakdowns."""

from repro.power.dsent import DsentParams
from repro.power.photonic import PhotonicParams
from repro.power.wireless import (
    WirelessScenario,
    SCENARIOS,
    SCENARIO_IDEAL,
    SCENARIO_CONSERVATIVE,
    ChannelSpec,
    ConfiguredChannel,
    CONFIGURATIONS,
    N_CHANNELS,
    N_DATA_CHANNELS,
    WirelessPowerParams,
    channel_energy_pj,
    wireless_channel_table,
    channels_for_config,
    config_energy_pj_per_bit,
    config_average_energy_pj_per_bit,
    link_energy_for_class,
)
from repro.power.accounting import PowerBreakdown, PowerModel, measure_power
from repro.power.area import AreaBreakdown, AreaModel, AreaParams, area_comparison

__all__ = [
    "DsentParams",
    "PhotonicParams",
    "WirelessScenario",
    "SCENARIOS",
    "SCENARIO_IDEAL",
    "SCENARIO_CONSERVATIVE",
    "ChannelSpec",
    "ConfiguredChannel",
    "CONFIGURATIONS",
    "N_CHANNELS",
    "N_DATA_CHANNELS",
    "WirelessPowerParams",
    "channel_energy_pj",
    "wireless_channel_table",
    "channels_for_config",
    "config_energy_pj_per_bit",
    "config_average_energy_pj_per_bit",
    "link_energy_for_class",
    "PowerBreakdown",
    "PowerModel",
    "measure_power",
    "AreaBreakdown",
    "AreaModel",
    "AreaParams",
    "area_comparison",
]
