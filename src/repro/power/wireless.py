"""Wireless channel plan and energy model: Tables III & IV of the paper.

Table III (reconstructed from the prose -- DESIGN.md records every pinned
constraint) assigns each of 16 wireless channels a link frequency, a device
technology and an energy/bit under two scenarios:

* **Scenario 1 (ideal)**: 32 GHz channel bandwidth, 8 GHz guard bands,
  f_i = 100 + 40*(i-1) GHz -> exactly four CMOS channels ("III shows only
  four channels with CMOS"), two BiCMOS, ten SiGe HBT.
* **Scenario 2 (conservative)**: 16 GHz bandwidth, 4 GHz guards,
  f_i = 100 + 20*(i-1) GHz -> seven CMOS, five BiCMOS, four HBT channels.

Energy per bit ramps with the band index: e_i = base(tech) + ramp(tech) *
(i-1) using the ramps quoted in Sec. IV. "Links 1-12 are used for
inter-cluster communication whereas links 13-16 are reserved for
reconfiguration channels."

Table IV defines four architecture *configurations* assigning a technology
to each distance class (long = C2C, medium = E2E, short = SR). A
configuration draws its channels from Table III rows of that technology;
when a technology has fewer rows than needed the same carrier is reused on
non-intersecting paths (the SDM discussion of Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.floorplan import DISTANCE_CLASSES, LD_FACTOR
from repro.rf.technology import (
    DEVICES,
    EFFICIENCY_RAMP_PJ,
    TECH_BICMOS,
    TECH_CMOS,
    TECH_HBT,
    technology_for_frequency,
    validate_technology,
)

#: Number of wireless channels in the plan (Table III).
N_CHANNELS = 16

#: Channels 1..12 carry inter-cluster data; 13..16 are reconfiguration spares.
N_DATA_CHANNELS = 12


@dataclass(frozen=True)
class WirelessScenario:
    """One column-set of Table III."""

    key: str  # "ideal" | "conservative"
    number: int  # 1 | 2 (the paper's "scenario 1/2")
    bandwidth_ghz: float
    guard_ghz: float
    start_freq_ghz: float
    spacing_ghz: float

    @property
    def data_rate_gbps(self) -> float:
        """OOK at ~1 bit/s/Hz: channel bandwidth in Gbps."""
        return self.bandwidth_ghz

    def frequency(self, channel_index: int) -> float:
        if not 1 <= channel_index <= N_CHANNELS:
            raise ValueError(f"channel index must be 1..{N_CHANNELS}, got {channel_index}")
        return self.start_freq_ghz + self.spacing_ghz * (channel_index - 1)


SCENARIO_IDEAL = WirelessScenario(
    key="ideal", number=1, bandwidth_ghz=32.0, guard_ghz=8.0, start_freq_ghz=100.0, spacing_ghz=40.0
)
SCENARIO_CONSERVATIVE = WirelessScenario(
    key="conservative",
    number=2,
    bandwidth_ghz=16.0,
    guard_ghz=4.0,
    start_freq_ghz=100.0,
    spacing_ghz=20.0,
)

SCENARIOS: Dict[int, WirelessScenario] = {1: SCENARIO_IDEAL, 2: SCENARIO_CONSERVATIVE}


@dataclass(frozen=True)
class ChannelSpec:
    """One row of Table III under a given scenario."""

    index: int
    freq_ghz: float
    bandwidth_ghz: float
    technology: str
    energy_pj_per_bit: float  # at LD factor 1 (longest link)
    role: str  # "data" | "reconfiguration"


def channel_energy_pj(technology: str, channel_index: int, scenario: WirelessScenario) -> float:
    """e_i = base(tech) + ramp(tech, scenario) * (i - 1)."""
    validate_technology(technology)
    base = DEVICES[technology].base_energy_pj_per_bit
    ramp = EFFICIENCY_RAMP_PJ[scenario.key][technology]
    return base + ramp * (channel_index - 1)


def wireless_channel_table(scenario: WirelessScenario) -> List[ChannelSpec]:
    """The full 16-row Table III for one scenario."""
    rows: List[ChannelSpec] = []
    for i in range(1, N_CHANNELS + 1):
        f = scenario.frequency(i)
        tech = technology_for_frequency(f)
        rows.append(
            ChannelSpec(
                index=i,
                freq_ghz=f,
                bandwidth_ghz=scenario.bandwidth_ghz,
                technology=tech,
                energy_pj_per_bit=channel_energy_pj(tech, i, scenario),
                role="data" if i <= N_DATA_CHANNELS else "reconfiguration",
            )
        )
    return rows


#: Table IV: configuration id -> distance class -> technology.
#: "Configuration 1 assumes SiGe for long range, CMOS for medium range and
#: short range, Configuration 2 assumes CMOS for long range, BiCMOS for
#: medium range and SiGe for short range, Configuration 3 assumes SiGe for
#: long range, BiCMOS for medium range and CMOS for short range and finally
#: Configuration 4 assumes CMOS for long and medium range and BiCMOS for
#: short range." (Sec. V-B)
CONFIGURATIONS: Dict[int, Dict[str, str]] = {
    1: {"C2C": TECH_HBT, "E2E": TECH_CMOS, "SR": TECH_CMOS},
    2: {"C2C": TECH_CMOS, "E2E": TECH_BICMOS, "SR": TECH_HBT},
    3: {"C2C": TECH_HBT, "E2E": TECH_BICMOS, "SR": TECH_CMOS},
    4: {"C2C": TECH_CMOS, "E2E": TECH_CMOS, "SR": TECH_BICMOS},
}


@dataclass(frozen=True)
class ConfiguredChannel:
    """A data link's channel after applying a Table IV configuration."""

    link_number: int  # 1..12 position among the data links
    distance_class: str
    spec: ChannelSpec
    sdm_reused: bool  # True when this carrier is SDM-shared with another link


def channels_for_config(
    config_id: int, scenario: WirelessScenario, links_per_class: int = 4
) -> List[ConfiguredChannel]:
    """Assign Table III rows to the 12 data links under a configuration.

    Each distance class needs ``links_per_class`` channels of the
    configuration's technology. Rows are picked *evenly spread* across the
    technology's band (adjacent-band isolation constraints forbid clumping
    all links into the lowest rows; this also reproduces the paper's Fig. 5
    ratios -- see EXPERIMENTS.md). When a technology has fewer rows than
    needed the allocator wraps around and reuses carriers, flagging them
    ``sdm_reused`` (legal only on non-intersecting paths -- checked by
    ``repro.core.channels.sdm_frequency_reuse_groups``).

    Raises
    ------
    ValueError
        For an unknown configuration id.
    """
    if config_id not in CONFIGURATIONS:
        raise ValueError(f"unknown configuration {config_id}; known: {sorted(CONFIGURATIONS)}")
    table = wireless_channel_table(scenario)
    by_tech: Dict[str, List[ChannelSpec]] = {t: [] for t in (TECH_CMOS, TECH_BICMOS, TECH_HBT)}
    for row in table:
        by_tech[row.technology].append(row)

    used_count: Dict[Tuple[str, int], int] = {}
    out: List[ConfiguredChannel] = []
    link_number = 1
    for cls in DISTANCE_CLASSES:  # C2C, E2E, SR (longest first)
        tech = CONFIGURATIONS[config_id][cls]
        pool = by_tech[tech]
        if not pool:
            raise ValueError(f"no Table III rows use {tech} under scenario {scenario.key}")
        if len(pool) >= links_per_class:
            # Evenly spread picks across the technology's band.
            step = (len(pool) - 1) / (links_per_class - 1) if links_per_class > 1 else 0.0
            picks = [pool[round(k * step)] for k in range(links_per_class)]
        else:
            # Fewer rows than links: wrap around (SDM frequency reuse).
            picks = [pool[k % len(pool)] for k in range(links_per_class)]
        for spec in picks:
            key = (tech, spec.index)
            used_count[key] = used_count.get(key, 0) + 1
            out.append(
                ConfiguredChannel(
                    link_number=link_number,
                    distance_class=cls,
                    spec=spec,
                    sdm_reused=used_count[key] > 1,
                )
            )
            link_number += 1
    return out


def config_energy_pj_per_bit(
    config_id: int, scenario: WirelessScenario, distance_class: str
) -> float:
    """Mean LD-scaled energy/bit of the channels serving one distance class."""
    if distance_class not in DISTANCE_CLASSES:
        raise ValueError(f"unknown distance class {distance_class!r}")
    chans = [c for c in channels_for_config(config_id, scenario) if c.distance_class == distance_class]
    raw = sum(c.spec.energy_pj_per_bit for c in chans) / len(chans)
    return raw * LD_FACTOR[distance_class]


def config_average_energy_pj_per_bit(config_id: int, scenario: WirelessScenario) -> float:
    """Mean LD-scaled energy/bit across all 12 data links (Fig. 5's y-axis
    is proportional to this for uniform traffic)."""
    chans = channels_for_config(config_id, scenario)
    return sum(c.spec.energy_pj_per_bit * LD_FACTOR[c.distance_class] for c in chans) / len(chans)


@dataclass(frozen=True)
class WirelessPowerParams:
    """Knobs of the wireless power accounting.

    Attributes
    ----------
    tx_energy_fraction:
        Share of a channel's energy/bit spent in the transmitter; the
        remainder is receiver-side and is multiplied by the multicast degree
        for SWMR channels (Sec. III-B: discarding receivers still "analyze"
        the data).
    static_mw_per_transceiver_end:
        Always-on DC draw per transceiver end (oscillator + LNA bias; the
        Fig. 4 blocks idle in OOK between packets). Charged per TX end and
        per RX end of every wireless channel.
    control_bits_per_msg:
        Size of a link-layer ACK/NACK control message
        (:mod:`repro.faults`): sequence number + CRC over the reverse
        channel. Control messages are charged at the channel's energy/bit
        by the power accounting (both wireless and photonic links use this
        protocol constant; each prices the bits with its own PHY model).
    """

    tx_energy_fraction: float = 0.6
    static_mw_per_transceiver_end: float = 20.0
    control_bits_per_msg: float = 16.0

    def effective_energy_pj(self, energy_pj: float, multicast_degree: int) -> float:
        if multicast_degree < 1:
            raise ValueError(f"multicast degree must be >= 1, got {multicast_degree}")
        tx = self.tx_energy_fraction * energy_pj
        rx = (1.0 - self.tx_energy_fraction) * energy_pj
        return tx + rx * multicast_degree


def link_energy_for_class(
    distance_class: str,
    config_id: int,
    scenario: WirelessScenario,
    multicast_degree: int = 1,
    params: WirelessPowerParams = WirelessPowerParams(),
) -> float:
    """LD- and multicast-adjusted energy/bit for a wireless hop [pJ/bit]."""
    base = config_energy_pj_per_bit(config_id, scenario, distance_class)
    return params.effective_energy_pj(base, multicast_degree)
