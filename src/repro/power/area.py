"""Area model: the other half of the paper's DSENT usage.

"We used Dsent v. 0.91 to calculate the area and power of the wired links
and routers for a bulk 45nm LVT technology" (Sec. V). This module estimates
silicon footprint per architecture with DSENT-like scaling laws, plus the
photonic and wireless component footprints the electrical tool does not
cover:

* router: input buffers (SRAM bits), crossbar (~ radix^2 * flit width),
  allocators,
* wires: repeater area per mm of traversed link,
* photonics: ring resonators (modulator + detector + tuning footprint) and
  waveguide routing area,
* wireless: per-transceiver-end analog area (PA + LNA + oscillator +
  detector) and the on-chip antenna.

This quantifies the Sec. I scalability argument in mm^2: OptXB-1024's four
million rings dwarf OWN's photonic budget even though both are "photonic"
architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.power.accounting import PowerModel
from repro.topologies.base import BuiltTopology


@dataclass(frozen=True)
class AreaParams:
    """Footprint coefficients (bulk 45 nm class)."""

    #: SRAM buffer cell [um^2 per bit] including periphery.
    buffer_um2_per_bit: float = 1.2
    #: Crossbar area [um^2] = coeff * radix^2 * flit_width_bits.
    xbar_um2_per_port2_bit: float = 0.9
    #: Allocator + control overhead per port [um^2].
    control_um2_per_port: float = 900.0
    #: Repeated-wire area [um^2 per bit per mm].
    wire_um2_per_bit_mm: float = 0.9
    #: One ring resonator site incl. heater + spacing [um^2].
    ring_um2: float = 400.0
    #: Waveguide footprint [um^2 per mm] (0.5 um core + 5 um pitch).
    waveguide_um2_per_mm: float = 5500.0
    #: Analog transceiver end (PA/LNA/osc/detector) [mm^2].
    transceiver_mm2: float = 0.25
    #: On-chip mm-wave antenna [mm^2].
    antenna_mm2: float = 0.4

    flit_width_bits: int = 128


@dataclass
class AreaBreakdown:
    """Per-component silicon footprint [mm^2]."""

    router_mm2: float = 0.0
    wire_mm2: float = 0.0
    photonic_mm2: float = 0.0
    wireless_mm2: float = 0.0

    @property
    def total_mm2(self) -> float:
        return self.router_mm2 + self.wire_mm2 + self.photonic_mm2 + self.wireless_mm2

    def as_dict(self) -> Dict[str, float]:
        return {
            "router_mm2": self.router_mm2,
            "wire_mm2": self.wire_mm2,
            "photonic_mm2": self.photonic_mm2,
            "wireless_mm2": self.wireless_mm2,
            "total_mm2": self.total_mm2,
        }


class AreaModel:
    """Computes an :class:`AreaBreakdown` for a built topology."""

    def __init__(self, params: AreaParams = AreaParams()) -> None:
        self.params = params
        self._power_model = PowerModel()  # for the ring inventory

    def router_area_um2(self, radix: int, num_vcs: int, vc_depth: int) -> float:
        """One router's footprint from its geometry."""
        if radix < 1:
            raise ValueError(f"radix must be >= 1, got {radix}")
        p = self.params
        buffer_bits = radix * num_vcs * vc_depth * p.flit_width_bits
        return (
            buffer_bits * p.buffer_um2_per_bit
            + radix * radix * p.flit_width_bits * p.xbar_um2_per_port2_bit / 100.0
            + radix * p.control_um2_per_port
        )

    def measure(self, built: BuiltTopology) -> AreaBreakdown:
        p = self.params
        net = built.network
        out = AreaBreakdown()

        for router in net.routers:
            radix = router.attrs.get("paper_radix", router.radix)
            out.router_mm2 += (
                self.router_area_um2(radix, net.num_vcs, net.vc_depth) * 1e-6
            )

        seen_media = set()
        waveguide_mm = 0.0
        wireless_ends = 0
        for link in net.links:
            if link.name.startswith("eject"):
                continue
            if link.kind == "electrical":
                out.wire_mm2 += (
                    p.flit_width_bits * link.length_mm * p.wire_um2_per_bit_mm * 1e-6
                )
            elif link.kind == "photonic":
                # Waveguide length counts once per physical medium.
                key = id(link.medium) if link.medium is not None else id(link)
                if key not in seen_media:
                    seen_media.add(key)
                    waveguide_mm += link.length_mm
            elif link.kind == "wireless":
                if link.medium is not None:
                    if id(link.medium) in seen_media:
                        continue
                    seen_media.add(id(link.medium))
                    wireless_ends += 1 + link.multicast_degree
                else:
                    wireless_ends += 2

        rings = self._power_model.photonic_ring_count(built)
        out.photonic_mm2 = (
            rings * p.ring_um2 * 1e-6 + waveguide_mm * p.waveguide_um2_per_mm * 1e-6
        )
        out.wireless_mm2 = wireless_ends * (p.transceiver_mm2 + p.antenna_mm2)
        return out


def area_comparison(built_list) -> Dict[str, AreaBreakdown]:
    """Area breakdowns for several topologies (one AreaModel instance)."""
    model = AreaModel()
    return {b.network.name: model.measure(b) for b in built_list}
