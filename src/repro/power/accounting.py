"""Network power accounting: turns a finished simulation into Fig. 6/8 rows.

"We have considered the power consumed by the photonic link, wireless link,
electrical link and the router microarchitecture." (Sec. V-B) -- the same
four components this module reports.

The wireless component follows the measured per-channel traffic ("We
measured the total number of packets sent and received to evaluate the
percentage of traffic that uses the wireless channels"): every wireless
link's carried bits are multiplied by its channel's LD- and multicast-
adjusted energy/bit under the chosen Table IV configuration and Table III
scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.floorplan import LD_FACTOR
from repro.noc.simulator import Simulator
from repro.photonics.components import (
    mwsr_crossbar,
    own_inventory,
    pclos_inventory,
)
from repro.power.dsent import DsentParams
from repro.power.photonic import PhotonicParams
from repro.power.wireless import (
    ConfiguredChannel,
    WirelessPowerParams,
    WirelessScenario,
    SCENARIOS,
    channels_for_config,
    config_energy_pj_per_bit,
    wireless_channel_table,
)
from repro.topologies.base import BuiltTopology


@dataclass
class PowerBreakdown:
    """Average power over the simulated window, by component [W]."""

    router_w: float = 0.0
    electrical_link_w: float = 0.0
    photonic_w: float = 0.0
    wireless_w: float = 0.0
    #: Of which: link-layer protocol overhead (retransmitted payload bits
    #: plus ACK/NACK control traffic, priced by each link's PHY model).
    #: Already included in ``photonic_w`` / ``wireless_w``, reported
    #: separately so degradation studies can plot the energy cost of
    #: reliability (zero on runs without a fault layer).
    retx_overhead_w: float = 0.0
    duration_s: float = 0.0
    packets: int = 0
    flits_delivered: int = 0

    @property
    def total_w(self) -> float:
        return self.router_w + self.electrical_link_w + self.photonic_w + self.wireless_w

    @property
    def energy_per_packet_nj(self) -> float:
        """Average energy per delivered packet [nJ] (Fig. 8b's metric)."""
        if self.packets == 0:
            return float("nan")
        return self.total_w * self.duration_s / self.packets * 1e9

    def as_dict(self) -> Dict[str, float]:
        return {
            "router_w": self.router_w,
            "electrical_link_w": self.electrical_link_w,
            "photonic_w": self.photonic_w,
            "wireless_w": self.wireless_w,
            "retx_overhead_w": self.retx_overhead_w,
            "total_w": self.total_w,
            "energy_per_packet_nj": self.energy_per_packet_nj,
        }


@dataclass
class PowerModel:
    """Bundles the three component models plus the wireless plan choice.

    Parameters
    ----------
    config_id:
        Table IV configuration for OWN's wireless channels (the evaluation
        settles on configuration 4: "As OWN-256 Configuration 4 showed the
        best power results, we have assume[d] configuration 4 for 256 and
        1024 core ... results").
    scenario:
        Table III scenario (1 = ideal 32 GHz, 2 = conservative 16 GHz).
    """

    dsent: DsentParams = field(default_factory=DsentParams)
    photonic: PhotonicParams = field(default_factory=PhotonicParams)
    wireless: WirelessPowerParams = field(default_factory=WirelessPowerParams)
    config_id: int = 4
    scenario: WirelessScenario = field(default_factory=lambda: SCENARIOS[1])

    # ---------------- wireless energy resolution ---------------- #

    def _own_channels(self) -> Dict[int, ConfiguredChannel]:
        return {
            c.link_number: c for c in channels_for_config(self.config_id, self.scenario)
        }

    def wireless_link_energy_pj_per_bit(self, link) -> float:
        """Energy/bit for one wireless link (before multicast adjustment)."""
        if link.channel_id is not None:
            own = self._own_channels()
            if link.channel_id in own:
                chan = own[link.channel_id]
                return chan.spec.energy_pj_per_bit * LD_FACTOR[chan.distance_class]
            # Reconfiguration-band channels (13-16; OWN-1024 intra-group):
            # the configuration's short-range technology serves them.
            return config_energy_pj_per_bit(self.config_id, self.scenario, "SR")
        # Non-OWN wireless (e.g. wireless-CMESH grid links): plain Table III
        # data channels, no Table IV override. Their distances fall between
        # the three OWN classes, so the LD factor follows the link-budget
        # d^2 law directly (Sec. IV: the LD factor "is the result of power
        # changes as a function of distance"), floored at 5 % for fixed
        # transceiver overheads.
        table = wireless_channel_table(self.scenario)
        data = [r for r in table if r.role == "data"]
        mean_e = sum(r.energy_pj_per_bit for r in data) / len(data)
        ld = max(0.05, min(1.0, (link.length_mm / 60.0) ** 2))
        return mean_e * ld

    # ---------------- static photonic inventory ---------------- #

    def photonic_ring_count(self, built: BuiltTopology) -> int:
        kind = built.kind
        n_routers = built.network.n_routers
        if kind == "own":
            n_clusters = built.n_cores // 64
            return own_inventory(n_clusters).rings
        if kind == "optxb":
            return mwsr_crossbar(n_routers, rings_per_modulator=1).rings
        if kind == "pclos":
            n_middles = int(built.params.get("n_middles", 8))
            return pclos_inventory(n_routers - n_middles, n_middles).rings
        return 0

    # ---------------- the main entry point ---------------- #

    def measure(self, built: BuiltTopology, sim: Simulator) -> PowerBreakdown:
        """Compute the component power breakdown of a finished run."""
        if sim.now <= 0:
            raise ValueError("simulation has not run; no window to average over")
        net = built.network
        duration_s = self.dsent.cycles_to_seconds(sim.now)
        out = PowerBreakdown(duration_s=duration_s)
        out.packets = sim.stats.packets_ejected
        # Power is physical: every delivered flit burned energy, including
        # warmup-epoch flits the measured-window stats exclude.
        out.flits_delivered = sim.stats.flits_ejected_total

        # Routers: dynamic event energy + static power.
        dyn_pj = 0.0
        static_mw = 0.0
        for router in net.routers:
            dyn_pj += self.dsent.router_dynamic_energy_pj(router)
            static_mw += self.dsent.router_static_power_mw(router)
        out.router_w = dyn_pj * 1e-12 / duration_s + static_mw * 1e-3

        # Links by technology. ``bits_carried`` already includes link-layer
        # retransmissions (they are physical sends); ACK/NACK control
        # messages ride the reverse channel and are charged on top. The
        # protocol's share (retransmitted bits + control) is also tallied
        # into retx_overhead_w for reporting.
        elec_pj = 0.0
        phot_pj = 0.0
        wifi_pj = 0.0
        retx_pj = 0.0
        ctrl_bits = self.wireless.control_bits_per_msg
        for link in net.links:
            if link.bits_carried == 0:
                continue
            if link.kind == "electrical":
                elec_pj += self.dsent.wire_energy_pj(link.bits_carried, link.length_mm)
            elif link.kind == "photonic":
                phot_pj += self.photonic.link_dynamic_energy_pj(link.bits_carried)
                if link.control_msgs:
                    c = self.photonic.link_dynamic_energy_pj(link.control_msgs * ctrl_bits)
                    phot_pj += c
                    retx_pj += c
                if link.bits_retransmitted:
                    retx_pj += self.photonic.link_dynamic_energy_pj(link.bits_retransmitted)
            elif link.kind == "wireless":
                e_bit = self.wireless_link_energy_pj_per_bit(link)
                e_eff = self.wireless.effective_energy_pj(e_bit, link.multicast_degree)
                wifi_pj += link.bits_carried * e_eff
                if link.control_msgs:
                    c = link.control_msgs * ctrl_bits * e_eff
                    wifi_pj += c
                    retx_pj += c
                if link.bits_retransmitted:
                    retx_pj += link.bits_retransmitted * e_eff
        out.electrical_link_w = elec_pj * 1e-12 / duration_s
        out.retx_overhead_w = retx_pj * 1e-12 / duration_s

        # Wireless static: every channel keeps its TX end and its RX end(s)
        # biased (multicast channels have one receiver per destination
        # cluster). Count channel endpoints once per physical channel:
        # point-to-point links are one channel each; SWMR media are one
        # channel shared by their member links.
        ends = 0
        seen_media = set()
        for link in net.links:
            if link.kind != "wireless":
                continue
            if link.medium is not None:
                if id(link.medium) in seen_media:
                    continue
                seen_media.add(id(link.medium))
                ends += 1 + link.multicast_degree
            else:
                ends += 2
        wifi_static_mw = ends * self.wireless.static_mw_per_transceiver_end
        out.wireless_w = wifi_pj * 1e-12 / duration_s + wifi_static_mw * 1e-3

        # Photonic static: ring thermal tuning.
        tuning_mw = self.photonic.tuning_power_mw(self.photonic_ring_count(built))
        out.photonic_w = phot_pj * 1e-12 / duration_s + tuning_mw * 1e-3
        return out


def measure_power(
    built: BuiltTopology,
    sim: Simulator,
    config_id: int = 4,
    scenario: int | WirelessScenario = 1,
    model: Optional[PowerModel] = None,
) -> PowerBreakdown:
    """Convenience wrapper: breakdown for a finished run.

    ``scenario`` accepts the paper's scenario number (1/2) or a
    :class:`~repro.power.wireless.WirelessScenario`.
    """
    if model is None:
        scen = SCENARIOS[scenario] if isinstance(scenario, int) else scenario
        model = PowerModel(config_id=config_id, scenario=scen)
    return model.measure(built, sim)
