"""Photonic link power model.

Photonic power has a dynamic part (EO modulation + OE detection per bit)
and a static part (off-chip laser feeding every waveguide, plus thermal
tuning of every ring). The paper's Fig. 6 narrative is built on exactly
this split: "The OptXB consumes the least power since the energy-efficiency
of photonic links is extremely high (1-2 pJ/bit)" while its *component
count* (a million rings) is the scalability objection, and at 1024 cores
"the high radix of OptXB adds considerable power" on the router side.

The laser solver composes with :mod:`repro.photonics.losses`; ring-tuning
power uses a low per-ring figure (efficient thermal co-design was the
operating assumption of Corona-era studies -- at 1 uW/ring the million-ring
crossbar pays ~1 W of tuning, a visible but not dominant cost).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics.losses import (
    PhotonicLossParams,
    required_laser_power_mw,
    splitter_loss_db,
    waveguide_path_loss_db,
)


@dataclass(frozen=True)
class PhotonicParams:
    """Coefficients of the photonic power model."""

    #: EO + OE dynamic energy [pJ per bit].
    e_modulator_pj_per_bit: float = 0.12
    e_detector_pj_per_bit: float = 0.08

    #: Amortised laser energy [pJ per bit]. Fig. 6's narrative keys on
    #: "the photonic power is minimal" -- the traffic accounting charges
    #: only EO/OE dynamic energy per bit, with the laser budget studied
    #: separately by the loss-based wall-plug solver below (the component /
    #: laser ablation bench). Set this >0 to fold an amortised laser share
    #: into the per-bit figure (the full 1-2 pJ/bit bookkeeping).
    e_laser_pj_per_bit: float = 0.0

    #: Thermal tuning per ring [uW]. Corona-era studies assume aggressive
    #: athermal / trimming co-design; at 0.1 uW effective per ring the
    #: 4-million-ring OptXB-1024 pays ~0.4 W -- visible, not dominant
    #: (the paper keeps OptXB the 1024-core power winner; its objection is
    #: component *count*, Sec. I).
    p_tuning_uw_per_ring: float = 0.1

    #: Laser chain parameters.
    detector_sensitivity_dbm: float = -20.0
    wall_plug_efficiency: float = 0.1
    laser_margin_db: float = 3.0

    #: Loss model for the waveguide walk.
    losses: PhotonicLossParams = PhotonicLossParams()

    @property
    def e_dynamic_pj_per_bit(self) -> float:
        return (
            self.e_modulator_pj_per_bit
            + self.e_detector_pj_per_bit
            + self.e_laser_pj_per_bit
        )

    def link_dynamic_energy_pj(self, bits: int) -> float:
        """Dynamic energy for ``bits`` crossing one photonic hop."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        return bits * self.e_dynamic_pj_per_bit

    def waveguide_laser_power_mw(
        self,
        length_mm: float,
        rings_passed: int,
        n_wavelengths: int,
        splitter_fanout: int = 1,
    ) -> float:
        """Wall-plug laser power for one bus waveguide's wavelength comb."""
        loss = waveguide_path_loss_db(length_mm, rings_passed, self.losses)
        loss += splitter_loss_db(splitter_fanout, self.losses)
        return required_laser_power_mw(
            loss,
            n_wavelengths,
            detector_sensitivity_dbm=self.detector_sensitivity_dbm,
            coupler_db=self.losses.coupler_db,
            wall_plug_efficiency=self.wall_plug_efficiency,
            margin_db=self.laser_margin_db,
        )

    def tuning_power_mw(self, n_rings: int) -> float:
        """Thermal tuning power for ``n_rings`` ring resonators."""
        if n_rings < 0:
            raise ValueError(f"ring count must be >= 0, got {n_rings}")
        return n_rings * self.p_tuning_uw_per_ring * 1e-3
