"""Content-addressed on-disk result cache.

Results are stored as one JSON file per :meth:`RunSpec.digest` under a
two-level fan-out directory (``ab/abcdef....json``). The digest already
folds in the spec, a fingerprint of the ``repro`` source tree and the
payload schema version, so *any* code edit invalidates every entry --
cache poisoning by stale physics is structurally impossible. Writes are
atomic (temp file + rename) so concurrent executors can share one cache
directory; a corrupt or truncated entry reads as a miss and is
re-simulated.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

#: Default cache location (relative to the working directory) used by the
#: CLI's bare ``--cache`` flag; override with ``--cache DIR`` or the
#: ``REPRO_CACHE_DIR`` environment variable.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Digest -> result-payload store on the local filesystem."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """Stored payload for ``digest``; ``None`` (a miss) when absent
        or unreadable."""
        path = self._path(digest)
        try:
            with open(path, "r") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, digest: str, payload: Dict[str, object]) -> None:
        """Atomically persist ``payload`` under ``digest``."""
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {"hits": self.hits, "misses": self.misses, "hit_rate": self.hit_rate}
