"""The execution engine: run specs serially or across worker processes.

All simulation-driving code (sweeps, experiments, design-space
exploration, benchmarks) funnels through :class:`Executor`. One code path
means one set of guarantees:

- **Isolation** -- every run builds a fresh network and the simulator
  binds a per-run packet-id allocator, so two runs never share mutable
  state regardless of interleaving.
- **Determinism** -- all randomness derives from seeds carried by the
  spec, so a spec's result is a pure function of its digest. Parallel
  (``jobs=N``) results are bit-identical to serial ones, and cached
  results are bit-identical to fresh ones.
- **Observability** -- each run emits a JSONL record (spec digest, wall
  time, cycles/sec, summary metrics, cache hit/miss) and an optional
  progress callback fires as results land.

The multiprocessing backend prefers the ``fork`` start method (workers
inherit dynamically registered topologies); on platforms without it the
``spawn`` method is used and only statically registered topologies are
available to workers.
"""

from __future__ import annotations

import inspect
import multiprocessing
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.bus import BusDrain, install_worker_bus, worker_bus
from repro.obs.sampler import DEFAULT_SAMPLE_EVERY, RunObserver
from repro.runtime.cache import ResultCache
from repro.runtime.records import RunLog, make_record
from repro.runtime.registry import build_topology
from repro.runtime.spec import FaultSpec, RunSpec, TrafficSpec

#: Progress callback signature: ``(completed, total, result)``.
#:
#: **Phase-aware extension.** A callback that also accepts a ``phase``
#: parameter (or ``**kwargs``) receives in-flight state when the executor
#: is observing (``observe=``): ``phase="started"`` and
#: ``phase="heartbeat"`` fire with ``result=None`` (plus the raw
#: observation event under ``info=`` when the callback also accepts
#: ``info``); ``phase="finished"`` fires with the result exactly where
#: the legacy callback would. Legacy three-argument callbacks keep
#: working unchanged and only see completions.
ProgressFn = Callable[[int, int, "RunResult"], None]


def _progress_accepts(fn: Optional[ProgressFn], name: str) -> bool:
    """Does ``fn`` accept keyword ``name`` (directly or via ``**kwargs``)?"""
    if fn is None:
        return False
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    params = list(sig.parameters.values())
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
        return True
    return any(
        p.name == name
        and p.kind
        in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        for p in params
    )


@dataclass
class RunResult:
    """Outcome of one executed (or cache-served) :class:`RunSpec`."""

    spec: RunSpec
    digest: str
    summary: Dict[str, float]
    power: Dict[str, Dict[str, float]] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    profile: Dict[str, float] = field(default_factory=dict)
    wall_s: float = 0.0
    cache_hit: bool = False

    def to_payload(self) -> Dict[str, object]:
        """Serialisable form stored in the result cache."""
        return {
            "spec": self.spec.to_dict(),
            "summary": self.summary,
            "power": self.power,
            "meta": self.meta,
            "metrics": self.metrics,
            "profile": self.profile,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, object], cache_hit: bool = False
    ) -> "RunResult":
        spec = RunSpec.from_dict(payload["spec"])
        return cls(
            spec=spec,
            digest=spec.digest(),
            summary=dict(payload.get("summary") or {}),
            power={k: dict(v) for k, v in (payload.get("power") or {}).items()},
            meta=dict(payload.get("meta") or {}),
            metrics=dict(payload.get("metrics") or {}),
            profile=dict(payload.get("profile") or {}),
            wall_s=float(payload.get("wall_s", 0.0)),
            cache_hit=cache_hit,
        )

    # Convenience accessors -------------------------------------------- #

    @property
    def latency(self) -> float:
        return self.summary["latency_mean"]

    @property
    def throughput(self) -> float:
        return self.summary["throughput"]

    def power_for(self, config_id: int, scenario: int) -> Dict[str, float]:
        return self.power[f"cfg{config_id}_s{scenario}"]


# --------------------------------------------------------------------- #
# Single-run execution
# --------------------------------------------------------------------- #


def _make_traffic(
    spec: TrafficSpec,
    n_cores: int,
    stop_cycle: Optional[int],
    cycles: Optional[int] = None,
):
    if spec.kind == "workload":
        from repro.workloads import build_workload_traffic

        # The application model compiles to a deterministic trace covering
        # the run's measured window (params may override the duration).
        return build_workload_traffic(
            spec, n_cores, stop_cycle, default_duration=cycles
        )
    pattern = spec.pattern
    if pattern.upper() == "HOT" and (spec.hotspots or spec.hotspot_fraction != 0.2):
        from repro.traffic.patterns import TrafficPattern

        pattern = TrafficPattern(
            "HOT",
            n_cores,
            hotspot_fraction=spec.hotspot_fraction,
            hotspots=list(spec.hotspots) or None,
        )
    if spec.kind == "bursty":
        from repro.traffic.bursty import BurstyTraffic

        return BurstyTraffic(
            n_cores,
            pattern,
            spec.rate,
            spec.packet_size,
            seed=spec.seed,
            burst_factor=spec.burst_factor,
            mean_burst_cycles=spec.mean_burst_cycles,
            stop_cycle=stop_cycle,
        )
    from repro.traffic.generator import SyntheticTraffic

    return SyntheticTraffic(
        n_cores,
        pattern,
        spec.rate,
        spec.packet_size,
        seed=spec.seed,
        stop_cycle=stop_cycle,
    )


def _make_faults(spec: RunSpec, built) -> Tuple[Optional[object], List[object], Dict[str, object]]:
    """Instantiate the fault layer + hooks described by ``spec.faults``."""
    fs = spec.faults
    if fs is None:
        return None, [], {}
    from repro.faults import FaultCampaign, FaultLayer, HealthMonitor, PermanentFault
    from repro.utils.rng import RngStreams

    data_links = [
        link.name
        for link in built.network.links
        if link.kind == "wireless"
        and link.channel_id is not None
        and link.channel_id <= fs.max_channel
    ]
    meta: Dict[str, object] = {}
    if fs.kind == "bursty":
        campaign = FaultCampaign.bursty(
            data_links,
            spec.cycles,
            RngStreams(fs.seed),
            fs.burst_rate,
            burst_duration=fs.burst_duration,
            snr_penalty_db=fs.snr_penalty_db,
        )
    else:  # "death"
        target = data_links[fs.target_index]
        campaign = FaultCampaign([PermanentFault(at=fs.at, target=target)])
        meta["dead_link"] = target
    layer = FaultLayer(built.network, campaign=campaign, rng=RngStreams(fs.layer_seed))
    hooks: List[object] = []
    # spec.control supersedes the open-loop failover wiring: the control
    # loop builds (and owns) the controller + monitor itself.
    if fs.failover and spec.control is None:
        from repro.core.own256 import make_reconfig_controller

        ctrl = make_reconfig_controller(built, epoch_cycles=fs.reconfig_epoch)
        monitor = HealthMonitor(
            layer,
            routing=built.notes["routing"],
            reconfig=ctrl,
            epoch_cycles=fs.monitor_epoch,
        )
        hooks = [ctrl, monitor]
    return layer, hooks, meta


def _make_control(spec: RunSpec, built, layer) -> Tuple[List[object], Optional[object]]:
    """Instantiate the closed-loop control plane described by ``spec.control``.

    Returns ``(hooks, loop)``; the loop's decision log is folded into the
    result after the run. The reconfiguration controller runs in managed
    mode and is driven by the loop, so it is not itself a hook; the
    health monitor (present only with a fault layer) keeps its own epoch
    and is registered before the loop so failover verdicts land at the
    cycle the monitor reaches them, not a control epoch later.
    """
    cs = spec.control
    if cs is None:
        return [], None
    from repro.control import ControlLoop
    from repro.core.own256 import make_reconfig_controller
    from repro.utils.rng import RngStreams

    routing = built.notes.get("routing")
    if routing is None or not hasattr(routing, "unfail_channel"):
        raise ValueError(
            "spec.control requires a fault-tolerant reconfigurable topology "
            "(e.g. own256_ft with with_reconfiguration=True)"
        )
    ctrl = make_reconfig_controller(built, epoch_cycles=cs.epoch_cycles)
    # The managed controller is a hook in its own right: placement stays
    # loop-driven (managed mode), but the two-phase drain state machine
    # needs the per-cycle clock -- while an assignment drains, the
    # controller watches the leg's occupancy every stepped cycle and
    # re-points the channel the moment it empties (or times out).
    hooks: List[object] = [ctrl]
    monitor = None
    if layer is not None:
        from repro.faults import HealthMonitor

        monitor = HealthMonitor(
            layer, routing=routing, reconfig=ctrl, epoch_cycles=cs.monitor_epoch
        )
        hooks.append(monitor)
    loop = ControlLoop(
        routing,
        ctrl,
        layer=layer,
        monitor=monitor,
        epoch_cycles=cs.epoch_cycles,
        hysteresis=cs.hysteresis,
        min_dwell_epochs=cs.min_dwell_epochs,
        probe_ok_needed=cs.probe_ok_needed,
        probe_size_flits=cs.probe_size_flits,
        retry_base_epochs=cs.retry_base_epochs,
        retry_cap_epochs=cs.retry_cap_epochs,
        max_pin_attempts=cs.max_pin_attempts,
        osc_window=cs.osc_window,
        osc_threshold=cs.osc_threshold,
        rng=RngStreams(cs.seed),
    )
    hooks.append(loop)
    return hooks, loop


def _power_metrics(built, sim, config_id: int, scenario: int) -> Dict[str, float]:
    """Power breakdown plus per-link wireless averages for one config."""
    from repro.power import PowerModel, SCENARIOS, measure_power

    breakdown = measure_power(built, sim, config_id=config_id, scenario=scenario)
    out = dict(breakdown.as_dict())

    # Fig. 5's metric: average power of the *active* wireless links.
    model = PowerModel(config_id=config_id, scenario=SCENARIOS[scenario])
    duration = model.dsent.cycles_to_seconds(sim.now)
    wifi_pj = 0.0
    n_links = 0
    for link in built.network.links:
        if link.kind != "wireless" or link.bits_carried == 0:
            continue
        e = model.wireless_link_energy_pj_per_bit(link)
        wifi_pj += link.bits_carried * model.wireless.effective_energy_pj(
            e, link.multicast_degree
        )
        n_links += 1
    if duration > 0:
        out["avg_wireless_link_mw"] = wifi_pj * 1e-12 / duration / max(1, n_links) * 1e3
    else:
        out["avg_wireless_link_mw"] = 0.0
    return out


def execute_inline(
    spec: RunSpec,
    tracer: Optional[object] = None,
    publish: Optional[Callable[[Dict[str, object]], None]] = None,
    sample_every: int = DEFAULT_SAMPLE_EVERY,
):
    """Run ``spec`` in-process and return ``(built, sim, result)``.

    The escape hatch for experiments that post-process live network
    objects (thermal maps, router activity heat). Shares the engine's
    isolation and determinism guarantees but bypasses cache and workers
    (the objects are not serialisable).

    ``tracer`` attaches a caller-owned :class:`repro.telemetry.Tracer`
    (the caller keeps the event stream, e.g. for Chrome export). Without
    one, ``spec.telemetry`` spins up a metrics-only tracer whose flat
    dict lands in ``result.metrics``.

    ``publish`` attaches a :class:`repro.obs.RunObserver` emitting
    ``run_started`` / ``heartbeat`` (every ``sample_every`` cycles) /
    ``run_finished`` events onto an observation bus. Observation is
    read-only: the observed run is bit-identical to an unobserved one.
    """
    t0 = time.perf_counter()
    observer = None
    if publish is not None:
        observer = RunObserver(
            publish,
            digest=spec.digest(),
            label=spec.label(),
            tag=spec.tag,
            every=sample_every,
            target_cycles=spec.cycles + max(0, spec.drain),
        )
        observer.on_run_started(spec)
    built = build_topology(spec.topology, **dict(spec.topology_kwargs))
    stop = spec.cycles if spec.drain else None
    traffic = _make_traffic(spec.traffic, built.n_cores, stop, cycles=spec.cycles)
    layer, hooks, fault_meta = _make_faults(spec, built)
    control_hooks, control_loop = _make_control(spec, built, layer)
    hooks = hooks + control_hooks
    if tracer is None and spec.telemetry:
        from repro.telemetry import Tracer

        tracer = Tracer(record_events=False)
    if observer is not None and tracer is not None and tracer.enabled:
        # Periodic windowed-telemetry snapshots ride along in heartbeats
        # whenever the run is traced anyway (sinks see the stream even in
        # metrics-only mode).
        from repro.telemetry.windows import WindowedAggregator

        observer.windows = WindowedAggregator()
        tracer.add_sink(observer.windows)
    from repro.noc.simulator import Simulator

    sim = Simulator(
        built.network,
        traffic=traffic,
        warmup_cycles=spec.warmup,
        faults=layer,
        tracer=tracer,
        dense=spec.dense,
        observer=observer,
    )
    for hook in hooks:
        sim.add_hook(hook)
    t_built = time.perf_counter()
    sim.run(spec.cycles)
    drained = True
    if spec.drain:
        drained = sim.drain(spec.drain)
    t_simulated = time.perf_counter()

    summary = dict(sim.stats.summary(spec.cycles))
    summary.update(
        {k: float(v) for k, v in sim.stats.retransmission_summary().items()}
    )
    summary["drained"] = float(drained)
    # Any hook exposing flat metrics folds them into the summary (the
    # control loop, and the reconfiguration controller's drain counters +
    # transition-log CRC in both open-loop and managed runs). Absent-side
    # metrics are skipped by ``repro diff``, so new keys are golden-safe.
    for hook in hooks:
        metrics_fn = getattr(hook, "summary_metrics", None)
        if metrics_fn is not None:
            summary.update(metrics_fn())
    power = {
        f"cfg{cfg}_s{scen}": _power_metrics(built, sim, cfg, scen)
        for cfg, scen in spec.power
    }
    meta: Dict[str, object] = {
        "network_name": built.name,
        "n_cores": built.n_cores,
        "kind": built.kind,
    }
    meta.update(fault_meta)
    if control_loop is not None:
        meta["control"] = control_loop.meta_payload()
    from repro.core.reconfig import ReconfigurationController

    for hook in hooks:
        if isinstance(hook, ReconfigurationController):
            meta["reconfig"] = hook.meta_payload()
    metrics: Dict[str, object] = {}
    if tracer is not None and tracer.enabled:
        tracer.finalize(sim)
        metrics = tracer.metrics_dict()
    t_end = time.perf_counter()
    # Simulator self-profiling: per-phase wall time plus the substrate's
    # own speed (simulated cycles per wall second of pure cycle-loop
    # time, drain included). Folded into run records so engine perf
    # regressions surface in `repro diff` next to the physics.
    sim_s = t_simulated - t_built
    profile = {
        "build_s": round(t_built - t0, 4),
        "sim_s": round(sim_s, 4),
        "measure_s": round(t_end - t_simulated, 4),
        "sim_cycles": sim.now,
        "sim_cycles_per_sec": round(sim.now / sim_s, 1) if sim_s > 0 else None,
    }
    result = RunResult(
        spec=spec,
        digest=spec.digest(),
        summary=summary,
        power=power,
        meta=meta,
        metrics=metrics,
        profile=profile,
        wall_s=t_end - t0,
    )
    if observer is not None:
        observer.on_run_finished(result.wall_s, summary=summary)
    return built, sim, result


def run_spec(
    spec: RunSpec,
    publish: Optional[Callable[[Dict[str, object]], None]] = None,
    sample_every: int = DEFAULT_SAMPLE_EVERY,
) -> RunResult:
    """Execute one spec in-process and return only its (serialisable) result."""
    _, _, result = execute_inline(
        spec, publish=publish, sample_every=sample_every
    )
    return result


def _pool_worker(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point: spec dict in, result payload out.

    When the pool was started with an observation queue (see
    :func:`repro.obs.bus.install_worker_bus`), lifecycle events stream
    back to the parent while the run is still in flight.
    """
    bus = worker_bus()
    publish, sample_every = bus if bus is not None else (None, DEFAULT_SAMPLE_EVERY)
    result = run_spec(
        RunSpec.from_dict(payload), publish=publish, sample_every=sample_every
    )
    return result.to_payload()


# --------------------------------------------------------------------- #
# The executor
# --------------------------------------------------------------------- #


class Executor:
    """Runs batches of specs with optional parallelism, caching and logging.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (default) runs in-process; ``N > 1`` uses a
        ``multiprocessing`` pool. Results are ordered and bit-identical to
        a serial run either way.
    cache:
        A :class:`~repro.runtime.cache.ResultCache` (or a path, coerced);
        ``None`` disables caching.
    runlog:
        A :class:`~repro.runtime.records.RunLog` (or a path, coerced);
        ``None`` disables run records.
    progress:
        Optional ``(done, total, result)`` callback fired per completion.
    telemetry:
        Rewrite every incoming spec with ``telemetry=True`` so results
        (and run records) carry per-channel-class metrics. Changes spec
        digests, so telemetry-on and telemetry-off results cache
        separately.
    trace_dir:
        Directory for Chrome ``trace_event`` JSON files, one per unique
        executed spec (named ``{label}-{digest8}.json``). Implies
        ``telemetry`` and forces in-process execution for traced runs
        (the event stream does not cross process or cache boundaries).
    observe:
        Optional :class:`repro.obs.ObservationHub`. Runs then emit
        ``run_started`` / ``heartbeat`` / ``run_finished`` events -- over
        the worker queue when ``jobs > 1``, inline otherwise -- feeding
        the hub's exporters, live view, stall watchdog and any
        phase-aware ``progress`` callback. Observation is read-only:
        observed results are bit-identical to unobserved ones.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[Union[ResultCache, str]] = None,
        runlog: Optional[Union[RunLog, str]] = None,
        progress: Optional[ProgressFn] = None,
        telemetry: bool = False,
        trace_dir: Optional[Union[str, "Path"]] = None,
        observe: Optional[object] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
            cache = ResultCache(cache)
        self.cache = cache
        if isinstance(runlog, (str, bytes)) or hasattr(runlog, "__fspath__"):
            runlog = RunLog(runlog)
        self.runlog = runlog
        self.progress = progress
        self._progress_phases = _progress_accepts(progress, "phase")
        self._progress_info = _progress_accepts(progress, "info")
        self.telemetry = telemetry or trace_dir is not None
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.observe = observe
        if observe is not None and self._progress_phases:
            observe.subscribe(self._forward_inflight)
        self.runs_executed = 0
        self.runs_from_cache = 0
        self._done = 0
        self._total = 0

    def _forward_inflight(self, event: Dict[str, object]) -> None:
        """Route in-flight bus events into a phase-aware progress callback."""
        kind = event.get("event")
        if kind == "run_finished":
            return  # completions flow through _finish with the result
        phase = "started" if kind == "run_started" else str(kind)
        kwargs = {"phase": phase}
        if self._progress_info:
            kwargs["info"] = event
        self.progress(self._done, self._total, None, **kwargs)

    # ------------------------------------------------------------------ #

    def run_one(self, spec: RunSpec) -> RunResult:
        return self.run([spec])[0]

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute ``specs``, returning results in input order."""
        specs = list(specs)
        if not specs:
            return []
        if self.telemetry:
            specs = [
                s if s.telemetry else s.with_(telemetry=True) for s in specs
            ]
        hub = self.observe
        if hub is not None:
            hub.begin(specs)
        try:
            return self._run_batch(specs, hub)
        finally:
            if hub is not None:
                hub.end()

    def _run_batch(self, specs: List[RunSpec], hub) -> List[RunResult]:
        total = len(specs)
        self._total += total
        results: List[Optional[RunResult]] = [None] * total

        def _finish(i: int, result: RunResult) -> None:
            results[i] = result
            self._done += 1
            if self.runlog is not None:
                self.runlog.write(make_record(result, engine=self.engine_snapshot()))
            if self.progress is not None:
                if self._progress_phases:
                    self.progress(
                        self._done, self._total, result, phase="finished"
                    )
                else:
                    self.progress(self._done, self._total, result)

        publish = hub.handle if hub is not None else None
        sample_every = hub.sample_every if hub is not None else DEFAULT_SAMPLE_EVERY

        # Serve cache hits first (and dedupe identical pending specs).
        pending: List[int] = []
        digests = [spec.digest() for spec in specs]
        for i, spec in enumerate(specs):
            if self.cache is not None:
                t0 = time.perf_counter()
                payload = self.cache.get(digests[i])
                if payload is not None:
                    result = RunResult.from_payload(payload, cache_hit=True)
                    # Lookup time, not simulation time: well-defined (and
                    # near-zero) even when every spec in the batch hits.
                    result.wall_s = max(0.0, time.perf_counter() - t0)
                    self.runs_from_cache += 1
                    if hub is not None:
                        hub.note_finished(result)
                    _finish(i, result)
                    continue
            pending.append(i)

        first_by_digest: Dict[str, int] = {}
        unique: List[int] = []
        for i in pending:
            if digests[i] in first_by_digest:
                continue
            first_by_digest[digests[i]] = i
            unique.append(i)

        if self.trace_dir is not None:
            computed = [
                self._run_traced(specs[i], publish, sample_every)
                for i in unique
            ]
        elif self.jobs > 1 and len(unique) > 1:
            computed = self._run_pool([specs[i] for i in unique], hub)
        else:
            computed = [
                run_spec(specs[i], publish=publish, sample_every=sample_every)
                for i in unique
            ]

        by_digest = {digests[i]: r for i, r in zip(unique, computed)}
        for i in pending:
            result = by_digest[digests[i]]
            if i != first_by_digest[digests[i]]:
                result = RunResult.from_payload(result.to_payload())
                result.wall_s = 0.0
            if self.cache is not None and i == first_by_digest[digests[i]]:
                self.cache.put(digests[i], result.to_payload())
            self.runs_executed += 1
            _finish(i, result)
        return results  # type: ignore[return-value]

    def _run_traced(
        self,
        spec: RunSpec,
        publish: Optional[Callable[[Dict[str, object]], None]] = None,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
    ) -> RunResult:
        """Execute one spec with full event recording + Chrome export."""
        from repro.telemetry import Tracer
        from repro.telemetry.export import write_chrome_trace

        tracer = Tracer()
        _, _, result = execute_inline(
            spec, tracer=tracer, publish=publish, sample_every=sample_every
        )
        stem = re.sub(r"[^A-Za-z0-9._-]+", "-", spec.label())
        path = self.trace_dir / f"{stem}-{result.digest[:8]}.json"
        write_chrome_trace(tracer, path)
        result.meta["trace_path"] = str(path)
        return result

    def _run_pool(self, specs: List[RunSpec], hub=None) -> List[RunResult]:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context("spawn")
        payloads = [spec.to_dict() for spec in specs]
        jobs = min(self.jobs, len(payloads))
        queue = drain = None
        initializer = initargs = None
        if hub is not None:
            # Workers publish onto an inherited queue; a parent-side drain
            # thread pumps events into the hub while the pool is mapping.
            queue = ctx.Queue()
            drain = BusDrain(queue, hub.handle, on_tick=hub.check_stalls)
            drain.start()
            initializer = install_worker_bus
            initargs = (queue, hub.sample_every)
        try:
            with ctx.Pool(
                processes=jobs, initializer=initializer, initargs=initargs or ()
            ) as pool:
                outputs = pool.map(_pool_worker, payloads)
        finally:
            if drain is not None:
                drain.stop()
        return [RunResult.from_payload(p) for p in outputs]

    def engine_snapshot(self) -> Dict[str, object]:
        """Flat executor-state counters folded into each run record.

        Surfaces result-cache effectiveness (hit/miss counts at the moment
        the record is written) so a run log alone answers "did the cache
        actually serve anything?".
        """
        snap: Dict[str, object] = {
            "runs_executed": self.runs_executed,
            "runs_from_cache": self.runs_from_cache,
        }
        if self.cache is not None:
            snap["cache_hits"] = self.cache.hits
            snap["cache_misses"] = self.cache.misses
        return snap

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "jobs": self.jobs,
            "runs_executed": self.runs_executed,
            "runs_from_cache": self.runs_from_cache,
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out


#: Module-level serial executor used as the default substrate when a call
#: site does not supply one (no cache, no log, in-process).
DEFAULT_EXECUTOR = Executor(jobs=1)


def get_executor(executor: Optional[Executor]) -> Executor:
    return executor if executor is not None else DEFAULT_EXECUTOR
