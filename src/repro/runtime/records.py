"""Structured run records: one JSONL line per executed simulation.

Every run the executor performs (or serves from cache) appends a record
with the spec digest, wall time, simulation speed and summary metrics.
The log is the observability surface for long sweeps -- greppable,
streamable, and machine-readable for regression dashboards. Schema::

    {
      "ts": 1730000000.0,          # unix time the run finished
      "schema": 2,                 # record schema version (spec.SCHEMA_VERSION)
      "digest": "ab12...",         # RunSpec content address
      "label": "own256/UN@0.03x1200",
      "topology": "own256",
      "pattern": "UN", "rate": 0.03,
      "cycles": 1200, "warmup": 400,
      "cache_hit": false,
      "wall_s": 2.31,              # build + simulate + measure
      "cycles_per_sec": 519.5,     # simulated cycles per wall second
      "summary": {...},            # StatsCollector.summary() + protocol counters
      "metrics": {...},            # telemetry (only when spec.telemetry)
      "power": {...},              # power breakdowns (only when spec.power)
      "profile": {...},            # per-phase wall time + sim cycles/sec
      "engine": {...},             # executor cache/run counters at write time
      "meta": {...}                # network name, core count, ...
    }

Schema history: v1 had none of ``schema``/``power``/``profile``/``engine``;
:func:`read_runlog` keeps accepting v1 lines (the new keys are additive),
and ``repro diff`` treats their absent fields as unavailable.

Records are *strict* JSON: every line must parse under ``allow_nan=False``
consumers. Python's ``json`` would otherwise emit bare ``NaN`` tokens for
empty-sample latency stats (``LatencyStats.from_samples([])``), which is
not JSON and breaks ``jq`` and other strict parsers -- :func:`json_safe`
renders non-finite floats as ``null`` at this boundary.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.runtime.spec import SCHEMA_VERSION


def json_safe(value):
    """Recursively replace non-finite floats (NaN/Inf) with ``None``.

    Applied to every run record before serialisation so empty-sample
    statistics (NaN in process) become ``null`` on disk instead of the
    invalid bare ``NaN`` token Python's encoder emits by default.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


class RunLog:
    """Append-only JSONL writer for run records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.records_written = 0

    def write(self, record: Dict[str, object]) -> None:
        line = json.dumps(
            json_safe(record), sort_keys=True, default=str, allow_nan=False
        )
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
        self.records_written += 1


def make_record(
    result: "RunResult",  # noqa: F821
    engine: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build the JSONL record for one executor result.

    ``engine`` is an optional executor-state snapshot (run and result-cache
    hit/miss counters at write time) folded in under the ``"engine"`` key
    so cache effectiveness is visible straight from the log.
    """
    spec = result.spec
    wall = result.wall_s
    record = {
        "ts": time.time(),
        "schema": SCHEMA_VERSION,
        "digest": result.digest,
        "label": spec.label(),
        "variant": spec.tag or None,
        "topology": spec.topology,
        "pattern": spec.traffic.pattern,
        "rate": spec.traffic.rate,
        "cycles": spec.cycles,
        "warmup": spec.warmup,
        "cache_hit": result.cache_hit,
        "wall_s": round(wall, 4),
        # Cache hits report lookup time, so cycles/wall-second would be a
        # meaningless (and enormous) figure; the record says "not simulated".
        "cycles_per_sec": (
            round(spec.cycles / wall, 1)
            if wall > 0 and not result.cache_hit
            else None
        ),
        "summary": result.summary,
        "meta": result.meta,
    }
    if result.metrics:
        record["metrics"] = result.metrics
    if result.power:
        record["power"] = result.power
    if result.profile:
        record["profile"] = result.profile
    if engine is not None:
        record["engine"] = engine
    return json_safe(record)


def read_runlog(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a JSONL run log (skipping any malformed lines)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
    return records
