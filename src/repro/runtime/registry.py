"""Topology registry: string keys -> builders, for picklable run specs.

A :class:`~repro.runtime.spec.RunSpec` references its topology by registry
key plus builder kwargs, never by callable, so specs survive hashing,
JSON serialisation and process boundaries. The registry ships every
architecture the paper evaluates; downstream code can
:func:`register_topology` its own builders (with a fork-based executor,
registrations made before the pool spawns are visible to workers).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple, Union

from repro.topologies.base import BuiltTopology

#: A picklable topology reference: ``key`` or ``(key, kwargs)``.
TopologyRef = Union[str, Tuple[str, Mapping[str, object]]]

_BUILDERS: Dict[str, Callable[..., BuiltTopology]] = {}


def register_topology(key: str, builder: Callable[..., BuiltTopology]) -> None:
    """Register (or replace) a builder under ``key``."""
    _BUILDERS[key] = builder


def topology_keys() -> Tuple[str, ...]:
    return tuple(sorted(_BUILDERS))


def build_topology(key: str, **kwargs) -> BuiltTopology:
    """Build a fresh topology for ``key``.

    Always constructs a new network: built networks carry per-run link and
    arbitration state and must never be shared between simulators.
    """
    try:
        builder = _BUILDERS[key]
    except KeyError:
        raise KeyError(
            f"unknown topology key {key!r}; known: {list(topology_keys())}"
        ) from None
    return builder(**kwargs)


def resolve_ref(ref: TopologyRef) -> Tuple[str, Dict[str, object]]:
    """Normalise a ``key`` / ``(key, kwargs)`` reference."""
    if isinstance(ref, str):
        return ref, {}
    key, kwargs = ref
    return key, dict(kwargs)


def build_ref(ref: TopologyRef) -> BuiltTopology:
    key, kwargs = resolve_ref(ref)
    return build_topology(key, **kwargs)


# --------------------------------------------------------------------- #
# Built-in builders
# --------------------------------------------------------------------- #


def _build_own256_ft(
    failed_channels: Tuple[Tuple[int, int], ...] = (), **kwargs
) -> BuiltTopology:
    """Fault-tolerant OWN-256; optionally pre-fail wireless channels.

    ``failed_channels`` is a tuple of ``(src_cluster, dst_cluster)`` pairs
    marked dead in the relay-capable routing before the run starts.
    """
    from repro.core.faults import build_fault_tolerant_own256

    built = build_fault_tolerant_own256(**kwargs)
    routing = built.notes["routing"]
    for (cs, cd) in failed_channels:
        routing.fail_channel(int(cs), int(cd))
    return built


def _install_builtin_builders() -> None:
    from repro.core import build_own256, build_own1024
    from repro.topologies import build_cmesh, build_optxb, build_pclos, build_wcmesh

    register_topology("own256", build_own256)
    register_topology("own1024", build_own1024)
    register_topology("own256_ft", _build_own256_ft)
    register_topology("cmesh", build_cmesh)
    register_topology("wcmesh", build_wcmesh)
    register_topology("optxb", build_optxb)
    register_topology("pclos", build_pclos)


_install_builtin_builders()

#: CLI-facing named instances (``python -m repro sweep <name>`` /
#: ``info <name>``): fully-applied references into the registry.
NAMED_TOPOLOGIES: Dict[str, TopologyRef] = {
    "own256": "own256",
    "own1024": "own1024",
    "cmesh256": ("cmesh", {"n_cores": 256}),
    "cmesh1024": ("cmesh", {"n_cores": 1024}),
    "wcmesh256": ("wcmesh", {"n_cores": 256}),
    "wcmesh1024": ("wcmesh", {"n_cores": 1024}),
    "optxb256": ("optxb", {"n_cores": 256}),
    "optxb1024": ("optxb", {"n_cores": 1024}),
    "pclos256": ("pclos", {"n_cores": 256}),
    "pclos1024": ("pclos", {"n_cores": 1024, "n_middles": 32}),
}


def ref_for_callable(builder: Callable[[], BuiltTopology]) -> Optional[TopologyRef]:
    """Reverse-map a legacy builder callable onto a registry reference.

    Supports the exact registered builders (``build_own256`` etc.) and
    callables that advertise a reference via a ``runtime_ref`` attribute.
    Returns ``None`` when the callable cannot be expressed as a spec, in
    which case callers fall back to in-process execution.
    """
    ref = getattr(builder, "runtime_ref", None)
    if ref is not None:
        return ref
    for key, registered in _BUILDERS.items():
        if builder is registered:
            return key
    return None
