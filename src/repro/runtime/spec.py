"""Declarative run specifications.

A :class:`RunSpec` is a frozen, hashable value object that *fully
determines* one simulation: which topology to build (registry key +
builder kwargs), what traffic to offer (pattern / rate / seed), how long
to run (cycles / warmup / drain), and which fault campaign (if any) to
inject. Because a spec is pure data, it can be

- **digested** into a content address (:meth:`RunSpec.digest`) for the
  on-disk result cache,
- **pickled** across process boundaries for the multiprocessing executor,
- **serialised** to JSON for run records and later re-execution.

The digest also folds in a fingerprint of the ``repro`` source tree, so
editing any simulator code invalidates every cached result (conservative
but safe: stale physics never leaks out of the cache).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

#: Bumped when the result payload layout changes (invalidates the cache
#: even if no source file changed).
#:
#: v2: results carry a ``profile`` dict (per-phase wall time + simulator
#: cycles/sec) and run records additionally surface ``power``, ``engine``
#: cache counters and this schema number (see docs/observability.md).
SCHEMA_VERSION = 2

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Content hash of every ``.py`` file in the installed ``repro`` package.

    Computed once per process. ``REPRO_CODE_VERSION`` overrides it (useful
    in CI to share a cache across checkouts known to be equivalent).
    """
    global _code_fingerprint
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if _code_fingerprint is None:
        import repro
        from repro.obs.log import get_logger

        root = os.path.dirname(os.path.abspath(repro.__file__))
        h = hashlib.sha256()
        n_files = 0
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                h.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    h.update(fh.read())
                n_files += 1
        _code_fingerprint = h.hexdigest()[:16]
        get_logger("repro.runtime.spec").debug(
            f"code fingerprint {_code_fingerprint} over {n_files} files",
            extra={"fingerprint": _code_fingerprint, "n_files": n_files},
        )
    return _code_fingerprint


def fingerprint_files() -> Tuple[str, ...]:
    """Package-relative paths covered by :func:`code_fingerprint`.

    Audit companion to the fingerprint: the hash itself is opaque, so
    tests assert coverage against this list instead (e.g. that hot-path
    modules like ``noc/kernels.py`` invalidate the cache when edited).
    Uses the same walk/filter logic, so the two cannot drift apart.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    out = []
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            out.append(os.path.relpath(os.path.join(dirpath, fname), root))
    return tuple(out)


def freeze_kwargs(kwargs: Optional[Mapping[str, object]]) -> Tuple[Tuple[str, object], ...]:
    """Normalise builder kwargs into a sorted, hashable tuple of pairs.

    Lists become tuples (recursively) so the result is hashable; insertion
    order is irrelevant to the digest.
    """

    def _freeze(v: object) -> object:
        if isinstance(v, (list, tuple)):
            return tuple(_freeze(x) for x in v)
        if isinstance(v, dict):
            return tuple(sorted((str(k), _freeze(x)) for k, x in v.items()))
        return v

    if not kwargs:
        return ()
    return tuple(sorted((str(k), _freeze(v)) for k, v in dict(kwargs).items()))


def _thaw(value: object) -> object:
    """JSON round-trip turns tuples into lists; re-freeze on load."""
    if isinstance(value, list):
        return tuple(_thaw(v) for v in value)
    return value


@dataclass(frozen=True)
class TrafficSpec:
    """Open-loop traffic fully described by value.

    ``kind`` selects the generator class: ``"synthetic"`` (Bernoulli,
    :class:`~repro.traffic.generator.SyntheticTraffic`), ``"bursty"``
    (Markov-modulated, :class:`~repro.traffic.bursty.BurstyTraffic`) or
    ``"workload"`` (an application model from :mod:`repro.workloads`,
    compiled to a deterministic trace and replayed through
    :class:`~repro.traffic.trace.TraceTraffic`).
    ``hotspot_fraction`` / ``hotspots`` parameterise the ``HOT`` pattern
    (an empty ``hotspots`` tuple keeps the pattern's default, core 0).

    For ``kind="workload"``, ``workload`` names the generator in
    :data:`repro.workloads.WORKLOADS`, ``workload_params`` carries its
    frozen builder kwargs, ``rate`` maps onto the family's intensity
    knob, and ``pattern`` is a free-form label (convention:
    ``"wl-<name>"``) used only for run-record keying.
    """

    pattern: str = "UN"
    rate: float = 0.01
    packet_size: int = 4
    seed: int = 1
    kind: str = "synthetic"
    burst_factor: float = 1.0
    mean_burst_cycles: float = 20.0
    hotspot_fraction: float = 0.2
    hotspots: Tuple[int, ...] = ()
    workload: str = ""
    workload_params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("synthetic", "bursty", "workload"):
            raise ValueError(f"unknown traffic kind {self.kind!r}")
        if self.kind == "workload" and not self.workload:
            raise ValueError('kind="workload" requires a workload name')
        if self.workload and self.kind != "workload":
            raise ValueError(f'workload={self.workload!r} requires kind="workload"')
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        # JSON round-trips deliver lists; re-freeze for hashability.
        object.__setattr__(
            self, "hotspots", tuple(int(c) for c in self.hotspots)
        )
        object.__setattr__(
            self, "workload_params", freeze_kwargs(dict(self.workload_params))
        )


@dataclass(frozen=True)
class FaultSpec:
    """A deterministic fault campaign, by value.

    ``kind="bursty"`` draws transient interference bursts on the wireless
    data channels (channel index <= ``max_channel``) from a dedicated RNG
    stream seeded with ``seed``; ``kind="death"`` kills the
    ``target_index``-th data channel permanently at cycle ``at``.
    ``failover`` additionally wires the reconfiguration controller and
    health monitor so dead channels fail over onto pinned spares (requires
    a fault-tolerant topology, e.g. ``own256_ft``).
    """

    kind: str = "bursty"
    seed: int = 7
    layer_seed: int = 11
    burst_rate: float = 0.0
    burst_duration: int = 50
    snr_penalty_db: float = 5.0
    at: int = 0
    target_index: int = 0
    max_channel: int = 12
    failover: bool = False
    reconfig_epoch: int = 250
    monitor_epoch: int = 100

    def __post_init__(self) -> None:
        if self.kind not in ("bursty", "death"):
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass(frozen=True)
class ControlSpec:
    """A closed-loop control plane, by value (see ``docs/control.md``).

    Attaching a ``ControlSpec`` to a :class:`RunSpec` wires a
    :class:`repro.control.ControlLoop` (plus a managed reconfiguration
    controller and, when faults are present, a health monitor) into the
    run. Requires a fault-tolerant reconfigurable topology
    (``own256_ft`` with ``with_reconfiguration=True``). Supersedes
    ``FaultSpec.failover`` -- the loop owns failover wiring.

    All knobs are digested, so two runs with different hysteresis or
    probe settings never share a cache entry; the decision log the loop
    produces is byte-stable per digest.
    """

    epoch_cycles: int = 250
    hysteresis: float = 1.25
    min_dwell_epochs: int = 2
    probe_ok_needed: int = 2
    probe_size_flits: int = 1
    retry_base_epochs: int = 1
    retry_cap_epochs: int = 8
    max_pin_attempts: int = 5
    osc_window: int = 8
    osc_threshold: int = 6
    monitor_epoch: int = 100
    seed: int = 23

    def __post_init__(self) -> None:
        if self.epoch_cycles < 1:
            raise ValueError(f"epoch_cycles must be >= 1, got {self.epoch_cycles}")
        if self.probe_ok_needed < 1:
            raise ValueError("probe_ok_needed must be >= 1")
        if self.osc_threshold < 2 or self.osc_window < self.osc_threshold:
            raise ValueError("need 2 <= osc_threshold <= osc_window")


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one simulation point.

    Parameters
    ----------
    topology:
        Key into :mod:`repro.runtime.registry` (e.g. ``"own256"``,
        ``"cmesh"``).
    topology_kwargs:
        Frozen builder kwargs (use :meth:`RunSpec.create` to pass a dict).
    traffic:
        The offered-load description.
    cycles, warmup:
        Measurement window (warmup packets excluded from statistics).
    drain:
        If > 0, pause traffic after ``cycles`` and run up to ``drain``
        extra cycles until the network empties (exactly-once studies).
    faults:
        Optional fault campaign.
    control:
        Optional closed-loop control plane (:class:`ControlSpec`): a
        :class:`repro.control.ControlLoop` adaptively steers the spare
        wireless channels, probes failed channels back to health and
        reweights relay routes. Its decision log is folded into the run
        record (``summary["control_log_crc"]``, ``meta["control"]``).
    power:
        ``(config_id, scenario)`` pairs to measure with the power model
        after the run; results land in ``RunResult.power`` keyed
        ``"cfg{c}_s{s}"``.
    telemetry:
        Attach a metrics-only :class:`repro.telemetry.Tracer` to the run;
        its flat metric dict lands in ``RunResult.metrics`` (and the JSONL
        record). Event buffering / Chrome traces are an executor concern
        (``Executor(trace_dir=...)``), not a spec knob, because the event
        stream is not cacheable payload.
    dense:
        Force the reference engine: execute every cycle instead of
        fast-forwarding through quiescent stretches, and drive switch
        allocation through the per-router object scan instead of the
        vectorized array kernel (see
        :class:`repro.noc.simulator.Simulator` and
        :mod:`repro.noc.kernels`). Results are bit-identical either way
        -- this knob exists to *prove* that (CI diffs a dense sweep
        against the fast-generated golden log at a 0% threshold) and as
        a fallback while debugging the scheduler or the kernels.
    tag:
        Free-form variant label (e.g. ``"hot+burst/adaptive"``). Part of
        the digest (two variants never share a cache entry), appended to
        :meth:`label`, and written to run records as ``"variant"`` so
        :mod:`repro.analysis.diffing` can join per-variant across logs --
        without it, arms of a study that share topology/pattern/rate/
        cycles/warmup would collapse into one noise group.
    """

    topology: str
    cycles: int
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    topology_kwargs: Tuple[Tuple[str, object], ...] = ()
    warmup: int = 0
    drain: int = 0
    faults: Optional[FaultSpec] = None
    control: Optional[ControlSpec] = None
    power: Tuple[Tuple[int, int], ...] = ()
    telemetry: bool = False
    dense: bool = False
    tag: str = ""

    @classmethod
    def create(
        cls,
        topology: str,
        pattern: str = "UN",
        rate: float = 0.01,
        cycles: int = 1200,
        warmup: int = 0,
        packet_size: int = 4,
        seed: int = 1,
        topology_kwargs: Optional[Mapping[str, object]] = None,
        traffic_kind: str = "synthetic",
        burst_factor: float = 1.0,
        mean_burst_cycles: float = 20.0,
        hotspot_fraction: float = 0.2,
        hotspots: Tuple[int, ...] = (),
        workload: str = "",
        workload_params: Optional[Mapping[str, object]] = None,
        drain: int = 0,
        faults: Optional[FaultSpec] = None,
        control: Optional[ControlSpec] = None,
        power: Tuple[Tuple[int, int], ...] = (),
        telemetry: bool = False,
        dense: bool = False,
        tag: str = "",
    ) -> "RunSpec":
        """Ergonomic constructor taking plain dicts/kwargs."""
        return cls(
            topology=topology,
            topology_kwargs=freeze_kwargs(topology_kwargs),
            traffic=TrafficSpec(
                pattern=pattern,
                rate=rate,
                packet_size=packet_size,
                seed=seed,
                kind=traffic_kind,
                burst_factor=burst_factor,
                mean_burst_cycles=mean_burst_cycles,
                hotspot_fraction=hotspot_fraction,
                hotspots=tuple(hotspots),
                workload=workload,
                workload_params=freeze_kwargs(workload_params),
            ),
            cycles=cycles,
            warmup=warmup,
            drain=drain,
            faults=faults,
            control=control,
            power=tuple((int(c), int(s)) for c, s in power),
            telemetry=telemetry,
            dense=dense,
            tag=tag,
        )

    def with_(self, **changes) -> "RunSpec":
        """Functional update (``dataclasses.replace`` wrapper)."""
        if "topology_kwargs" in changes:
            changes["topology_kwargs"] = freeze_kwargs(changes["topology_kwargs"])
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Serialisation + content addressing
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        d = asdict(self)
        d["topology_kwargs"] = [list(pair) for pair in self.topology_kwargs]
        d["power"] = [list(pair) for pair in self.power]
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "RunSpec":
        traffic = TrafficSpec(**d["traffic"])
        faults = FaultSpec(**d["faults"]) if d.get("faults") else None
        control = ControlSpec(**d["control"]) if d.get("control") else None
        kwargs = tuple(
            (str(k), _thaw(v)) for k, v in (d.get("topology_kwargs") or ())
        )
        power = tuple((int(c), int(s)) for c, s in (d.get("power") or ()))
        return cls(
            topology=str(d["topology"]),
            topology_kwargs=kwargs,
            traffic=traffic,
            cycles=int(d["cycles"]),
            warmup=int(d.get("warmup", 0)),
            drain=int(d.get("drain", 0)),
            faults=faults,
            control=control,
            power=power,
            telemetry=bool(d.get("telemetry", False)),
            dense=bool(d.get("dense", False)),
            tag=str(d.get("tag", "")),
        )

    def canonical_json(self) -> str:
        """Stable JSON encoding used for the digest."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Content address: spec + code fingerprint + schema version."""
        h = hashlib.sha256()
        h.update(self.canonical_json().encode())
        h.update(f"|code={code_fingerprint()}|schema={SCHEMA_VERSION}".encode())
        return h.hexdigest()

    def label(self) -> str:
        """Short human-readable tag for progress lines and records."""
        base = (
            f"{self.topology}/{self.traffic.pattern}"
            f"@{self.traffic.rate:g}x{self.cycles}"
        )
        return f"{base}#{self.tag}" if self.tag else base
