"""Unified execution engine for all simulation-driving code.

``repro.runtime`` is the single substrate sweeps, experiments,
design-space exploration and benchmarks submit work to:

- :class:`RunSpec` / :class:`TrafficSpec` / :class:`FaultSpec` /
  :class:`ControlSpec` -- frozen, hashable descriptions of one
  simulation point.
- :class:`Executor` -- serial or multiprocessing execution with
  bit-identical results, content-addressed caching
  (:class:`ResultCache`) and JSONL run records (:class:`RunLog`).
- the topology registry -- picklable string keys for every builder.

See ``docs/runtime.md`` for the full tour.
"""

from repro.runtime.spec import (
    SCHEMA_VERSION,
    ControlSpec,
    FaultSpec,
    RunSpec,
    TrafficSpec,
    code_fingerprint,
    freeze_kwargs,
)
from repro.runtime.registry import (
    NAMED_TOPOLOGIES,
    TopologyRef,
    build_ref,
    build_topology,
    ref_for_callable,
    register_topology,
    resolve_ref,
    topology_keys,
)
from repro.runtime.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runtime.records import RunLog, make_record, read_runlog
from repro.runtime.executor import (
    DEFAULT_EXECUTOR,
    Executor,
    RunResult,
    execute_inline,
    get_executor,
    run_spec,
)

__all__ = [
    "SCHEMA_VERSION",
    "ControlSpec",
    "FaultSpec",
    "RunSpec",
    "TrafficSpec",
    "code_fingerprint",
    "freeze_kwargs",
    "NAMED_TOPOLOGIES",
    "TopologyRef",
    "build_ref",
    "build_topology",
    "ref_for_callable",
    "register_topology",
    "resolve_ref",
    "topology_keys",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "RunLog",
    "make_record",
    "read_runlog",
    "DEFAULT_EXECUTOR",
    "Executor",
    "RunResult",
    "execute_inline",
    "get_executor",
    "run_spec",
]
