"""Photonic component inventories and insertion-loss / laser-power models."""

from repro.photonics.components import (
    ComponentCount,
    swmr_crossbar,
    mwsr_crossbar,
    own_cluster_crossbar,
    own_inventory,
    pclos_inventory,
)
from repro.photonics.losses import (
    PhotonicLossParams,
    splitter_loss_db,
    waveguide_path_loss_db,
    required_laser_power_mw,
)
from repro.photonics.wdm import (
    WdmParams,
    WdmPlan,
    own_cluster_plan,
    optxb_plan,
)

__all__ = [
    "ComponentCount",
    "swmr_crossbar",
    "mwsr_crossbar",
    "own_cluster_crossbar",
    "own_inventory",
    "pclos_inventory",
    "PhotonicLossParams",
    "splitter_loss_db",
    "waveguide_path_loss_db",
    "required_laser_power_mw",
    "WdmParams",
    "WdmPlan",
    "own_cluster_plan",
    "optxb_plan",
]
