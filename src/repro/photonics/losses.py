"""Photonic insertion-loss budget and laser-power solver.

"Network latency and insertion losses tend to increase with either a long
snake-like waveguide (single crossbar) or with a multi-hop network" (Sec. I).
This module quantifies that: it walks a waveguide's loss contributors
(coupler, splitter, propagation, ring pass-bys, drop filter) and solves the
off-chip laser power needed for the worst-case path at a given detector
sensitivity -- the static component of photonic link power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.units import dbm_to_watts


@dataclass(frozen=True)
class PhotonicLossParams:
    """Per-component insertion losses [dB], typical silicon-photonics values."""

    coupler_db: float = 1.0  # fiber-to-chip coupler (laser in)
    splitter_excess_db: float = 0.5  # excess loss of a 1:2 splitter stage
    waveguide_db_per_cm: float = 1.0
    ring_through_db: float = 0.01  # passing a non-resonant ring
    ring_drop_db: float = 0.5  # dropping into the receiver ring
    modulator_insertion_db: float = 0.5
    photodetector_db: float = 0.1


def splitter_loss_db(fanout: int, params: PhotonicLossParams = PhotonicLossParams()) -> float:
    """Loss of a 1:``fanout`` star splitter (intrinsic 3 dB per stage +
    excess). OWN splits the laser across 16 tiles this way (Sec. III-A)."""
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    stages = math.ceil(math.log2(fanout)) if fanout > 1 else 0
    return stages * (3.0 + params.splitter_excess_db)


def waveguide_path_loss_db(
    length_mm: float,
    rings_passed: int,
    params: PhotonicLossParams = PhotonicLossParams(),
) -> float:
    """Worst-case on-chip path loss along a bus waveguide."""
    if length_mm < 0 or rings_passed < 0:
        raise ValueError("length and ring count must be non-negative")
    return (
        params.modulator_insertion_db
        + (length_mm / 10.0) * params.waveguide_db_per_cm
        + rings_passed * params.ring_through_db
        + params.ring_drop_db
        + params.photodetector_db
    )


def required_laser_power_mw(
    worst_path_loss_db: float,
    n_wavelengths: int,
    detector_sensitivity_dbm: float = -20.0,
    coupler_db: float = 1.0,
    wall_plug_efficiency: float = 0.1,
    margin_db: float = 3.0,
) -> float:
    """Electrical (wall-plug) laser power for a waveguide's wavelength comb.

    P_optical_per_lambda = sensitivity + losses + margin; the electrical
    draw divides by the laser's wall-plug efficiency -- the dominant static
    cost of big photonic crossbars.

    Raises
    ------
    ValueError
        For non-positive wavelength count or efficiency out of (0, 1].
    """
    if n_wavelengths < 1:
        raise ValueError(f"need >= 1 wavelength, got {n_wavelengths}")
    if not 0.0 < wall_plug_efficiency <= 1.0:
        raise ValueError(f"wall-plug efficiency must be in (0, 1], got {wall_plug_efficiency}")
    per_lambda_dbm = detector_sensitivity_dbm + worst_path_loss_db + coupler_db + margin_db
    optical_w = n_wavelengths * dbm_to_watts(per_lambda_dbm)
    return optical_w / wall_plug_efficiency * 1e3
