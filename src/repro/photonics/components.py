"""Photonic component inventories: the scalability arithmetic of Sec. I/V.

The paper's complexity argument against monolithic photonic crossbars is
quantitative: "a 64x64 crossbar using photonics will require 448 modulators,
7 waveguides and 28224 photodetectors using single-writer multiple-reader
(SWMR). If we scale to 1024x1024, then we will need approximately 7168
modulators, 112 waveguides, and 7.3 million photodetectors" and "designing
optical snake-like waveguide interconnecting 64 routers with 64 wavelengths
will require more than a million ring resonators" (Sec. V-B, Corona-style
MWSR).

These closed forms reproduce every one of those numbers (tests pin them):

* SWMR, n nodes, ``w`` wavelengths per node channel, ``l`` wavelengths per
  waveguide: modulators = n*w, waveguides = ceil(n*w/l),
  photodetectors = n*w*(n-1).
* MWSR, n nodes, ``l`` wavelengths per waveguide: modulator rings =
  n*(n-1)*l, detector rings = n*l; with ``rings_per_modulator`` trimming /
  redundancy rings per site the Corona-style 64x64x64-lambda crossbar tops
  one million rings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ComponentCount:
    """Photonic bill of materials for one interconnect."""

    modulators: int
    photodetectors: int
    waveguides: int
    rings: int

    @property
    def total_active_sites(self) -> int:
        return self.modulators + self.photodetectors


def swmr_crossbar(
    n_nodes: int, wavelengths_per_channel: int = 7, wavelengths_per_waveguide: int = 64
) -> ComponentCount:
    """SWMR crossbar inventory (the Sec. I scalability numbers).

    Every node modulates its own ``wavelengths_per_channel``-wide channel;
    every other node carries detectors for every channel.
    """
    if n_nodes < 2:
        raise ValueError(f"need >= 2 nodes, got {n_nodes}")
    mods = n_nodes * wavelengths_per_channel
    dets = mods * (n_nodes - 1)
    wgs = math.ceil(mods / wavelengths_per_waveguide)
    return ComponentCount(
        modulators=mods, photodetectors=dets, waveguides=wgs, rings=mods + dets
    )


def mwsr_crossbar(
    n_nodes: int, wavelengths_per_waveguide: int = 64, rings_per_modulator: int = 4
) -> ComponentCount:
    """MWSR (Corona-style) crossbar inventory.

    Each node owns a home waveguide; the other ``n-1`` nodes each need
    modulator rings on every wavelength of that waveguide. With the
    trimming/redundancy factor the 64-node, 64-wavelength design exceeds
    one million rings, matching Sec. V-B's "more than a million".
    """
    if n_nodes < 2:
        raise ValueError(f"need >= 2 nodes, got {n_nodes}")
    mod_sites = n_nodes * (n_nodes - 1) * wavelengths_per_waveguide
    det_sites = n_nodes * wavelengths_per_waveguide
    rings = mod_sites * rings_per_modulator + det_sites
    return ComponentCount(
        modulators=mod_sites,
        photodetectors=det_sites,
        waveguides=n_nodes,
        rings=rings,
    )


def own_cluster_crossbar(
    tiles: int = 16, total_wavelengths: int = 64, rings_per_modulator: int = 1
) -> ComponentCount:
    """OWN's per-cluster MWSR crossbar (Sec. III-A).

    The 64 off-chip laser wavelengths are "split across 16 tiles", i.e.
    each tile's home waveguide carries ``total_wavelengths / tiles``
    wavelengths; the other 15 tiles write to it.
    """
    if total_wavelengths % tiles != 0:
        raise ValueError(
            f"wavelengths {total_wavelengths} must divide evenly over {tiles} tiles"
        )
    lam = total_wavelengths // tiles
    mod_sites = tiles * (tiles - 1) * lam
    det_sites = tiles * lam
    return ComponentCount(
        modulators=mod_sites,
        photodetectors=det_sites,
        waveguides=tiles,
        rings=mod_sites * rings_per_modulator + det_sites,
    )


def own_inventory(n_clusters: int, tiles: int = 16, total_wavelengths: int = 64) -> ComponentCount:
    """Whole-chip OWN photonic inventory (``n_clusters`` cluster crossbars)."""
    one = own_cluster_crossbar(tiles, total_wavelengths)
    return ComponentCount(
        modulators=one.modulators * n_clusters,
        photodetectors=one.photodetectors * n_clusters,
        waveguides=one.waveguides * n_clusters,
        rings=one.rings * n_clusters,
    )


def pclos_inventory(
    n_nodes: int, n_middles: int, wavelengths_per_waveguide: int = 64
) -> ComponentCount:
    """p-Clos photonic inventory: up-waveguides (MWSR by all nodes into each
    middle) + down-waveguides (MWSR by all middles into each node)."""
    up_mods = n_middles * n_nodes * wavelengths_per_waveguide
    down_mods = n_nodes * n_middles * wavelengths_per_waveguide
    dets = (n_middles + n_nodes) * wavelengths_per_waveguide
    return ComponentCount(
        modulators=up_mods + down_mods,
        photodetectors=dets,
        waveguides=n_middles + n_nodes,
        rings=up_mods + down_mods + dets,
    )
