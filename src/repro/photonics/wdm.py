"""Wavelength-division-multiplexing plans for the photonic substrates.

Sec. III-A: "we assume off-chip laser source that can generate 64
wavelengths which is pumped into the chip using a separate power waveguide
and the signal is split across 16 tiles using a star splitter". This module
makes that allocation explicit and checkable:

* a :class:`WdmPlan` maps each waveguide to its wavelength comb,
* validation catches double-assignment within a waveguide and demand beyond
  the laser's comb,
* the physical-rate arithmetic (wavelengths x per-lambda rate vs flit width
  x clock) derives the serialization factor a waveguide needs in the cycle
  simulator -- connecting the bisection-equalisation numbers to photonic
  physics instead of leaving them as bare constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class WdmParams:
    """Physical WDM parameters.

    Attributes
    ----------
    laser_wavelengths:
        Comb size of the off-chip laser (64 in the paper).
    gbps_per_wavelength:
        Per-lambda modulation rate (10 Gbps-class rings at 45 nm era).
    channel_spacing_ghz:
        DWDM grid spacing; bounds how many lambdas fit the ring FSR.
    ring_fsr_ghz:
        Free spectral range of the ring resonators.
    """

    laser_wavelengths: int = 64
    gbps_per_wavelength: float = 10.0
    channel_spacing_ghz: float = 80.0
    ring_fsr_ghz: float = 6400.0

    @property
    def max_wavelengths_per_waveguide(self) -> int:
        """The FSR / spacing bound on one waveguide's comb."""
        return int(self.ring_fsr_ghz // self.channel_spacing_ghz)


@dataclass
class WdmPlan:
    """Wavelength assignment: waveguide name -> tuple of lambda indices."""

    params: WdmParams
    assignment: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def assign(self, waveguide: str, wavelengths: Sequence[int]) -> None:
        """Assign a comb to a waveguide.

        Raises
        ------
        ValueError
            On duplicate lambdas within the comb, out-of-range indices,
            re-assignment, or exceeding the FSR bound.
        """
        lam = tuple(int(w) for w in wavelengths)
        if waveguide in self.assignment:
            raise ValueError(f"waveguide {waveguide!r} already assigned")
        if len(set(lam)) != len(lam):
            raise ValueError(f"duplicate wavelengths in comb for {waveguide!r}")
        bad = [w for w in lam if not 0 <= w < self.params.laser_wavelengths]
        if bad:
            raise ValueError(
                f"wavelengths {bad} outside the laser comb "
                f"[0, {self.params.laser_wavelengths})"
            )
        if len(lam) > self.params.max_wavelengths_per_waveguide:
            raise ValueError(
                f"{len(lam)} wavelengths exceed the FSR bound "
                f"({self.params.max_wavelengths_per_waveguide})"
            )
        self.assignment[waveguide] = lam

    def bandwidth_gbps(self, waveguide: str) -> float:
        return len(self.assignment[waveguide]) * self.params.gbps_per_wavelength

    def cycles_per_flit(
        self, waveguide: str, flit_width_bits: int = 128, clock_ghz: float = 2.5
    ) -> int:
        """Serialization factor for the cycle simulator.

        A flit is ``flit_width_bits`` every ``1/clock`` ns; the waveguide
        moves ``bandwidth`` bits per ns. The factor is the ceiling of the
        ratio (>= 1).
        """
        demand_gbps = flit_width_bits * clock_ghz
        return max(1, math.ceil(demand_gbps / self.bandwidth_gbps(waveguide)))

    def validate_laser_budget(self) -> None:
        """Every *distinct* lambda used must exist in the comb; waveguides
        are physically separate so the same lambda may appear on many of
        them, but a single waveguide's comb was already checked."""
        used = {w for comb in self.assignment.values() for w in comb}
        if used and max(used) >= self.params.laser_wavelengths:
            raise ValueError("assignment uses wavelengths beyond the comb")


def own_cluster_plan(
    tiles: int = 16, params: WdmParams = WdmParams()
) -> WdmPlan:
    """OWN's per-cluster split: 64 lambdas star-split over 16 home
    waveguides, 4 contiguous lambdas each (Sec. III-A)."""
    if params.laser_wavelengths % tiles != 0:
        raise ValueError(
            f"{params.laser_wavelengths} wavelengths do not divide over "
            f"{tiles} tiles"
        )
    per_tile = params.laser_wavelengths // tiles
    plan = WdmPlan(params)
    for t in range(tiles):
        plan.assign(f"wg{t}", range(t * per_tile, (t + 1) * per_tile))
    plan.validate_laser_budget()
    return plan


def optxb_plan(n_routers: int = 64, params: WdmParams = WdmParams()) -> WdmPlan:
    """OptXB's monolithic allocation: the full 64-lambda comb on every home
    waveguide (the million-ring configuration of Sec. V-B)."""
    plan = WdmPlan(params)
    for r in range(n_routers):
        plan.assign(f"wg{r}", range(params.laser_wavelengths))
    plan.validate_laser_budget()
    return plan
