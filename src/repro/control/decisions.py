"""Append-only, content-addressable control-plane decision log.

Every actuation the :class:`~repro.control.loop.ControlLoop` performs is
recorded as one JSON-safe dict. The log's canonical encoding (sorted
keys, no whitespace -- the same convention :meth:`RunSpec.canonical_json`
uses) is CRC'd into a single ``control_log_crc`` summary metric, giving
``repro diff`` a byte-exact gate over the controller's entire behaviour:
any reordered, added, dropped or altered decision changes the CRC.
"""

from __future__ import annotations

import json
import zlib
from typing import Dict, List, Optional, Tuple


def _json_safe(value: object) -> object:
    """Coerce decision payloads to plain JSON types (tuples -> lists)."""
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_json_safe(v) for v in value)
    return value


class DecisionLog:
    """Ordered record of every control-plane decision in one run."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []
        self.counts: Dict[str, int] = {}

    def append(self, cycle: int, epoch: int, action: str, **detail: object) -> Dict[str, object]:
        """Record one decision; returns the (JSON-safe) record."""
        record: Dict[str, object] = {
            "cycle": int(cycle),
            "epoch": int(epoch),
            "action": action,
        }
        for key, value in detail.items():
            record[key] = _json_safe(value)
        self.records.append(record)
        self.counts[action] = self.counts.get(action, 0) + 1
        return record

    def __len__(self) -> int:
        return len(self.records)

    def canonical_json(self) -> str:
        """Stable byte encoding of the full log (the CRC input)."""
        return json.dumps(self.records, sort_keys=True, separators=(",", ":"))

    def crc(self) -> int:
        """CRC-32 of the canonical encoding (0 for an empty log is fine:
        an empty log *is* a meaningful, diffable controller behaviour)."""
        return zlib.crc32(self.canonical_json().encode())

    def tail(self, n: int = 10) -> List[Dict[str, object]]:
        return self.records[-n:]

    def summary(self) -> Dict[str, object]:
        return {
            "decisions": len(self.records),
            "crc": self.crc(),
            "actions": dict(sorted(self.counts.items())),
        }
