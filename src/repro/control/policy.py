"""Control policies: from a telemetry window to a spare-placement plan.

The policy layer is deliberately pure: a :class:`ControlPolicy` sees a
:class:`TelemetryWindow` (built each epoch by the loop from link activity
counters, never from the tracer -- see the determinism note below) and
returns the ordered list of cluster pairs that should hold the four
D-antenna spare channels. All actuation, logging and safety machinery
lives in :class:`~repro.control.loop.ControlLoop`; policies only rank.

Determinism note: windows are derived from ``Link.flits_carried`` deltas,
exactly like :class:`ReconfigurationController.utilisation_last_epoch`,
*not* from telemetry events. Attaching or detaching a
:class:`~repro.telemetry.tracer.Tracer` therefore cannot change control
decisions, preserving the "traced runs are bit-identical to untraced
runs" invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.reconfig import N_SPARE_CHANNELS

Pair = Tuple[int, int]


@dataclass
class TelemetryWindow:
    """One control epoch's view of the network, from link counters.

    Attributes
    ----------
    epoch, cycle:
        The control epoch ordinal and the cycle it closed at.
    pair_flits:
        Flits carried by each *primary* wireless channel during the
        window, keyed by ordered cluster pair (congestion signal).
    spare_flits:
        Flits carried during the window by the spare assigned to a pair
        (0 for unassigned pairs); demand served off the primary path.
    class_flits:
        The window's wireless traffic aggregated by distance class
        (C2C / E2E / SR) -- the per-channel-class congestion summary.
    failed_pairs:
        Pairs whose primary channel the health monitor has retired
        (the monitor's verdicts, as routing currently sees them).
    """

    epoch: int
    cycle: int
    pair_flits: Dict[Pair, int] = field(default_factory=dict)
    spare_flits: Dict[Pair, int] = field(default_factory=dict)
    class_flits: Dict[str, int] = field(default_factory=dict)
    failed_pairs: Set[Pair] = field(default_factory=set)

    def demand(self, pair: Pair) -> int:
        """Total inter-cluster demand observed for ``pair`` this window."""
        return self.pair_flits.get(pair, 0) + self.spare_flits.get(pair, 0)


def feasible_with(chosen: Sequence[Pair], pair: Pair) -> bool:
    """The D-antenna constraint: one outgoing + one incoming spare per
    cluster (mirrors :meth:`ReconfigurationController._feasible`)."""
    src, dst = pair
    for (s, d) in chosen:
        if s == src or d == dst:
            return False
    return True


class ControlPolicy:
    """Interface: rank where the spare channels should point.

    ``decide`` receives the window, the current epoch ordinal, the pairs
    already consuming spare slots unconditionally (failover pins), and
    the pairs eligible for adaptive placement (healthy spare hardware).
    It returns an ordered wish list; the controller installs the feasible
    prefix after the pins.
    """

    def decide(
        self,
        window: TelemetryWindow,
        epoch: int,
        pinned: Sequence[Pair],
        eligible: Sequence[Pair],
    ) -> List[Pair]:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop internal state (used when the loop freezes the plan)."""


class AdaptiveSparePolicy(ControlPolicy):
    """Greedy hottest-pairs placement with hysteresis and minimum dwell.

    Two anti-thrash mechanisms keep the plan stable under noisy load:

    * **hysteresis** -- an incumbent pair's demand is multiplied by
      ``hysteresis`` (>= 1.0) before ranking, so a challenger must beat
      it by a margin, not by a single flit;
    * **minimum dwell** -- a pair admitted at epoch *e* cannot be evicted
      before epoch ``e + min_dwell_epochs`` while it still shows demand
      (dead weight is always evictable).

    Ranking ties break on the smaller pair, so equal-demand epochs are
    order-deterministic.
    """

    def __init__(self, hysteresis: float = 1.25, min_dwell_epochs: int = 2) -> None:
        if hysteresis < 1.0:
            raise ValueError(f"hysteresis must be >= 1.0, got {hysteresis}")
        if min_dwell_epochs < 0:
            raise ValueError("min_dwell_epochs must be >= 0")
        self.hysteresis = hysteresis
        self.min_dwell_epochs = min_dwell_epochs
        #: The current adaptive plan (excludes pinned pairs).
        self.plan: List[Pair] = []
        #: Epoch each planned pair was (last) admitted.
        self.admitted: Dict[Pair, int] = {}

    def reset(self) -> None:
        self.plan = []
        self.admitted = {}

    def _score(self, window: TelemetryWindow, pair: Pair) -> float:
        demand = float(window.demand(pair))
        if pair in self.plan:
            demand *= self.hysteresis
        return demand

    def decide(
        self,
        window: TelemetryWindow,
        epoch: int,
        pinned: Sequence[Pair],
        eligible: Sequence[Pair],
    ) -> List[Pair]:
        chosen: List[Pair] = list(pinned)
        plan: List[Pair] = []
        # Dwell-protected incumbents first: still eligible, still within
        # their dwell window, still carrying demand.
        for pair in self.plan:
            if (
                pair in eligible
                and epoch - self.admitted.get(pair, epoch) < self.min_dwell_epochs
                and window.demand(pair) > 0
                and len(chosen) < N_SPARE_CHANNELS
                and feasible_with(chosen, pair)
            ):
                chosen.append(pair)
                plan.append(pair)
        # Then the hysteresis-weighted demand ranking over everything else.
        ranked = sorted(
            (p for p in eligible if p not in plan),
            key=lambda p: (-self._score(window, p), p),
        )
        for pair in ranked:
            if len(chosen) >= N_SPARE_CHANNELS:
                break
            if window.demand(pair) <= 0:
                break  # ranked order: everything after is idle too
            if pair not in chosen and feasible_with(chosen, pair):
                chosen.append(pair)
                plan.append(pair)
        self.admitted = {
            pair: self.admitted.get(pair, epoch) if pair in self.plan else epoch
            for pair in plan
        }
        self.plan = plan
        return plan
