"""The closed control loop: observe, decide, actuate, log.

:class:`ControlLoop` is a :meth:`Simulator.add_hook` end-of-cycle hook
(with a ``next_wake`` epoch schedule, so idle fast-forward stays enabled
and still steps every decision boundary). Each control epoch it:

1. **observes** -- builds a :class:`TelemetryWindow` from link activity
   counters (primary-channel flit deltas, spare utilisation, per-class
   congestion, health-monitor verdicts);
2. **recovers** -- probes failed-over channels and returns healed ones to
   service once ``probe_ok_needed`` consecutive probes pass (the probe is
   a single control packet on the dedicated ``("control", "probe", link)``
   RNG stream: it never perturbs traffic or fault-layer streams);
3. **repairs placement** -- retries failover pins that previously failed
   (exponential epoch backoff, bounded attempts), and evicts pins whose
   spare hardware is itself dead (graceful degradation onto relays);
4. **decides** -- asks the :class:`ControlPolicy` for the adaptive spare
   plan and installs it via the managed
   :class:`~repro.core.reconfig.ReconfigurationController`;
5. **reweights** -- steers each spare-less failed pair's relay traffic
   through the least-loaded live middle cluster;
6. **guards** -- counts plan flips over a sliding window; oscillation
   freezes the loop back to the static plan (failover pins only), the
   safe fallback when hysteresis + dwell cannot stabilise the load.

Every actuation lands in the :class:`~repro.control.decisions.DecisionLog`
and (when a tracer is attached) a ``control`` trace event. All decisions
are pure functions of counters + the dedicated RNG, so a spec's decision
log is byte-stable across dense/fast-forward and serial/parallel runs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.control.decisions import DecisionLog
from repro.control.policy import AdaptiveSparePolicy, ControlPolicy, TelemetryWindow
from repro.utils.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.links import Link
    from repro.noc.simulator import Simulator

Pair = Tuple[int, int]


class _PinRetry:
    """Backoff state for one pair whose spare pin keeps failing."""

    __slots__ = ("attempts", "next_epoch", "given_up")

    def __init__(self) -> None:
        self.attempts = 0
        self.next_epoch = 0
        self.given_up = False


class ControlLoop:
    """Deterministic epoch-driven controller for the spare channels.

    Parameters
    ----------
    routing:
        A :class:`~repro.core.faults.FaultTolerantOwn256Routing` (needs
        ``fail_channel`` / ``unfail_channel`` / ``prefer_relay``).
    reconfig:
        The :class:`~repro.core.reconfig.ReconfigurationController`; the
        loop switches it to managed mode and owns its ``desired`` list.
    layer:
        Optional :class:`~repro.faults.linklayer.FaultLayer`; without one
        (fault-free run) the probe/recovery path is inert and the loop
        only steers spares by load.
    monitor:
        Optional :class:`~repro.faults.monitor.HealthMonitor`, informed
        after recoveries so stale counters cannot re-condemn a channel.
    policy:
        The placement policy (default: :class:`AdaptiveSparePolicy` with
        the given hysteresis/dwell).
    epoch_cycles:
        Decision interval.
    probe_ok_needed, probe_size_flits:
        Consecutive successful probes required to un-fail a channel, and
        the modelled probe-packet size for the CRC-success odds.
    retry_base_epochs, retry_cap_epochs, max_pin_attempts:
        Failover-pin retry schedule: the n-th retry waits
        ``min(cap, base * 2**(n-1))`` epochs; after ``max_pin_attempts``
        the pair is abandoned to relay routes.
    osc_window, osc_threshold:
        Freeze (fall back to the static plan) when the adaptive plan
        changed in >= ``osc_threshold`` of the last ``osc_window`` epochs.
    rng:
        Dedicated :class:`RngStreams` for probe outcomes.
    """

    def __init__(
        self,
        routing,
        reconfig,
        layer=None,
        monitor=None,
        policy: Optional[ControlPolicy] = None,
        epoch_cycles: int = 250,
        hysteresis: float = 1.25,
        min_dwell_epochs: int = 2,
        probe_ok_needed: int = 2,
        probe_size_flits: int = 1,
        retry_base_epochs: int = 1,
        retry_cap_epochs: int = 8,
        max_pin_attempts: int = 5,
        osc_window: int = 8,
        osc_threshold: int = 6,
        rng: Optional[RngStreams] = None,
    ) -> None:
        if epoch_cycles < 1:
            raise ValueError(f"epoch_cycles must be >= 1, got {epoch_cycles}")
        if probe_ok_needed < 1:
            raise ValueError("probe_ok_needed must be >= 1")
        if osc_threshold < 2 or osc_window < osc_threshold:
            raise ValueError("need 2 <= osc_threshold <= osc_window")
        self.routing = routing
        self.reconfig = reconfig
        self.layer = layer
        self.monitor = monitor
        self.policy = policy or AdaptiveSparePolicy(
            hysteresis=hysteresis, min_dwell_epochs=min_dwell_epochs
        )
        self.epoch_cycles = epoch_cycles
        self.probe_ok_needed = probe_ok_needed
        self.probe_size_flits = probe_size_flits
        self.retry_base_epochs = retry_base_epochs
        self.retry_cap_epochs = retry_cap_epochs
        self.max_pin_attempts = max_pin_attempts
        self.osc_window = osc_window
        self.osc_threshold = osc_threshold
        self.rng = rng or RngStreams(0)
        self.log = DecisionLog()

        reconfig.managed = True
        # Mirror the controller's drain state machine into the decision
        # log: every phase transition (install / drain_start /
        # drain_complete / drain_timeout / drain_cancel / revoke / escape)
        # lands as a ``spare_*`` record, so the byte-stable CRC gate also
        # covers two-phase re-assignment behaviour.
        reconfig.on_transition = self._on_drain_transition
        self.epochs = 0
        self.frozen = False
        self.recovered_channels = 0
        self._desired: List[Pair] = []
        self._flips: Deque[bool] = deque(maxlen=osc_window)
        self._probe_ok: Dict["Link", int] = {}
        self._pin_retry: Dict[Pair, _PinRetry] = {}
        self._relay_pref: Dict[Pair, int] = {}
        # Window counter snapshots, keyed by ordered cluster pair.
        self._prim_snap: Dict[Pair, int] = {
            pair: link.flits_carried for pair, link in reconfig.primary_links.items()
        }
        self._spare_snap: Dict[Pair, int] = {
            pair: link.flits_carried for pair, link in reconfig.spare_links.items()
        }
        self._pair_of_link: Dict["Link", Pair] = {
            link: pair for pair, link in reconfig.primary_links.items()
        }

    # ------------------------------------------------------------------ #
    # Scheduling protocol (see Simulator.add_hook)
    # ------------------------------------------------------------------ #

    def next_wake(self, now: int) -> int:
        if now <= 0:
            return self.epoch_cycles
        if now % self.epoch_cycles == 0:
            return now
        return (now // self.epoch_cycles + 1) * self.epoch_cycles

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def _build_window(self, now: int) -> TelemetryWindow:
        pair_flits: Dict[Pair, int] = {}
        spare_flits: Dict[Pair, int] = {}
        class_flits: Dict[str, int] = {}
        for pair in sorted(self._pair_of_link.values()):
            link = self.reconfig.primary_links[pair]
            delta = link.flits_carried - self._prim_snap[pair]
            self._prim_snap[pair] = link.flits_carried
            pair_flits[pair] = delta
            cls = self.routing.channel_map[pair].distance_class
            class_flits[cls] = class_flits.get(cls, 0) + delta
        for pair in sorted(self.reconfig.spare_links):
            link = self.reconfig.spare_links[pair]
            delta = link.flits_carried - self._spare_snap[pair]
            self._spare_snap[pair] = link.flits_carried
            spare_flits[pair] = delta
        return TelemetryWindow(
            epoch=self.epochs,
            cycle=now,
            pair_flits=pair_flits,
            spare_flits=spare_flits,
            class_flits=class_flits,
            failed_pairs=set(self.routing.failed_pairs),
        )

    def _spare_healthy(self, pair: Pair) -> bool:
        """Is the spare D->D hardware for ``pair`` usable right now?"""
        link = self.reconfig.spare_links.get(pair)
        if link is None:
            return False
        state = getattr(link, "fault", None)
        return state is None or not (state.dead or state.failed_over)

    # ------------------------------------------------------------------ #
    # The epoch step
    # ------------------------------------------------------------------ #

    def __call__(self, sim: "Simulator") -> None:
        if sim.now <= 0 or sim.now % self.epoch_cycles != 0:
            return
        self.epochs += 1
        now = sim.now
        window = self._build_window(now)
        self._probe_failed_channels(sim, now)
        self._evict_faulty_pins(sim, now)
        self._retry_pins(sim, now)
        if not self.frozen:
            self._decide_spares(sim, window, now)
        self._reweight_relays(sim, window, now)

    # ---------------- recovery: probe + unfail ---------------- #

    def _probe_failed_channels(self, sim: "Simulator", now: int) -> None:
        if self.layer is None:
            return
        flit_bits = self.layer.network.flit_width_bits
        for link in sorted(self.layer.protected, key=lambda l: l.name):
            state = link.fault
            if not state.failed_over:
                continue
            pair = self._pair_of_link.get(link)
            if pair is None:
                continue  # spare hardware heals via _evict_faulty_pins
            if state.dead:
                ok = False
            else:
                p_err = state.attempt_error_prob(flit_bits, self.probe_size_flits)
                if p_err <= 0.0:
                    ok = True
                elif p_err >= 1.0:
                    ok = False
                else:
                    ok = self.rng.get("control", "probe", link.name).random() >= p_err
            streak = self._probe_ok.get(link, 0) + 1 if ok else 0
            self._probe_ok[link] = streak
            self._emit(sim, now, "probe", link=link.name, pair=pair, ok=ok,
                       streak=streak)
            if streak >= self.probe_ok_needed:
                self._recover_channel(sim, link, pair, now)

    def _recover_channel(self, sim: "Simulator", link: "Link", pair: Pair,
                         now: int) -> None:
        self.layer.unquiesce_link(link, now)
        self.routing.unfail_channel(*pair)
        self.reconfig.unpin(pair)
        self._pin_retry.pop(pair, None)
        self._relay_pref.pop(pair, None)
        if self.monitor is not None:
            self.monitor.notice_recovery(link)
        self._probe_ok.pop(link, None)
        self.recovered_channels += 1
        sim.stats.channels_recovered += 1
        self._emit(sim, now, "unfail", link=link.name, pair=pair)

    # ---------------- placement repair: pins ---------------- #

    def _relay_exists(self, pair: Pair) -> bool:
        cs, cd = pair
        return any(
            cx not in (cs, cd)
            and self.routing.alive(cs, cx)
            and self.routing.alive(cx, cd)
            for cx in range(self.routing.dims.clusters)
        )

    def _evict_faulty_pins(self, sim: "Simulator", now: int) -> None:
        """Unpin failover spares whose own hardware died (a pinned spare
        that silently eats traffic into the recovery path is a livelock:
        recovered packets would re-route straight back onto it). A pin
        whose pair has no live relay left is kept -- churning through the
        dead spare's recovery path at least keeps packets in the system,
        where unpinning would make the pair unroutable."""
        for pair in list(self.reconfig.pinned):
            if self._spare_healthy(pair):
                continue
            if pair in self.routing.failed_pairs and not self._relay_exists(pair):
                continue
            self.reconfig.unpin(pair)
            retry = self._pin_retry.setdefault(pair, _PinRetry())
            retry.attempts += 1
            retry.next_epoch = self.epochs + self._backoff_epochs(retry.attempts)
            self._emit(sim, now, "unpin_faulty", pair=pair,
                       attempts=retry.attempts)

    def _backoff_epochs(self, attempts: int) -> int:
        return min(self.retry_cap_epochs,
                   self.retry_base_epochs * (1 << (attempts - 1)))

    def _retry_pins(self, sim: "Simulator", now: int) -> None:
        """Bounded retry-with-backoff for failed pairs without a spare."""
        for pair in sorted(self.routing.failed_pairs):
            if pair in self.reconfig.pinned:
                continue
            retry = self._pin_retry.setdefault(pair, _PinRetry())
            if retry.given_up or self.epochs < retry.next_epoch:
                continue
            if self._spare_healthy(pair):
                try:
                    self.reconfig.pin(pair)
                except ValueError:
                    pass
                else:
                    self._pin_retry.pop(pair, None)
                    self._emit(sim, now, "pin", pair=pair,
                               attempts=retry.attempts + 1)
                    continue
            retry.attempts += 1
            if retry.attempts >= self.max_pin_attempts:
                retry.given_up = True
                self._emit(sim, now, "pin_giveup", pair=pair,
                           attempts=retry.attempts)
            else:
                retry.next_epoch = self.epochs + self._backoff_epochs(retry.attempts)
                self._emit(sim, now, "pin_retry", pair=pair,
                           attempts=retry.attempts,
                           next_epoch=retry.next_epoch)

    # ---------------- adaptive placement + oscillation guard ------------ #

    def _decide_spares(self, sim: "Simulator", window: TelemetryWindow,
                       now: int) -> None:
        eligible = [
            pair
            for pair in sorted(self.reconfig.spare_links)
            if pair not in window.failed_pairs and self._spare_healthy(pair)
        ]
        desired = self.policy.decide(
            window, self.epochs, list(self.reconfig.pinned), eligible
        )
        flipped = set(desired) != set(self._desired)
        self._flips.append(flipped)
        if (
            len(self._flips) == self.osc_window
            and sum(self._flips) >= self.osc_threshold
        ):
            self._freeze(sim, now)
            return
        if flipped:
            self._desired = list(desired)
            self.reconfig.set_desired(desired)
            self._emit(sim, now, "plan", desired=desired,
                       pinned=list(self.reconfig.pinned),
                       class_flits=window.class_flits)

    def _freeze(self, sim: "Simulator", now: int) -> None:
        """Oscillation fallback: pin-only static plan, adaptation off.

        Recovery probing and failover pinning keep running -- only the
        load-chasing placement stops, which is what was thrashing.
        """
        self.frozen = True
        self._desired = []
        self.policy.reset()
        self.reconfig.set_desired([])
        self._emit(sim, now, "freeze", flips=int(sum(self._flips)),
                   window=self.osc_window)

    # ---------------- relay reweighting ---------------- #

    def _reweight_relays(self, sim: "Simulator", window: TelemetryWindow,
                         now: int) -> None:
        """Steer spare-less failed pairs through the coolest live relay."""
        clusters = range(self.routing.dims.clusters)
        for pair in sorted(self.routing.failed_pairs):
            cs, cd = pair
            if self.reconfig.boosted(cs, cd) is not None:
                continue  # traffic rides the pinned spare, not a relay
            best: Optional[int] = None
            best_load = 0
            for cx in clusters:
                if cx in (cs, cd):
                    continue
                if not (self.routing.alive(cs, cx) and self.routing.alive(cx, cd)):
                    continue
                load = window.demand((cs, cx)) + window.demand((cx, cd))
                if best is None or load < best_load:
                    best, best_load = cx, load
            if best is not None and self._relay_pref.get(pair) != best:
                self._relay_pref[pair] = best
                self.routing.prefer_relay(cs, cd, best)
                self._emit(sim, now, "relay", pair=pair, via=best,
                           load=best_load)

    # ------------------------------------------------------------------ #
    # Logging + reporting
    # ------------------------------------------------------------------ #

    def _emit(self, sim: "Simulator", now: int, action: str, **detail) -> None:
        record = self.log.append(now, self.epochs, action, **detail)
        tracer = sim._tracer
        if tracer is not None:
            tracer.on_control(action, record, now)

    def _on_drain_transition(self, record: Dict[str, object]) -> None:
        """Fold a controller phase-transition record into the decision log.

        Transitions can fire outside the loop's own epoch step (the
        controller advances drains on its per-cycle clock), so this only
        appends to the log -- no tracer event, no simulator access.
        """
        detail = {k: v for k, v in record.items() if k not in ("cycle", "event")}
        self.log.append(record["cycle"], self.epochs,
                        f"spare_{record['event']}", **detail)

    def summary_metrics(self) -> Dict[str, float]:
        """Flat floats folded into the run-record summary (diff-gated)."""
        return {
            "control_epochs": float(self.epochs),
            "control_decisions": float(len(self.log)),
            "control_log_crc": float(self.log.crc()),
            "control_frozen": float(self.frozen),
            "channels_recovered_ctl": float(self.recovered_channels),
        }

    def meta_payload(self) -> Dict[str, object]:
        """The decision log + loop state for ``RunResult.meta['control']``."""
        return {
            "epochs": self.epochs,
            "frozen": self.frozen,
            "recovered_channels": self.recovered_channels,
            "log": self.log.summary(),
            "decisions": list(self.log.records),
        }
