"""Closed-loop control plane for the reconfigurable wireless channels.

Table III reserves channels 13-16 "to adaptively be utilized to improve
performance" (Sec. IV); this package supplies the *loop* that actually
drives them at runtime. A :class:`ControlLoop` runs as a simulator epoch
hook, builds a :class:`TelemetryWindow` from link activity counters each
epoch, asks a :class:`ControlPolicy` where the four D-antenna spares
should point, and issues actuations through the existing layers:

* spare re-pointing via
  :class:`repro.core.reconfig.ReconfigurationController` (managed mode);
* channel recovery -- probing failed-over channels and returning healed
  ones to service (:meth:`FaultTolerantOwn256Routing.unfail_channel`);
* relay reweighting for failed pairs that have no spare.

Every actuation is appended to a :class:`DecisionLog` whose CRC is folded
into run-record summaries, so control behaviour is content-addressed and
diffable exactly like the physics. See ``docs/control.md``.
"""

from repro.control.decisions import DecisionLog
from repro.control.loop import ControlLoop
from repro.control.policy import AdaptiveSparePolicy, ControlPolicy, TelemetryWindow

__all__ = [
    "AdaptiveSparePolicy",
    "ControlLoop",
    "ControlPolicy",
    "DecisionLog",
    "TelemetryWindow",
]
