"""Synthetic traffic patterns.

The paper evaluates "uniform (UN), bit-reversal (BR), matrix transpose (MT),
perfect shuffle (PS), and neighbor (NBR)" (Sec. V). These are the classic
Dally/Towles permutations; each is expressed as a destination map
``dst = f(src)`` over ``n`` cores. Uniform draws a fresh destination per
packet; the others are fixed permutations.

We additionally provide bit-complement, tornado and hotspot generators used
by the extension benches (they are standard companions of the paper's five
and exercise different bisection/locality regimes).

All bit-permutations require ``n`` to be a power of two, as in the paper's
256/1024-core configurations.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.utils.validation import check_power_of_two

#: Canonical short names used throughout the benches (paper's notation).
PATTERN_NAMES = ("UN", "BR", "MT", "PS", "NBR")
EXTENDED_PATTERN_NAMES = PATTERN_NAMES + ("BC", "TOR", "HOT")


def _log2(n: int) -> int:
    check_power_of_two("n_cores", n)
    return n.bit_length() - 1


def bit_reversal(src: int, n: int) -> int:
    """BR: destination is the bit-reversed source index.

    >>> bit_reversal(0b0001, 16)
    8
    """
    b = _log2(n)
    out = 0
    x = src
    for _ in range(b):
        out = (out << 1) | (x & 1)
        x >>= 1
    return out


def matrix_transpose(src: int, n: int) -> int:
    """MT: swap the high and low halves of the address bits.

    On a square grid this is exactly the (row, col) -> (col, row) transpose.

    >>> matrix_transpose(0b0001, 16)
    4
    """
    b = _log2(n)
    if b % 2 != 0:
        raise ValueError(f"matrix transpose needs an even number of address bits, n={n}")
    half = b // 2
    lo = src & ((1 << half) - 1)
    hi = src >> half
    return (lo << half) | hi


def perfect_shuffle(src: int, n: int) -> int:
    """PS: rotate the address bits left by one.

    >>> perfect_shuffle(0b1000, 16)
    1
    """
    b = _log2(n)
    return ((src << 1) | (src >> (b - 1))) & (n - 1)


def bit_complement(src: int, n: int) -> int:
    """BC: flip every address bit (longest-distance permutation)."""
    _log2(n)
    return src ^ (n - 1)


def neighbor(src: int, n: int) -> int:
    """NBR: nearest-neighbour on the square core grid (+1 in x, wrapping).

    Exercises locality: with 4-core concentration most NBR packets stay
    within a tile or adjacent tiles.
    """
    side = int(round(n**0.5))
    if side * side != n:
        raise ValueError(f"neighbor pattern needs a square core count, n={n}")
    x, y = src % side, src // side
    return y * side + (x + 1) % side


def tornado(src: int, n: int) -> int:
    """TOR: half-way around each grid dimension (adversarial for rings)."""
    side = int(round(n**0.5))
    if side * side != n:
        raise ValueError(f"tornado pattern needs a square core count, n={n}")
    x, y = src % side, src // side
    return y * side + (x + side // 2 - (1 if side % 2 == 0 else 0)) % side


PermutationFn = Callable[[int, int], int]

_PERMUTATIONS: Dict[str, PermutationFn] = {
    "BR": bit_reversal,
    "MT": matrix_transpose,
    "PS": perfect_shuffle,
    "NBR": neighbor,
    "BC": bit_complement,
    "TOR": tornado,
}


class TrafficPattern:
    """Destination selection for a traffic source.

    Parameters
    ----------
    name:
        One of ``UN``, ``BR``, ``MT``, ``PS``, ``NBR``, ``BC``, ``TOR`` or
        ``HOT`` (hotspot; see ``hotspot_fraction``).
    n_cores:
        Network size.
    hotspot_fraction:
        For ``HOT``: probability a packet targets one of the hotspot cores
        (default 0.2); remaining packets are uniform.
    hotspots:
        For ``HOT``: the hotspot core set (default: core 0).
    """

    def __init__(
        self,
        name: str,
        n_cores: int,
        hotspot_fraction: float = 0.2,
        hotspots: Optional[Sequence[int]] = None,
    ) -> None:
        name = name.upper()
        if name not in EXTENDED_PATTERN_NAMES:
            raise ValueError(f"unknown traffic pattern {name!r}; known: {EXTENDED_PATTERN_NAMES}")
        self.name = name
        self.n_cores = n_cores
        self.hotspot_fraction = hotspot_fraction
        self.hotspots = list(hotspots) if hotspots is not None else [0]
        self._table: Optional[np.ndarray] = None
        if name in _PERMUTATIONS:
            fn = _PERMUTATIONS[name]
            self._table = np.array([fn(s, n_cores) for s in range(n_cores)], dtype=np.int64)

    @property
    def is_permutation(self) -> bool:
        return self._table is not None

    def destinations(self, sources: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorised destination selection for an array of source cores.

        Self-addressed results are possible for fixed points of the
        permutations (e.g. palindromic indices under BR); the generator
        filters those out, matching standard practice.
        """
        if self._table is not None:
            return self._table[sources]
        if self.name == "UN":
            return rng.integers(0, self.n_cores, size=sources.shape[0], dtype=np.int64)
        # HOT: mixture of hotspot-directed and uniform traffic.
        dsts = rng.integers(0, self.n_cores, size=sources.shape[0], dtype=np.int64)
        to_hot = rng.random(sources.shape[0]) < self.hotspot_fraction
        hot_choices = rng.integers(0, len(self.hotspots), size=int(to_hot.sum()))
        dsts[to_hot] = np.asarray(self.hotspots, dtype=np.int64)[hot_choices]
        return dsts

    def fixed_destination(self, src: int) -> Optional[int]:
        """The permutation target for ``src`` (``None`` for random patterns)."""
        if self._table is None:
            return None
        return int(self._table[src])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrafficPattern({self.name}, n={self.n_cores})"
