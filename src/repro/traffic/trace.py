"""Traffic trace recording and replay.

The paper evaluates synthetic traces only ("In the future, we will evaluate
with real workloads"), but reproducible experiments want the *same* packet
sequence replayed against every architecture. A :class:`TrafficTrace`
captures the output of any generator once and replays it deterministically;
traces round-trip through ``.npz`` files for archival.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.noc.packet import Packet

#: Array names (and their save order) of the on-disk ``.npz`` schema. The
#: golden-trace gate checks this exact set, so renaming or adding a field
#: is a deliberate, test-visible act.
TRACE_FIELDS = ("cycles", "srcs", "dsts", "sizes")


class TrafficTrace:
    """An immutable packet schedule: arrays of (cycle, src, dst, size)."""

    def __init__(
        self,
        cycles: np.ndarray,
        srcs: np.ndarray,
        dsts: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        n = len(cycles)
        if not (len(srcs) == len(dsts) == len(sizes) == n):
            raise ValueError("trace arrays must have equal length")
        order = np.argsort(cycles, kind="stable")
        self.cycles = np.asarray(cycles, dtype=np.int64)[order]
        self.srcs = np.asarray(srcs, dtype=np.int64)[order]
        self.dsts = np.asarray(dsts, dtype=np.int64)[order]
        self.sizes = np.asarray(sizes, dtype=np.int64)[order]

    def __len__(self) -> int:
        return int(self.cycles.size)

    def validate(self, n_cores: int) -> None:
        """Raise ``ValueError`` if any packet cannot exist on ``n_cores``.

        Checked up front (not at replay time) so a trace generated for the
        wrong network size fails with a clear message instead of a router
        index error thousands of cycles into the run.
        """
        if len(self) == 0:
            return
        for field in ("srcs", "dsts"):
            arr = getattr(self, field)
            bad = np.nonzero((arr < 0) | (arr >= n_cores))[0]
            if bad.size:
                i = int(bad[0])
                raise ValueError(
                    f"trace {field[:-1]} {int(arr[i])} (packet {i}, cycle "
                    f"{int(self.cycles[i])}) out of range for {n_cores} cores"
                )
        if int(self.cycles[0]) < 0:
            raise ValueError(f"trace starts at negative cycle {int(self.cycles[0])}")
        if np.any(self.sizes < 1):
            i = int(np.nonzero(self.sizes < 1)[0][0])
            raise ValueError(f"trace packet {i} has non-positive size {int(self.sizes[i])}")

    # ------------------------------------------------------------------ #
    # Golden-trace gate support
    # ------------------------------------------------------------------ #

    def schema(self) -> Dict[str, object]:
        """Field names / dtypes / length -- the shape the CRC is over."""
        return {
            "fields": list(TRACE_FIELDS),
            "dtype": "int64",
            "n_packets": len(self),
        }

    def content_crc(self) -> int:
        """CRC32 over the canonical array contents (container-independent).

        Unlike a checksum of the ``.npz`` bytes, this survives zip /
        compression-level differences across numpy versions while still
        pinning every emitted packet exactly.
        """
        crc = 0
        for field in TRACE_FIELDS:
            arr = np.ascontiguousarray(getattr(self, field), dtype="<i8")
            crc = zlib.crc32(arr.tobytes(), crc)
        return crc & 0xFFFFFFFF

    @staticmethod
    def record(traffic: object, cycles: int) -> "TrafficTrace":
        """Run a generator standalone for ``cycles`` and capture its output."""
        cyc: List[int] = []
        src: List[int] = []
        dst: List[int] = []
        size: List[int] = []
        for t in range(cycles):
            for p in traffic.tick(t):
                cyc.append(t)
                src.append(p.src_core)
                dst.append(p.dst_core)
                size.append(p.size_flits)
        return TrafficTrace(
            np.asarray(cyc, dtype=np.int64),
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            np.asarray(size, dtype=np.int64),
        )

    def save(self, path) -> None:
        """Write the ``.npz`` archive (path or writable binary file object)."""
        if isinstance(path, (str, Path)):
            path = Path(path)
        np.savez_compressed(
            path, cycles=self.cycles, srcs=self.srcs, dsts=self.dsts, sizes=self.sizes
        )

    @staticmethod
    def load(path: Union[str, Path]) -> "TrafficTrace":
        data = np.load(Path(path))
        missing = [f for f in TRACE_FIELDS if f not in data.files]
        if missing:
            raise ValueError(f"{path}: not a traffic trace (missing {missing})")
        return TrafficTrace(data["cycles"], data["srcs"], data["dsts"], data["sizes"])

    def replayer(
        self, n_cores: Optional[int] = None, stop_cycle: Optional[int] = None
    ) -> "TraceTraffic":
        return TraceTraffic(self, n_cores=n_cores, stop_cycle=stop_cycle)


class TraceTraffic:
    """Replays a :class:`TrafficTrace` through the ``tick`` interface.

    Parameters
    ----------
    n_cores:
        When given, the trace is validated against the network size up
        front (clear error instead of a mid-run router index crash).
    stop_cycle:
        Suppress injections at or after this cycle (the drain phase of
        latency measurements pauses traffic the same way the open-loop
        generators do).
    """

    def __init__(
        self,
        trace: TrafficTrace,
        n_cores: Optional[int] = None,
        stop_cycle: Optional[int] = None,
    ) -> None:
        if n_cores is not None:
            trace.validate(n_cores)
        self.trace = trace
        self.stop_cycle = stop_cycle
        self._pos = 0
        self.packets_generated = 0
        self.allocator = None

    def tick(self, now: int) -> List[Packet]:
        if self.stop_cycle is not None and now >= self.stop_cycle:
            return []
        out: List[Packet] = []
        cycles = self.trace.cycles
        n = len(self.trace)
        # Entries for cycles that were never ticked (simulation started
        # past them, or traffic resumed after a pause) are skipped, exactly
        # as a dense run that never reached them would have.
        while self._pos < n and cycles[self._pos] < now:
            self._pos += 1
        while self._pos < n and cycles[self._pos] == now:
            i = self._pos
            out.append(
                Packet(
                    int(self.trace.srcs[i]),
                    int(self.trace.dsts[i]),
                    int(self.trace.sizes[i]),
                    now,
                    allocator=self.allocator,
                )
            )
            self._pos += 1
        self.packets_generated += len(out)
        return out

    def next_injection_cycle(self, start: int, limit: int) -> Optional[int]:
        """Earliest scheduled cycle in ``[start, limit)``, or None.

        Fast-forward wake source: the schedule is static, so peeking is a
        binary search with no randomness to consume -- replay is
        bit-identical between dense stepping and the active-set scheduler
        by construction.
        """
        if self.stop_cycle is not None:
            limit = min(limit, self.stop_cycle)
        if start >= limit or self._pos >= len(self.trace):
            return None
        cycles = self.trace.cycles
        i = int(np.searchsorted(cycles[self._pos:], start, side="left")) + self._pos
        if i >= len(self.trace) or cycles[i] >= limit:
            return None
        return int(cycles[i])

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self.trace)
