"""Traffic trace recording and replay.

The paper evaluates synthetic traces only ("In the future, we will evaluate
with real workloads"), but reproducible experiments want the *same* packet
sequence replayed against every architecture. A :class:`TrafficTrace`
captures the output of any generator once and replays it deterministically;
traces round-trip through ``.npz`` files for archival.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.noc.packet import Packet


class TrafficTrace:
    """An immutable packet schedule: arrays of (cycle, src, dst, size)."""

    def __init__(
        self,
        cycles: np.ndarray,
        srcs: np.ndarray,
        dsts: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        n = len(cycles)
        if not (len(srcs) == len(dsts) == len(sizes) == n):
            raise ValueError("trace arrays must have equal length")
        order = np.argsort(cycles, kind="stable")
        self.cycles = np.asarray(cycles, dtype=np.int64)[order]
        self.srcs = np.asarray(srcs, dtype=np.int64)[order]
        self.dsts = np.asarray(dsts, dtype=np.int64)[order]
        self.sizes = np.asarray(sizes, dtype=np.int64)[order]

    def __len__(self) -> int:
        return int(self.cycles.size)

    @staticmethod
    def record(traffic: object, cycles: int) -> "TrafficTrace":
        """Run a generator standalone for ``cycles`` and capture its output."""
        cyc: List[int] = []
        src: List[int] = []
        dst: List[int] = []
        size: List[int] = []
        for t in range(cycles):
            for p in traffic.tick(t):
                cyc.append(t)
                src.append(p.src_core)
                dst.append(p.dst_core)
                size.append(p.size_flits)
        return TrafficTrace(
            np.asarray(cyc, dtype=np.int64),
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            np.asarray(size, dtype=np.int64),
        )

    def save(self, path: Union[str, Path]) -> None:
        np.savez_compressed(
            Path(path), cycles=self.cycles, srcs=self.srcs, dsts=self.dsts, sizes=self.sizes
        )

    @staticmethod
    def load(path: Union[str, Path]) -> "TrafficTrace":
        data = np.load(Path(path))
        return TrafficTrace(data["cycles"], data["srcs"], data["dsts"], data["sizes"])

    def replayer(self) -> "TraceTraffic":
        return TraceTraffic(self)


class TraceTraffic:
    """Replays a :class:`TrafficTrace` through the ``tick`` interface."""

    def __init__(self, trace: TrafficTrace) -> None:
        self.trace = trace
        self._pos = 0
        self.packets_generated = 0
        self.allocator = None

    def tick(self, now: int) -> List[Packet]:
        out: List[Packet] = []
        cycles = self.trace.cycles
        n = len(self.trace)
        while self._pos < n and cycles[self._pos] == now:
            i = self._pos
            out.append(
                Packet(
                    int(self.trace.srcs[i]),
                    int(self.trace.dsts[i]),
                    int(self.trace.sizes[i]),
                    now,
                    allocator=self.allocator,
                )
            )
            self._pos += 1
        self.packets_generated += len(out)
        return out

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self.trace)
