"""Open-loop synthetic traffic generation.

Each core is an independent Bernoulli source: every cycle it starts a new
packet with probability ``injection_rate / packet_size_flits`` so that the
*offered load* equals ``injection_rate`` flits/core/cycle -- the x-axis of
the paper's latency/throughput plots (Figs. 7-8).

The per-cycle draw across all cores is vectorised with NumPy (one ``random``
call per cycle) per the hpc-parallel guide's "vectorise the hot loop"
idiom: at 1024 cores this is ~30x faster than per-core Python draws.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.noc.packet import Packet
from repro.traffic.patterns import TrafficPattern
from repro.utils.rng import RngStreams
from repro.utils.validation import check_positive, check_probability


class SyntheticTraffic:
    """Bernoulli packet source driving a :class:`repro.noc.simulator.Simulator`.

    Parameters
    ----------
    n_cores:
        Number of traffic sources.
    pattern:
        A :class:`~repro.traffic.patterns.TrafficPattern` (or a name string).
    injection_rate:
        Offered load in flits/core/cycle, in [0, 1].
    packet_size_flits:
        Flits per packet (paper-scale default: 4 flits of 128 bits = 64 B).
    seed:
        Master seed; the generator derives its own independent stream.
    stop_cycle:
        Stop creating packets at this cycle (``None`` = never); used by the
        drain phase of latency measurements.
    """

    def __init__(
        self,
        n_cores: int,
        pattern: "TrafficPattern | str",
        injection_rate: float,
        packet_size_flits: int = 4,
        seed: int = 1,
        stop_cycle: Optional[int] = None,
    ) -> None:
        check_positive("n_cores", n_cores)
        check_probability("injection_rate", injection_rate)
        check_positive("packet_size_flits", packet_size_flits)
        if isinstance(pattern, str):
            pattern = TrafficPattern(pattern, n_cores)
        if pattern.n_cores != n_cores:
            raise ValueError(
                f"pattern sized for {pattern.n_cores} cores, network has {n_cores}"
            )
        self.n_cores = n_cores
        self.pattern = pattern
        self.injection_rate = injection_rate
        self.packet_size_flits = packet_size_flits
        self.stop_cycle = stop_cycle
        self._p_start = injection_rate / packet_size_flits
        self._rng = RngStreams(seed).get("traffic", pattern.name)
        self.packets_generated = 0
        #: Packet-id source; the simulator binds its own per-run allocator
        #: here (see :class:`repro.noc.packet.PacketIdAllocator`).
        self.allocator = None
        # Injection lookahead (fast-forward support): last cycle whose
        # randomness has been consumed, and draw results cached for cycles
        # peeked ahead of the simulator clock.
        self._drawn_until = -1
        self._pending: Dict[int, List[Tuple[int, int]]] = {}

    def _draw(self, cycle: int) -> Optional[List[Tuple[int, int]]]:
        """Consume exactly one cycle's randomness; return (src, dst) pairs.

        This is the *only* place the generator touches its RNG stream, and
        it advances strictly one cycle at a time in dense order -- so ticked
        and peeked cycles interleave into the identical draw sequence a
        dense run performs.
        """
        self._drawn_until = cycle
        draws = self._rng.random(self.n_cores)
        sources = np.nonzero(draws < self._p_start)[0]
        if sources.size == 0:
            return None
        dsts = self.pattern.destinations(sources, self._rng)
        pairs = [
            (src, dst)
            for src, dst in zip(sources.tolist(), dsts.tolist())
            if src != dst  # permutation fixed points / uniform self-draws
        ]
        return pairs or None

    def tick(self, now: int) -> List[Packet]:
        """Packets created at cycle ``now``."""
        if self._p_start <= 0.0:
            return []
        if self.stop_cycle is not None and now >= self.stop_cycle:
            return []
        if now <= self._drawn_until:
            pairs = self._pending.pop(now, None)
        else:
            # Any gap since the last draw means those cycles were never
            # ticked (paused traffic): neither mode consumes randomness
            # there, and _draw() jumps _drawn_until straight to ``now``.
            pairs = self._draw(now)
        if not pairs:
            return []
        packets = [
            Packet(src, dst, self.packet_size_flits, now, allocator=self.allocator)
            for src, dst in pairs
        ]
        self.packets_generated += len(packets)
        return packets

    def next_injection_cycle(self, start: int, limit: int) -> Optional[int]:
        """Earliest cycle in ``[start, limit)`` with an injection, or None.

        Fast-forward wake source: draws the RNG stream forward cycle by
        cycle (caching the hit for the eventual :meth:`tick`), never beyond
        ``limit`` or ``stop_cycle`` -- the horizon the simulator passes in
        is already capped by every other wake source, so no draw happens
        that an equivalent dense run would not also have performed.
        """
        if self._p_start <= 0.0:
            return None
        stop = self.stop_cycle
        cycle = start
        while cycle < limit:
            if stop is not None and cycle >= stop:
                return None
            if cycle <= self._drawn_until:
                if cycle in self._pending:
                    return cycle
            else:
                pairs = self._draw(cycle)
                if pairs:
                    self._pending[cycle] = pairs
                    return cycle
            cycle += 1
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SyntheticTraffic({self.pattern.name}, rate={self.injection_rate}, "
            f"size={self.packet_size_flits})"
        )


class ScriptedTraffic:
    """Deterministic traffic from an explicit schedule.

    Useful in unit tests: supply ``(cycle, src, dst, size)`` tuples and the
    source emits exactly those packets.
    """

    def __init__(self, schedule: Iterable[tuple]) -> None:
        self._by_cycle: dict = {}
        for (cycle, src, dst, size) in schedule:
            self._by_cycle.setdefault(int(cycle), []).append((int(src), int(dst), int(size)))
        self.packets_generated = 0
        self.allocator = None

    def tick(self, now: int) -> List[Packet]:
        entries = self._by_cycle.pop(now, None)
        if not entries:
            return []
        packets = [
            Packet(src, dst, size, now, allocator=self.allocator)
            for (src, dst, size) in entries
        ]
        self.packets_generated += len(packets)
        return packets

    def next_injection_cycle(self, start: int, limit: int) -> Optional[int]:
        """Earliest scheduled cycle in ``[start, limit)`` (fast-forward)."""
        future = [c for c in self._by_cycle if start <= c < limit]
        return min(future) if future else None

    @property
    def exhausted(self) -> bool:
        return not self._by_cycle
