"""Open-loop synthetic traffic generation.

Each core is an independent Bernoulli source: every cycle it starts a new
packet with probability ``injection_rate / packet_size_flits`` so that the
*offered load* equals ``injection_rate`` flits/core/cycle -- the x-axis of
the paper's latency/throughput plots (Figs. 7-8).

The per-cycle draw across all cores is vectorised with NumPy (one ``random``
call per cycle) per the hpc-parallel guide's "vectorise the hot loop"
idiom: at 1024 cores this is ~30x faster than per-core Python draws.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.noc.packet import Packet
from repro.traffic.patterns import TrafficPattern
from repro.utils.rng import RngStreams
from repro.utils.validation import check_positive, check_probability


class SyntheticTraffic:
    """Bernoulli packet source driving a :class:`repro.noc.simulator.Simulator`.

    Parameters
    ----------
    n_cores:
        Number of traffic sources.
    pattern:
        A :class:`~repro.traffic.patterns.TrafficPattern` (or a name string).
    injection_rate:
        Offered load in flits/core/cycle, in [0, 1].
    packet_size_flits:
        Flits per packet (paper-scale default: 4 flits of 128 bits = 64 B).
    seed:
        Master seed; the generator derives its own independent stream.
    stop_cycle:
        Stop creating packets at this cycle (``None`` = never); used by the
        drain phase of latency measurements.
    """

    def __init__(
        self,
        n_cores: int,
        pattern: "TrafficPattern | str",
        injection_rate: float,
        packet_size_flits: int = 4,
        seed: int = 1,
        stop_cycle: Optional[int] = None,
    ) -> None:
        check_positive("n_cores", n_cores)
        check_probability("injection_rate", injection_rate)
        check_positive("packet_size_flits", packet_size_flits)
        if isinstance(pattern, str):
            pattern = TrafficPattern(pattern, n_cores)
        if pattern.n_cores != n_cores:
            raise ValueError(
                f"pattern sized for {pattern.n_cores} cores, network has {n_cores}"
            )
        self.n_cores = n_cores
        self.pattern = pattern
        self.injection_rate = injection_rate
        self.packet_size_flits = packet_size_flits
        self.stop_cycle = stop_cycle
        self._p_start = injection_rate / packet_size_flits
        self._rng = RngStreams(seed).get("traffic", pattern.name)
        self.packets_generated = 0
        #: Packet-id source; the simulator binds its own per-run allocator
        #: here (see :class:`repro.noc.packet.PacketIdAllocator`).
        self.allocator = None

    def tick(self, now: int) -> List[Packet]:
        """Packets created at cycle ``now``."""
        if self._p_start <= 0.0:
            return []
        if self.stop_cycle is not None and now >= self.stop_cycle:
            return []
        draws = self._rng.random(self.n_cores)
        sources = np.nonzero(draws < self._p_start)[0]
        if sources.size == 0:
            return []
        dsts = self.pattern.destinations(sources, self._rng)
        packets: List[Packet] = []
        for src, dst in zip(sources.tolist(), dsts.tolist()):
            if src == dst:
                continue  # permutation fixed points / uniform self-draws
            packets.append(
                Packet(src, dst, self.packet_size_flits, now, allocator=self.allocator)
            )
        self.packets_generated += len(packets)
        return packets

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SyntheticTraffic({self.pattern.name}, rate={self.injection_rate}, "
            f"size={self.packet_size_flits})"
        )


class ScriptedTraffic:
    """Deterministic traffic from an explicit schedule.

    Useful in unit tests: supply ``(cycle, src, dst, size)`` tuples and the
    source emits exactly those packets.
    """

    def __init__(self, schedule: Iterable[tuple]) -> None:
        self._by_cycle: dict = {}
        for (cycle, src, dst, size) in schedule:
            self._by_cycle.setdefault(int(cycle), []).append((int(src), int(dst), int(size)))
        self.packets_generated = 0
        self.allocator = None

    def tick(self, now: int) -> List[Packet]:
        entries = self._by_cycle.pop(now, None)
        if not entries:
            return []
        packets = [
            Packet(src, dst, size, now, allocator=self.allocator)
            for (src, dst, size) in entries
        ]
        self.packets_generated += len(packets)
        return packets

    @property
    def exhausted(self) -> bool:
        return not self._by_cycle
