"""Synthetic traffic: patterns, open-loop generation, trace record/replay."""

from repro.traffic.patterns import (
    TrafficPattern,
    PATTERN_NAMES,
    EXTENDED_PATTERN_NAMES,
    bit_reversal,
    matrix_transpose,
    perfect_shuffle,
    bit_complement,
    neighbor,
    tornado,
)
from repro.traffic.generator import SyntheticTraffic, ScriptedTraffic
from repro.traffic.trace import TrafficTrace, TraceTraffic
from repro.traffic.bursty import BurstyTraffic, ApplicationTraffic

__all__ = [
    "TrafficPattern",
    "PATTERN_NAMES",
    "EXTENDED_PATTERN_NAMES",
    "bit_reversal",
    "matrix_transpose",
    "perfect_shuffle",
    "bit_complement",
    "neighbor",
    "tornado",
    "SyntheticTraffic",
    "ScriptedTraffic",
    "TrafficTrace",
    "TraceTraffic",
    "BurstyTraffic",
    "ApplicationTraffic",
]
