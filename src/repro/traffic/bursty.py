"""Bursty and application-like traffic (beyond the paper's five patterns).

The paper evaluates synthetic traffic only and defers "real workloads" to
future work. As a step in that direction this module provides two
generators whose statistics are the standard stand-ins for application
traffic in the NoC literature:

* :class:`BurstyTraffic` -- per-core two-state Markov-modulated Bernoulli
  (ON/OFF) sources. Burstiness is controlled by the burst factor (ON-state
  rate over mean rate) and mean burst length; the long-run offered load
  matches ``injection_rate`` exactly, so results are comparable with the
  uniform Bernoulli runs at the same x-axis point.
* :class:`ApplicationTraffic` -- a crude shared-memory sharing pattern:
  each core picks a small working set of "home" cores (directory / LLC
  slices) that attract most of its packets, plus uniform background. This
  produces the hot-node skew real directory protocols show.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.noc.packet import Packet
from repro.traffic.patterns import TrafficPattern
from repro.utils.rng import RngStreams
from repro.utils.validation import check_in_range, check_positive, check_probability


class BurstyTraffic:
    """Markov-modulated (ON/OFF) Bernoulli sources.

    Parameters
    ----------
    n_cores, pattern, injection_rate, packet_size_flits, seed:
        As in :class:`~repro.traffic.generator.SyntheticTraffic`; the
        *long-run* offered load equals ``injection_rate``.
    burst_factor:
        Ratio of the ON-state rate to the mean rate (>= 1). A factor of 1
        degenerates to plain Bernoulli.
    mean_burst_cycles:
        Expected ON-period length; the OFF-period length follows from the
        duty cycle needed to hit the mean rate.
    """

    def __init__(
        self,
        n_cores: int,
        pattern: "TrafficPattern | str",
        injection_rate: float,
        packet_size_flits: int = 4,
        seed: int = 1,
        burst_factor: float = 4.0,
        mean_burst_cycles: float = 20.0,
        stop_cycle: Optional[int] = None,
    ) -> None:
        check_positive("n_cores", n_cores)
        check_probability("injection_rate", injection_rate)
        check_positive("packet_size_flits", packet_size_flits)
        if burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
        check_positive("mean_burst_cycles", mean_burst_cycles)
        if isinstance(pattern, str):
            pattern = TrafficPattern(pattern, n_cores)
        self.n_cores = n_cores
        self.pattern = pattern
        self.injection_rate = injection_rate
        self.packet_size_flits = packet_size_flits
        self.burst_factor = burst_factor
        self.stop_cycle = stop_cycle

        on_rate = min(1.0, injection_rate * burst_factor)
        self._p_start_on = on_rate / packet_size_flits
        duty = injection_rate / on_rate if on_rate > 0 else 0.0
        # Two-state Markov chain: P(stay ON) from the burst length, P(OFF ->
        # ON) from the stationary duty cycle duty = p_on_entry /
        # (p_on_entry + p_on_exit). A duty of 1 (burst_factor 1, or a rate
        # too high to boost) degenerates to always-ON plain Bernoulli.
        if duty >= 1.0:
            self._p_exit_on = 0.0
            self._p_enter_on = 1.0
        else:
            self._p_exit_on = 1.0 / mean_burst_cycles
            self._p_enter_on = min(
                1.0, self._p_exit_on * duty / (1.0 - duty)
            )

        self._rng = RngStreams(seed).get("bursty", pattern.name)
        # Start each source in its stationary state.
        self._on = self._rng.random(n_cores) < duty
        self.packets_generated = 0
        self.allocator = None
        # Injection lookahead (fast-forward support); see
        # :class:`repro.traffic.generator.SyntheticTraffic`.
        self._drawn_until = -1
        self._pending: Dict[int, List[Tuple[int, int]]] = {}

    def _draw(self, cycle: int) -> Optional[List[Tuple[int, int]]]:
        """Advance the Markov state and Bernoulli draws by one cycle."""
        self._drawn_until = cycle
        rng = self._rng
        # State transitions.
        flips = rng.random(self.n_cores)
        turning_off = self._on & (flips < self._p_exit_on)
        turning_on = (~self._on) & (flips < self._p_enter_on)
        self._on ^= turning_off | turning_on
        # ON sources draw at the boosted rate.
        draws = rng.random(self.n_cores)
        sources = np.nonzero(self._on & (draws < self._p_start_on))[0]
        if sources.size == 0:
            return None
        dsts = self.pattern.destinations(sources, rng)
        pairs = [
            (int(s), int(d)) for s, d in zip(sources, dsts) if s != d
        ]
        return pairs or None

    def tick(self, now: int) -> List[Packet]:
        if self.stop_cycle is not None and now >= self.stop_cycle:
            return []
        if now <= self._drawn_until:
            pairs = self._pending.pop(now, None)
        else:
            pairs = self._draw(now)
        if not pairs:
            return []
        packets = [
            Packet(src, dst, self.packet_size_flits, now,
                   allocator=self.allocator)
            for src, dst in pairs
        ]
        self.packets_generated += len(packets)
        return packets

    def next_injection_cycle(self, start: int, limit: int) -> Optional[int]:
        """Earliest cycle in ``[start, limit)`` with an injection, or None.

        The ON/OFF state machine flips every non-stopped cycle in dense
        mode, so the lookahead must (and does) advance it cycle by cycle
        while peeking -- randomness consumption is identical either way.
        """
        stop = self.stop_cycle
        cycle = start
        while cycle < limit:
            if stop is not None and cycle >= stop:
                return None
            if cycle <= self._drawn_until:
                if cycle in self._pending:
                    return cycle
            else:
                pairs = self._draw(cycle)
                if pairs:
                    self._pending[cycle] = pairs
                    return cycle
            cycle += 1
        return None

    @property
    def fraction_on(self) -> float:
        """Instantaneous share of sources in the ON state.

        Note: reflects the most recently *drawn* cycle, which in
        fast-forward mode can run ahead of the simulator clock while the
        network is idle.
        """
        return float(np.mean(self._on))


class ApplicationTraffic:
    """Directory-style sharing skew: hot working set + uniform background.

    Parameters
    ----------
    working_set:
        Number of home cores each source predominantly talks to.
    locality:
        Probability a packet targets the working set (rest is uniform).
    """

    def __init__(
        self,
        n_cores: int,
        injection_rate: float,
        packet_size_flits: int = 4,
        seed: int = 1,
        working_set: int = 4,
        locality: float = 0.7,
        stop_cycle: Optional[int] = None,
    ) -> None:
        check_positive("n_cores", n_cores)
        check_probability("injection_rate", injection_rate)
        check_positive("packet_size_flits", packet_size_flits)
        check_positive("working_set", working_set)
        check_probability("locality", locality)
        if working_set >= n_cores:
            raise ValueError("working_set must be smaller than the core count")
        self.n_cores = n_cores
        self.injection_rate = injection_rate
        self.packet_size_flits = packet_size_flits
        self.locality = locality
        self.stop_cycle = stop_cycle
        self._p_start = injection_rate / packet_size_flits
        self._rng = RngStreams(seed).get("app")
        # Fixed per-core working sets (never containing the core itself).
        homes = np.empty((n_cores, working_set), dtype=np.int64)
        for core in range(n_cores):
            candidates = self._rng.permutation(n_cores - 1)[:working_set]
            homes[core] = np.where(candidates >= core, candidates + 1, candidates)
        self._homes = homes
        self.packets_generated = 0
        self.allocator = None

    def tick(self, now: int) -> List[Packet]:
        if self.stop_cycle is not None and now >= self.stop_cycle:
            return []
        rng = self._rng
        draws = rng.random(self.n_cores)
        sources = np.nonzero(draws < self._p_start)[0]
        if sources.size == 0:
            return []
        use_home = rng.random(sources.size) < self.locality
        home_pick = rng.integers(0, self._homes.shape[1], size=sources.size)
        uniform = rng.integers(0, self.n_cores, size=sources.size)
        dsts = np.where(use_home, self._homes[sources, home_pick], uniform)
        packets = [
            Packet(int(s), int(d), self.packet_size_flits, now,
                   allocator=self.allocator)
            for s, d in zip(sources, dsts)
            if s != d
        ]
        self.packets_generated += len(packets)
        return packets

    def homes_of(self, core: int) -> Sequence[int]:
        return self._homes[core].tolist()
