"""Link-layer models: endpoints, point-to-point links and shared media.

The paper's three interconnect technologies map onto two link abstractions:

* :class:`Link` -- a unidirectional conduit from one router output port to a
  downstream :class:`Endpoint` (an input port's credit/VC-state view). Plain
  electrical mesh links are exactly this.
* :class:`SharedMedium` -- an arbitration domain shared by several links:

  - a **photonic MWSR waveguide** (multiple-writer-single-reader): all writer
    links share one medium and one destination endpoint; a circulating token
    (Sec. III-A of the paper) admits one writer at a time;
  - a **wireless channel**: in OWN-256 channels are dedicated writer->reader
    pairs (a degenerate medium); in OWN-1024 a channel is SWMR -- one of four
    cluster transmitters holds the intra-group token and the transmission is
    *multicast* to the four receivers of the destination group, only one of
    which forwards it (Sec. III-B). Multicast receive energy is accounted by
    ``rx_multicast_flits``.

Credits and output-VC busy flags live on the :class:`Endpoint` so that
multiple upstream writers of a bus share one consistent view of the reader's
buffer state.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.noc.arbiters import RoundRobinArbiter
from repro.noc.buffers import VCState

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.packet import Flit, Packet
    from repro.noc.router import Router

#: Hot-path alias for the SA-waiter staleness guard in ``try_grant``.
_VC_ACTIVE = VCState.ACTIVE

#: Link technology kinds; power accounting keys off these strings.
ELECTRICAL = "electrical"
PHOTONIC = "photonic"
WIRELESS = "wireless"

LINK_KINDS = (ELECTRICAL, PHOTONIC, WIRELESS)


class Endpoint:
    """Downstream-side state of a link: credits and VC ownership.

    Parameters
    ----------
    router:
        Downstream router (``None`` for ejection sinks).
    in_port:
        Input-port index at the downstream router.
    num_vcs, vc_depth:
        Mirror of the downstream input port geometry; credits start at
        ``vc_depth`` per VC.
    is_sink:
        Ejection endpoints accept flits unconditionally (infinite buffer at
        the core interface, the standard open-loop sink assumption).
    """

    __slots__ = (
        "router",
        "in_port",
        "num_vcs",
        "vc_depth",
        "credits",
        "vc_busy",
        "is_sink",
        "name",
        "vca_waiters",
        "vca_credit_waiters",
        "ni",
        "kslot",
        "_k",
    )

    def __init__(
        self,
        router: Optional["Router"],
        in_port: int,
        num_vcs: int,
        vc_depth: int,
        is_sink: bool = False,
        name: str = "",
    ) -> None:
        self.router = router
        self.in_port = in_port
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.credits: List[int] = [vc_depth] * num_vcs
        self.vc_busy: List[bool] = [False] * num_vcs
        self.is_sink = is_sink
        self.name = name
        #: Upstream VC-allocation requests parked on this endpoint:
        #: ``(router, (in_port, vc), size_flits)`` triples that failed VCA
        #: and wait for this endpoint's state to change before re-entering
        #: the upstream router's ``_vca_pending`` set (see Router.stage_vca).
        #: ``vca_waiters`` re-arms on a VC release (every parked request may
        #: become grantable when a VC frees up); ``vca_credit_waiters``
        #: additionally re-arms on credit returns, but only requests the
        #: returned credit could fund (the VC is free and has accumulated
        #: ``size_flits`` credits) -- everything else would re-poll and fail.
        self.vca_waiters: List[tuple] = []
        self.vca_credit_waiters: List[tuple] = []
        #: The network interface injecting through this endpoint, if any
        #: (bound by NetworkInterface.__init__). A parked NI re-arms on the
        #: same endpoint state changes as the VCA waiters above.
        self.ni = None
        # Struct-of-arrays binding (repro.noc.kernels): base index of this
        # endpoint's VC 0 in the flat credit/busy mirror arrays, plus the
        # owning KernelState. The lists above stay authoritative; every
        # mutation below writes through to the mirror so the bulk sweep
        # and the invariant audit can read it. Unbound endpoints (unit
        # tests, sinks) keep ``_k is None``.
        self.kslot = -1
        self._k = None

    def has_credit(self, vc: int) -> bool:
        return self.is_sink or self.credits[vc] > 0

    def can_accept_packet(self, vc: int, size_flits: int) -> bool:
        """Virtual cut-through admission: room for the *whole* packet?

        VC allocation only succeeds when the downstream VC buffer can hold
        the full packet. This guarantees that a writer holding a photonic /
        wireless token never stalls mid-packet on credits -- the property
        that keeps token arbitration out of the deadlock cycle (DESIGN.md,
        "Deadlock freedom").

        Raises
        ------
        ValueError
            If the packet cannot *ever* fit (``size_flits > vc_depth``);
            silently waiting would hang the simulation.
        """
        if self.is_sink:
            return True
        if size_flits > self.vc_depth:
            raise ValueError(
                f"packet of {size_flits} flits can never fit VC depth "
                f"{self.vc_depth} at {self.name or 'endpoint'}"
            )
        return self.credits[vc] >= size_flits

    def take_credit(self, vc: int) -> None:
        if self.is_sink:
            return
        if self.credits[vc] <= 0:
            raise RuntimeError(f"credit underflow at {self.name or 'endpoint'} vc={vc}")
        self.credits[vc] -= 1
        if self._k is not None:
            self._k.credits[self.kslot + vc] = self.credits[vc]

    def return_credit(self, vc: int) -> None:
        if self.is_sink:
            return
        self.credits[vc] += 1
        if self._k is not None:
            self._k.credits[self.kslot + vc] = self.credits[vc]
        ni = self.ni
        if ni is not None and ni.parked:
            ni.parked = False
            ni._wake(ni)
        waiters = self.vca_credit_waiters
        if waiters and not self.vc_busy[vc]:
            # Re-arm only requests this credit could actually fund: a parked
            # request is grantable now only via the VC the credit landed on
            # (nothing else changed since it parked), so skip the re-poll
            # when that VC is busy or still short of the packet size. Failed
            # VCA re-polls have no side effects, so pruning them is
            # invisible to the simulation result.
            c = self.credits[vc]
            kept = [w for w in waiters if w[2] > c]
            if len(kept) != len(waiters):
                for router, key, size in waiters:
                    if size <= c:
                        router._vca_pending.add(key)
                self.vca_credit_waiters = kept

    def acquire_vc(self, vc: int) -> None:
        if self.is_sink:
            return
        if self.vc_busy[vc]:
            raise RuntimeError(f"double VC allocation at {self.name or 'endpoint'} vc={vc}")
        self.vc_busy[vc] = True
        if self._k is not None:
            self._k.vc_busy[self.kslot + vc] = True

    def release_vc(self, vc: int) -> None:
        if self.is_sink:
            return
        self.vc_busy[vc] = False
        if self._k is not None:
            self._k.vc_busy[self.kslot + vc] = False
        ni = self.ni
        if ni is not None and ni.parked:
            ni.parked = False
            ni._wake(ni)
        # A freed VC can unblock every parked request, whichever resource
        # it was short of (the freed VC may have credits to spare).
        waiters = self.vca_waiters
        if waiters:
            for router, key, _size in waiters:
                router._vca_pending.add(key)
            waiters.clear()
        waiters = self.vca_credit_waiters
        if waiters:
            for router, key, _size in waiters:
                router._vca_pending.add(key)
            waiters.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Endpoint({self.name or (self.router, self.in_port)}, sink={self.is_sink})"


class SharedMedium:
    """A transmission medium arbitrated among several writer links.

    Token arbitration is modelled as request/grant round-robin with a
    configurable ``arb_latency`` (cycles for the token to reach the granted
    writer). The holder keeps the medium until its packet's tail flit has
    been serialised, matching the paper's per-packet token hold.

    Parameters
    ----------
    name:
        Diagnostic / stats key.
    kind:
        ``"photonic"`` or ``"wireless"``.
    arb_latency:
        Grant-to-first-flit delay in cycles; Corona-style optical token rings
        cost "a few extra cycles" (Sec. V-B) which this parameter captures.
    multicast_degree:
        Number of receivers that physically demodulate each flit (1 for MWSR
        photonic buses and OWN-256 wireless pairs; 4 for OWN-1024 SWMR
        wireless channels). Feeds receiver-side power accounting.
    """

    __slots__ = (
        "name",
        "kind",
        "arb_latency",
        "multicast_degree",
        "members",
        "member_index",
        "holder",
        "grant_at",
        "busy_until",
        "_rr",
        "_rr_next",
        "requesters",
        "flits_carried",
        "grants",
        "token_wait_cycles",
        "blocked_until",
        "token_losses",
        "index",
        "_wake",
        "_k",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        arb_latency: int = 1,
        multicast_degree: int = 1,
    ) -> None:
        if kind not in LINK_KINDS:
            raise ValueError(f"unknown medium kind {kind!r}")
        if arb_latency < 0:
            raise ValueError(f"arb_latency must be >= 0, got {arb_latency}")
        if multicast_degree < 1:
            raise ValueError(f"multicast_degree must be >= 1, got {multicast_degree}")
        self.name = name
        self.kind = kind
        self.arb_latency = arb_latency
        self.multicast_degree = multicast_degree
        self.members: List["Link"] = []
        self.member_index: Dict["Link", int] = {}
        self.holder: Optional["Link"] = None
        self.grant_at: int = 0  # cycle at which the holder may start transmitting
        self.busy_until: int = 0  # serialization: next flit may start at this cycle
        self._rr: Optional[RoundRobinArbiter] = None
        self._rr_next = 0  # rotating-priority pointer over member indices
        # Links with at least one VC-allocated packet waiting to transmit.
        # Request registration is event-driven (updated at VCA / tail send)
        # so kilo-core crossbars with tens of thousands of writer links do
        # not pay a per-cycle member scan.
        self.requesters: set = set()
        # Token blackout (fault injection): while ``now < blocked_until`` the
        # token is lost -- no grants are issued and the current holder pauses
        # mid-packet until the token is regenerated.
        self.blocked_until = 0
        self.token_losses = 0
        # Stats
        self.flits_carried = 0
        self.grants = 0
        self.token_wait_cycles = 0
        # Deterministic arbitration-phase ordering: assigned by the owning
        # Network at registration time (-1 until then).
        self.index = -1
        # Scheduler callback: invoked with ``self`` when the request set
        # becomes non-empty so the simulator re-registers this medium in
        # its active set.
        self._wake: Optional[Callable[["SharedMedium"], None]] = None
        # Struct-of-arrays binding (repro.noc.kernels): token position /
        # timer mirrors are written through when a KernelState is bound.
        self._k = None

    def register(self, link: "Link") -> None:
        self.member_index[link] = len(self.members)
        self.members.append(link)
        self._rr = RoundRobinArbiter(len(self.members))

    def note_request(self, link: "Link") -> None:
        """A packet on ``link`` finished VCA and now wants the token."""
        if not self.requesters and self._wake is not None:
            self._wake(self)
        self.requesters.add(link)

    def drop_request(self, link: "Link") -> None:
        """``link`` no longer has packets waiting (its last tail departed)."""
        self.requesters.discard(link)

    def try_grant(self, now: int) -> Optional["Link"]:
        """Hand the free token to the next requesting member (round-robin).

        Called once per cycle by the simulator *before* switch allocation.
        The grant is made on buffered-and-VC-allocated packets; a holder that
        is momentarily out of downstream credits simply transmits when
        credits return (it keeps the token, exactly like a real token hold).
        Returns the granted link (telemetry consumes it), ``None`` when no
        grant was issued.
        """
        if self.holder is not None or not self.requesters:
            return None
        if now < self.blocked_until:
            return None  # token lost; awaiting regeneration
        n = len(self.members)
        best_link = None
        best_dist = n
        for link in self.requesters:
            dist = (self.member_index[link] - self._rr_next) % n
            if dist < best_dist:
                best_dist = dist
                best_link = link
        self.holder = best_link
        self._rr_next = (self.member_index[best_link] + 1) % n
        self.grant_at = now + self.arb_latency
        self.grants += 1
        self.token_wait_cycles += self.arb_latency
        k = self._k
        if k is not None:
            k.med_holder[self.index] = best_link.index
            k.med_grant_at[self.index] = self.grant_at
        waiters = best_link.sa_token_waiters
        if waiters:
            # Re-arm VCs that parked while the token was elsewhere. Grants
            # run before switch allocation, so a re-armed VC is polled the
            # same cycle it could first transmit -- bit-identical to dense
            # per-cycle polling. The state/queue guard drops entries made
            # stale by fault handling (drops / re-routes).
            for router, key in waiters:
                vc = router.input_ports[key[0]].vcs[key[1]]
                if vc.state is _VC_ACTIVE and vc.queue:
                    router._sa_active.add(key)
                    if router._kern is not None:
                        router._kern.sa_slots.add(vc.gslot)
            del waiters[:]
        return best_link

    def arbitrate(self, now: int, requesting: Sequence[bool]) -> None:
        """Array-based grant (legacy interface kept for unit tests)."""
        if self.holder is not None or self._rr is None:
            return
        winner = self._rr.grant(requesting)
        if winner is not None:
            self.holder = self.members[winner]
            self._rr_next = (winner + 1) % len(self.members)
            self.grant_at = now + self.arb_latency
            self.grants += 1
            self.token_wait_cycles += self.arb_latency
            if self._k is not None:
                self._k.med_holder[self.index] = self.holder.index
                self._k.med_grant_at[self.index] = self.grant_at

    def can_transmit(self, link: "Link", now: int) -> bool:
        return (
            self.holder is link
            and now >= self.grant_at
            and now >= self.busy_until
            and now >= self.blocked_until
        )

    def lose_token(self, now: int, recovery_cycles: int) -> None:
        """Token-loss fault: freeze the medium until regeneration completes.

        The holder (if any) keeps its logical hold so packet atomicity is
        preserved; it simply cannot transmit until ``now + recovery_cycles``.
        """
        if recovery_cycles < 1:
            raise ValueError(f"recovery_cycles must be >= 1, got {recovery_cycles}")
        self.blocked_until = max(self.blocked_until, now + recovery_cycles)
        self.token_losses += 1
        if self._k is not None:
            self._k.med_blocked[self.index] = self.blocked_until

    def on_flit_sent(self, now: int, cycles_per_flit: int, is_tail: bool) -> None:
        self.busy_until = now + cycles_per_flit
        self.flits_carried += 1
        if is_tail:
            self.holder = None
        k = self._k
        if k is not None:
            k.med_busy[self.index] = self.busy_until
            if is_tail:
                k.med_holder[self.index] = -1

    def release_if_holder(self, link: "Link") -> None:
        """Force-release (used when a holder is torn down in tests)."""
        if self.holder is link:
            self.holder = None
            if self._k is not None:
                self._k.med_holder[self.index] = -1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedMedium({self.name}, kind={self.kind}, members={len(self.members)})"


class Link:
    """A unidirectional link from a router output port to endpoint(s).

    Parameters
    ----------
    src_router, out_port:
        Upstream attachment (``src_router`` may be ``None`` in unit tests).
    endpoint:
        The single downstream endpoint, *or* ``None`` when ``endpoints`` +
        ``resolver`` provide per-packet endpoint resolution (SWMR multicast
        channels resolve the intended receiver from the packet destination).
    kind:
        One of :data:`LINK_KINDS`; selects the power model.
    latency:
        Propagation latency in cycles (flit sent at ``t`` arrives at
        ``t + latency``; must be >= 1 to keep the cycle loop causal).
    cycles_per_flit:
        Serialization interval: minimum spacing between consecutive flits.
        Used to equalise bisection bandwidth across architectures and to
        model the 16 GHz conservative wireless scenario (2 cycles/flit).
    length_mm:
        Physical length, consumed by the electrical/wireless power models.
    medium:
        Optional :class:`SharedMedium` this link transmits on.
    """

    __slots__ = (
        "name",
        "src_router",
        "out_port",
        "kind",
        "latency",
        "cycles_per_flit",
        "length_mm",
        "medium",
        "busy_until",
        "_endpoint",
        "endpoints",
        "resolver",
        "flits_carried",
        "bits_carried",
        "bits_retransmitted",
        "control_msgs",
        "fault",
        "channel_id",
        "pending_requests",
        "sa_token_waiters",
        "index",
        "_k",
    )

    def __init__(
        self,
        name: str,
        src_router: Optional["Router"],
        out_port: int,
        endpoint: Optional[Endpoint],
        kind: str = ELECTRICAL,
        latency: int = 1,
        cycles_per_flit: int = 1,
        length_mm: float = 1.0,
        medium: Optional[SharedMedium] = None,
        endpoints: Optional[Dict[object, Endpoint]] = None,
        resolver: Optional[Callable[["Packet"], object]] = None,
        channel_id: Optional[int] = None,
    ) -> None:
        if kind not in LINK_KINDS:
            raise ValueError(f"unknown link kind {kind!r}")
        if latency < 1:
            raise ValueError(f"link latency must be >= 1 cycle, got {latency}")
        if cycles_per_flit < 1:
            raise ValueError(f"cycles_per_flit must be >= 1, got {cycles_per_flit}")
        if endpoint is None and not endpoints:
            raise ValueError("link needs an endpoint or an endpoints map")
        if endpoints and resolver is None:
            raise ValueError("multi-endpoint link needs a resolver")
        self.name = name
        self.src_router = src_router
        self.out_port = out_port
        self.kind = kind
        self.latency = latency
        self.cycles_per_flit = cycles_per_flit
        self.length_mm = length_mm
        self.medium = medium
        self.busy_until = 0
        self._endpoint = endpoint
        self.endpoints = endpoints or {}
        self.resolver = resolver
        self.flits_carried = 0
        self.bits_carried = 0
        # Link-layer protocol accounting (populated by repro.faults):
        # bits spent on retransmitted flits and ACK/NACK control messages
        # returned over the reverse channel. Both feed power accounting.
        self.bits_retransmitted = 0
        self.control_msgs = 0
        # Per-link fault state (repro.faults.models.LinkFaultState) when a
        # fault layer protects this link; None on fault-free runs.
        self.fault = None
        self.channel_id = channel_id
        # Count of VC-allocated packets currently waiting to use this link;
        # maintained by the router (VCA / tail transmit) to drive the shared
        # medium's request set.
        self.pending_requests = 0
        # ACTIVE VCs parked here by stage_sa while another link holds the
        # medium token; flushed back into their router's SA work set when
        # this link is granted (see SharedMedium.try_grant). Only used when
        # no tracer is attached -- with a tracer the router keeps polling so
        # the per-cycle stall record stream is preserved.
        self.sa_token_waiters: List[tuple] = []
        # Struct-of-arrays binding (repro.noc.kernels): position of this
        # link in the flat link arrays (-1 until a KernelState binds the
        # owning network), and the state block for busy-timer write-through.
        self.index = -1
        self._k = None
        if medium is not None:
            medium.register(self)

    def resolve_endpoint(self, packet: "Packet") -> Endpoint:
        """Endpoint the given packet will be delivered to."""
        if self._endpoint is not None:
            return self._endpoint
        key = self.resolver(packet)  # type: ignore[misc]
        try:
            return self.endpoints[key]
        except KeyError:
            raise RuntimeError(
                f"link {self.name}: resolver produced unknown endpoint key {key!r}"
            ) from None

    def all_endpoints(self) -> List[Endpoint]:
        if self._endpoint is not None:
            return [self._endpoint]
        return list(self.endpoints.values())

    def ready(self, now: int) -> bool:
        """Can a flit start transmission this cycle (serialization + medium)?"""
        if now < self.busy_until:
            return False
        if self.medium is not None:
            return self.medium.can_transmit(self, now)
        return True

    def needs_grant(self, now: int) -> bool:
        """True when transmission is blocked only on medium arbitration."""
        if self.medium is None:
            return False
        return now >= self.busy_until and not self.medium.can_transmit(self, now)

    def set_busy_until(self, cycle: int) -> None:
        """Write the serialization timer through to the array mirror.

        Every ``busy_until`` write outside the simulator's inlined send path
        (fault-layer stalls, unit tests) must go through here so the kernel
        SA sweep sees the stall.
        """
        self.busy_until = cycle
        if self._k is not None:
            self._k.link_busy[self.index] = cycle

    def on_flit_sent(self, now: int, flit: "Flit", flit_width_bits: int) -> None:
        """Book-keeping when a flit begins traversal."""
        self.busy_until = now + self.cycles_per_flit
        if self._k is not None:
            self._k.link_busy[self.index] = self.busy_until
        self.flits_carried += 1
        self.bits_carried += flit_width_bits
        if self.medium is not None:
            self.medium.on_flit_sent(now, self.cycles_per_flit, flit.is_tail)

    @property
    def multicast_degree(self) -> int:
        return self.medium.multicast_degree if self.medium is not None else 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Link({self.name}, kind={self.kind}, latency={self.latency})"
