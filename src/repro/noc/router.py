"""The virtual-channel router model.

The paper assumes "a regular 5-stage pipelined router (routing computation
(RC), virtual channel allocation (VCA), switch allocation (SA), switch
traversal (ST) and link traversal (LT))" with 4 VCs per input port. We model
the same stages with RC, VCA and SA each taking one cycle and ST folded into
the link-traversal event (uniform across all compared architectures, so
relative results are preserved while keeping kilo-core simulation tractable
in Python).

Switch allocation is *separable*: a per-input-port round-robin arbiter picks
one candidate VC, then a per-output-port round-robin arbiter picks among the
input-port winners, which is the canonical iSLIP-like single-iteration
allocator DSENT models.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.noc.arbiters import RoundRobinArbiter
from repro.noc.buffers import InputPort, VCState, VirtualChannel
from repro.noc.links import Endpoint, Link

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.packet import Flit, Packet


class RoutingFunction:
    """Topology-supplied routing interface.

    Subclasses (one per topology) implement :meth:`compute` to select the
    output port for a packet at a router, and may override
    :meth:`allowed_vcs` to restrict downstream VC choice for deadlock
    avoidance (e.g. OWN's photonic/wireless VC partitioning).
    """

    def compute(self, router: "Router", packet: "Packet") -> int:
        raise NotImplementedError

    def allowed_vcs(self, router: "Router", out_port: int, packet: "Packet") -> Sequence[int]:
        link = router.out_links[out_port]
        endpoint = link.resolve_endpoint(packet)
        return range(endpoint.num_vcs)


# Type of the delivery callback the simulator passes into stage_sa:
SendFn = Callable[[Link, Endpoint, "Flit", int, int], None]
CreditFn = Callable[[Endpoint, int, int], None]


class Router:
    """One network router: input VC buffers, output links, allocators.

    Parameters
    ----------
    rid:
        Router id, unique within its network.
    num_vcs, vc_depth:
        Input-port geometry (the paper uses 4 VCs per input port).
    position_mm:
        (x, y) placement on the die; used to derive link lengths.
    attrs:
        Free-form topology metadata (cluster id, tile id, gateway role...).
    """

    __slots__ = (
        "rid",
        "num_vcs",
        "vc_depth",
        "position_mm",
        "attrs",
        "input_ports",
        "input_endpoints",
        "out_links",
        "routing",
        "_in_arbs",
        "_out_arbs",
        "_occupied",
        "buffer_writes",
        "buffer_reads",
        "xbar_traversals",
        "vca_grants",
        "sa_grants",
        "tracer",
    )

    def __init__(
        self,
        rid: int,
        num_vcs: int = 4,
        vc_depth: int = 4,
        position_mm: Tuple[float, float] = (0.0, 0.0),
        attrs: Optional[dict] = None,
    ) -> None:
        self.rid = rid
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.position_mm = position_mm
        self.attrs: dict = attrs or {}
        self.input_ports: List[InputPort] = []
        self.input_endpoints: List[Endpoint] = []
        self.out_links: List[Optional[Link]] = []
        self.routing: Optional[RoutingFunction] = None
        self._in_arbs: List[RoundRobinArbiter] = []
        self._out_arbs: List[RoundRobinArbiter] = []
        self._occupied: Set[Tuple[int, int]] = set()  # (in_port, vc) with flits
        # Activity counters for the power model:
        self.buffer_writes = 0
        self.buffer_reads = 0
        self.xbar_traversals = 0
        self.vca_grants = 0
        self.sa_grants = 0
        # Telemetry sink (repro.telemetry.Tracer); None on untraced runs.
        self.tracer = None

    # ------------------------------------------------------------------ #
    # Construction API (used by Network builders)
    # ------------------------------------------------------------------ #

    def add_input_port(self, kind: str = "electrical") -> Endpoint:
        """Create a new input port and return its endpoint handle.

        The endpoint is what upstream links (or the NI) reference for
        credits and VC-busy state.
        """
        index = len(self.input_ports)
        port = InputPort(index, self.num_vcs, self.vc_depth, kind=kind)
        endpoint = Endpoint(
            self, index, self.num_vcs, self.vc_depth, name=f"r{self.rid}.in{index}"
        )
        self.input_ports.append(port)
        self.input_endpoints.append(endpoint)
        self._in_arbs.append(RoundRobinArbiter(self.num_vcs))
        return endpoint

    def add_output_port(self, link: Optional[Link] = None) -> int:
        """Reserve the next output port index; attach ``link`` if given."""
        index = len(self.out_links)
        self.out_links.append(link)
        self._out_arbs.append(RoundRobinArbiter(1))  # resized by finalize()
        return index

    def attach_link(self, out_port: int, link: Link) -> None:
        if self.out_links[out_port] is not None:
            raise ValueError(f"router {self.rid} out port {out_port} already linked")
        self.out_links[out_port] = link

    def finalize(self) -> None:
        """Size per-output arbiters once the port counts are known."""
        for i, link in enumerate(self.out_links):
            if link is None:
                raise ValueError(f"router {self.rid}: output port {i} has no link")
        n_in = max(1, len(self.input_ports))
        self._out_arbs = [RoundRobinArbiter(n_in) for _ in self.out_links]

    @property
    def radix(self) -> int:
        """Router radix as the paper counts it: total attached ports."""
        return max(len(self.input_ports), len(self.out_links))

    # ------------------------------------------------------------------ #
    # Buffer plumbing
    # ------------------------------------------------------------------ #

    def deliver_flit(self, in_port: int, vc: int, flit: "Flit") -> None:
        """Accept a flit arriving from a link (the LT stage completing)."""
        self.input_ports[in_port].vcs[vc].push(flit)
        self._occupied.add((in_port, vc))
        self.buffer_writes += 1

    def occupancy(self) -> int:
        """Total buffered flits (used by the deadlock watchdog)."""
        return sum(p.total_occupancy() for p in self.input_ports)

    # ------------------------------------------------------------------ #
    # Pipeline stages (invoked by the Simulator each cycle)
    # ------------------------------------------------------------------ #

    def stage_rc(self, now: int) -> None:
        """Route computation for head flits at the front of IDLE VCs."""
        routing = self.routing
        if routing is None:
            raise RuntimeError(f"router {self.rid} has no routing function")
        for (ip, iv) in list(self._occupied):
            vc = self.input_ports[ip].vcs[iv]
            if vc.state is not VCState.IDLE or not vc.queue:
                continue
            flit = vc.queue[0]
            if not flit.is_head:
                raise RuntimeError(
                    f"router {self.rid}: non-head flit at front of IDLE VC "
                    f"(in_port={ip}, vc={iv}): {flit!r}"
                )
            vc.out_port = routing.compute(self, flit.packet)
            vc.state = VCState.WAITING_VC

    def stage_vca(self, now: int) -> None:
        """Virtual-channel allocation for VCs that completed RC."""
        for (ip, iv) in list(self._occupied):
            vc = self.input_ports[ip].vcs[iv]
            if vc.state is not VCState.WAITING_VC:
                continue
            packet = vc.queue[0].packet
            link = self.out_links[vc.out_port]
            endpoint = link.resolve_endpoint(packet)
            if endpoint.is_sink:
                vc.out_vc = 0
                vc.endpoint = endpoint
                vc.state = VCState.ACTIVE
                self.vca_grants += 1
                continue
            for cand in self.routing.allowed_vcs(self, vc.out_port, packet):
                if not endpoint.vc_busy[cand] and endpoint.can_accept_packet(
                    cand, packet.size_flits
                ):
                    endpoint.acquire_vc(cand)
                    vc.out_vc = cand
                    vc.endpoint = endpoint
                    vc.state = VCState.ACTIVE
                    self.vca_grants += 1
                    medium = link.medium
                    if medium is not None:
                        link.pending_requests += 1
                        medium.note_request(link)
                        if self.tracer is not None:
                            self.tracer.on_medium_request(medium, link, packet, now)
                    break

    def wants_link(self, link: Link, now: int) -> bool:
        """Does any ACTIVE VC here have a flit ready for ``link``?

        Used by the simulator's shared-medium arbitration phase: a router
        "requests the token" when it could transmit immediately were the
        medium granted (flit buffered, VC allocated, downstream credit).
        """
        out_port = link.out_port
        for (ip, iv) in self._occupied:
            vc = self.input_ports[ip].vcs[iv]
            if (
                vc.state is VCState.ACTIVE
                and vc.out_port == out_port
                and vc.queue
                and vc.endpoint.has_credit(vc.out_vc)
            ):
                return True
        return False

    def stage_sa(self, now: int, send_fn: SendFn, credit_fn: CreditFn) -> int:
        """Switch allocation + traversal; returns number of flits moved.

        ``send_fn(link, endpoint, flit, out_vc, now)`` schedules link
        traversal; ``credit_fn(input_endpoint, vc_index, now)`` schedules the
        upstream credit return for the freed buffer slot.
        """
        if not self._occupied:
            return 0

        # --- input-port arbitration: one candidate VC per input port ---- #
        tracer = self.tracer
        port_winner: Dict[int, VirtualChannel] = {}
        ports_seen: Set[int] = set()
        for (ip, _iv) in self._occupied:
            ports_seen.add(ip)
        for ip in ports_seen:
            port = self.input_ports[ip]
            requests = [False] * self.num_vcs
            any_req = False
            for iv in range(self.num_vcs):
                vc = port.vcs[iv]
                if vc.state is not VCState.ACTIVE or not vc.queue:
                    continue
                if not vc.endpoint.has_credit(vc.out_vc):
                    if tracer is not None:
                        tracer.on_vc_stall(self, port.kind, "credit", now)
                    continue
                link = self.out_links[vc.out_port]
                if not link.ready(now):
                    if tracer is not None:
                        reason = "token" if link.needs_grant(now) else "link"
                        tracer.on_vc_stall(self, port.kind, reason, now)
                    continue
                requests[iv] = True
                any_req = True
            if any_req:
                win = self._in_arbs[ip].grant(requests)
                if win is not None:
                    port_winner[ip] = port.vcs[win]

        if not port_winner:
            return 0

        # --- output-port arbitration among input-port winners ----------- #
        by_out: Dict[int, List[int]] = {}
        for ip, vc in port_winner.items():
            by_out.setdefault(vc.out_port, []).append(ip)

        moved = 0
        n_in = len(self.input_ports)
        for out_port, contenders in by_out.items():
            requests = [False] * n_in
            for ip in contenders:
                requests[ip] = True
            win_ip = self._out_arbs[out_port].grant(requests)
            if win_ip is None:
                continue
            vc = port_winner[win_ip]
            self._transmit(now, win_ip, vc, send_fn, credit_fn)
            moved += 1
        return moved

    def _transmit(
        self,
        now: int,
        in_port: int,
        vc: VirtualChannel,
        send_fn: SendFn,
        credit_fn: CreditFn,
    ) -> None:
        link = self.out_links[vc.out_port]
        endpoint = vc.endpoint
        flit = vc.pop()
        if not vc.queue:
            self._occupied.discard((in_port, vc.index))
        self.buffer_reads += 1
        self.xbar_traversals += 1
        self.sa_grants += 1

        if flit.is_head:
            packet = flit.packet
            packet.hops += 1
            if link.kind == "photonic":
                packet.photonic_hops += 1
            elif link.kind == "wireless":
                packet.wireless_hops += 1
            elif not endpoint.is_sink:
                packet.electrical_hops += 1

        endpoint.take_credit(vc.out_vc)
        out_vc = vc.out_vc
        # Link/medium busy + bit accounting happens inside send_fn so the
        # simulator can apply the configured flit width consistently.
        if flit.is_tail:
            endpoint.release_vc(out_vc)
            vc.release()
            medium = link.medium
            if medium is not None:
                link.pending_requests -= 1
                if link.pending_requests <= 0:
                    medium.drop_request(link)
        # Return the freed input-buffer slot upstream:
        credit_fn(self.input_endpoints[in_port], vc.index, now)
        send_fn(link, endpoint, flit, out_vc, now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Router(rid={self.rid}, radix={self.radix}, attrs={self.attrs})"
